// Placement ablation: geographically clustered memberships (the HIE model)
// vs the uniform placement the simulation datasets assume.
//
// ε-PPI's β calculation is a per-identity function of frequency alone, so
// its success ratio must be placement-invariant. Grouping baselines have no
// such property: their achieved false-positive rate depends on how a
// patient's providers fall across the random groups, which clustering
// reshapes. Measured here side by side.
#include <cstddef>
#include <vector>

#include "baseline/grouping_ppi.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/constructor.h"
#include "core/publisher.h"
#include "dataset/hie_model.h"

namespace {

struct Outcome {
  double eppi_success = 0.0;
  double grouping_success = 0.0;
  double spread = 0.0;
};

Outcome measure(double locality, std::uint64_t seed) {
  eppi::Rng rng(seed);
  eppi::dataset::HieModelConfig config;
  config.providers = 400;
  config.patients = 250;
  config.mean_visits = 4.0;
  config.locality = locality;
  config.traveler_fraction = 0.0;
  const auto world = eppi::dataset::make_hie_world(config, rng);
  constexpr double kEps = 0.8;
  const std::vector<double> epsilons(250, kEps);

  Outcome o;
  o.spread = world.mean_visit_spread();

  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto result = eppi::core::construct_centralized(
      world.network.membership, epsilons, options, rng);
  const auto rates = eppi::core::false_positive_rates(
      world.network.membership, result.index.matrix());
  std::size_t met = 0;
  for (std::size_t j = 0; j < 250; ++j) {
    if (result.info.is_apparent_common[j] || rates[j] >= kEps) ++met;
  }
  o.eppi_success = static_cast<double>(met) / 250.0;

  // 80 groups of 5: fp = 0.8 exactly when a patient's providers land in
  // distinct groups — the boundary configuration where placement matters.
  const eppi::baseline::GroupingPpi grouping(world.network.membership, 80,
                                             rng);
  std::size_t gmet = 0;
  for (std::size_t j = 0; j < 250; ++j) {
    const auto f = world.network.membership.col_count(j);
    const auto apparent = grouping.apparent_frequency(
        static_cast<eppi::core::IdentityId>(j));
    const double fp = apparent == 0
                          ? 0.0
                          : static_cast<double>(apparent - f) /
                                static_cast<double>(apparent);
    if (fp >= kEps) ++gmet;
  }
  o.grouping_success = static_cast<double>(gmet) / 250.0;
  return o;
}

}  // namespace

int main() {
  eppi::bench::ResultTable table({"locality", "visit-spread",
                                  "eppi-success", "grouping-success"});
  for (const double locality : {0.03, 0.1, 0.3, 10.0}) {
    const Outcome o = measure(locality, 900 + static_cast<int>(locality * 10));
    table.add_row({eppi::bench::fmt(locality, 2), eppi::bench::fmt(o.spread),
                   eppi::bench::fmt(o.eppi_success),
                   eppi::bench::fmt(o.grouping_success)});
  }
  table.print(
      "Placement ablation: clustered (HIE model) vs uniform memberships "
      "(eps=0.8)");
  std::cout << "\neps-PPI's per-identity guarantee is placement-invariant "
               "(frequency is the\nonly input); grouping's emergent privacy "
               "shifts with how visits cluster.\n";
  return 0;
}
