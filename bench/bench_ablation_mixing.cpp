// Identity-mixing ablations (paper §III-B.2, Eq. 6-7).
//
//  1. Decoy-fraction concentration: Eq. 7 sets λ so the decoy fraction of
//     the apparent-common set equals ξ *in expectation*; the expected decoy
//     count is ξ/(1−ξ)·|common| independent of n, so with few common
//     identities the realized fraction has high variance and the
//     common-identity bound can be missed in individual constructions. We
//     sweep the common count and report mean/min realized decoy fraction
//     over repeated constructions — quantifying a caveat the paper leaves
//     implicit.
//
//  2. Mixing on/off: attacker identification confidence with and without
//     the defense (the ablation behind Table II's ε-PPI column).
#include <algorithm>
#include <cstddef>
#include <vector>

#include "attack/common_identity_attack.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/constructor.h"
#include "core/mixing.h"
#include "dataset/synthetic.h"

int main() {
  constexpr std::size_t kM = 300;
  constexpr std::size_t kN = 400;
  constexpr double kEps = 0.8;  // xi of every run

  // --- 1. Decoy-fraction concentration vs common count -----------------------
  {
    eppi::bench::ResultTable table({"commons", "expected-decoys",
                                    "mean-decoy-frac", "min-decoy-frac",
                                    "runs-below-xi"});
    for (const std::size_t commons : {1u, 2u, 5u, 10u, 25u}) {
      eppi::RunningStat fractions;
      int below = 0;
      constexpr int kRuns = 40;
      for (int run = 0; run < kRuns; ++run) {
        eppi::Rng rng(1000 + commons * 100 + run);
        std::vector<std::uint64_t> freqs(kN, 2);
        for (std::size_t j = 0; j < commons; ++j) freqs[j] = kM - 1 - j;
        const auto net =
            eppi::dataset::make_network_with_frequencies(kM, freqs, rng);
        const std::vector<double> eps(kN, kEps);
        eppi::core::ConstructionOptions options;
        options.policy = eppi::core::BetaPolicy::basic();
        const auto info = eppi::core::calculate_betas(net.membership, eps,
                                                      options, rng);
        const double frac = eppi::core::achieved_decoy_fraction(
            info.is_common, info.is_apparent_common);
        fractions.add(frac);
        if (frac < kEps) ++below;
      }
      const double expected_decoys =
          kEps / (1.0 - kEps) * static_cast<double>(commons);
      table.add_row({std::to_string(commons),
                     eppi::bench::fmt(expected_decoys, 1),
                     eppi::bench::fmt(fractions.mean()),
                     eppi::bench::fmt(fractions.min()),
                     std::to_string(below) + "/40"});
    }
    table.print(
        "Mixing ablation 1: decoy-fraction concentration (xi=0.8, n=400)");
    std::cout << "Eq. 7 holds in expectation; with few common identities "
                 "the realized decoy\nfraction fluctuates (small expected "
                 "decoy pools), tightening with |common|.\n";
  }

  // --- 2. Mixing on/off ---------------------------------------------------------
  {
    eppi::bench::ResultTable table(
        {"mixing", "apparent-commons", "ident-confidence"});
    for (const bool mixing : {true, false}) {
      eppi::Rng rng(77);
      std::vector<std::uint64_t> freqs(kN, 2);
      for (std::size_t j = 0; j < 5; ++j) freqs[j] = kM - 1 - j;
      const auto net =
          eppi::dataset::make_network_with_frequencies(kM, freqs, rng);
      const std::vector<double> eps(kN, kEps);
      eppi::core::ConstructionOptions options;
      options.policy = eppi::core::BetaPolicy::basic();
      options.enable_mixing = mixing;
      const auto result = eppi::core::construct_centralized(net.membership,
                                                            eps, options, rng);
      std::vector<std::uint64_t> knowledge(kN);
      for (std::size_t j = 0; j < kN; ++j) {
        knowledge[j] = result.index.matrix().col_count(j);
      }
      const auto outcome = eppi::attack::common_identity_attack(
          net.membership, knowledge, kM, result.info.is_common, 5, rng);
      table.add_row({mixing ? "on" : "off",
                     std::to_string(outcome.candidates),
                     eppi::bench::fmt(outcome.identification_confidence())});
    }
    table.print("Mixing ablation 2: the common-identity defense on/off");
    std::cout << "Without mixing, only true commons publish full columns — "
                 "identification is\ncertain. Mixing hides them among "
                 "lambda-selected decoys.\n";
  }
  return 0;
}
