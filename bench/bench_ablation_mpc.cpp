// MPC-design ablations (DESIGN.md experiment index):
//
//  1. Modulus choice: q = 2^k (carry-free reduction) vs. general q
//     (conditional subtract) — circuit size of CountBelow.
//  2. MPC reduction: the whole point of SecSumShare. Compare the c-party
//     CountBelow + MixAndReveal against the pure m-party circuit across m.
//  3. Collusion knob: cost of raising c (more coordinators tolerated in
//     collusion) at fixed m.
//  4. λ-coin resolution: coin_bits vs. circuit size of MixAndReveal.
#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "mpc/eppi_circuits.h"
#include "mpc/garbled.h"
#include "mpc/gmw.h"
#include "mpc/optimizer.h"
#include "secret/mod_ring.h"

namespace {

eppi::mpc::CircuitStats count_below_stats(std::size_t c, std::uint64_t q,
                                          std::size_t n) {
  eppi::mpc::CountBelowSpec spec;
  spec.c = c;
  spec.q = q;
  spec.thresholds = std::vector<std::uint64_t>(n, q / 2);
  return eppi::mpc::build_count_below_circuit(spec).stats();
}

eppi::mpc::CircuitStats mix_reveal_stats(std::size_t c, std::uint64_t q,
                                         std::size_t n, unsigned coin_bits) {
  eppi::mpc::MixRevealSpec spec;
  spec.c = c;
  spec.q = q;
  spec.thresholds = std::vector<std::uint64_t>(n, q / 2);
  spec.lambda = 0.25;
  spec.coin_bits = coin_bits;
  return eppi::mpc::build_mix_reveal_circuit(spec).stats();
}

}  // namespace

int main() {
  // 1. Power-of-two vs. general modulus.
  {
    eppi::bench::ResultTable table(
        {"modulus", "gates", "and-gates", "and-depth"});
    for (const std::uint64_t q : {1024ull, 1000ull, 4096ull, 4093ull}) {
      const auto stats = count_below_stats(3, q, 16);
      table.add_row({std::to_string(q), std::to_string(stats.total_gates()),
                     std::to_string(stats.and_gates),
                     std::to_string(stats.and_depth)});
    }
    table.print("Ablation 1: CountBelow circuit vs modulus choice (c=3, n=16)");
    std::cout << "Power-of-two moduli reduce mod-q addition to truncation;\n"
                 "general q pays a comparator + conditional subtract per "
                 "addition.\n";
  }

  // 2. MPC reduction across network size.
  {
    eppi::bench::ResultTable table(
        {"providers", "eppi-gates(c=3)", "pure-gates(m)"});
    for (const std::size_t m : {8u, 32u, 128u, 512u}) {
      const auto ring = eppi::secret::ModRing::power_of_two_for(m);
      const auto eppi_stats = count_below_stats(3, ring.q(), 8);
      const auto mr = mix_reveal_stats(3, ring.q(), 8, 8);
      eppi::mpc::PureMpcSpec pure;
      pure.m = m;
      pure.thresholds = std::vector<std::uint64_t>(8, m / 2);
      pure.coin_bits = 8;
      const auto pure_stats =
          eppi::mpc::build_pure_mpc_circuit(pure).stats();
      table.add_row(
          {std::to_string(m),
           std::to_string(eppi_stats.total_gates() + mr.total_gates()),
           std::to_string(pure_stats.total_gates())});
    }
    table.print("Ablation 2: MPC reduction (SecSumShare keeps MPC at c=3)");
  }

  // 3. Collusion tolerance knob c.
  {
    eppi::bench::ResultTable table({"c", "gates", "and-gates", "and-depth"});
    for (const std::size_t c : {2u, 3u, 5u, 9u, 17u}) {
      const auto stats = count_below_stats(c, 1024, 16);
      table.add_row({std::to_string(c), std::to_string(stats.total_gates()),
                     std::to_string(stats.and_gates),
                     std::to_string(stats.and_depth)});
    }
    table.print("Ablation 3: collusion tolerance c vs CountBelow size");
    std::cout << "Raising c buys collusion tolerance at linear circuit-size "
                 "cost — the\ntrade-off behind the paper's c << m design "
                 "point.\n";
  }

  // 4. λ-coin resolution.
  {
    eppi::bench::ResultTable table({"coin-bits", "gates", "and-gates"});
    for (const unsigned bits : {4u, 8u, 16u, 24u}) {
      const auto stats = mix_reveal_stats(3, 1024, 16, bits);
      table.add_row({std::to_string(bits),
                     std::to_string(stats.total_gates()),
                     std::to_string(stats.and_gates)});
    }
    table.print("Ablation 4: lambda-coin resolution vs MixAndReveal size");
    std::cout << "coin_bits bounds the mixing-probability quantization "
                 "error at 2^-bits;\n8-16 bits is ample for any practical "
                 "lambda.\n";
  }
  // 5. Circuit-optimizer effect on the generated circuits.
  {
    eppi::bench::ResultTable table(
        {"circuit", "gates", "optimized", "and", "and-opt"});
    const auto report = [&table](const char* name,
                                 const eppi::mpc::Circuit& circuit) {
      const auto optimized = eppi::mpc::optimize_circuit(circuit);
      table.add_row({name, std::to_string(circuit.stats().total_gates()),
                     std::to_string(optimized.circuit.stats().total_gates()),
                     std::to_string(circuit.stats().and_gates),
                     std::to_string(optimized.circuit.stats().and_gates)});
    };
    {
      eppi::mpc::CountBelowSpec spec;
      spec.c = 3;
      spec.q = 1024;
      spec.thresholds = std::vector<std::uint64_t>(16, 100);
      spec.xi_ranks = std::vector<std::uint64_t>(16, 3);
      report("count-below", eppi::mpc::build_count_below_circuit(spec));
    }
    {
      eppi::mpc::MixRevealSpec spec;
      spec.c = 3;
      spec.q = 1024;
      spec.thresholds = std::vector<std::uint64_t>(16, 100);
      spec.lambda = 0.25;
      spec.coin_bits = 8;
      report("mix-reveal", eppi::mpc::build_mix_reveal_circuit(spec));
    }
    {
      eppi::mpc::PureMpcSpec spec;
      spec.m = 64;
      spec.thresholds = std::vector<std::uint64_t>(16, 32);
      spec.coin_bits = 8;
      report("pure-mpc", eppi::mpc::build_pure_mpc_circuit(spec));
    }
    table.print("Ablation 5: circuit optimizer (DCE + CSE + NOT-collapse)");
  }

  // 6. Protocol model: Yao garbled circuits (constant rounds, tables up
  //    front) vs GMW (depth rounds, per-AND openings) — the Fairplay [15]
  //    vs FairplayMP/GMW trade the paper's MPC lineage spans. Two-party
  //    CountBelow instances of growing depth.
  {
    eppi::bench::ResultTable table({"identities", "and-depth", "gmw-rounds",
                                    "yao-rounds", "gmw-open-bits",
                                    "yao-table-bytes"});
    for (const std::size_t n : {4u, 16u, 64u}) {
      eppi::mpc::CountBelowSpec spec;
      spec.c = 2;
      spec.q = 1024;
      spec.thresholds = std::vector<std::uint64_t>(n, 512);
      const auto circuit = eppi::mpc::build_count_below_circuit(spec);
      const auto& stats = circuit.stats();
      table.add_row({std::to_string(n), std::to_string(stats.and_depth),
                     std::to_string(eppi::mpc::gmw_round_count(circuit)),
                     "3",
                     std::to_string(2 * stats.and_gates),
                     std::to_string(eppi::mpc::garbled_table_bytes(circuit))});
    }
    table.print(
        "Ablation 6: Yao (garbled) vs GMW round/communication structure");
    std::cout << "Yao ships 32 bytes per AND once and finishes in constant "
                 "rounds; GMW opens\n2 bits per AND but pays a round per "
                 "layer -- latency-bound networks favor Yao,\nbandwidth-"
                 "bound ones favor GMW.\n";
  }
  return 0;
}
