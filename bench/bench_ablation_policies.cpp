// Policy ablation: the exact-tail policy (extension) vs the paper's three.
//
// The Chernoff policy buys its γ guarantee with a provably sufficient — but
// conservative — β. The exact policy bisects the true binomial tail
// (core/guarantee.h) for the minimal β meeting the same γ, returning the
// bound's slack to the searchers as lower overhead. This bench quantifies
// the saving across the Fig. 5 operating range, with the achieved success
// probability shown analytically for every policy.
#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "core/advisor.h"
#include "core/beta_policy.h"
#include "core/guarantee.h"

int main() {
  constexpr std::size_t kM = 10000;
  constexpr double kEps = 0.5;
  constexpr double kGamma = 0.9;

  eppi::bench::ResultTable table(
      {"frequency", "chernoff-beta", "exact-beta", "chernoff-overhead",
       "exact-overhead", "saving", "exact-success"});
  for (const std::size_t freq : {10u, 50u, 100u, 200u, 500u, 1000u}) {
    const double sigma = static_cast<double>(freq) / kM;
    const auto chernoff = eppi::core::BetaPolicy::chernoff(kGamma);
    const auto exact = eppi::core::BetaPolicy::exact(kGamma);
    const double bc = eppi::core::beta_clamped(chernoff, sigma, kEps, kM);
    const double be = eppi::core::beta_clamped(exact, sigma, kEps, kM);
    const double oc =
        eppi::core::expected_overhead(chernoff, sigma, kEps, kM);
    const double oe = eppi::core::expected_overhead(exact, sigma, kEps, kM);
    const double success =
        eppi::core::policy_success_probability(exact, kM, freq, kEps);
    table.add_row({std::to_string(freq), eppi::bench::fmt(bc, 5),
                   eppi::bench::fmt(be, 5), eppi::bench::fmt(oc, 1),
                   eppi::bench::fmt(oe, 1),
                   eppi::bench::fmt(100.0 * (oc - oe) / oc, 1) + "%",
                   eppi::bench::fmt(success)});
  }
  table.print(
      "Policy ablation: Chernoff bound vs exact binomial tail "
      "(m=10000, eps=0.5, gamma=0.9)");
  std::cout << "\nBoth policies guarantee success >= gamma; the exact policy "
               "sheds the\nChernoff slack — fewer noise providers per query "
               "at the same privacy.\n";
  return 0;
}
