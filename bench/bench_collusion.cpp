// Colluding-provider attack analysis (the tech-report experiment the paper
// defers to from §II-B).
//
// Two questions, answered empirically:
//
//  1. Published-index collusion: does a coalition of providers sharing
//     their true local vectors deflate other providers' privacy? Reported
//     as attacker confidence against non-coalition providers vs. coalition
//     size — flat at ~1 − ε, because providers flip publication coins
//     independently.
//
//  2. Construction collusion: can fewer than c colluding coordinators learn
//     identity frequencies from their SecSumShare views? Reported as the
//     chi-squared uniformity statistic of the pooled partial sums — the
//     partial sums stay uniform over Z_q until all c views are pooled.
#include <cstddef>
#include <vector>

#include "attack/collusion.h"
#include "attack/collusion_attack.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"
#include "net/cluster.h"
#include "secret/sec_sum_share.h"

int main() {
  // --- 1. Published-index collusion ----------------------------------------
  {
    constexpr std::size_t kM = 2000;
    constexpr std::size_t kFreq = 40;
    constexpr double kEps = 0.7;
    eppi::Rng rng(2024);
    const auto net = eppi::dataset::make_network_with_frequencies(
        kM, std::vector<std::uint64_t>{kFreq}, rng);
    const double sigma = static_cast<double>(kFreq) / kM;
    const std::vector<double> betas{eppi::core::beta_clamped(
        eppi::core::BetaPolicy::chernoff(0.9), sigma, kEps, kM)};
    const auto published =
        eppi::core::publish_matrix(net.membership, betas, rng);

    const std::vector<std::size_t> sizes{0, 50, 200, 500, 1000, 1500};
    const auto curve = eppi::attack::collusion_confidence_curve(
        net.membership, published, 0, sizes, 20, rng);

    eppi::bench::ResultTable table(
        {"coalition-size", "outside-confidence", "bound(1-eps)"});
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      table.add_row({std::to_string(sizes[k]), eppi::bench::fmt(curve[k]),
                     eppi::bench::fmt(1.0 - kEps)});
    }
    table.print(
        "Collusion vs published index (m=2000, eps=0.7): confidence against "
        "outsiders");
    std::cout << "Independent publication coins keep the outside "
                 "false-positive rate at eps:\ncolluders learn their own "
                 "bits but deflate nobody else's noise.\n";
  }

  // --- 2. Construction collusion (SecSumShare secrecy) ----------------------
  {
    constexpr std::size_t kM = 12;
    constexpr std::size_t kC = 4;
    constexpr std::size_t kN = 2048;
    std::vector<std::vector<std::uint8_t>> inputs(
        kM, std::vector<std::uint8_t>(kN, 1));
    eppi::net::Cluster cluster(kM, 5);
    std::vector<std::vector<std::uint64_t>> views(kC);
    const eppi::secret::SecSumShareParams params{kC, 0, kN};
    cluster.run([&](eppi::net::PartyContext& ctx) {
      const auto result = eppi::secret::run_sec_sum_share_party(
          ctx, params, inputs[ctx.id()]);
      // Colluding coordinators pool their views: a deliberate opening.
      if (ctx.id() < kC) {
        views[ctx.id()] = eppi::secret::reveal_shares(*result);
      }
    });
    const auto ring = eppi::secret::resolve_ring(params, kM);
    const eppi::attack::CollusionObserver observer(views, ring.q());

    eppi::bench::ResultTable table(
        {"colluding-coordinators", "chi2-vs-uniform", "verdict"});
    std::vector<std::size_t> subset;
    for (std::size_t size = 1; size <= kC; ++size) {
      subset.push_back(size - 1);
      const double chi2 = observer.uniformity_chi2(subset, 8);
      // With 8 buckets, chi2 >> 8 means the distribution collapsed (the
      // secret is visible); uniform noise stays near the dof.
      const bool leaked = chi2 > 100.0;
      table.add_row({std::to_string(size), eppi::bench::fmt(chi2, 1),
                     leaked ? "SUM RECOVERED" : "uniform (nothing learned)"});
    }
    table.print(
        "Collusion vs SecSumShare (c=4): pooled partial-sum uniformity");
    std::cout << "Theorem 4.1: any c-1 of the c coordinator views are "
                 "uniform over Z_q;\nonly pooling all c recovers the "
                 "frequency (every input here is the constant 12,\nso the "
                 "full pool collapses to a single bucket).\n";
  }
  return 0;
}
