// Figure 4a: ε-PPI (non-grouping) vs. existing grouping PPIs, success ratio
// as identity frequency varies.
//
// Paper setup (§V-A1): m = 10,000 providers, expected false positive rate
// ε = 0.8, identity frequency swept over {34, 67, 100, 134, 176, 234, 446};
// 20 uniform samples averaged. Systems: non-grouping with inc-exp Δ = 0.01,
// non-grouping with Chernoff γ = 0.9, and grouping PPIs with 400 / 1000 /
// 2500 groups.
//
// Expected shape: both non-grouping variants near 1.0 and stable; grouping
// unstable (fluctuating between 0 and 1 across frequencies, worse for more
// groups / smaller group size).
#include <cstddef>
#include <vector>

#include "baseline/grouping_ppi.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "dataset/synthetic.h"

namespace {

using eppi::core::BetaPolicy;

// Non-grouping: direct simulation of randomized publication.
double nongrouping_success(const BetaPolicy& policy, std::size_t m,
                           std::size_t freq, double eps, int samples,
                           eppi::Rng& rng) {
  const double sigma = static_cast<double>(freq) / static_cast<double>(m);
  const double beta = eppi::core::beta_clamped(policy, sigma, eps, m);
  int successes = 0;
  for (int s = 0; s < samples; ++s) {
    std::size_t false_pos = 0;
    for (std::size_t i = 0; i < m - freq; ++i) {
      false_pos += rng.bernoulli(beta) ? 1 : 0;
    }
    const double fp = static_cast<double>(false_pos) /
                      static_cast<double>(false_pos + freq);
    if (fp >= eps) ++successes;
  }
  return static_cast<double>(successes) / samples;
}

// Grouping: identities with the given frequency are planted into a fresh
// network; the provider-level view decides the achieved false positive
// rate.
double grouping_success(std::size_t m, std::size_t n_groups,
                        std::size_t freq, double eps, int samples,
                        eppi::Rng& rng) {
  // All sampled identities share one network + one group assignment per
  // batch (matching the paper's uniform sampling over one dataset).
  const std::vector<std::uint64_t> freqs(samples, freq);
  const auto net =
      eppi::dataset::make_network_with_frequencies(m, freqs, rng);
  const eppi::baseline::GroupingPpi ppi(net.membership, n_groups, rng);
  int successes = 0;
  for (int s = 0; s < samples; ++s) {
    const auto apparent =
        ppi.apparent_frequency(static_cast<eppi::core::IdentityId>(s));
    const double fp =
        static_cast<double>(apparent - freq) / static_cast<double>(apparent);
    if (fp >= eps) ++successes;
  }
  return static_cast<double>(successes) / samples;
}

}  // namespace

int main() {
  constexpr std::size_t kM = 10000;
  constexpr double kEps = 0.8;
  constexpr int kSamples = 20;
  const std::vector<std::size_t> frequencies{34, 67, 100, 134, 176, 234, 446};

  eppi::Rng rng(41);
  eppi::bench::ResultTable table({"frequency", "ng-incexp(0.01)",
                                  "ng-chernoff(0.9)", "grouping-400",
                                  "grouping-1000", "grouping-2000",
                                  "grouping-2500"});
  for (const std::size_t freq : frequencies) {
    table.add_row(
        {std::to_string(freq),
         eppi::bench::fmt(nongrouping_success(BetaPolicy::inc_exp(0.01), kM,
                                              freq, kEps, kSamples, rng)),
         eppi::bench::fmt(nongrouping_success(BetaPolicy::chernoff(0.9), kM,
                                              freq, kEps, kSamples, rng)),
         eppi::bench::fmt(
             grouping_success(kM, 400, freq, kEps, kSamples, rng)),
         eppi::bench::fmt(
             grouping_success(kM, 1000, freq, kEps, kSamples, rng)),
         eppi::bench::fmt(
             grouping_success(kM, 2000, freq, kEps, kSamples, rng)),
         eppi::bench::fmt(
             grouping_success(kM, 2500, freq, kEps, kSamples, rng))});
  }
  table.print(
      "Fig 4a: success ratio vs identity frequency (m=10000, eps=0.8)");
  std::cout << "\nPaper shape: non-grouping ~1.0 and stable; grouping "
               "fluctuates/unstable,\nmore groups (smaller groups) -> lower "
               "and noisier success ratio.\n";
  return 0;
}
