// Figure 4b: ε-PPI (non-grouping) vs. grouping PPIs, success ratio as the
// privacy degree ε varies.
//
// Paper setup (§V-A1): m = 10,000 providers, ε swept over 0.1..0.9, same
// five systems as Fig. 4a, identities drawn from the dataset's skewed
// frequency profile.
//
// Expected shape: non-grouping stays near 1.0 across ε; grouping collapses
// toward 0 as ε grows (a fixed random group assignment cannot deliver high
// per-owner false-positive rates).
#include <cstddef>
#include <vector>

#include "baseline/grouping_ppi.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "dataset/synthetic.h"

namespace {

using eppi::core::BetaPolicy;

struct Workload {
  eppi::dataset::Network network;
  std::vector<std::uint64_t> freqs;
};

Workload make_workload(std::size_t m, std::size_t n, eppi::Rng& rng) {
  Workload w;
  w.freqs.resize(n);
  // Skewed profile resembling the document dataset: most identities rare,
  // some spanning a few hundred providers.
  for (auto& f : w.freqs) {
    const double u = rng.next_double();
    f = 1 + static_cast<std::uint64_t>(u * u * 500.0);
  }
  w.network = eppi::dataset::make_network_with_frequencies(m, w.freqs, rng);
  return w;
}

double nongrouping_success(const BetaPolicy& policy, const Workload& w,
                           double eps, eppi::Rng& rng) {
  const std::size_t m = w.network.providers();
  int successes = 0;
  for (const std::uint64_t freq : w.freqs) {
    const double sigma =
        static_cast<double>(freq) / static_cast<double>(m);
    const double beta = eppi::core::beta_clamped(policy, sigma, eps, m);
    std::size_t false_pos = 0;
    for (std::size_t i = 0; i < m - freq; ++i) {
      false_pos += rng.bernoulli(beta) ? 1 : 0;
    }
    const double fp = static_cast<double>(false_pos) /
                      static_cast<double>(false_pos + freq);
    if (fp >= eps) ++successes;
  }
  return static_cast<double>(successes) / static_cast<double>(w.freqs.size());
}

double grouping_success(const eppi::baseline::GroupingPpi& ppi,
                        const Workload& w, double eps) {
  int successes = 0;
  for (std::size_t j = 0; j < w.freqs.size(); ++j) {
    const auto apparent =
        ppi.apparent_frequency(static_cast<eppi::core::IdentityId>(j));
    const double fp = static_cast<double>(apparent - w.freqs[j]) /
                      static_cast<double>(apparent);
    if (fp >= eps) ++successes;
  }
  return static_cast<double>(successes) / static_cast<double>(w.freqs.size());
}

}  // namespace

int main() {
  constexpr std::size_t kM = 10000;
  constexpr std::size_t kN = 100;
  eppi::Rng rng(42);
  const Workload w = make_workload(kM, kN, rng);
  const eppi::baseline::GroupingPpi g400(w.network.membership, 400, rng);
  const eppi::baseline::GroupingPpi g1000(w.network.membership, 1000, rng);
  const eppi::baseline::GroupingPpi g2500(w.network.membership, 2500, rng);

  eppi::bench::ResultTable table({"epsilon", "ng-incexp(0.01)",
                                  "ng-chernoff(0.9)", "grouping-400",
                                  "grouping-1000", "grouping-2500"});
  for (double eps = 0.1; eps < 0.95; eps += 0.2) {
    table.add_row(
        {eppi::bench::fmt(eps, 1),
         eppi::bench::fmt(
             nongrouping_success(BetaPolicy::inc_exp(0.01), w, eps, rng)),
         eppi::bench::fmt(
             nongrouping_success(BetaPolicy::chernoff(0.9), w, eps, rng)),
         eppi::bench::fmt(grouping_success(g400, w, eps)),
         eppi::bench::fmt(grouping_success(g1000, w, eps)),
         eppi::bench::fmt(grouping_success(g2500, w, eps))});
  }
  table.print("Fig 4b: success ratio vs epsilon (m=10000)");
  std::cout << "\nPaper shape: non-grouping ~1.0 across eps; grouping "
               "success ratio quickly\ndegrades toward 0 as eps grows.\n";
  return 0;
}
