// Figure 5a: quality of privacy preservation vs. identity frequency.
//
// Paper setup (§V-A2): m = 10,000 providers, ε = 0.5, identity frequency
// swept from near 0 to ~500; policies basic, incremented-expectation
// (Δ = 0.02) and Chernoff (γ = 0.9). Reported metric: success rate
// p_p = Pr[fp_j >= ε_j] estimated over repeated randomized publications.
//
// Expected shape: Chernoff ~1.0 everywhere; basic ~0.5; inc-exp close to 1
// at low frequency but degrading as frequency rises (the fixed Δ loses
// relative weight as β_b grows with σ).
#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "core/guarantee.h"

namespace {

using eppi::core::BetaPolicy;

// Pr[fp >= eps] when m - freq negative providers each flip with probability
// beta_raw (clamped), estimated over `trials` publications.
double success_ratio(const BetaPolicy& policy, std::size_t m,
                     std::size_t freq, double eps, int trials,
                     eppi::Rng& rng) {
  const double sigma = static_cast<double>(freq) / static_cast<double>(m);
  const double beta =
      eppi::core::beta_clamped(policy, sigma, eps, m);
  const std::size_t negatives = m - freq;
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    std::size_t false_pos = 0;
    for (std::size_t i = 0; i < negatives; ++i) {
      false_pos += rng.bernoulli(beta) ? 1 : 0;
    }
    const double fp = static_cast<double>(false_pos) /
                      static_cast<double>(false_pos + freq);
    if (fp >= eps) ++successes;
  }
  return static_cast<double>(successes) / trials;
}

}  // namespace

int main() {
  constexpr std::size_t kM = 10000;
  constexpr double kEps = 0.5;
  constexpr int kTrials = 60;
  const std::vector<std::size_t> frequencies{10,  50,  100, 150, 200,
                                             300, 400, 500};
  const BetaPolicy basic = BetaPolicy::basic();
  const BetaPolicy inc_exp = BetaPolicy::inc_exp(0.02);
  const BetaPolicy chernoff = BetaPolicy::chernoff(0.9);

  eppi::Rng rng(51);
  eppi::bench::ResultTable table({"frequency", "basic", "inc-exp(0.02)",
                                  "chernoff(0.9)", "chernoff-exact"});
  for (const std::size_t freq : frequencies) {
    table.add_row(
        {std::to_string(freq),
         eppi::bench::fmt(success_ratio(basic, kM, freq, kEps, kTrials, rng)),
         eppi::bench::fmt(
             success_ratio(inc_exp, kM, freq, kEps, kTrials, rng)),
         eppi::bench::fmt(
             success_ratio(chernoff, kM, freq, kEps, kTrials, rng)),
         // Closed-form binomial tail (core/guarantee.h): the analytic value
         // the simulated column estimates.
         eppi::bench::fmt(eppi::core::policy_success_probability(
             chernoff, kM, freq, kEps))});
  }
  table.print(
      "Fig 5a: success rate p_p vs identity frequency (m=10000, eps=0.5)");
  std::cout << "\nPaper shape: chernoff ~1.0 across the sweep; basic ~0.5;\n"
               "inc-exp high at low frequency, degrading as frequency "
               "grows.\n";
  return 0;
}
