// Figure 5b: quality of privacy preservation vs. number of providers.
//
// Paper setup (§V-A2): relative identity frequency fixed at 0.1, ε = 0.5,
// provider count swept over 8..8192; same three β policies as Fig. 5a.
//
// Expected shape: Chernoff >= γ everywhere; basic ~0.5; inc-exp poor at
// small m (too few Bernoulli trials for the fixed Δ bump to matter) and
// approaching 1 as m grows.
#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "core/guarantee.h"

namespace {

using eppi::core::BetaPolicy;

double success_ratio(const BetaPolicy& policy, std::size_t m,
                     std::size_t freq, double eps, int trials,
                     eppi::Rng& rng) {
  const double sigma = static_cast<double>(freq) / static_cast<double>(m);
  const double beta = eppi::core::beta_clamped(policy, sigma, eps, m);
  const std::size_t negatives = m - freq;
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    std::size_t false_pos = 0;
    for (std::size_t i = 0; i < negatives; ++i) {
      false_pos += rng.bernoulli(beta) ? 1 : 0;
    }
    const double fp = static_cast<double>(false_pos) /
                      static_cast<double>(false_pos + freq);
    if (fp >= eps) ++successes;
  }
  return static_cast<double>(successes) / trials;
}

}  // namespace

int main() {
  constexpr double kEps = 0.5;
  constexpr double kRelativeFreq = 0.1;
  constexpr int kTrials = 300;
  const std::vector<std::size_t> provider_counts{8,   32,   128,
                                                 512, 2048, 8192};
  const BetaPolicy basic = BetaPolicy::basic();
  const BetaPolicy inc_exp = BetaPolicy::inc_exp(0.02);
  const BetaPolicy chernoff = BetaPolicy::chernoff(0.9);

  eppi::Rng rng(52);
  eppi::bench::ResultTable table({"providers", "basic", "inc-exp(0.02)",
                                  "chernoff(0.9)", "chernoff-exact"});
  for (const std::size_t m : provider_counts) {
    const auto freq = static_cast<std::size_t>(
        kRelativeFreq * static_cast<double>(m));
    const std::size_t f = freq == 0 ? 1 : freq;
    table.add_row(
        {std::to_string(m),
         eppi::bench::fmt(success_ratio(basic, m, f, kEps, kTrials, rng)),
         eppi::bench::fmt(success_ratio(inc_exp, m, f, kEps, kTrials, rng)),
         eppi::bench::fmt(
             success_ratio(chernoff, m, f, kEps, kTrials, rng)),
         eppi::bench::fmt(eppi::core::policy_success_probability(
             chernoff, m, f, kEps))});
  }
  table.print(
      "Fig 5b: success rate p_p vs provider count (freq=0.1m, eps=0.5)");
  std::cout << "\nPaper shape: chernoff >= 0.9 everywhere; basic ~0.5;\n"
               "inc-exp unsatisfactory for few providers, approaching 1 as "
               "m grows.\n";
  return 0;
}
