// Figure 6a: construction execution time vs. number of parties, single
// identity — ε-PPI (MPC-reduced) vs. pure MPC.
//
// Paper setup (§V-B): 3..9 Emulab machines, c = 3, FairplayMP for the
// generic-MPC stage, single identity. The measured stage matches the
// paper's prototype: ε-PPI = SecSumShare over all m providers feeding a
// 3-party CountBelow MPC; pure MPC = the same common-count functionality
// computed by one generic MPC over all m providers' raw bits.
//
// We execute both protocols for real on the threaded in-memory cluster and
// report (a) the measured engine wall time and (b) the modeled Emulab/
// FairplayMP-like time derived from the platform-independent counts
// (secure gates scaled by MPC party count, rounds, bytes — net/cost_model.h).
//
// Expected shape: pure MPC grows superlinearly with the party count (its
// circuit *and* per-gate cost grow with m); ε-PPI grows slowly (its MPC is
// pinned to c = 3 parties; only SecSumShare touches all m).
#include <chrono>
#include <cstddef>
#include <vector>

#include "baseline/pure_mpc_runner.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "dataset/synthetic.h"
#include "mpc/eppi_circuits.h"
#include "mpc/gmw.h"
#include "net/cluster.h"
#include "net/cost_model.h"
#include "secret/sec_sum_share.h"

namespace {

struct EppiStageResult {
  eppi::mpc::CircuitStats stats;
  eppi::net::CostSnapshot cost;
  double wall_seconds = 0.0;
};

// The paper-faithful ε-PPI construction core: SecSumShare over m providers,
// then CountBelow by GMW among the c coordinators.
EppiStageResult run_eppi_stage(const eppi::BitMatrix& truth,
                               const std::vector<std::uint64_t>& thresholds,
                               std::size_t c, std::uint64_t seed) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  const eppi::secret::SecSumShareParams ss_params{c, 0, n};
  const auto ring = eppi::secret::resolve_ring(ss_params, m);

  eppi::mpc::CountBelowSpec spec;
  spec.c = c;
  spec.q = ring.q();
  spec.thresholds = thresholds;
  const auto circuit = eppi::mpc::build_count_below_circuit(spec);

  eppi::net::Cluster cluster(m, seed);
  const auto start = std::chrono::steady_clock::now();
  cluster.run([&](eppi::net::PartyContext& ctx) {
    std::vector<std::uint8_t> row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = truth.get(ctx.id(), j);
    const auto shares =
        eppi::secret::run_sec_sum_share_party(ctx, ss_params, row);
    if (ctx.id() >= c) return;
    const auto bits = eppi::mpc::share_input_bits(*shares, ring.bit_width());
    eppi::mpc::GmwSession session;
    for (std::size_t i = 0; i < c; ++i) {
      session.parties.push_back(static_cast<eppi::net::PartyId>(i));
    }
    (void)eppi::mpc::run_gmw_party(ctx, session, circuit, bits);
  });
  const auto stop = std::chrono::steady_clock::now();

  EppiStageResult result;
  result.stats = circuit.stats();
  result.cost = cluster.meter().snapshot();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main() {
  constexpr double kEps = 0.5;
  constexpr std::size_t kC = 3;
  const eppi::net::CostModel model;
  eppi::bench::ResultTable table(
      {"parties", "eppi-modeled-s", "pure-modeled-s", "eppi-measured-s",
       "pure-measured-s", "eppi-gates", "pure-gates"});

  for (std::size_t m = 3; m <= 9; ++m) {
    eppi::Rng rng(600 + m);
    const auto net = eppi::dataset::make_network_with_frequencies(
        m, std::vector<std::uint64_t>{m / 2 + 1}, rng);
    const std::vector<double> eps{kEps};
    const auto policy = eppi::core::BetaPolicy::chernoff(0.9);
    const auto thresholds = eppi::core::common_thresholds(policy, eps, m);

    const auto eppi_run = run_eppi_stage(net.membership, thresholds, kC, m);
    const double eppi_modeled = model.modeled_seconds(
        eppi_run.stats.and_gates,
        eppi_run.stats.xor_gates + eppi_run.stats.not_gates, eppi_run.cost,
        m, kC);

    eppi::baseline::PureMpcRunOptions pure_options;
    pure_options.include_mixing = false;
    pure_options.seed = m;
    const auto pure_run =
        eppi::baseline::run_pure_mpc(net.membership, thresholds, pure_options);
    const double pure_modeled = model.modeled_seconds(
        pure_run.stats.and_gates,
        pure_run.stats.xor_gates + pure_run.stats.not_gates, pure_run.cost,
        m, m);

    table.add_row({std::to_string(m), eppi::bench::fmt(eppi_modeled, 2),
                   eppi::bench::fmt(pure_modeled, 2),
                   eppi::bench::fmt(eppi_run.wall_seconds, 4),
                   eppi::bench::fmt(pure_run.wall_seconds, 4),
                   std::to_string(eppi_run.stats.total_gates()),
                   std::to_string(pure_run.stats.total_gates())});
  }
  table.print(
      "Fig 6a: construction time vs parties (single identity, c=3)");
  std::cout << "\nPaper shape: pure MPC time grows superlinearly with "
               "parties; e-PPI grows\nslowly (MPC fixed to c=3 parties; "
               "SecSumShare is constant-round).\n";
  return 0;
}
