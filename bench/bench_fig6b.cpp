// Figure 6b: MPC circuit size vs. number of parties — ε-PPI vs. pure MPC.
//
// Paper setup (§V-B): single identity, party count up to ~61; circuit size
// (size of the compiled MPC program) is the scalability metric because it
// determines execution time in real runs. We compile both circuits and
// count gates — no execution, exactly like the paper's methodology for this
// figure.
//
// Expected shape: pure-MPC circuit size grows linearly with the party
// count; ε-PPI's stays flat (c = 3 parties, only the share ring width grows
// logarithmically with m).
#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "core/beta_policy.h"
#include "mpc/eppi_circuits.h"
#include "secret/mod_ring.h"

int main() {
  constexpr double kEps = 0.5;
  constexpr std::size_t kC = 3;
  const std::vector<std::size_t> party_counts{3, 11, 21, 31, 41, 51, 61};

  eppi::bench::ResultTable table({"parties", "eppi-gates", "eppi-and",
                                  "pure-gates", "pure-and", "eppi-depth",
                                  "pure-depth"});
  for (const std::size_t m : party_counts) {
    const auto policy = eppi::core::BetaPolicy::chernoff(0.9);
    const std::vector<double> eps{kEps};
    const auto thresholds = eppi::core::common_thresholds(policy, eps, m);
    const auto ring = eppi::secret::ModRing::power_of_two_for(m);

    eppi::mpc::CountBelowSpec cb_spec;
    cb_spec.c = kC;
    cb_spec.q = ring.q();
    cb_spec.thresholds.assign(thresholds.begin(), thresholds.end());
    cb_spec.xi_ranks = {1};
    const auto cb_stats =
        eppi::mpc::build_count_below_circuit(cb_spec).stats();

    eppi::mpc::MixRevealSpec mr_spec;
    mr_spec.c = kC;
    mr_spec.q = ring.q();
    mr_spec.thresholds = cb_spec.thresholds;
    mr_spec.lambda = 0.1;
    mr_spec.coin_bits = 8;
    const auto mr_stats =
        eppi::mpc::build_mix_reveal_circuit(mr_spec).stats();

    eppi::mpc::PureMpcSpec pure_spec;
    pure_spec.m = m;
    pure_spec.thresholds = cb_spec.thresholds;
    pure_spec.lambda = 0.1;
    pure_spec.coin_bits = 8;
    const auto pure_stats =
        eppi::mpc::build_pure_mpc_circuit(pure_spec).stats();

    table.add_row(
        {std::to_string(m),
         std::to_string(cb_stats.total_gates() + mr_stats.total_gates()),
         std::to_string(cb_stats.and_gates + mr_stats.and_gates),
         std::to_string(pure_stats.total_gates()),
         std::to_string(pure_stats.and_gates),
         std::to_string(cb_stats.and_depth + mr_stats.and_depth),
         std::to_string(pure_stats.and_depth)});
  }
  table.print("Fig 6b: circuit size vs parties (single identity, c=3)");
  std::cout << "\nPaper shape: pure-MPC circuit size grows linearly with "
               "parties; e-PPI's is\nnear-flat (only the frequency ring "
               "width grows with log m).\n";
  return 0;
}
