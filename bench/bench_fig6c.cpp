// Figure 6c: construction time vs. number of identities in a three-party
// network — ε-PPI vs. pure MPC.
//
// Paper setup (§V-B): m = 3 parties, identity count scaled 1..1000. The
// measured stages match the paper's prototype (ε-PPI = SecSumShare +
// c-party CountBelow; pure = the m-party common-count MPC). Both grow with
// the identity count, but ε-PPI grows at a much slower rate: its
// per-identity MPC work is a share-sum + comparison over log(m)-bit values,
// evaluated among c parties whose per-gate cost never grows with m, and
// SecSumShare handles all identities in two rounds regardless of count.
#include <chrono>
#include <cstddef>
#include <vector>

#include "baseline/pure_mpc_runner.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "dataset/synthetic.h"
#include "mpc/eppi_circuits.h"
#include "mpc/gmw.h"
#include "net/cluster.h"
#include "net/cost_model.h"
#include "secret/sec_sum_share.h"

namespace {

struct EppiStageResult {
  eppi::mpc::CircuitStats stats;
  eppi::net::CostSnapshot cost;
  double wall_seconds = 0.0;
};

EppiStageResult run_eppi_stage(const eppi::BitMatrix& truth,
                               const std::vector<std::uint64_t>& thresholds,
                               std::size_t c, std::uint64_t seed) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  const eppi::secret::SecSumShareParams ss_params{c, 0, n};
  const auto ring = eppi::secret::resolve_ring(ss_params, m);

  eppi::mpc::CountBelowSpec spec;
  spec.c = c;
  spec.q = ring.q();
  spec.thresholds = thresholds;
  const auto circuit = eppi::mpc::build_count_below_circuit(spec);

  eppi::net::Cluster cluster(m, seed);
  const auto start = std::chrono::steady_clock::now();
  cluster.run([&](eppi::net::PartyContext& ctx) {
    std::vector<std::uint8_t> row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = truth.get(ctx.id(), j);
    const auto shares =
        eppi::secret::run_sec_sum_share_party(ctx, ss_params, row);
    if (ctx.id() >= c) return;
    const auto bits = eppi::mpc::share_input_bits(*shares, ring.bit_width());
    eppi::mpc::GmwSession session;
    for (std::size_t i = 0; i < c; ++i) {
      session.parties.push_back(static_cast<eppi::net::PartyId>(i));
    }
    (void)eppi::mpc::run_gmw_party(ctx, session, circuit, bits);
  });
  const auto stop = std::chrono::steady_clock::now();

  EppiStageResult result;
  result.stats = circuit.stats();
  result.cost = cluster.meter().snapshot();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main() {
  constexpr std::size_t kM = 3;
  const eppi::net::CostModel model;
  const std::vector<std::size_t> identity_counts{1, 10, 100, 1000};

  eppi::bench::ResultTable table(
      {"identities", "eppi-modeled-s", "pure-modeled-s", "eppi-measured-s",
       "pure-measured-s", "eppi-gates", "pure-gates"});
  for (const std::size_t n : identity_counts) {
    eppi::Rng rng(660 + n);
    std::vector<std::uint64_t> freqs(n);
    for (auto& f : freqs) f = rng.next_below(kM + 1);
    const auto net =
        eppi::dataset::make_network_with_frequencies(kM, freqs, rng);
    const auto eps = eppi::dataset::random_epsilons(n, rng, 0.3, 0.7);
    const auto policy = eppi::core::BetaPolicy::chernoff(0.9);
    const auto thresholds = eppi::core::common_thresholds(policy, eps, kM);

    const auto eppi_run = run_eppi_stage(net.membership, thresholds, kM, n + 1);
    const double eppi_modeled = model.modeled_seconds(
        eppi_run.stats.and_gates,
        eppi_run.stats.xor_gates + eppi_run.stats.not_gates, eppi_run.cost,
        kM, kM);

    // Pure MPC carries the whole per-identity flow (count + mixing +
    // selective reveal) inside the m-party MPC — the paper's baseline that
    // does not separate secure from non-secure computation. ε-PPI's MPC is
    // the minimized CountBelow; its mixing runs downstream of the opened
    // aggregate (the paper's prototype releases β there).
    eppi::baseline::PureMpcRunOptions pure_options;
    pure_options.include_mixing = true;
    pure_options.lambda = 0.1;
    pure_options.coin_bits = 8;
    pure_options.seed = n + 1;
    const auto pure_run =
        eppi::baseline::run_pure_mpc(net.membership, thresholds, pure_options);
    const double pure_modeled = model.modeled_seconds(
        pure_run.stats.and_gates,
        pure_run.stats.xor_gates + pure_run.stats.not_gates, pure_run.cost,
        kM, kM);

    table.add_row({std::to_string(n), eppi::bench::fmt(eppi_modeled, 2),
                   eppi::bench::fmt(pure_modeled, 2),
                   eppi::bench::fmt(eppi_run.wall_seconds, 4),
                   eppi::bench::fmt(pure_run.wall_seconds, 4),
                   std::to_string(eppi_run.stats.total_gates()),
                   std::to_string(pure_run.stats.total_gates())});
  }
  table.print("Fig 6c: construction time vs identity count (3 parties)");
  std::cout << "\nPaper shape: both grow with identity count; e-PPI grows "
               "at a slower rate\nthan pure MPC (share-sum comparisons vs "
               "whole-flow inside the MPC).\n";
  return 0;
}
