// Microbenchmarks (google-benchmark) for the primitives on the construction
// and query hot paths: secret sharing, randomized publication, circuit
// compilation, plain/secure evaluation, SecSumShare, and PPI queries.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/beta_policy.h"
#include "core/constructor.h"
#include "core/posting_index.h"
#include "core/ppi_index.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"
#include "mpc/circuit_builder.h"
#include "mpc/eppi_circuits.h"
#include "mpc/garbled.h"
#include "mpc/gmw.h"
#include "mpc/plain_eval.h"
#include "net/cluster.h"
#include "secret/additive_share.h"
#include "secret/reshare.h"
#include "secret/sec_sum_share.h"

namespace {

void BM_SplitAdditive(benchmark::State& state) {
  const eppi::secret::ModRing ring(1 << 14);
  eppi::Rng rng(1);
  const auto c = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eppi::secret::split_additive(123, c, ring, rng));
  }
}
BENCHMARK(BM_SplitAdditive)->Arg(2)->Arg(3)->Arg(8);

void BM_ReconstructAdditive(benchmark::State& state) {
  const eppi::secret::ModRing ring(1 << 14);
  eppi::Rng rng(2);
  const auto shares = eppi::secret::split_additive(123, 8, ring, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eppi::secret::reconstruct_additive(shares, ring));
  }
}
BENCHMARK(BM_ReconstructAdditive);

void BM_PublishRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eppi::Rng rng(3);
  std::vector<std::uint8_t> local(n);
  std::vector<double> betas(n, 0.3);
  for (std::size_t j = 0; j < n; ++j) local[j] = rng.bernoulli(0.1) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eppi::core::publish_row(local, betas, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_PublishRow)->Arg(1000)->Arg(100000);

void BM_BetaChernoff(benchmark::State& state) {
  double sigma = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eppi::core::beta_chernoff(sigma, 0.5, 0.9, 10000));
    sigma = sigma < 0.5 ? sigma + 1e-6 : 0.01;
  }
}
BENCHMARK(BM_BetaChernoff);

void BM_CommonThreshold(benchmark::State& state) {
  const eppi::core::BetaPolicy policy = eppi::core::BetaPolicy::chernoff(0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eppi::core::common_threshold(policy, 0.7, 10000));
  }
}
BENCHMARK(BM_CommonThreshold);

void BM_BuildCountBelowCircuit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  eppi::mpc::CountBelowSpec spec;
  spec.c = 3;
  spec.q = 1 << 14;
  spec.thresholds = std::vector<std::uint64_t>(n, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eppi::mpc::build_count_below_circuit(spec));
  }
}
BENCHMARK(BM_BuildCountBelowCircuit)->Arg(16)->Arg(256);

void BM_PlainEvalCountBelow(benchmark::State& state) {
  eppi::mpc::CountBelowSpec spec;
  spec.c = 3;
  spec.q = 1 << 10;
  spec.thresholds = std::vector<std::uint64_t>(64, 100);
  const auto circuit = eppi::mpc::build_count_below_circuit(spec);
  std::vector<bool> inputs(circuit.inputs().size(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eppi::mpc::evaluate_plain(circuit, inputs));
  }
}
BENCHMARK(BM_PlainEvalCountBelow);

void BM_GmwTwoPartyAnd64(benchmark::State& state) {
  eppi::mpc::CircuitBuilder cb;
  const auto a = cb.input_bits(0, 64);
  const auto b = cb.input_bits(1, 64);
  for (int i = 0; i < 64; ++i) cb.output(cb.And(a[i], b[i]));
  const auto circuit = cb.take();
  const std::vector<bool> inputs(64, true);
  for (auto _ : state) {
    eppi::net::Cluster cluster(2);
    cluster.run([&](eppi::net::PartyContext& ctx) {
      eppi::mpc::GmwSession session;
      session.parties = {0, 1};
      benchmark::DoNotOptimize(
          eppi::mpc::run_gmw_party(ctx, session, circuit, inputs));
    });
  }
}
BENCHMARK(BM_GmwTwoPartyAnd64);

void BM_GarbledTwoPartyAnd64(benchmark::State& state) {
  eppi::mpc::CircuitBuilder cb;
  const auto a = cb.input_bits(0, 64);
  const auto b = cb.input_bits(1, 64);
  for (int i = 0; i < 64; ++i) cb.output(cb.And(a[i], b[i]));
  const auto circuit = cb.take();
  const std::vector<bool> inputs(64, true);
  for (auto _ : state) {
    eppi::net::Cluster cluster(2);
    cluster.run([&](eppi::net::PartyContext& ctx) {
      eppi::mpc::GarbledSession session;
      benchmark::DoNotOptimize(
          eppi::mpc::run_garbled_party(ctx, session, circuit, inputs));
    });
  }
}
BENCHMARK(BM_GarbledTwoPartyAnd64);

void BM_Reshare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const eppi::secret::ModRing ring(1 << 14);
  eppi::Rng rng(9);
  std::vector<std::vector<eppi::SecretU64>> shares(3);
  for (auto& vec : shares) {
    std::vector<std::uint64_t> raw(n);
    for (auto& v : raw) v = rng.next_below(ring.q());
    vec = eppi::secret::wrap_shares(raw);
  }
  for (auto _ : state) {
    eppi::net::Cluster cluster(3);
    cluster.run([&](eppi::net::PartyContext& ctx) {
      const std::vector<eppi::net::PartyId> parties{0, 1, 2};
      benchmark::DoNotOptimize(eppi::secret::run_reshare_party(
          ctx, parties, shares[ctx.id()], ring));
    });
  }
}
BENCHMARK(BM_Reshare)->Arg(256)->Arg(4096);

void BM_SecSumShare(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kN = 64;
  eppi::Rng rng(4);
  std::vector<std::vector<std::uint8_t>> inputs(
      m, std::vector<std::uint8_t>(kN));
  for (auto& row : inputs) {
    for (auto& bit : row) bit = rng.bernoulli(0.2) ? 1 : 0;
  }
  const eppi::secret::SecSumShareParams params{3, 0, kN};
  for (auto _ : state) {
    eppi::net::Cluster cluster(m);
    cluster.run([&](eppi::net::PartyContext& ctx) {
      benchmark::DoNotOptimize(eppi::secret::run_sec_sum_share_party(
          ctx, params, inputs[ctx.id()]));
    });
  }
}
BENCHMARK(BM_SecSumShare)->Arg(4)->Arg(16);

void BM_CentralizedConstruct(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  eppi::Rng rng(5);
  eppi::dataset::SyntheticConfig config;
  config.providers = m;
  config.identities = 100;
  const auto net = eppi::dataset::make_zipf_network(config, rng);
  const auto eps = eppi::dataset::random_epsilons(100, rng);
  for (auto _ : state) {
    eppi::Rng crng(6);
    benchmark::DoNotOptimize(eppi::core::construct_centralized(
        net.membership, eps, {}, crng));
  }
}
BENCHMARK(BM_CentralizedConstruct)->Arg(200)->Arg(1000);

void BM_PostingIndexQuery(benchmark::State& state) {
  eppi::Rng rng(8);
  eppi::dataset::SyntheticConfig config;
  config.providers = 2000;
  config.identities = 200;
  const auto net = eppi::dataset::make_zipf_network(config, rng);
  const eppi::core::PpiIndex index(net.membership);
  const eppi::core::PostingIndex postings(index);
  std::uint32_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(postings.query(j));
    j = (j + 1) % 200;
  }
}
BENCHMARK(BM_PostingIndexQuery);

void BM_PpiQuery(benchmark::State& state) {
  eppi::Rng rng(7);
  eppi::dataset::SyntheticConfig config;
  config.providers = 2000;
  config.identities = 200;
  const auto net = eppi::dataset::make_zipf_network(config, rng);
  const eppi::core::PpiIndex index(net.membership);
  std::uint32_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(j));
    j = (j + 1) % 200;
  }
}
BENCHMARK(BM_PpiQuery);

}  // namespace
