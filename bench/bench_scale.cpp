// Paper-scale effectiveness run: the simulation setting of §V-A (the
// TREC-derived dataset spans 2,500 - 25,000 collections) at full size.
//
// For m ∈ {2,500, 10,000, 25,000} providers we construct the ε-PPI over a
// Zipf network with per-owner random ε, then report construction wall time,
// bound satisfaction under the primary attack, and the decoy fraction of
// the apparent-common set — demonstrating that the library sustains the
// paper's largest workload on one machine.
#include <chrono>
#include <cstddef>
#include <vector>

#include "attack/primary_attack.h"
#include "attack/privacy_degree.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/constructor.h"
#include "core/mixing.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

int main() {
  constexpr std::size_t kN = 400;  // owners sampled for measurement
  eppi::bench::ResultTable table({"providers", "construct-ms",
                                  "bound-satisfaction", "decoy-fraction",
                                  "primary-degree"});
  for (const std::size_t m : {2500u, 10000u, 25000u}) {
    eppi::Rng rng(m);
    std::vector<std::uint64_t> freqs(kN);
    for (std::size_t j = 0; j < kN; ++j) {
      // Skewed profile with a few commons.
      freqs[j] = j < 3 ? m - 1 - j
                       : 1 + static_cast<std::uint64_t>(
                                 rng.next_double() * rng.next_double() *
                                 static_cast<double>(m) * 0.05);
    }
    const auto net = eppi::dataset::make_network_with_frequencies(m, freqs, rng);
    const auto epsilons = eppi::dataset::random_epsilons(kN, rng, 0.3, 0.9);

    eppi::core::ConstructionOptions options;
    options.policy = eppi::core::BetaPolicy::chernoff(0.95);
    const auto start = std::chrono::steady_clock::now();
    const auto result = eppi::core::construct_centralized(
        net.membership, epsilons, options, rng);
    const double construct_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    const auto confidences = eppi::attack::exact_confidences(
        net.membership, result.index.matrix());
    // Feasible owners only (see EXPERIMENTS.md, Table II notes).
    std::vector<double> fc, fe;
    for (std::size_t j = 0; j < kN; ++j) {
      if (static_cast<double>(freqs[j]) <=
          (1.0 - epsilons[j]) * static_cast<double>(m)) {
        fc.push_back(confidences[j]);
        fe.push_back(epsilons[j]);
      }
    }
    const double satisfaction =
        eppi::attack::bound_satisfaction(fc, fe, 0.02);
    const double decoys = eppi::core::achieved_decoy_fraction(
        result.info.is_common, result.info.is_apparent_common);
    const auto degree = eppi::attack::classify_degree(fc, fe);

    table.add_row({std::to_string(m), eppi::bench::fmt(construct_ms, 1),
                   eppi::bench::fmt(satisfaction),
                   eppi::bench::fmt(decoys),
                   eppi::attack::to_string(degree)});
  }
  table.print("Paper-scale effectiveness (2,500 - 25,000 providers)");
  std::cout << "\nThe full simulation range of SV-A runs on one machine; "
               "the per-owner bound\nholds (eps-PRIVATE) at every scale.\n";
  return 0;
}
