// Search-overhead ablation (the experiment §V-A2 defers to the technical
// report): the cost side of the privacy knob.
//
// For a sweep of ε we construct the ε-PPI, run the two-phase search for
// every identity and report the average number of providers contacted, the
// wasted contacts (false positives the searcher pays for), and the achieved
// false-positive rate — alongside grouping baselines whose overhead comes
// from whole-group broadcasting.
//
// Expected shape: ε-PPI overhead scales smoothly with ε (the knob buys
// privacy with proportional search cost, reaching full broadcast at ε = 1);
// grouping overhead is fixed by the group size regardless of the privacy
// actually needed.
#include <cstddef>
#include <vector>

#include "baseline/grouping_ppi.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/auth_search.h"
#include "core/constructor.h"
#include "dataset/synthetic.h"

namespace {

constexpr std::size_t kM = 2000;
constexpr std::size_t kN = 60;

struct Overhead {
  double avg_contacted = 0.0;
  double avg_wasted = 0.0;
};

Overhead measure(const eppi::core::PpiIndex& index,
                 const eppi::BitMatrix& truth) {
  Overhead o;
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    const auto outcome = eppi::core::two_phase_search(
        index, truth, static_cast<eppi::core::IdentityId>(j));
    o.avg_contacted += static_cast<double>(outcome.contacted.size());
    o.avg_wasted += static_cast<double>(outcome.wasted_contacts());
  }
  o.avg_contacted /= static_cast<double>(truth.cols());
  o.avg_wasted /= static_cast<double>(truth.cols());
  return o;
}

}  // namespace

int main() {
  eppi::Rng rng(77);
  std::vector<std::uint64_t> freqs(kN);
  for (auto& f : freqs) f = 5 + rng.next_below(50);
  const auto net = eppi::dataset::make_network_with_frequencies(kM, freqs, rng);

  eppi::bench::ResultTable table({"epsilon", "eppi-contacted", "eppi-wasted",
                                  "achieved-fp"});
  for (double eps = 0.1; eps < 1.0; eps += 0.2) {
    const std::vector<double> epsilons(kN, eps);
    eppi::core::ConstructionOptions options;
    options.policy = eppi::core::BetaPolicy::chernoff(0.9);
    eppi::Rng crng(1000 + static_cast<std::uint64_t>(eps * 100));
    const auto result = eppi::core::construct_centralized(
        net.membership, epsilons, options, crng);
    const Overhead o = measure(result.index, net.membership);
    const double fp =
        o.avg_contacted == 0.0 ? 0.0 : o.avg_wasted / o.avg_contacted;
    table.add_row({eppi::bench::fmt(eps, 1), eppi::bench::fmt(o.avg_contacted, 1),
                   eppi::bench::fmt(o.avg_wasted, 1), eppi::bench::fmt(fp)});
  }
  table.print("Search overhead vs epsilon (eps-PPI, m=2000)");

  eppi::bench::ResultTable gtable(
      {"groups", "grouping-contacted", "grouping-wasted"});
  for (const std::size_t groups : {20u, 100u, 400u}) {
    const eppi::baseline::GroupingPpi ppi(net.membership, groups, rng);
    double contacted = 0.0;
    double wasted = 0.0;
    for (std::size_t j = 0; j < kN; ++j) {
      const auto result = ppi.query(static_cast<eppi::core::IdentityId>(j));
      contacted += static_cast<double>(result.size());
      std::size_t matched = 0;
      for (const auto p : result) {
        if (net.membership.get(p, j)) ++matched;
      }
      wasted += static_cast<double>(result.size() - matched);
    }
    gtable.add_row({std::to_string(groups),
                    eppi::bench::fmt(contacted / kN, 1),
                    eppi::bench::fmt(wasted / kN, 1)});
  }
  gtable.print("Search overhead of grouping baselines (same network)");
  std::cout << "\nShape: eps-PPI overhead is proportional to the chosen "
               "epsilon (full broadcast\nonly at eps ~ 1); grouping pays a "
               "fixed group-size overhead regardless of need.\n";
  return 0;
}
