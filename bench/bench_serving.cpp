// Query-serving benchmark: the PPI server's read path.
//
// The paper motivates PPI over searchable encryption partly on query-time
// performance ("making no use of encryption during the query serving
// time"). This bench quantifies our serving tier in two parts:
//
//  1. single-thread representation comparison — QueryPPI latency for the
//     canonical matrix index vs. the posting-list form, across network
//     sizes and privacy levels (higher ε ⇒ denser index ⇒ larger answers);
//  2. concurrent serving — N reader threads against one LocatorService
//     while a writer thread continuously rebuilds and swaps epochs
//     (lock-free snapshot publication, core/epoch_snapshot.h). Readers run
//     until they have overlapped with at least `min_swaps` epoch swaps, so
//     the numbers certify reader/writer contention, not an idle index.
//     Both the single-query and the batched (query_ppi_many) paths are
//     measured;
//  3. delta vs full rebuild — twin services absorb the same small stream of
//     owner updates (<10% of identities dirty per round); one is pinned to
//     full rebuilds, the other routes through the incremental delta path
//     (dirty-column recompute + snapshot splice). The reported speedup is
//     the reason delta epochs exist.
//
// Usage: bench_serving [--smoke] [--json <path>]
//   --smoke   small sizes + fewer swaps (CI gate)
//   --json    machine-readable results (default BENCH_serving.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/constructor.h"
#include "core/locator_service.h"
#include "core/posting_index.h"
#include "dataset/synthetic.h"
#include "obs/registry.h"

namespace {

struct Timing {
  double matrix_us = 0.0;
  double posting_us = 0.0;
  double avg_answer = 0.0;
  std::size_t payload_kib = 0;
  std::size_t resident_kib = 0;
};

Timing measure(std::size_t m, std::size_t n, double eps, std::uint64_t seed) {
  eppi::Rng rng(seed);
  std::vector<std::uint64_t> freqs(n);
  for (auto& f : freqs) f = 1 + rng.next_below(m / 20 + 1);
  const auto net = eppi::dataset::make_network_with_frequencies(m, freqs, rng);
  const std::vector<double> epsilons(n, eps);
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto built = eppi::core::construct_centralized(net.membership,
                                                       epsilons, options, rng);
  const eppi::core::PostingIndex postings(built.index);

  constexpr int kQueries = 20000;
  Timing t;
  const auto footprint = postings.memory_footprint();
  t.payload_kib = footprint.payload_bytes / 1024;
  t.resident_kib = footprint.resident_bytes / 1024;

  std::size_t total_answer = 0;
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kQueries; ++q) {
    total_answer +=
        built.index.query(static_cast<eppi::core::IdentityId>(q % n)).size();
  }
  auto stop = std::chrono::steady_clock::now();
  t.matrix_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      kQueries;
  t.avg_answer = static_cast<double>(total_answer) / kQueries;

  start = std::chrono::steady_clock::now();
  std::size_t check = 0;
  for (int q = 0; q < kQueries; ++q) {
    check +=
        postings.query(static_cast<eppi::core::IdentityId>(q % n)).size();
  }
  stop = std::chrono::steady_clock::now();
  t.posting_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      kQueries;
  if (check != total_answer) t.posting_us = -1.0;  // should never happen
  return t;
}

// --- concurrent serving ----------------------------------------------------

struct ServeConfig {
  std::size_t providers = 2000;
  std::size_t owners = 200;
  std::size_t min_swaps = 100;  // epoch swaps each run must overlap with
};

struct ThreadedResult {
  std::size_t threads = 0;
  std::size_t batch = 1;  // owners per query call (1 = query_ppi)
  double qps = 0.0;       // owners resolved per second, all readers
  double p50_us = 0.0;    // per-call latency (one batch = one call)
  double p99_us = 0.0;
  std::uint64_t swaps = 0;
  std::uint64_t owners_resolved = 0;
};

std::string owner_name(std::size_t j) { return "o" + std::to_string(j); }

void populate_service(eppi::core::LocatorService& service,
                      const ServeConfig& cfg, std::uint64_t seed) {
  eppi::Rng rng(seed);
  std::vector<std::uint64_t> freqs(cfg.owners);
  for (auto& f : freqs) f = 1 + rng.next_below(cfg.providers / 20 + 1);
  const auto net = eppi::dataset::make_network_with_frequencies(
      cfg.providers, freqs, rng);
  for (std::size_t i = 0; i < cfg.providers; ++i) {
    for (std::size_t j = 0; j < cfg.owners; ++j) {
      if (net.membership.get(i, j)) {
        service.delegate(owner_name(j), 0.5, "p" + std::to_string(i));
      }
    }
  }
}

ThreadedResult run_threaded(const ServeConfig& cfg, std::size_t threads,
                            std::size_t batch, std::uint64_t seed) {
  eppi::core::LocatorService::Options options;
  options.distributed = false;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  options.seed = seed;
  // Pin the writer to FULL rebuilds: this part measures reader/writer
  // contention across whole-epoch swaps, and a delta rebuild of the one
  // toggled owner is so fast the writer would hit min_swaps before the
  // readers issue a single query. Part 3 measures the delta path itself.
  options.enable_delta = false;
  eppi::core::LocatorService service(options);  // fresh metrics per run
  populate_service(service, cfg, seed);
  service.construct_ppi();

  std::atomic<std::uint64_t> swaps{0};
  std::atomic<std::size_t> readers_running{threads};
  std::vector<std::string> names;
  for (std::size_t j = 0; j < cfg.owners; ++j) names.push_back(owner_name(j));

  // Writer: toggle one owner's ε so every swap publishes real churn, and
  // keep swapping until the last reader is done (readers in turn run until
  // they have overlapped with min_swaps swaps — contention is guaranteed).
  std::thread writer([&] {
    std::size_t k = 0;
    while (readers_running.load(std::memory_order_acquire) > 0) {
      service.delegate(owner_name(0), (k++ % 2 == 0) ? 0.9 : 0.1, "p0");
      service.construct_ppi();
      swaps.fetch_add(1, std::memory_order_release);
    }
  });

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < threads; ++r) {
    readers.emplace_back([&, r] {
      std::size_t j = r;
      std::vector<std::string> owners(batch);
      while (swaps.load(std::memory_order_acquire) < cfg.min_swaps) {
        if (batch == 1) {
          (void)service.query_ppi(names[j % cfg.owners]);
        } else {
          for (std::size_t b = 0; b < batch; ++b) {
            owners[b] = names[(j + b) % cfg.owners];
          }
          (void)service.query_ppi_many(owners);
        }
        j += batch;
      }
      readers_running.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& t : readers) t.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  writer.join();

  const auto metrics = service.metrics();
  ThreadedResult result;
  result.threads = threads;
  result.batch = batch;
  result.owners_resolved = metrics.owners_resolved;
  result.qps = static_cast<double>(metrics.owners_resolved) / seconds;
  result.p50_us = metrics.latency.quantile_us(0.5);
  result.p99_us = metrics.latency.quantile_us(0.99);
  result.swaps = metrics.epoch_swaps;
  return result;
}

// --- delta vs full rebuild -------------------------------------------------

struct RebuildResult {
  std::size_t providers = 0;
  std::size_t owners = 0;
  std::size_t dirty = 0;       // owners touched per round
  double full_us = 0.0;        // mean construct_ppi, full path
  double delta_us = 0.0;       // mean construct_ppi, delta path
  double speedup = 0.0;
};

RebuildResult run_rebuild(std::size_t providers, std::size_t owners,
                          std::size_t dirty, std::size_t rounds,
                          std::uint64_t seed) {
  const auto make = [&](bool enable_delta) {
    eppi::core::LocatorService::Options options;
    options.distributed = false;
    options.policy = eppi::core::BetaPolicy::chernoff(0.9);
    options.seed = seed;
    options.enable_delta = enable_delta;
    auto service = std::make_unique<eppi::core::LocatorService>(options);
    ServeConfig cfg;
    cfg.providers = providers;
    cfg.owners = owners;
    populate_service(*service, cfg, seed);
    // Make sure the provider receiving the per-round updates exists from
    // epoch 1 on — registering it later would be membership churn, which
    // forces the delta protocol even on the full-rebuild twin.
    service->delegate(owner_name(0), 0.5, "p0");
    service->construct_ppi();  // epoch 1: both twins pay the full build
    return service;
  };
  auto full = make(false);
  auto delta = make(true);

  RebuildResult r;
  r.providers = providers;
  r.owners = owners;
  r.dirty = dirty;
  double full_total = 0.0;
  double delta_total = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Same sliding window of owner updates fed to both twins.
    const double eps = (round % 2 == 0) ? 0.9 : 0.1;
    for (std::size_t k = 0; k < dirty; ++k) {
      const std::string owner = owner_name((round * dirty + k) % owners);
      full->delegate(owner, eps, "p0");
      delta->delegate(owner, eps, "p0");
    }
    const auto t0 = std::chrono::steady_clock::now();
    full->construct_ppi();
    const auto t1 = std::chrono::steady_clock::now();
    delta->construct_ppi();
    const auto t2 = std::chrono::steady_clock::now();
    full_total += std::chrono::duration<double, std::micro>(t1 - t0).count();
    delta_total += std::chrono::duration<double, std::micro>(t2 - t1).count();
    if (!delta->last_rebuild().delta || full->last_rebuild().delta) {
      std::cerr << "rebuild bench: unexpected rebuild routing (delta twin="
                << delta->last_rebuild().delta
                << " full twin=" << full->last_rebuild().delta
                << " dirty=" << delta->last_rebuild().dirty << ")\n";
      std::exit(1);
    }
  }
  r.full_us = full_total / static_cast<double>(rounds);
  r.delta_us = delta_total / static_cast<double>(rounds);
  r.speedup = r.delta_us > 0.0 ? r.full_us / r.delta_us : 0.0;
  return r;
}

// --- million-owner scale: compressed vs dense --------------------------------

// The tentpole claim of the compressed index: at locator-service scale
// (10^6 owner identities, most claimed by a handful of providers) the
// per-row codec storage beats the dense bit matrix by a wide margin while
// queries stay flat. The workload is the paper's: almost every identity is
// sparse (1-8 providers), with ~2% "celebrity" identities dense enough to
// flip the per-row chooser to the bitvector codec.
struct ScaleResult {
  std::size_t providers = 0;
  std::size_t identities = 0;
  double build_ms = 0.0;       // posting lists -> compressed sharded index
  double dense_us = 0.0;       // per query: dense matrix column scan
  double compressed_us = 0.0;  // per query: PostingIndex::query_into
  std::size_t dense_matrix_kib = 0;
  std::size_t payload_kib = 0;
  std::size_t resident_kib = 0;
  double memory_reduction_x = 0.0;  // dense matrix bytes / resident bytes
};

ScaleResult run_scale(std::size_t m, std::size_t n, std::size_t queries,
                      std::uint64_t seed) {
  eppi::Rng rng(seed);
  std::vector<std::vector<eppi::core::ProviderId>> lists(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto& list = lists[j];
    if (rng.bernoulli(0.02)) {  // celebrity: ~half the providers claim it
      for (std::size_t i = 0; i < m; ++i) {
        if (rng.bernoulli(0.5)) {
          list.push_back(static_cast<eppi::core::ProviderId>(i));
        }
      }
    } else {  // long tail: 1-8 distinct providers
      const std::size_t k = 1 + rng.next_below(8);
      for (std::size_t c = 0; c < k; ++c) {
        list.push_back(static_cast<eppi::core::ProviderId>(rng.next_below(m)));
      }
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  }

  ScaleResult r;
  r.providers = m;
  r.identities = n;

  const auto b0 = std::chrono::steady_clock::now();
  const eppi::core::PostingIndex compressed(m, lists);
  const auto b1 = std::chrono::steady_clock::now();
  r.build_ms = std::chrono::duration<double, std::milli>(b1 - b0).count();

  // The dense strawman the compressed index replaces. Built here only for
  // the side-by-side — nothing on the serving or replay path does this.
  eppi::BitMatrix dense(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto i : lists[j]) dense.set(i, j, true);
  }

  std::vector<eppi::core::IdentityId> probe(queries);
  for (auto& id : probe) {
    id = static_cast<eppi::core::IdentityId>(rng.next_below(n));
  }

  std::vector<eppi::core::ProviderId> out;
  out.reserve(m);
  std::size_t dense_total = 0;
  auto start = std::chrono::steady_clock::now();
  for (const auto id : probe) {
    out.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if (dense.get(i, id)) {
        out.push_back(static_cast<eppi::core::ProviderId>(i));
      }
    }
    dense_total += out.size();
  }
  auto stop = std::chrono::steady_clock::now();
  r.dense_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      static_cast<double>(queries);

  std::size_t compressed_total = 0;
  start = std::chrono::steady_clock::now();
  for (const auto id : probe) {
    compressed.query_into(id, out);
    compressed_total += out.size();
  }
  stop = std::chrono::steady_clock::now();
  r.compressed_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      static_cast<double>(queries);
  if (compressed_total != dense_total) {
    std::cerr << "scale bench: representations disagree ("
              << compressed_total << " vs " << dense_total << ")\n";
    std::exit(1);
  }

  const std::size_t dense_bytes = ((m * n) + 7) / 8;
  const auto fp = compressed.memory_footprint();
  r.dense_matrix_kib = dense_bytes / 1024;
  r.payload_kib = fp.payload_bytes / 1024;
  r.resident_kib = fp.resident_bytes / 1024;
  r.memory_reduction_x = fp.resident_bytes > 0
                             ? static_cast<double>(dense_bytes) /
                                   static_cast<double>(fp.resident_bytes)
                             : 0.0;
  return r;
}

void write_json(const std::string& path, const ServeConfig& cfg,
                const std::vector<Timing>& single,
                const std::vector<std::size_t>& single_m,
                const std::vector<double>& single_eps,
                const std::vector<ThreadedResult>& threaded,
                const std::vector<RebuildResult>& rebuilds,
                const std::vector<ScaleResult>& scales) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"serving\",\n";
  out << "  \"build\": " << eppi::bench::build_info_json() << ",\n";
  out << "  \"config\": {\"providers\": " << cfg.providers
      << ", \"owners\": " << cfg.owners
      << ", \"min_swaps\": " << cfg.min_swaps << "},\n";
  out << "  \"single_thread\": [\n";
  for (std::size_t k = 0; k < single.size(); ++k) {
    const auto& t = single[k];
    out << "    {\"providers\": " << single_m[k]
        << ", \"epsilon\": " << single_eps[k]
        << ", \"matrix_us\": " << t.matrix_us
        << ", \"posting_us\": " << t.posting_us
        << ", \"avg_answer\": " << t.avg_answer
        << ", \"payload_kib\": " << t.payload_kib
        << ", \"resident_kib\": " << t.resident_kib << "}"
        << (k + 1 < single.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"threaded\": [\n";
  for (std::size_t k = 0; k < threaded.size(); ++k) {
    const auto& t = threaded[k];
    out << "    {\"threads\": " << t.threads << ", \"batch\": " << t.batch
        << ", \"qps\": " << t.qps << ", \"p50_us\": " << t.p50_us
        << ", \"p99_us\": " << t.p99_us << ", \"epoch_swaps\": " << t.swaps
        << ", \"owners_resolved\": " << t.owners_resolved << "}"
        << (k + 1 < threaded.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"rebuild\": [\n";
  for (std::size_t k = 0; k < rebuilds.size(); ++k) {
    const auto& r = rebuilds[k];
    out << "    {\"providers\": " << r.providers << ", \"owners\": "
        << r.owners << ", \"dirty\": " << r.dirty
        << ", \"full_us\": " << r.full_us << ", \"delta_us\": " << r.delta_us
        << ", \"speedup\": " << r.speedup << "}"
        << (k + 1 < rebuilds.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"million_scale\": [\n";
  for (std::size_t k = 0; k < scales.size(); ++k) {
    const auto& s = scales[k];
    out << "    {\"providers\": " << s.providers
        << ", \"identities\": " << s.identities
        << ", \"build_ms\": " << s.build_ms
        << ", \"dense_us\": " << s.dense_us
        << ", \"compressed_us\": " << s.compressed_us
        << ", \"dense_matrix_kib\": " << s.dense_matrix_kib
        << ", \"payload_kib\": " << s.payload_kib
        << ", \"resident_kib\": " << s.resident_kib
        << ", \"memory_reduction_x\": " << s.memory_reduction_x << "}"
        << (k + 1 < scales.size() ? "," : "") << '\n';
  }
  // Full metrics-registry snapshot: every ServingMetrics instance this
  // process created (one per run_threaded call, distinct `instance` labels),
  // so regressions in counters are diffable alongside the latency numbers.
  out << "  ],\n  \"metrics\": "
      << eppi::obs::Registry::global().render_json() << "\n}\n";
  std::cerr << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_serving.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else {
      std::cerr << "usage: bench_serving [--smoke] [--json <path>]\n";
      return 2;
    }
  }

  // Part 1: representation comparison (single thread).
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{500}
            : std::vector<std::size_t>{1000, 5000, 20000};
  const std::vector<double> eps_levels{0.3, 0.8};
  eppi::bench::ResultTable table({"providers", "epsilon", "avg-answer",
                                  "matrix-us/q", "posting-us/q",
                                  "payload-KiB", "resident-KiB"});
  std::vector<Timing> single;
  std::vector<std::size_t> single_m;
  std::vector<double> single_eps;
  for (const std::size_t m : sizes) {
    for (const double eps : eps_levels) {
      const Timing t = measure(m, 100, eps, m + 17);
      single.push_back(t);
      single_m.push_back(m);
      single_eps.push_back(eps);
      table.add_row({std::to_string(m), eppi::bench::fmt(eps, 1),
                     eppi::bench::fmt(t.avg_answer, 1),
                     eppi::bench::fmt(t.matrix_us, 2),
                     eppi::bench::fmt(t.posting_us, 3),
                     std::to_string(t.payload_kib),
                     std::to_string(t.resident_kib)});
    }
  }
  table.print("Query serving: matrix scan vs posting lists");

  // Part 2: concurrent serving under continuous epoch swaps.
  ServeConfig cfg;
  if (smoke) {
    cfg.providers = 300;
    cfg.owners = 60;
    cfg.min_swaps = 12;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<std::size_t> ladder{1, 2, 4};
  if (hw > 4) ladder.push_back(hw);
  if (smoke) ladder = {1, 2};

  eppi::bench::ResultTable serving({"threads", "batch", "owners/s", "p50-us",
                                    "p99-us", "epoch-swaps"});
  std::vector<ThreadedResult> threaded;
  for (const std::size_t threads : ladder) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      const ThreadedResult r = run_threaded(cfg, threads, batch, 99);
      threaded.push_back(r);
      serving.add_row({std::to_string(r.threads), std::to_string(r.batch),
                       eppi::bench::fmt(r.qps, 0),
                       eppi::bench::fmt(r.p50_us, 1),
                       eppi::bench::fmt(r.p99_us, 1),
                       std::to_string(r.swaps)});
    }
  }
  serving.print("Concurrent serving: readers vs continuous rebuild/swap");

  // Part 3: incremental (delta) vs full epoch rebuild under small churn.
  std::vector<RebuildResult> rebuilds;
  eppi::bench::ResultTable rebuild_table({"providers", "owners", "dirty",
                                          "full-us", "delta-us", "speedup"});
  const std::vector<std::pair<std::size_t, std::size_t>> shapes =
      smoke ? std::vector<std::pair<std::size_t, std::size_t>>{{300, 60}}
            : std::vector<std::pair<std::size_t, std::size_t>>{{500, 100},
                                                               {2000, 200}};
  const std::size_t rebuild_rounds = smoke ? 4 : 6;
  for (const auto& [m, n] : shapes) {
    // Keep the dirty fraction under the service's 10% delta gate.
    const RebuildResult r =
        run_rebuild(m, n, n / 25 + 1, rebuild_rounds, 4242);
    rebuilds.push_back(r);
    rebuild_table.add_row({std::to_string(r.providers),
                           std::to_string(r.owners), std::to_string(r.dirty),
                           eppi::bench::fmt(r.full_us, 0),
                           eppi::bench::fmt(r.delta_us, 0),
                           eppi::bench::fmt(r.speedup, 1)});
  }
  rebuild_table.print("Epoch rebuild: full vs delta (dirty < 10%)");

  // Part 4: million-owner scale — compressed sharded index vs dense matrix.
  const std::size_t scale_m = smoke ? 500 : 1000;
  const std::size_t scale_n = smoke ? 100'000 : 1'000'000;
  const std::size_t scale_q = smoke ? 2000 : 20000;
  std::vector<ScaleResult> scales{run_scale(scale_m, scale_n, scale_q, 77)};
  eppi::bench::ResultTable scale_table(
      {"providers", "identities", "build-ms", "dense-us/q", "compressed-us/q",
       "dense-KiB", "resident-KiB", "reduction"});
  for (const auto& s : scales) {
    scale_table.add_row(
        {std::to_string(s.providers), std::to_string(s.identities),
         eppi::bench::fmt(s.build_ms, 0), eppi::bench::fmt(s.dense_us, 2),
         eppi::bench::fmt(s.compressed_us, 3),
         std::to_string(s.dense_matrix_kib), std::to_string(s.resident_kib),
         "x" + eppi::bench::fmt(s.memory_reduction_x, 1)});
  }
  scale_table.print("Million-owner scale: compressed index vs dense matrix");
  // The acceptance floor for the compressed representation on the sparse
  // locator workload. Deterministic (seeded), so a failure is a real
  // storage regression, not noise.
  if (scales.front().memory_reduction_x < 4.0) {
    std::cerr << "scale bench: memory reduction x"
              << scales.front().memory_reduction_x << " below the 4x floor\n";
    return 1;
  }

  const double base = threaded.front().qps;
  const double best = [&] {
    double b = 0.0;
    for (const auto& r : threaded) {
      if (r.batch == 1 && r.qps > b) b = r.qps;
    }
    return b;
  }();
  std::cout << "\nReaders are wait-free across epoch swaps (lock-free "
               "snapshot publication);\nbest single-query scaling over 1 "
               "thread: x" << eppi::bench::fmt(base > 0 ? best / base : 0, 2)
            << " on " << hw << " hardware threads. Batched calls amortize "
               "the snapshot\nacquisition and name resolution.\n";

  write_json(json_path, cfg, single, single_m, single_eps, threaded,
             rebuilds, scales);
  return 0;
}
