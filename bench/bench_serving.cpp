// Query-serving benchmark: the PPI server's read path.
//
// The paper motivates PPI over searchable encryption partly on query-time
// performance ("making no use of encryption during the query serving
// time"). This bench quantifies our serving tier: QueryPPI latency and
// throughput for the canonical matrix index vs. the posting-list form,
// across network sizes and privacy levels (higher ε ⇒ denser index ⇒
// larger answers).
#include <chrono>
#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/constructor.h"
#include "core/posting_index.h"
#include "dataset/synthetic.h"

namespace {

struct Timing {
  double matrix_us = 0.0;
  double posting_us = 0.0;
  double avg_answer = 0.0;
  std::size_t posting_kib = 0;
};

Timing measure(std::size_t m, std::size_t n, double eps, std::uint64_t seed) {
  eppi::Rng rng(seed);
  std::vector<std::uint64_t> freqs(n);
  for (auto& f : freqs) f = 1 + rng.next_below(m / 20 + 1);
  const auto net = eppi::dataset::make_network_with_frequencies(m, freqs, rng);
  const std::vector<double> epsilons(n, eps);
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto built = eppi::core::construct_centralized(net.membership,
                                                       epsilons, options, rng);
  const eppi::core::PostingIndex postings(built.index);

  constexpr int kQueries = 20000;
  Timing t;
  t.posting_kib = postings.posting_bytes() / 1024;

  std::size_t total_answer = 0;
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kQueries; ++q) {
    total_answer +=
        built.index.query(static_cast<eppi::core::IdentityId>(q % n)).size();
  }
  auto stop = std::chrono::steady_clock::now();
  t.matrix_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      kQueries;
  t.avg_answer = static_cast<double>(total_answer) / kQueries;

  start = std::chrono::steady_clock::now();
  std::size_t check = 0;
  for (int q = 0; q < kQueries; ++q) {
    check +=
        postings.query(static_cast<eppi::core::IdentityId>(q % n)).size();
  }
  stop = std::chrono::steady_clock::now();
  t.posting_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      kQueries;
  if (check != total_answer) t.posting_us = -1.0;  // should never happen
  return t;
}

}  // namespace

int main() {
  eppi::bench::ResultTable table({"providers", "epsilon", "avg-answer",
                                  "matrix-us/q", "posting-us/q",
                                  "posting-KiB"});
  for (const std::size_t m : {1000u, 5000u, 20000u}) {
    for (const double eps : {0.3, 0.8}) {
      const Timing t = measure(m, 100, eps, m + 17);
      table.add_row({std::to_string(m), eppi::bench::fmt(eps, 1),
                     eppi::bench::fmt(t.avg_answer, 1),
                     eppi::bench::fmt(t.matrix_us, 2),
                     eppi::bench::fmt(t.posting_us, 3),
                     std::to_string(t.posting_kib)});
    }
  }
  table.print("Query serving: matrix scan vs posting lists");
  std::cout << "\nMatrix scan is O(m) per query; posting lists answer in "
               "O(result). Higher\nepsilon inflates answers (the privacy/"
               "overhead knob) for both forms.\n";
  return 0;
}
