// Table II: privacy degrees of grouping PPI [12,13], SS-PPI [22] and ε-PPI
// under the primary attack and the common-identity attack.
//
// The paper's table is analytical; this bench reproduces it empirically:
//
//  * Primary attack: measured attacker confidence per owner (true positives
//    over claimed positives in the published view), classified against the
//    per-owner 1 − ε bound.
//  * Common-identity attack: the attacker flags common identities from its
//    frequency knowledge — exact leaked frequencies for SS-PPI (its
//    construction discloses them), apparent frequencies read off M' for the
//    others — and the identification confidence is classified.
//
// Expected outcome (paper Table II):
//   grouping PPI: NoGuarantee / NoGuarantee
//   SS-PPI:       NoGuarantee / NoProtect
//   ε-PPI:        eps-PRIVATE / eps-PRIVATE
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "attack/common_identity_attack.h"
#include "attack/primary_attack.h"
#include "attack/privacy_degree.h"
#include "baseline/grouping_ppi.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/constructor.h"
#include "core/mixing.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace {

constexpr std::size_t kM = 400;
constexpr std::size_t kN = 300;
constexpr std::size_t kGroups = 100;

struct SystemOutcome {
  std::string primary_degree;
  double primary_mean_confidence = 0.0;
  std::string common_degree;
  double common_confidence = 0.0;
};

// Primary-attack classification over the feasible identities only: when an
// owner's records sit at more than (1-eps)m providers, no 100%-recall index
// can reach false-positive rate eps (there are not enough negative
// providers, paper SIII-B.1) — the identity is handled by the common-
// identity defense instead.
eppi::attack::PrivacyDegree classify_primary_feasible(
    const std::vector<double>& confidences, const std::vector<double>& eps,
    const std::vector<std::uint64_t>& freqs, std::size_t m) {
  std::vector<double> fc;
  std::vector<double> fe;
  for (std::size_t j = 0; j < confidences.size(); ++j) {
    if (static_cast<double>(freqs[j]) <=
        (1.0 - eps[j]) * static_cast<double>(m)) {
      fc.push_back(confidences[j]);
      fe.push_back(eps[j]);
    }
  }
  return eppi::attack::classify_degree(fc, fe);
}

std::string classify_common(double confidence, double xi) {
  if (confidence >= 0.999) return "NoProtect";
  if (confidence <= 1.0 - xi + 0.05) return "eps-PRIVATE";
  return "NoGuarantee";
}

}  // namespace

int main() {
  eppi::Rng rng(2014);
  // Skewed network with a handful of true common identities.
  std::vector<std::uint64_t> freqs(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    freqs[j] = j < 4 ? kM - 2 - j : 1 + rng.next_below(kM / 8);
  }
  const auto net = eppi::dataset::make_network_with_frequencies(kM, freqs, rng);
  const auto epsilons =
      eppi::dataset::random_epsilons(kN, rng, 0.3, 0.9);

  // --- ε-PPI ---------------------------------------------------------------
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.95);
  const auto eppi_result =
      eppi::core::construct_centralized(net.membership, epsilons, options, rng);

  SystemOutcome eppi_outcome;
  {
    const auto confidences = eppi::attack::exact_confidences(
        net.membership, eppi_result.index.matrix());
    eppi_outcome.primary_degree = eppi::attack::to_string(
        classify_primary_feasible(confidences, epsilons, freqs, kM));
    double total = 0.0;
    for (const double c : confidences) total += c;
    eppi_outcome.primary_mean_confidence = total / kN;

    std::vector<std::uint64_t> knowledge(kN);
    for (std::size_t j = 0; j < kN; ++j) {
      knowledge[j] = eppi_result.index.matrix().col_count(j);
    }
    const auto outcome = eppi::attack::common_identity_attack(
        net.membership, knowledge, kM, eppi_result.info.is_common, 5, rng);
    eppi_outcome.common_confidence = outcome.identification_confidence();
    eppi_outcome.common_degree =
        classify_common(eppi_outcome.common_confidence, eppi_result.info.xi);
  }

  // --- grouping PPI and SS-PPI ----------------------------------------------
  const eppi::baseline::SsPpi ss(net.membership, kGroups, rng);
  const auto& grouping = ss.index;
  // Ground truth for the common-identity attack: the same policy-level
  // common set ε-PPI defends (frequency above the saturation threshold).
  const auto& truly_common = eppi_result.info.is_common;
  (void)eppi::core::xi_for(truly_common, epsilons);

  SystemOutcome grouping_outcome;
  SystemOutcome ss_outcome;
  {
    const auto confidences = eppi::attack::exact_confidences(
        net.membership, grouping.provider_view());
    const auto degree = eppi::attack::to_string(
        classify_primary_feasible(confidences, epsilons, freqs, kM));
    double total = 0.0;
    for (const double c : confidences) total += c;
    grouping_outcome.primary_degree = degree;
    grouping_outcome.primary_mean_confidence = total / kN;
    ss_outcome.primary_degree = degree;  // same index shape
    ss_outcome.primary_mean_confidence = grouping_outcome.primary_mean_confidence;

    // Grouping: attacker reads apparent frequencies off the published view.
    std::vector<std::uint64_t> apparent(kN);
    for (std::size_t j = 0; j < kN; ++j) {
      apparent[j] = grouping.apparent_frequency(
          static_cast<eppi::core::IdentityId>(j));
    }
    const auto g_attack = eppi::attack::common_identity_attack(
        net.membership, apparent, kM - kGroups, truly_common, 5, rng);
    grouping_outcome.common_confidence = g_attack.identification_confidence();
    // Degree label per the paper's information-flow analysis (Appendix B):
    // the grouping index does not disclose sigma directly, but the truthful
    // frequency shape survives in M', so protection is data-dependent —
    // NoGuarantee (the measured confidence shows how bad it can get).
    grouping_outcome.common_degree = "NoGuarantee";

    // SS-PPI: the construction leaks exact frequencies, and epsilon / the
    // beta policy are public, so the attacker evaluates the per-identity
    // saturation threshold itself and identifies the common set precisely.
    const auto thresholds = eppi::core::common_thresholds(
        options.policy, epsilons, kM);
    std::size_t candidates = 0;
    std::size_t hits = 0;
    for (std::size_t j = 0; j < kN; ++j) {
      if (ss.leaked_frequencies[j] >= thresholds[j]) {
        ++candidates;
        if (truly_common[j]) ++hits;
      }
    }
    ss_outcome.common_confidence =
        candidates == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(candidates);
    // SS-PPI's construction protocol hands the exact frequencies to every
    // provider: the attack channel is direct disclosure -> NoProtect.
    ss_outcome.common_degree = "NoProtect";
  }

  eppi::bench::ResultTable table({"system", "primary-degree",
                                  "primary-mean-conf", "common-degree",
                                  "common-ident-conf", "paper-expected"});
  table.add_row({"grouping-ppi", grouping_outcome.primary_degree,
                 eppi::bench::fmt(grouping_outcome.primary_mean_confidence),
                 grouping_outcome.common_degree,
                 eppi::bench::fmt(grouping_outcome.common_confidence),
                 "NoGuarantee/NoGuarantee"});
  table.add_row({"ss-ppi", ss_outcome.primary_degree,
                 eppi::bench::fmt(ss_outcome.primary_mean_confidence),
                 ss_outcome.common_degree,
                 eppi::bench::fmt(ss_outcome.common_confidence),
                 "NoGuarantee/NoProtect"});
  table.add_row({"eps-ppi", eppi_outcome.primary_degree,
                 eppi::bench::fmt(eppi_outcome.primary_mean_confidence),
                 eppi_outcome.common_degree,
                 eppi::bench::fmt(eppi_outcome.common_confidence),
                 "eps-PRIVATE/eps-PRIVATE"});
  table.print("Table II: privacy degrees under both attacks (measured)");
  std::cout << "\nxi (max eps over true common identities) = "
            << eppi::bench::fmt(eppi_result.info.xi)
            << "; eps-PPI common-attack confidence is bounded by 1 - xi.\n";
  return 0;
}
