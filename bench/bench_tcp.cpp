// Transport ablation: in-process cluster vs. real loopback TCP.
//
// Every protocol runs on both harnesses through the same PartyContext; this
// bench quantifies what the socket path adds (syscalls, framing, TCP stack)
// for the two construction stages, so deployments can extrapolate from the
// in-process benches. On a real LAN the cost model's RTT/bandwidth terms
// dominate instead — see net/cost_model.h. The measured loopback RTT is
// reported so a deployment can calibrate CostModel::rtt against its own
// network (docs/deployment.md shows the arithmetic).
//
// Usage: bench_tcp [--smoke] [--json <path>]
//   --smoke   smallest sizes only (CI gate)
//   --json    machine-readable results (default BENCH_tcp.json)
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/construction_party.h"
#include "dataset/synthetic.h"
#include "net/cluster.h"
#include "net/socket_transport.h"
#include "secret/sec_sum_share.h"

namespace {

using eppi::net::Endpoint;
using eppi::net::PartyContext;
using eppi::net::PartyId;

std::uint16_t find_port_base(std::size_t count) {
  static std::uint16_t cursor = static_cast<std::uint16_t>(
      23000 + (::getpid() * 37) % 8000);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::uint16_t base = cursor;
    cursor = static_cast<std::uint16_t>(cursor + count + 1);
    bool all_free = true;
    for (std::size_t k = 0; k < count && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return base;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  return 23000;
}

double run_inproc(std::size_t m,
                  const std::function<void(PartyContext&, std::size_t)>& body) {
  eppi::net::Cluster cluster(m, 3);
  const auto start = std::chrono::steady_clock::now();
  cluster.run([&](PartyContext& ctx) { body(ctx, ctx.id()); });
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double run_tcp(std::size_t m,
               const std::function<void(PartyContext&, std::size_t)>& body) {
  const std::uint16_t base = find_port_base(m);
  std::vector<Endpoint> endpoints(m);
  for (std::size_t i = 0; i < m; ++i) {
    endpoints[i].port = static_cast<std::uint16_t>(base + i);
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      eppi::net::SocketRuntime runtime(static_cast<PartyId>(i), endpoints, 3);
      body(runtime.context(), i);
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Application-level round trip over an established loopback link: send one
// tiny frame, wait for the echo. Includes the full runtime path (post to the
// loop, framing, epoll wakeups, mailbox delivery) on both ends — the number
// a deployment compares against its own ping to calibrate the cost model.
struct RttResult {
  int iters = 0;
  double p50_us = 0.0;
  double avg_us = 0.0;
};

RttResult measure_loopback_rtt(int iters) {
  const std::uint16_t base = find_port_base(2);
  std::vector<Endpoint> endpoints(2);
  endpoints[0].port = base;
  endpoints[1].port = static_cast<std::uint16_t>(base + 1);
  RttResult result;
  result.iters = iters;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  std::thread echo([&] {
    eppi::net::SocketRuntime runtime(1, endpoints, 11);
    for (int k = 0; k < iters; ++k) {
      auto ping = runtime.context().recv(0, eppi::net::MessageTag::kUserBase,
                                         static_cast<std::uint64_t>(k));
      runtime.context().send(0, eppi::net::MessageTag::kUserBase + 1,
                             static_cast<std::uint64_t>(k), std::move(ping));
    }
  });
  {
    eppi::net::SocketRuntime runtime(0, endpoints, 12);
    for (int k = 0; k < iters; ++k) {
      const auto start = std::chrono::steady_clock::now();
      runtime.context().send(1, eppi::net::MessageTag::kUserBase,
                             static_cast<std::uint64_t>(k), {0x55});
      (void)runtime.context().recv(1, eppi::net::MessageTag::kUserBase + 1,
                                   static_cast<std::uint64_t>(k));
      samples.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    echo.join();
  }
  double sum = 0.0;
  for (const double s : samples) sum += s;
  result.avg_us = samples.empty() ? 0.0 : sum / samples.size();
  std::sort(samples.begin(), samples.end());
  if (!samples.empty()) result.p50_us = samples[samples.size() / 2];
  return result;
}

struct AblationRow {
  std::string protocol;
  std::size_t parties = 0;
  double inproc_ms = 0.0;
  double tcp_ms = 0.0;
};

void write_json(const std::string& path, bool smoke, const RttResult& rtt,
                const std::vector<AblationRow>& ablation) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"tcp\",\n";
  out << "  \"build\": " << eppi::bench::build_info_json() << ",\n";
  out << "  \"config\": {\"smoke\": " << (smoke ? "true" : "false") << "},\n";
  out << "  \"loopback_rtt\": {\"iters\": " << rtt.iters
      << ", \"p50_us\": " << rtt.p50_us << ", \"avg_us\": " << rtt.avg_us
      << "},\n";
  out << "  \"ablation\": [\n";
  for (std::size_t k = 0; k < ablation.size(); ++k) {
    const auto& r = ablation[k];
    out << "    {\"protocol\": \"" << r.protocol
        << "\", \"parties\": " << r.parties
        << ", \"inproc_ms\": " << r.inproc_ms << ", \"tcp_ms\": " << r.tcp_ms
        << "}" << (k + 1 < ablation.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_tcp.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else {
      std::cerr << "usage: bench_tcp [--smoke] [--json <path>]\n";
      return 2;
    }
  }

  const std::size_t kN = smoke ? 32 : 64;  // identities
  eppi::bench::ResultTable table(
      {"protocol", "parties", "inproc-ms", "tcp-ms"});
  std::vector<AblationRow> ablation;

  const std::vector<unsigned> secsum_sizes =
      smoke ? std::vector<unsigned>{4u} : std::vector<unsigned>{4u, 8u};
  for (const std::size_t m : secsum_sizes) {
    // Inputs shared by both harnesses.
    eppi::Rng rng(m);
    std::vector<std::vector<std::uint8_t>> inputs(
        m, std::vector<std::uint8_t>(kN));
    for (auto& row : inputs) {
      for (auto& bit : row) bit = rng.bernoulli(0.3) ? 1 : 0;
    }
    const eppi::secret::SecSumShareParams params{3, 0, kN};
    const auto body = [&](PartyContext& ctx, std::size_t i) {
      (void)eppi::secret::run_sec_sum_share_party(ctx, params, inputs[i]);
    };
    AblationRow arow{"secsumshare", m, run_inproc(m, body), run_tcp(m, body)};
    table.add_row({arow.protocol, std::to_string(m),
                   eppi::bench::fmt(arow.inproc_ms, 2),
                   eppi::bench::fmt(arow.tcp_ms, 2)});
    ablation.push_back(std::move(arow));
  }

  const std::vector<unsigned> construction_sizes =
      smoke ? std::vector<unsigned>{4u} : std::vector<unsigned>{4u, 6u};
  for (const std::size_t m : construction_sizes) {
    eppi::Rng rng(m + 50);
    std::vector<std::vector<std::uint8_t>> rows(
        m, std::vector<std::uint8_t>(8));
    for (auto& row : rows) {
      for (auto& bit : row) bit = rng.bernoulli(0.4) ? 1 : 0;
    }
    const auto epsilons = eppi::dataset::random_epsilons(8, rng, 0.3, 0.7);
    eppi::core::DistributedOptions options;
    options.c = 3;
    options.coin_bits = 8;
    const auto body = [&](PartyContext& ctx, std::size_t i) {
      (void)eppi::core::run_construction_party(ctx, rows[i], epsilons,
                                               options);
    };
    AblationRow arow{"construction", m, run_inproc(m, body),
                     run_tcp(m, body)};
    table.add_row({arow.protocol, std::to_string(m),
                   eppi::bench::fmt(arow.inproc_ms, 2),
                   eppi::bench::fmt(arow.tcp_ms, 2)});
    ablation.push_back(std::move(arow));
  }
  table.print("Transport ablation: in-process vs loopback TCP");

  const RttResult rtt = measure_loopback_rtt(smoke ? 100 : 500);
  eppi::bench::ResultTable rtt_table({"iters", "p50-us", "avg-us"});
  rtt_table.add_row({std::to_string(rtt.iters), eppi::bench::fmt(rtt.p50_us, 1),
                     eppi::bench::fmt(rtt.avg_us, 1)});
  rtt_table.print("Loopback application-level round trip (1-byte echo)");

  std::cout << "\nLoopback TCP adds connection setup + syscall/framing "
               "overhead; on a real\nnetwork the cost model's RTT and "
               "bandwidth terms dominate instead. Calibrate\n"
               "CostModel::rtt with (your ping) + (p50 above) as the "
               "per-round floor.\n";

  write_json(json_path, smoke, rtt, ablation);
  return 0;
}
