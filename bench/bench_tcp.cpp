// Transport ablation: in-process cluster vs. real loopback TCP.
//
// Every protocol runs on both harnesses through the same PartyContext; this
// bench quantifies what the socket path adds (syscalls, framing, TCP stack)
// for the two construction stages, so deployments can extrapolate from the
// in-process benches. On a real LAN the cost model's RTT/bandwidth terms
// dominate instead — see net/cost_model.h.
#include <chrono>
#include <cstddef>
#include <functional>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/construction_party.h"
#include "dataset/synthetic.h"
#include "net/cluster.h"
#include "net/socket_transport.h"
#include "secret/sec_sum_share.h"

namespace {

using eppi::net::Endpoint;
using eppi::net::PartyContext;
using eppi::net::PartyId;

std::uint16_t find_port_base(std::size_t count) {
  static std::uint16_t cursor = static_cast<std::uint16_t>(
      23000 + (::getpid() * 37) % 8000);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::uint16_t base = cursor;
    cursor = static_cast<std::uint16_t>(cursor + count + 1);
    bool all_free = true;
    for (std::size_t k = 0; k < count && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return base;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  return 23000;
}

double run_inproc(std::size_t m,
                  const std::function<void(PartyContext&, std::size_t)>& body) {
  eppi::net::Cluster cluster(m, 3);
  const auto start = std::chrono::steady_clock::now();
  cluster.run([&](PartyContext& ctx) { body(ctx, ctx.id()); });
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double run_tcp(std::size_t m,
               const std::function<void(PartyContext&, std::size_t)>& body) {
  const std::uint16_t base = find_port_base(m);
  std::vector<Endpoint> endpoints(m);
  for (std::size_t i = 0; i < m; ++i) {
    endpoints[i].port = static_cast<std::uint16_t>(base + i);
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      eppi::net::SocketRuntime runtime(static_cast<PartyId>(i), endpoints, 3);
      body(runtime.context(), i);
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  constexpr std::size_t kN = 64;  // identities
  eppi::bench::ResultTable table(
      {"protocol", "parties", "inproc-ms", "tcp-ms"});

  for (const std::size_t m : {4u, 8u}) {
    // Inputs shared by both harnesses.
    eppi::Rng rng(m);
    std::vector<std::vector<std::uint8_t>> inputs(
        m, std::vector<std::uint8_t>(kN));
    for (auto& row : inputs) {
      for (auto& bit : row) bit = rng.bernoulli(0.3) ? 1 : 0;
    }
    const eppi::secret::SecSumShareParams params{3, 0, kN};
    const auto body = [&](PartyContext& ctx, std::size_t i) {
      (void)eppi::secret::run_sec_sum_share_party(ctx, params, inputs[i]);
    };
    table.add_row({"secsumshare", std::to_string(m),
                   eppi::bench::fmt(run_inproc(m, body), 2),
                   eppi::bench::fmt(run_tcp(m, body), 2)});
  }

  for (const std::size_t m : {4u, 6u}) {
    eppi::Rng rng(m + 50);
    std::vector<std::vector<std::uint8_t>> rows(
        m, std::vector<std::uint8_t>(8));
    for (auto& row : rows) {
      for (auto& bit : row) bit = rng.bernoulli(0.4) ? 1 : 0;
    }
    const auto epsilons = eppi::dataset::random_epsilons(8, rng, 0.3, 0.7);
    eppi::core::DistributedOptions options;
    options.c = 3;
    options.coin_bits = 8;
    const auto body = [&](PartyContext& ctx, std::size_t i) {
      (void)eppi::core::run_construction_party(ctx, rows[i], epsilons,
                                               options);
    };
    table.add_row({"construction", std::to_string(m),
                   eppi::bench::fmt(run_inproc(m, body), 2),
                   eppi::bench::fmt(run_tcp(m, body), 2)});
  }
  table.print("Transport ablation: in-process vs loopback TCP");
  std::cout << "\nLoopback TCP adds connection setup + syscall/framing "
               "overhead; on a real\nnetwork the cost model's RTT and "
               "bandwidth terms dominate instead.\n";
  return 0;
}
