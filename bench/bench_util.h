// Shared output helpers for the figure/table reproduction benches.
//
// Every bench prints (a) a human-readable aligned table and (b) the same
// rows as machine-readable CSV lines prefixed with "csv," so results can be
// scraped into plots: `./bench_fig5a | grep ^csv, | cut -d, -f2-`.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/build_info.h"
#include "obs/json_escape.h"

namespace eppi::bench {

class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(const std::string& title) const {
    std::cout << "\n== " << title << " ==\n";
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        std::cout << "  " << cell
                  << std::string(widths[c] - cell.size(), ' ');
      }
      std::cout << '\n';
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    // CSV mirror.
    for (const auto& row : rows_) {
      std::cout << "csv";
      for (const auto& cell : row) std::cout << ',' << cell;
      std::cout << '\n';
    }
    std::cout.flush();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// Build-provenance object for BENCH_*.json snapshots: the same
// version/sha/compiler triple the eppi_build_info gauge exports, so a
// committed baseline records which build produced its numbers. All-string
// fields — scripts/check_bench.py only gates numeric leaves, so baselines
// from a different build still compare clean.
inline std::string build_info_json() {
  return std::string("{\"version\": \"") +
         obs::json_escape(obs::build_version()) + "\", \"sha\": \"" +
         obs::json_escape(obs::build_git_sha()) + "\", \"compiler\": \"" +
         obs::json_escape(obs::build_compiler()) + "\"}";
}

}  // namespace eppi::bench
