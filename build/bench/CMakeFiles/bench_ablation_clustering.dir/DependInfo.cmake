
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_clustering.cpp" "bench/CMakeFiles/bench_ablation_clustering.dir/bench_ablation_clustering.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_clustering.dir/bench_ablation_clustering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eppi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secret/CMakeFiles/eppi_secret.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/eppi_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/eppi_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eppi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/eppi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/eppi_attack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
