file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mpc.dir/bench_ablation_mpc.cpp.o"
  "CMakeFiles/bench_ablation_mpc.dir/bench_ablation_mpc.cpp.o.d"
  "bench_ablation_mpc"
  "bench_ablation_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
