# Empty compiler generated dependencies file for bench_ablation_mpc.
# This may be replaced when dependencies are built.
