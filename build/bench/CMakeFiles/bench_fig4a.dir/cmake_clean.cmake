file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a.dir/bench_fig4a.cpp.o"
  "CMakeFiles/bench_fig4a.dir/bench_fig4a.cpp.o.d"
  "bench_fig4a"
  "bench_fig4a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
