file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a.dir/bench_fig5a.cpp.o"
  "CMakeFiles/bench_fig5a.dir/bench_fig5a.cpp.o.d"
  "bench_fig5a"
  "bench_fig5a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
