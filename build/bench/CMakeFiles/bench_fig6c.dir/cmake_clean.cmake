file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c.dir/bench_fig6c.cpp.o"
  "CMakeFiles/bench_fig6c.dir/bench_fig6c.cpp.o.d"
  "bench_fig6c"
  "bench_fig6c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
