file(REMOVE_RECURSE
  "CMakeFiles/bench_search_overhead.dir/bench_search_overhead.cpp.o"
  "CMakeFiles/bench_search_overhead.dir/bench_search_overhead.cpp.o.d"
  "bench_search_overhead"
  "bench_search_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
