# Empty compiler generated dependencies file for bench_search_overhead.
# This may be replaced when dependencies are built.
