# Empty compiler generated dependencies file for bench_tcp.
# This may be replaced when dependencies are built.
