file(REMOVE_RECURSE
  "CMakeFiles/epoch_refresh.dir/epoch_refresh.cpp.o"
  "CMakeFiles/epoch_refresh.dir/epoch_refresh.cpp.o.d"
  "epoch_refresh"
  "epoch_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
