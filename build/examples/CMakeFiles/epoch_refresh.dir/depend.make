# Empty dependencies file for epoch_refresh.
# This may be replaced when dependencies are built.
