file(REMOVE_RECURSE
  "CMakeFiles/federated_search.dir/federated_search.cpp.o"
  "CMakeFiles/federated_search.dir/federated_search.cpp.o.d"
  "federated_search"
  "federated_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
