file(REMOVE_RECURSE
  "CMakeFiles/hie_network.dir/hie_network.cpp.o"
  "CMakeFiles/hie_network.dir/hie_network.cpp.o.d"
  "hie_network"
  "hie_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hie_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
