# Empty compiler generated dependencies file for hie_network.
# This may be replaced when dependencies are built.
