file(REMOVE_RECURSE
  "CMakeFiles/network_stats.dir/network_stats.cpp.o"
  "CMakeFiles/network_stats.dir/network_stats.cpp.o.d"
  "network_stats"
  "network_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
