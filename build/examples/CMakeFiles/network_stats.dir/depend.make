# Empty dependencies file for network_stats.
# This may be replaced when dependencies are built.
