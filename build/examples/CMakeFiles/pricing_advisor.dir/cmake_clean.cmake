file(REMOVE_RECURSE
  "CMakeFiles/pricing_advisor.dir/pricing_advisor.cpp.o"
  "CMakeFiles/pricing_advisor.dir/pricing_advisor.cpp.o.d"
  "pricing_advisor"
  "pricing_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
