# Empty compiler generated dependencies file for pricing_advisor.
# This may be replaced when dependencies are built.
