
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/beta_inversion.cpp" "src/attack/CMakeFiles/eppi_attack.dir/beta_inversion.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/beta_inversion.cpp.o.d"
  "/root/repo/src/attack/collusion.cpp" "src/attack/CMakeFiles/eppi_attack.dir/collusion.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/collusion.cpp.o.d"
  "/root/repo/src/attack/collusion_attack.cpp" "src/attack/CMakeFiles/eppi_attack.dir/collusion_attack.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/collusion_attack.cpp.o.d"
  "/root/repo/src/attack/common_identity_attack.cpp" "src/attack/CMakeFiles/eppi_attack.dir/common_identity_attack.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/common_identity_attack.cpp.o.d"
  "/root/repo/src/attack/primary_attack.cpp" "src/attack/CMakeFiles/eppi_attack.dir/primary_attack.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/primary_attack.cpp.o.d"
  "/root/repo/src/attack/privacy_degree.cpp" "src/attack/CMakeFiles/eppi_attack.dir/privacy_degree.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/privacy_degree.cpp.o.d"
  "/root/repo/src/attack/threat_report.cpp" "src/attack/CMakeFiles/eppi_attack.dir/threat_report.cpp.o" "gcc" "src/attack/CMakeFiles/eppi_attack.dir/threat_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eppi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/secret/CMakeFiles/eppi_secret.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/eppi_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eppi_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
