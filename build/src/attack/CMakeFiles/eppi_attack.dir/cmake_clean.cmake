file(REMOVE_RECURSE
  "CMakeFiles/eppi_attack.dir/beta_inversion.cpp.o"
  "CMakeFiles/eppi_attack.dir/beta_inversion.cpp.o.d"
  "CMakeFiles/eppi_attack.dir/collusion.cpp.o"
  "CMakeFiles/eppi_attack.dir/collusion.cpp.o.d"
  "CMakeFiles/eppi_attack.dir/collusion_attack.cpp.o"
  "CMakeFiles/eppi_attack.dir/collusion_attack.cpp.o.d"
  "CMakeFiles/eppi_attack.dir/common_identity_attack.cpp.o"
  "CMakeFiles/eppi_attack.dir/common_identity_attack.cpp.o.d"
  "CMakeFiles/eppi_attack.dir/primary_attack.cpp.o"
  "CMakeFiles/eppi_attack.dir/primary_attack.cpp.o.d"
  "CMakeFiles/eppi_attack.dir/privacy_degree.cpp.o"
  "CMakeFiles/eppi_attack.dir/privacy_degree.cpp.o.d"
  "CMakeFiles/eppi_attack.dir/threat_report.cpp.o"
  "CMakeFiles/eppi_attack.dir/threat_report.cpp.o.d"
  "libeppi_attack.a"
  "libeppi_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
