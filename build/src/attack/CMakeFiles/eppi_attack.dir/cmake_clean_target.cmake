file(REMOVE_RECURSE
  "libeppi_attack.a"
)
