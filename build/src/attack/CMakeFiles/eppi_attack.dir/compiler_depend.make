# Empty compiler generated dependencies file for eppi_attack.
# This may be replaced when dependencies are built.
