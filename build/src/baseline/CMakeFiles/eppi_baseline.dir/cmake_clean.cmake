file(REMOVE_RECURSE
  "CMakeFiles/eppi_baseline.dir/grouping_ppi.cpp.o"
  "CMakeFiles/eppi_baseline.dir/grouping_ppi.cpp.o.d"
  "CMakeFiles/eppi_baseline.dir/pure_mpc_runner.cpp.o"
  "CMakeFiles/eppi_baseline.dir/pure_mpc_runner.cpp.o.d"
  "libeppi_baseline.a"
  "libeppi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
