file(REMOVE_RECURSE
  "libeppi_baseline.a"
)
