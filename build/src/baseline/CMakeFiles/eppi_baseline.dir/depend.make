# Empty dependencies file for eppi_baseline.
# This may be replaced when dependencies are built.
