file(REMOVE_RECURSE
  "CMakeFiles/eppi_common.dir/bit_matrix.cpp.o"
  "CMakeFiles/eppi_common.dir/bit_matrix.cpp.o.d"
  "CMakeFiles/eppi_common.dir/logging.cpp.o"
  "CMakeFiles/eppi_common.dir/logging.cpp.o.d"
  "CMakeFiles/eppi_common.dir/rng.cpp.o"
  "CMakeFiles/eppi_common.dir/rng.cpp.o.d"
  "CMakeFiles/eppi_common.dir/serialize.cpp.o"
  "CMakeFiles/eppi_common.dir/serialize.cpp.o.d"
  "CMakeFiles/eppi_common.dir/stats.cpp.o"
  "CMakeFiles/eppi_common.dir/stats.cpp.o.d"
  "CMakeFiles/eppi_common.dir/zipf.cpp.o"
  "CMakeFiles/eppi_common.dir/zipf.cpp.o.d"
  "libeppi_common.a"
  "libeppi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
