file(REMOVE_RECURSE
  "libeppi_common.a"
)
