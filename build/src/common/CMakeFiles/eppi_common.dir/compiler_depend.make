# Empty compiler generated dependencies file for eppi_common.
# This may be replaced when dependencies are built.
