
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/eppi_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/auth_search.cpp" "src/core/CMakeFiles/eppi_core.dir/auth_search.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/auth_search.cpp.o.d"
  "/root/repo/src/core/beta_policy.cpp" "src/core/CMakeFiles/eppi_core.dir/beta_policy.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/beta_policy.cpp.o.d"
  "/root/repo/src/core/construction_party.cpp" "src/core/CMakeFiles/eppi_core.dir/construction_party.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/construction_party.cpp.o.d"
  "/root/repo/src/core/constructor.cpp" "src/core/CMakeFiles/eppi_core.dir/constructor.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/constructor.cpp.o.d"
  "/root/repo/src/core/distributed_constructor.cpp" "src/core/CMakeFiles/eppi_core.dir/distributed_constructor.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/distributed_constructor.cpp.o.d"
  "/root/repo/src/core/epoch_manager.cpp" "src/core/CMakeFiles/eppi_core.dir/epoch_manager.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/epoch_manager.cpp.o.d"
  "/root/repo/src/core/guarantee.cpp" "src/core/CMakeFiles/eppi_core.dir/guarantee.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/guarantee.cpp.o.d"
  "/root/repo/src/core/index_io.cpp" "src/core/CMakeFiles/eppi_core.dir/index_io.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/index_io.cpp.o.d"
  "/root/repo/src/core/locator_service.cpp" "src/core/CMakeFiles/eppi_core.dir/locator_service.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/locator_service.cpp.o.d"
  "/root/repo/src/core/mixing.cpp" "src/core/CMakeFiles/eppi_core.dir/mixing.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/mixing.cpp.o.d"
  "/root/repo/src/core/posting_index.cpp" "src/core/CMakeFiles/eppi_core.dir/posting_index.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/posting_index.cpp.o.d"
  "/root/repo/src/core/ppi_index.cpp" "src/core/CMakeFiles/eppi_core.dir/ppi_index.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/ppi_index.cpp.o.d"
  "/root/repo/src/core/publisher.cpp" "src/core/CMakeFiles/eppi_core.dir/publisher.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/publisher.cpp.o.d"
  "/root/repo/src/core/sticky_publisher.cpp" "src/core/CMakeFiles/eppi_core.dir/sticky_publisher.cpp.o" "gcc" "src/core/CMakeFiles/eppi_core.dir/sticky_publisher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eppi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secret/CMakeFiles/eppi_secret.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/eppi_mpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
