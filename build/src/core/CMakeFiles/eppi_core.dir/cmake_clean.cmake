file(REMOVE_RECURSE
  "CMakeFiles/eppi_core.dir/advisor.cpp.o"
  "CMakeFiles/eppi_core.dir/advisor.cpp.o.d"
  "CMakeFiles/eppi_core.dir/auth_search.cpp.o"
  "CMakeFiles/eppi_core.dir/auth_search.cpp.o.d"
  "CMakeFiles/eppi_core.dir/beta_policy.cpp.o"
  "CMakeFiles/eppi_core.dir/beta_policy.cpp.o.d"
  "CMakeFiles/eppi_core.dir/construction_party.cpp.o"
  "CMakeFiles/eppi_core.dir/construction_party.cpp.o.d"
  "CMakeFiles/eppi_core.dir/constructor.cpp.o"
  "CMakeFiles/eppi_core.dir/constructor.cpp.o.d"
  "CMakeFiles/eppi_core.dir/distributed_constructor.cpp.o"
  "CMakeFiles/eppi_core.dir/distributed_constructor.cpp.o.d"
  "CMakeFiles/eppi_core.dir/epoch_manager.cpp.o"
  "CMakeFiles/eppi_core.dir/epoch_manager.cpp.o.d"
  "CMakeFiles/eppi_core.dir/guarantee.cpp.o"
  "CMakeFiles/eppi_core.dir/guarantee.cpp.o.d"
  "CMakeFiles/eppi_core.dir/index_io.cpp.o"
  "CMakeFiles/eppi_core.dir/index_io.cpp.o.d"
  "CMakeFiles/eppi_core.dir/locator_service.cpp.o"
  "CMakeFiles/eppi_core.dir/locator_service.cpp.o.d"
  "CMakeFiles/eppi_core.dir/mixing.cpp.o"
  "CMakeFiles/eppi_core.dir/mixing.cpp.o.d"
  "CMakeFiles/eppi_core.dir/posting_index.cpp.o"
  "CMakeFiles/eppi_core.dir/posting_index.cpp.o.d"
  "CMakeFiles/eppi_core.dir/ppi_index.cpp.o"
  "CMakeFiles/eppi_core.dir/ppi_index.cpp.o.d"
  "CMakeFiles/eppi_core.dir/publisher.cpp.o"
  "CMakeFiles/eppi_core.dir/publisher.cpp.o.d"
  "CMakeFiles/eppi_core.dir/sticky_publisher.cpp.o"
  "CMakeFiles/eppi_core.dir/sticky_publisher.cpp.o.d"
  "libeppi_core.a"
  "libeppi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
