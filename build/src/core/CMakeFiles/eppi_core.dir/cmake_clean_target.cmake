file(REMOVE_RECURSE
  "libeppi_core.a"
)
