# Empty compiler generated dependencies file for eppi_core.
# This may be replaced when dependencies are built.
