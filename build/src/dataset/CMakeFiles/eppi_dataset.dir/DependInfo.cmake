
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/collection_table.cpp" "src/dataset/CMakeFiles/eppi_dataset.dir/collection_table.cpp.o" "gcc" "src/dataset/CMakeFiles/eppi_dataset.dir/collection_table.cpp.o.d"
  "/root/repo/src/dataset/evolution.cpp" "src/dataset/CMakeFiles/eppi_dataset.dir/evolution.cpp.o" "gcc" "src/dataset/CMakeFiles/eppi_dataset.dir/evolution.cpp.o.d"
  "/root/repo/src/dataset/hie_model.cpp" "src/dataset/CMakeFiles/eppi_dataset.dir/hie_model.cpp.o" "gcc" "src/dataset/CMakeFiles/eppi_dataset.dir/hie_model.cpp.o.d"
  "/root/repo/src/dataset/synthetic.cpp" "src/dataset/CMakeFiles/eppi_dataset.dir/synthetic.cpp.o" "gcc" "src/dataset/CMakeFiles/eppi_dataset.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
