file(REMOVE_RECURSE
  "CMakeFiles/eppi_dataset.dir/collection_table.cpp.o"
  "CMakeFiles/eppi_dataset.dir/collection_table.cpp.o.d"
  "CMakeFiles/eppi_dataset.dir/evolution.cpp.o"
  "CMakeFiles/eppi_dataset.dir/evolution.cpp.o.d"
  "CMakeFiles/eppi_dataset.dir/hie_model.cpp.o"
  "CMakeFiles/eppi_dataset.dir/hie_model.cpp.o.d"
  "CMakeFiles/eppi_dataset.dir/synthetic.cpp.o"
  "CMakeFiles/eppi_dataset.dir/synthetic.cpp.o.d"
  "libeppi_dataset.a"
  "libeppi_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
