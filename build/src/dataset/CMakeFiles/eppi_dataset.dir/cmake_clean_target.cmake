file(REMOVE_RECURSE
  "libeppi_dataset.a"
)
