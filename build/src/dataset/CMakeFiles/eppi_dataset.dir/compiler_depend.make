# Empty compiler generated dependencies file for eppi_dataset.
# This may be replaced when dependencies are built.
