
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/arith.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/arith.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/arith.cpp.o.d"
  "/root/repo/src/mpc/beaver.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/beaver.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/beaver.cpp.o.d"
  "/root/repo/src/mpc/circuit.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/circuit.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/circuit.cpp.o.d"
  "/root/repo/src/mpc/circuit_builder.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/circuit_builder.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/circuit_builder.cpp.o.d"
  "/root/repo/src/mpc/circuit_io.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/circuit_io.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/circuit_io.cpp.o.d"
  "/root/repo/src/mpc/eppi_circuits.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/eppi_circuits.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/eppi_circuits.cpp.o.d"
  "/root/repo/src/mpc/garbled.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/garbled.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/garbled.cpp.o.d"
  "/root/repo/src/mpc/gmw.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/gmw.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/gmw.cpp.o.d"
  "/root/repo/src/mpc/optimizer.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/optimizer.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/optimizer.cpp.o.d"
  "/root/repo/src/mpc/plain_eval.cpp" "src/mpc/CMakeFiles/eppi_mpc.dir/plain_eval.cpp.o" "gcc" "src/mpc/CMakeFiles/eppi_mpc.dir/plain_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eppi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secret/CMakeFiles/eppi_secret.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
