file(REMOVE_RECURSE
  "CMakeFiles/eppi_mpc.dir/arith.cpp.o"
  "CMakeFiles/eppi_mpc.dir/arith.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/beaver.cpp.o"
  "CMakeFiles/eppi_mpc.dir/beaver.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/circuit.cpp.o"
  "CMakeFiles/eppi_mpc.dir/circuit.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/circuit_builder.cpp.o"
  "CMakeFiles/eppi_mpc.dir/circuit_builder.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/circuit_io.cpp.o"
  "CMakeFiles/eppi_mpc.dir/circuit_io.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/eppi_circuits.cpp.o"
  "CMakeFiles/eppi_mpc.dir/eppi_circuits.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/garbled.cpp.o"
  "CMakeFiles/eppi_mpc.dir/garbled.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/gmw.cpp.o"
  "CMakeFiles/eppi_mpc.dir/gmw.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/optimizer.cpp.o"
  "CMakeFiles/eppi_mpc.dir/optimizer.cpp.o.d"
  "CMakeFiles/eppi_mpc.dir/plain_eval.cpp.o"
  "CMakeFiles/eppi_mpc.dir/plain_eval.cpp.o.d"
  "libeppi_mpc.a"
  "libeppi_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
