file(REMOVE_RECURSE
  "libeppi_mpc.a"
)
