# Empty compiler generated dependencies file for eppi_mpc.
# This may be replaced when dependencies are built.
