
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cluster.cpp" "src/net/CMakeFiles/eppi_net.dir/cluster.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/cluster.cpp.o.d"
  "/root/repo/src/net/cost_meter.cpp" "src/net/CMakeFiles/eppi_net.dir/cost_meter.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/cost_meter.cpp.o.d"
  "/root/repo/src/net/cost_model.cpp" "src/net/CMakeFiles/eppi_net.dir/cost_model.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/cost_model.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "src/net/CMakeFiles/eppi_net.dir/mailbox.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/mailbox.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/eppi_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/message.cpp.o.d"
  "/root/repo/src/net/socket_transport.cpp" "src/net/CMakeFiles/eppi_net.dir/socket_transport.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/socket_transport.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/net/CMakeFiles/eppi_net.dir/transport.cpp.o" "gcc" "src/net/CMakeFiles/eppi_net.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
