file(REMOVE_RECURSE
  "CMakeFiles/eppi_net.dir/cluster.cpp.o"
  "CMakeFiles/eppi_net.dir/cluster.cpp.o.d"
  "CMakeFiles/eppi_net.dir/cost_meter.cpp.o"
  "CMakeFiles/eppi_net.dir/cost_meter.cpp.o.d"
  "CMakeFiles/eppi_net.dir/cost_model.cpp.o"
  "CMakeFiles/eppi_net.dir/cost_model.cpp.o.d"
  "CMakeFiles/eppi_net.dir/mailbox.cpp.o"
  "CMakeFiles/eppi_net.dir/mailbox.cpp.o.d"
  "CMakeFiles/eppi_net.dir/message.cpp.o"
  "CMakeFiles/eppi_net.dir/message.cpp.o.d"
  "CMakeFiles/eppi_net.dir/socket_transport.cpp.o"
  "CMakeFiles/eppi_net.dir/socket_transport.cpp.o.d"
  "CMakeFiles/eppi_net.dir/transport.cpp.o"
  "CMakeFiles/eppi_net.dir/transport.cpp.o.d"
  "libeppi_net.a"
  "libeppi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
