file(REMOVE_RECURSE
  "libeppi_net.a"
)
