# Empty compiler generated dependencies file for eppi_net.
# This may be replaced when dependencies are built.
