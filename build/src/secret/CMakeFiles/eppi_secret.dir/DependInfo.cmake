
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secret/additive_share.cpp" "src/secret/CMakeFiles/eppi_secret.dir/additive_share.cpp.o" "gcc" "src/secret/CMakeFiles/eppi_secret.dir/additive_share.cpp.o.d"
  "/root/repo/src/secret/mod_ring.cpp" "src/secret/CMakeFiles/eppi_secret.dir/mod_ring.cpp.o" "gcc" "src/secret/CMakeFiles/eppi_secret.dir/mod_ring.cpp.o.d"
  "/root/repo/src/secret/reshare.cpp" "src/secret/CMakeFiles/eppi_secret.dir/reshare.cpp.o" "gcc" "src/secret/CMakeFiles/eppi_secret.dir/reshare.cpp.o.d"
  "/root/repo/src/secret/sec_sum_share.cpp" "src/secret/CMakeFiles/eppi_secret.dir/sec_sum_share.cpp.o" "gcc" "src/secret/CMakeFiles/eppi_secret.dir/sec_sum_share.cpp.o.d"
  "/root/repo/src/secret/secure_aggregates.cpp" "src/secret/CMakeFiles/eppi_secret.dir/secure_aggregates.cpp.o" "gcc" "src/secret/CMakeFiles/eppi_secret.dir/secure_aggregates.cpp.o.d"
  "/root/repo/src/secret/xor_share.cpp" "src/secret/CMakeFiles/eppi_secret.dir/xor_share.cpp.o" "gcc" "src/secret/CMakeFiles/eppi_secret.dir/xor_share.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eppi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/eppi_mpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
