file(REMOVE_RECURSE
  "CMakeFiles/eppi_secret.dir/additive_share.cpp.o"
  "CMakeFiles/eppi_secret.dir/additive_share.cpp.o.d"
  "CMakeFiles/eppi_secret.dir/mod_ring.cpp.o"
  "CMakeFiles/eppi_secret.dir/mod_ring.cpp.o.d"
  "CMakeFiles/eppi_secret.dir/reshare.cpp.o"
  "CMakeFiles/eppi_secret.dir/reshare.cpp.o.d"
  "CMakeFiles/eppi_secret.dir/sec_sum_share.cpp.o"
  "CMakeFiles/eppi_secret.dir/sec_sum_share.cpp.o.d"
  "CMakeFiles/eppi_secret.dir/secure_aggregates.cpp.o"
  "CMakeFiles/eppi_secret.dir/secure_aggregates.cpp.o.d"
  "CMakeFiles/eppi_secret.dir/xor_share.cpp.o"
  "CMakeFiles/eppi_secret.dir/xor_share.cpp.o.d"
  "libeppi_secret.a"
  "libeppi_secret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_secret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
