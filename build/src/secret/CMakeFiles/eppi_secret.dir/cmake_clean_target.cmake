file(REMOVE_RECURSE
  "libeppi_secret.a"
)
