# Empty dependencies file for eppi_secret.
# This may be replaced when dependencies are built.
