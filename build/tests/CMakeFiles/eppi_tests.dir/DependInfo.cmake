
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/attack_test.cpp" "tests/CMakeFiles/eppi_tests.dir/attack/attack_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/attack/attack_test.cpp.o.d"
  "/root/repo/tests/attack/beta_inversion_test.cpp" "tests/CMakeFiles/eppi_tests.dir/attack/beta_inversion_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/attack/beta_inversion_test.cpp.o.d"
  "/root/repo/tests/attack/collusion_attack_test.cpp" "tests/CMakeFiles/eppi_tests.dir/attack/collusion_attack_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/attack/collusion_attack_test.cpp.o.d"
  "/root/repo/tests/attack/threat_report_test.cpp" "tests/CMakeFiles/eppi_tests.dir/attack/threat_report_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/attack/threat_report_test.cpp.o.d"
  "/root/repo/tests/baseline/grouping_test.cpp" "tests/CMakeFiles/eppi_tests.dir/baseline/grouping_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/baseline/grouping_test.cpp.o.d"
  "/root/repo/tests/baseline/pure_mpc_test.cpp" "tests/CMakeFiles/eppi_tests.dir/baseline/pure_mpc_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/baseline/pure_mpc_test.cpp.o.d"
  "/root/repo/tests/common/bit_matrix_test.cpp" "tests/CMakeFiles/eppi_tests.dir/common/bit_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/common/bit_matrix_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/eppi_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/serialize_fuzz_test.cpp" "tests/CMakeFiles/eppi_tests.dir/common/serialize_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/common/serialize_fuzz_test.cpp.o.d"
  "/root/repo/tests/common/serialize_test.cpp" "tests/CMakeFiles/eppi_tests.dir/common/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/common/serialize_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/eppi_tests.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/zipf_test.cpp" "tests/CMakeFiles/eppi_tests.dir/common/zipf_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/common/zipf_test.cpp.o.d"
  "/root/repo/tests/core/advisor_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/advisor_test.cpp.o.d"
  "/root/repo/tests/core/beta_policy_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/beta_policy_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/beta_policy_test.cpp.o.d"
  "/root/repo/tests/core/constructor_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/constructor_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/constructor_test.cpp.o.d"
  "/root/repo/tests/core/distributed_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/distributed_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/distributed_test.cpp.o.d"
  "/root/repo/tests/core/epoch_manager_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/epoch_manager_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/epoch_manager_test.cpp.o.d"
  "/root/repo/tests/core/exact_policy_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/exact_policy_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/exact_policy_test.cpp.o.d"
  "/root/repo/tests/core/guarantee_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/guarantee_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/guarantee_test.cpp.o.d"
  "/root/repo/tests/core/index_io_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/index_io_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/index_io_test.cpp.o.d"
  "/root/repo/tests/core/locator_service_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/locator_service_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/locator_service_test.cpp.o.d"
  "/root/repo/tests/core/mixing_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/mixing_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/mixing_test.cpp.o.d"
  "/root/repo/tests/core/posting_index_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/posting_index_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/posting_index_test.cpp.o.d"
  "/root/repo/tests/core/ppi_index_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/ppi_index_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/ppi_index_test.cpp.o.d"
  "/root/repo/tests/core/publisher_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/publisher_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/publisher_test.cpp.o.d"
  "/root/repo/tests/core/sticky_publisher_test.cpp" "tests/CMakeFiles/eppi_tests.dir/core/sticky_publisher_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/core/sticky_publisher_test.cpp.o.d"
  "/root/repo/tests/dataset/dataset_test.cpp" "tests/CMakeFiles/eppi_tests.dir/dataset/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/dataset/dataset_test.cpp.o.d"
  "/root/repo/tests/dataset/evolution_test.cpp" "tests/CMakeFiles/eppi_tests.dir/dataset/evolution_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/dataset/evolution_test.cpp.o.d"
  "/root/repo/tests/dataset/hie_model_test.cpp" "tests/CMakeFiles/eppi_tests.dir/dataset/hie_model_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/dataset/hie_model_test.cpp.o.d"
  "/root/repo/tests/integration/constructor_sweep_test.cpp" "tests/CMakeFiles/eppi_tests.dir/integration/constructor_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/integration/constructor_sweep_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/eppi_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/lifecycle_test.cpp" "tests/CMakeFiles/eppi_tests.dir/integration/lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/integration/lifecycle_test.cpp.o.d"
  "/root/repo/tests/integration/metamorphic_test.cpp" "tests/CMakeFiles/eppi_tests.dir/integration/metamorphic_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/integration/metamorphic_test.cpp.o.d"
  "/root/repo/tests/mpc/arith_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/arith_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/arith_test.cpp.o.d"
  "/root/repo/tests/mpc/beaver_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/beaver_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/beaver_test.cpp.o.d"
  "/root/repo/tests/mpc/circuit_builder_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/circuit_builder_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/circuit_builder_test.cpp.o.d"
  "/root/repo/tests/mpc/circuit_io_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/circuit_io_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/circuit_io_test.cpp.o.d"
  "/root/repo/tests/mpc/eppi_circuits_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/eppi_circuits_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/eppi_circuits_test.cpp.o.d"
  "/root/repo/tests/mpc/garbled_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/garbled_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/garbled_test.cpp.o.d"
  "/root/repo/tests/mpc/gmw_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/gmw_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/gmw_test.cpp.o.d"
  "/root/repo/tests/mpc/optimizer_test.cpp" "tests/CMakeFiles/eppi_tests.dir/mpc/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/mpc/optimizer_test.cpp.o.d"
  "/root/repo/tests/net/cluster_test.cpp" "tests/CMakeFiles/eppi_tests.dir/net/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/net/cluster_test.cpp.o.d"
  "/root/repo/tests/net/cost_model_test.cpp" "tests/CMakeFiles/eppi_tests.dir/net/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/net/cost_model_test.cpp.o.d"
  "/root/repo/tests/net/failure_injection_test.cpp" "tests/CMakeFiles/eppi_tests.dir/net/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/net/failure_injection_test.cpp.o.d"
  "/root/repo/tests/net/mailbox_test.cpp" "tests/CMakeFiles/eppi_tests.dir/net/mailbox_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/net/mailbox_test.cpp.o.d"
  "/root/repo/tests/net/socket_transport_test.cpp" "tests/CMakeFiles/eppi_tests.dir/net/socket_transport_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/net/socket_transport_test.cpp.o.d"
  "/root/repo/tests/secret/additive_share_test.cpp" "tests/CMakeFiles/eppi_tests.dir/secret/additive_share_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/secret/additive_share_test.cpp.o.d"
  "/root/repo/tests/secret/mod_ring_test.cpp" "tests/CMakeFiles/eppi_tests.dir/secret/mod_ring_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/secret/mod_ring_test.cpp.o.d"
  "/root/repo/tests/secret/reshare_test.cpp" "tests/CMakeFiles/eppi_tests.dir/secret/reshare_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/secret/reshare_test.cpp.o.d"
  "/root/repo/tests/secret/sec_sum_share_test.cpp" "tests/CMakeFiles/eppi_tests.dir/secret/sec_sum_share_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/secret/sec_sum_share_test.cpp.o.d"
  "/root/repo/tests/secret/secure_aggregates_test.cpp" "tests/CMakeFiles/eppi_tests.dir/secret/secure_aggregates_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/secret/secure_aggregates_test.cpp.o.d"
  "/root/repo/tests/secret/xor_share_test.cpp" "tests/CMakeFiles/eppi_tests.dir/secret/xor_share_test.cpp.o" "gcc" "tests/CMakeFiles/eppi_tests.dir/secret/xor_share_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eppi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eppi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secret/CMakeFiles/eppi_secret.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/eppi_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/eppi_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eppi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/eppi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/eppi_attack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
