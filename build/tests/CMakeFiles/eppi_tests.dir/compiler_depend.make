# Empty compiler generated dependencies file for eppi_tests.
# This may be replaced when dependencies are built.
