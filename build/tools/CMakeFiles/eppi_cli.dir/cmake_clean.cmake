file(REMOVE_RECURSE
  "CMakeFiles/eppi_cli.dir/eppi_cli.cpp.o"
  "CMakeFiles/eppi_cli.dir/eppi_cli.cpp.o.d"
  "eppi_cli"
  "eppi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eppi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
