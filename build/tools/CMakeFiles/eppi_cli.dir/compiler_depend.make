# Empty compiler generated dependencies file for eppi_cli.
# This may be replaced when dependencies are built.
