# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_build "/root/repo/build/tools/eppi_cli" "build" "/root/repo/build/tools/cli_sample.csv" "/root/repo/build/tools/cli.idx" "--eps" "0.6" "--seed" "3")
set_tests_properties(cli_build PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_build_distributed "/root/repo/build/tools/eppi_cli" "build" "/root/repo/build/tools/cli_sample.csv" "/root/repo/build/tools/cli_dist.idx" "--distributed" "--c" "3" "--eps" "0.5")
set_tests_properties(cli_build_distributed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/eppi_cli" "stats" "/root/repo/build/tools/cli.idx")
set_tests_properties(cli_stats PROPERTIES  DEPENDS "cli_build" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_query "/root/repo/build/tools/eppi_cli" "query" "/root/repo/build/tools/cli.idx" "/root/repo/build/tools/cli_sample.csv" "alice" "carol")
set_tests_properties(cli_query PROPERTIES  DEPENDS "cli_build" PASS_REGULAR_EXPRESSION "alice:.*general" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_input "/root/repo/build/tools/eppi_cli" "build" "/nonexistent.csv" "/tmp/x.idx")
set_tests_properties(cli_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_party_mesh "bash" "-c" "set -e; csv=/root/repo/build/tools/cli_sample.csv; base=\$((20000 + RANDOM % 20000)); /root/repo/build/tools/eppi_cli party \$csv --id 1 --port-base \$base --c 2 > /root/repo/build/tools/party1.out & p1=\$!; /root/repo/build/tools/eppi_cli party \$csv --id 2 --port-base \$base --c 2 > /root/repo/build/tools/party2.out & p2=\$!; /root/repo/build/tools/eppi_cli party \$csv --id 3 --port-base \$base --c 2 > /root/repo/build/tools/party3.out & p3=\$!; /root/repo/build/tools/eppi_cli party \$csv --id 4 --port-base \$base --c 2 > /root/repo/build/tools/party4.out & p4=\$!; /root/repo/build/tools/eppi_cli party \$csv --id 0 --port-base \$base --c 2 > /root/repo/build/tools/party0.out; wait \$p1 \$p2 \$p3 \$p4; grep -q 'general,alice' /root/repo/build/tools/party0.out; grep -q 'mercy,alice' /root/repo/build/tools/party1.out")
set_tests_properties(cli_party_mesh PROPERTIES  DEPENDS "cli_build" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_audit "/root/repo/build/tools/eppi_cli" "audit" "/root/repo/build/tools/cli.idx" "/root/repo/build/tools/cli_sample.csv" "--eps" "0.6")
set_tests_properties(cli_audit PROPERTIES  DEPENDS "cli_build" PASS_REGULAR_EXPRESSION "primary attack" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_build_eps_file "/root/repo/build/tools/eppi_cli" "build" "/root/repo/build/tools/cli_sample.csv" "/root/repo/build/tools/cli_eps.idx" "--eps" "0.5" "--eps-file" "/root/repo/build/tools/cli_eps.csv" "--seed" "4")
set_tests_properties(cli_build_eps_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;48;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_build_eps_file_rejects_unknown "/root/repo/build/tools/eppi_cli" "build" "/root/repo/build/tools/cli_sample.csv" "/tmp/never.idx" "--eps-file" "/root/repo/build/tools/cli_bad_eps.csv")
set_tests_properties(cli_build_eps_file_rejects_unknown PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;51;add_test;/root/repo/tools/CMakeLists.txt;0;")
