// Attack demonstration: why personalized, quantitative privacy matters.
//
// Mounts the paper's two attacks (§II-B) against three locator designs over
// the same network:
//   * a naive index publishing the truth,
//   * a grouping PPI (the prior art, refs [12], [13]),
//   * ε-PPI with per-owner degrees.
// and prints each attacker's measured confidence next to the per-owner
// bound 1 − ε the owner asked for.
//
// Run: ./attack_demo
#include <iostream>

#include "attack/common_identity_attack.h"
#include "attack/primary_attack.h"
#include "baseline/grouping_ppi.h"
#include "core/constructor.h"
#include "dataset/synthetic.h"

int main() {
  eppi::Rng rng(13);
  constexpr std::size_t kProviders = 200;
  constexpr std::size_t kOwners = 50;

  // Owner 0 is a common identity (195 of 200 providers); the rest are rare.
  std::vector<std::uint64_t> freqs(kOwners, 3);
  freqs[0] = 195;
  const auto network =
      eppi::dataset::make_network_with_frequencies(kProviders, freqs, rng);

  // Heterogeneous privacy demands.
  auto epsilons = eppi::dataset::random_epsilons(kOwners, rng, 0.4, 0.8);
  epsilons[0] = 0.8;  // the common identity wants strong protection

  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto eppi_index = eppi::core::construct_centralized(
      network.membership, epsilons, options, rng);
  const eppi::baseline::GroupingPpi grouping(network.membership, 50, rng);

  std::cout << "=== Primary attack (claim: owner t has records at provider "
               "p) ===\n";
  std::cout << "owner | eps  | bound 1-eps | naive | grouping | eps-PPI\n";
  for (const std::size_t owner : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}}) {
    const double naive =
        eppi::attack::exact_confidence(network.membership,
                                       network.membership, owner);
    const double group = eppi::attack::exact_confidence(
        network.membership, grouping.provider_view(), owner);
    const double eppi_conf = eppi::attack::exact_confidence(
        network.membership, eppi_index.index.matrix(), owner);
    std::printf("t%-4zu | %.2f | %.2f        | %.2f  | %.2f     | %.2f\n",
                owner, epsilons[owner], 1.0 - epsilons[owner], naive, group,
                eppi_conf);
  }

  std::cout << "\n=== Common-identity attack (find the owner who visited "
               "everyone) ===\n";
  // The attacker flags owners whose published column is (near) full.
  std::vector<std::uint64_t> knowledge(kOwners);
  for (std::size_t j = 0; j < kOwners; ++j) {
    knowledge[j] = eppi_index.index.matrix().col_count(j);
  }
  const auto vs_eppi = eppi::attack::common_identity_attack(
      network.membership, knowledge, kProviders, eppi_index.info.is_common,
      20, rng);
  std::cout << "against eps-PPI:   flagged " << vs_eppi.candidates
            << " candidates, identification confidence "
            << vs_eppi.identification_confidence() << " (bound: "
            << 1.0 - eppi_index.info.xi << ")\n";

  for (std::size_t j = 0; j < kOwners; ++j) {
    knowledge[j] = grouping.apparent_frequency(
        static_cast<eppi::core::IdentityId>(j));
  }
  const auto vs_grouping = eppi::attack::common_identity_attack(
      network.membership, knowledge, kProviders - 50,
      eppi_index.info.is_common, 20, rng);
  std::cout << "against grouping:  flagged " << vs_grouping.candidates
            << " candidates, identification confidence "
            << vs_grouping.identification_confidence()
            << " (no bound offered)\n";

  std::cout << "\neps-PPI hides the celebrity among "
            << vs_eppi.candidates - vs_eppi.identity_hits
            << " lambda-mixed decoy owners; grouping leaves the frequency "
               "shape exposed.\n";
  return 0;
}
