// Index refresh across epochs without intersection leakage.
//
// The paper's index is static; this example shows the library's epoch
// manager rebuilding the index as the network evolves — with *sticky* noise
// and mixing decisions, so an observer diffing successive snapshots learns
// only what actually changed, never the identity of the noise.
//
// Run: ./epoch_refresh
#include <iostream>

#include "core/epoch_manager.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

int main() {
  eppi::Rng rng(31);
  constexpr std::size_t kProviders = 120;
  constexpr std::size_t kOwners = 80;

  std::vector<std::uint64_t> freqs(kOwners, 2);
  freqs[0] = 115;  // one common identity
  auto network =
      eppi::dataset::make_network_with_frequencies(kProviders, freqs, rng);
  std::vector<double> epsilons(kOwners, 0.7);

  eppi::core::EpochManager manager;

  // Epoch 1: initial construction.
  const auto e1 = manager.rebuild(network.membership, epsilons);
  std::cout << "epoch 1: published " << e1.index.matrix().popcount()
            << " claims, lambda=" << e1.info.lambda << "\n";

  // Epoch 2: nothing changed — the snapshot must be bit-identical.
  const auto e2 = manager.rebuild(network.membership, epsilons);
  std::cout << "epoch 2: unchanged network -> churn " << e2.churn
            << " cells (snapshot identical: "
            << (e1.index.matrix() == e2.index.matrix() ? "yes" : "no")
            << ")\n";

  // Epoch 3: owner 10 visits two new providers.
  std::size_t added = 0;
  for (std::size_t i = 0; i < kProviders && added < 2; ++i) {
    if (!network.membership.get(i, 10)) {
      network.membership.set(i, 10, true);
      ++added;
    }
  }
  const auto e3 = manager.rebuild(network.membership, epsilons);
  std::cout << "epoch 3: owner 10 visited 2 new providers -> churn "
            << e3.churn << " cells (only owner 10's column moves)\n";

  // Epoch 4: owner 20 tightens privacy.
  epsilons[20] = 0.95;
  const auto e4 = manager.rebuild(network.membership, epsilons);
  std::cout << "epoch 4: owner 20 raised eps to 0.95 -> churn " << e4.churn
            << " cells; owner 20's apparent frequency "
            << e3.index.apparent_frequency(20) << " -> "
            << e4.index.apparent_frequency(20)
            << " (noise only ever added)\n";

  // Recall invariant holds in every epoch.
  std::cout << "full recall in final epoch: "
            << (eppi::core::full_recall(network.membership,
                                        e4.index.matrix())
                    ? "yes"
                    : "NO (bug!)")
            << '\n';
  return 0;
}
