// Federated search over a user-supplied collection table.
//
// Demonstrates the CSV interchange path (dataset/collection_table.h): load
// a provider/owner membership dump (the shape of the paper's TREC-derived
// "collection" table), build the ε-PPI, and serve interactive-style
// queries. If no file is given, a small built-in table is used.
//
// Run: ./federated_search [collection.csv] [identity ...]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/auth_search.h"
#include "core/constructor.h"
#include "dataset/collection_table.h"

namespace {

constexpr const char* kBuiltinTable =
    "# provider,identity\n"
    "lib-archive,www.gutenberg.org\n"
    "lib-archive,arxiv.org\n"
    "lib-east,arxiv.org\n"
    "lib-east,www.w3.org\n"
    "lib-west,arxiv.org\n"
    "lib-west,www.gutenberg.org\n"
    "lib-north,www.w3.org\n"
    "lib-south,arxiv.org\n"
    "lib-south,news.example.com\n";

}  // namespace

int main(int argc, char** argv) {
  eppi::dataset::CollectionTable table;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    table = eppi::dataset::load_collection_table(file);
    std::cout << "Loaded " << argv[1] << '\n';
  } else {
    std::istringstream builtin(kBuiltinTable);
    table = eppi::dataset::load_collection_table(builtin);
    std::cout << "Using the built-in sample table (pass a CSV path to use "
                 "your own)\n";
  }

  const auto& net = table.network;
  std::cout << net.providers() << " providers, " << net.identities()
            << " identities\n\n";

  // Uniform medium privacy; a real deployment would read per-owner degrees
  // from the Delegate() calls.
  const std::vector<double> epsilons(net.identities(), 0.6);
  eppi::Rng rng(99);
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto result =
      eppi::core::construct_centralized(net.membership, epsilons, options, rng);

  // Query the identities named on the command line, or all of them.
  std::vector<std::string> queries;
  for (int a = 2; a < argc; ++a) queries.emplace_back(argv[a]);
  if (queries.empty()) queries = table.identity_names;

  for (const auto& name : queries) {
    std::size_t id = table.identity_names.size();
    for (std::size_t j = 0; j < table.identity_names.size(); ++j) {
      if (table.identity_names[j] == name) {
        id = j;
        break;
      }
    }
    if (id == table.identity_names.size()) {
      std::cout << name << ": unknown identity\n";
      continue;
    }
    const auto outcome = eppi::core::two_phase_search(
        result.index, net.membership, static_cast<eppi::core::IdentityId>(id));
    std::cout << name << ": contacted " << outcome.contacted.size()
              << " providers, found records at";
    for (const auto p : outcome.matched) {
      std::cout << ' ' << table.provider_names[p];
    }
    std::cout << "  (" << outcome.wasted_contacts() << " noise contacts)\n";
  }
  return 0;
}
