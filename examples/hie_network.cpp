// Healthcare Information Exchange scenario (the paper's motivating
// application, §I): hospitals in an HIE collectively build the record
// locator service with the *distributed secure constructor* — no trusted
// third party, SecSumShare + generic MPC among c coordinator hospitals —
// and an emergency-room doctor locates an unconscious patient's history.
//
// Run: ./hie_network
#include <iostream>
#include <string>
#include <vector>

#include "core/auth_search.h"
#include "core/distributed_constructor.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

int main() {
  eppi::Rng rng(42);

  // A regional HIE: 12 hospitals, 8 patients.
  const std::vector<std::string> hospitals{
      "General",  "St-Mary", "Lakeside", "Northgate", "Childrens",
      "Veterans", "Mercy",   "Downtown", "Eastside",  "Westbrook",
      "Uptown",   "County"};
  const std::vector<std::string> patients{
      "alice", "bob",  "carol", "dave",
      "erin",  "frank", "grace", "heidi"};

  // Visit history: which hospitals hold which patient's records. Carol is a
  // public figure who visited almost every hospital (a *common identity* —
  // exactly the profile the common-identity attack targets).
  std::vector<std::uint64_t> visits{2, 3, 11, 1, 2, 4, 1, 3};
  const auto network = eppi::dataset::make_network_with_frequencies(
      hospitals.size(), visits, rng);

  // Personal privacy degrees chosen at Delegate() time: carol (the
  // celebrity) and heidi (visited a sensitive clinic) demand strong
  // protection.
  std::vector<double> epsilons{0.3, 0.3, 0.95, 0.3, 0.3, 0.4, 0.3, 0.9};

  // Secure distributed construction: every hospital is a party; c = 3
  // coordinators bound the collusion tolerance; no party ever sees another
  // hospital's patient roster or carol's true visit count.
  eppi::core::DistributedOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  options.c = 3;
  options.seed = 2014;
  const auto result =
      eppi::core::construct_distributed(network.membership, epsilons, options);

  std::cout << "HIE locator constructed by " << hospitals.size()
            << " mutually-untrusted hospitals (c = " << options.c << ")\n";
  std::cout << "  protocol cost: " << result.report.total_cost.messages
            << " messages, " << result.report.total_cost.bytes << " bytes, "
            << result.report.total_cost.rounds << " rounds\n";
  std::cout << "  MPC circuits: CountBelow "
            << result.report.count_below_stats.total_gates()
            << " gates, MixAndReveal "
            << result.report.mix_reveal_stats.total_gates() << " gates\n";
  std::cout << "  common identities detected (count opened by MPC): "
            << result.report.common_count
            << ", lambda = " << result.report.lambda << "\n";
  if (result.report.lambda >= 1.0) {
    std::cout << "  (lambda clamped to 1: in a network this small, honoring "
                 "the strongest eps\n   requires mixing every identity — "
                 "i.e. full query broadcast)\n";
  }
  std::cout << '\n';

  for (std::size_t j = 0; j < patients.size(); ++j) {
    std::cout << "  " << patients[j] << ": eps=" << epsilons[j]
              << (result.report.mixed[j]
                      ? "  [published broadcast — true visit count hidden]"
                      : "  [frequency revealed: " +
                            std::to_string(
                                result.report.revealed_frequencies[j]) +
                            " hospitals]")
              << '\n';
  }

  // Emergency: dave arrives unconscious at General. The ER doctor queries
  // the locator, then authenticates at each candidate hospital.
  const eppi::core::IdentityId dave = 3;
  const auto outcome =
      eppi::core::two_phase_search(result.index, network.membership, dave);
  std::cout << "\nER search for dave's history:\n  contacted "
            << outcome.contacted.size() << " hospitals:";
  for (const auto p : outcome.contacted) std::cout << ' ' << hospitals[p];
  std::cout << "\n  records found at:";
  for (const auto p : outcome.matched) std::cout << ' ' << hospitals[p];
  std::cout << "\n  (the extra hospitals are privacy noise — an observer "
               "cannot tell which\n   contacted hospital really treated "
               "dave)\n";
  return 0;
}
