// Privacy-preserving network analytics with secure aggregates.
//
// A HIE steering committee wants utilization statistics — total
// delegations, mean and variance of per-patient provider counts — without
// any party learning an individual patient's visit count. The coordinators
// compute the two aggregate scalars under the SecSumShare sharing and open
// only those.
//
// Run: ./network_stats
#include <iostream>

#include "dataset/synthetic.h"
#include "net/cluster.h"
#include "secret/sec_sum_share.h"
#include "secret/secure_aggregates.h"

int main() {
  eppi::Rng rng(2024);
  constexpr std::size_t kProviders = 24;
  constexpr std::size_t kPatients = 200;
  eppi::dataset::SyntheticConfig config;
  config.providers = kProviders;
  config.identities = kPatients;
  config.zipf_exponent = 1.1;
  config.max_fraction = 0.8;
  const auto net = eppi::dataset::make_zipf_network(config, rng);

  constexpr std::size_t kC = 3;
  // Ring sized for sums of squares (see aggregates_ring_for).
  const auto ring =
      eppi::secret::aggregates_ring_for(kProviders, kPatients);
  const eppi::secret::SecSumShareParams params{kC, ring.q(), kPatients};

  eppi::net::Cluster cluster(kProviders, 5);
  eppi::secret::AggregateResult stats;
  cluster.run([&](eppi::net::PartyContext& ctx) {
    std::vector<std::uint8_t> row(kPatients);
    for (std::size_t j = 0; j < kPatients; ++j) {
      row[j] = net.membership.get(ctx.id(), j) ? 1 : 0;
    }
    const auto shares =
        eppi::secret::run_sec_sum_share_party(ctx, params, row);
    if (ctx.id() >= kC) return;
    std::vector<eppi::net::PartyId> parties;
    for (std::size_t i = 0; i < kC; ++i) {
      parties.push_back(static_cast<eppi::net::PartyId>(i));
    }
    const auto result = eppi::secret::run_secure_aggregates_party(
        ctx, parties, *shares, ring);
    if (ctx.id() == 0) stats = result;
  });

  std::cout << "Network utilization (computed under secret sharing; only "
               "two scalars opened):\n";
  std::cout << "  patients:            " << stats.identities << '\n';
  std::cout << "  total delegations:   " << stats.total << '\n';
  std::cout << "  mean visits/patient: " << stats.mean << '\n';
  std::cout << "  variance:            " << stats.variance << '\n';

  // Cross-check against the (normally never assembled) ground truth.
  const auto plain =
      eppi::secret::plain_aggregates(net.frequencies());
  std::cout << "\nGround-truth cross-check: total " << plain.total
            << ", mean " << plain.mean << ", variance " << plain.variance
            << (plain.total == stats.total ? "  [matches]" : "  [MISMATCH]")
            << '\n';
  std::cout << "\nNo coordinator ever saw an individual patient's visit "
               "count — only the\nfinal aggregates were opened.\n";
  return 0;
}
