// Pricing/advisory walk-through for the ε knob (paper footnote 3).
//
// An owner delegating records asks: "what does ε buy me, and what does it
// cost?" The advisor quantifies both sides — the attacker-confidence bound
// 1 − ε, and the expected search overhead every query for this owner will
// impose (which footnote 3 suggests charging for).
//
// Run: ./pricing_advisor
#include <cstdio>
#include <iostream>

#include "core/advisor.h"

int main() {
  constexpr std::size_t kProviders = 5000;  // a mid-size national network
  const eppi::core::BetaPolicy policy = eppi::core::BetaPolicy::chernoff(0.9);
  const eppi::core::Tariff tariff{5.0, 0.02};  // base fee + per-noise-contact

  std::cout << "Network: " << kProviders
            << " providers; policy: Chernoff(gamma=0.9); tariff: base "
            << tariff.base_fee << " + " << tariff.per_noise_provider
            << "/noise contact\n\n";

  for (const double sigma : {0.002, 0.02}) {
    std::cout << "Owner with records at " << sigma * kProviders
              << " providers (sigma = " << sigma << "):\n";
    std::printf("  %-6s %-18s %-18s %-12s %-10s\n", "eps",
                "attacker-conf <=", "expected noise", "list size", "price");
    for (const double eps : {0.2, 0.5, 0.8, 0.95}) {
      const double overhead =
          eppi::core::expected_overhead(policy, sigma, eps, kProviders);
      const double size =
          eppi::core::expected_result_size(policy, sigma, eps, kProviders);
      const double price = eppi::core::delegation_price(tariff, policy, sigma,
                                                        eps, kProviders);
      std::printf("  %-6.2f %-18.2f %-18.1f %-12.1f %-10.2f\n", eps,
                  1.0 - eps, overhead, size, price);
    }
    std::cout << '\n';
  }

  // Inverse direction: a compliance team mandates attacker confidence <= 5%.
  const double required =
      eppi::core::epsilon_for_confidence_bound(0.05);
  std::cout << "To cap attacker confidence at 5%, delegate with eps >= "
            << required << " — expected noise "
            << eppi::core::expected_overhead(policy, 0.002, required,
                                             kProviders)
            << " providers per query.\n";
  return 0;
}
