// Quickstart: build an ε-PPI over a small synthetic network and query it.
//
//   1. Generate a network of providers holding owner records.
//   2. Each owner picks a personal privacy degree ε.
//   3. Construct the index with the centralized constructor.
//   4. Query the locator service and run the two-phase search.
//
// Run: ./quickstart
#include <iostream>

#include "core/auth_search.h"
#include "core/constructor.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

int main() {
  eppi::Rng rng(7);

  // 1. A network of 50 providers and 20 owners with a skewed frequency
  //    profile (some owners visited many providers).
  eppi::dataset::SyntheticConfig config;
  config.providers = 50;
  config.identities = 20;
  config.zipf_exponent = 1.0;
  config.max_fraction = 0.9;
  const auto network = eppi::dataset::make_zipf_network(config, rng);

  // 2. Per-owner privacy degrees: owner 0 is a "celebrity" demanding strong
  //    protection; the rest are average users.
  std::vector<double> epsilons(20, 0.4);
  epsilons[0] = 0.9;

  // 3. Construct the ε-PPI (Chernoff policy: the per-owner false-positive
  //    guarantee holds with probability >= 0.9).
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto result = eppi::core::construct_centralized(
      network.membership, epsilons, options, rng);

  std::cout << "Constructed eps-PPI over " << result.index.providers()
            << " providers / " << result.index.identities() << " owners\n";
  std::cout << "Common identities mixed at lambda = " << result.info.lambda
            << "\n\n";

  // 4. Locate owner 5's records: QueryPPI then AuthSearch.
  const eppi::core::IdentityId owner = 5;
  const auto candidates = result.index.query(owner);
  std::cout << "QueryPPI(t" << owner << ") -> " << candidates.size()
            << " candidate providers (true: "
            << network.membership.col_count(owner) << ", the rest is "
            << "privacy noise)\n";

  const auto outcome =
      eppi::core::two_phase_search(result.index, network.membership, owner);
  std::cout << "AuthSearch found records at " << outcome.matched.size()
            << " providers; " << outcome.wasted_contacts()
            << " contacts were false positives.\n";

  // The index never loses a true provider.
  std::cout << "Full recall: "
            << (eppi::core::full_recall(network.membership,
                                        result.index.matrix())
                    ? "yes"
                    : "NO (bug!)")
            << '\n';
  return 0;
}
