#!/usr/bin/env bash
# Tier-1 verification plus sanitizer sweeps.
#
# Usage: scripts/check.sh [stage]
#   plain       build + full ctest in ./build (the tier-1 gate)    [default]
#   fault       plain build, but only the fault-injection matrix
#               (ctest -L fault)
#   storage     plain build, but only the durable-store recovery matrix
#               (ctest -L storage)
#   concurrency plain build, but only the serving-tier reader/writer storms
#               (ctest -L concurrency; the tsan stage reruns them raced)
#   index       plain build, but only the compressed-posting-index harness:
#               codec property/fuzz tests, the dense-vs-compressed
#               differential suite, and v3 persistence (ctest -L index)
#   obs         plain build, but only the observability layer: metrics
#               registry, trace ring, JSONL replay, and the construction/
#               serving/storage instrumentation gates (ctest -L obs), plus
#               the CLI smoke pipe: serve --smoke --prom | eppi_cli stats -
#   asan        ASan+UBSan build in ./build-asan, full ctest
#   tsan        TSan build in ./build-tsan, fault-, concurrency-, obs- and
#               index-labeled tests (the threaded cluster/reliability
#               paths, the epoch-snapshot serving tier, the lock-free trace
#               ring, and the shared-shard snapshot swaps are where races
#               would live)
#   bench       smoke-mode bench_serving + bench_tcp, diffed against the
#               committed BENCH_*.json baselines with a loose (5x) tolerance
#               via scripts/check_bench.py — catches order-of-magnitude
#               cliffs, not percent-level drift
#   lint        static-analysis gate: eppi_lint.py + compile-fail probes
#               (ctest -L lint in ./build); adds clang-tidy and the clang
#               thread-safety -Werror build when clang is installed
#   analyze     whole-program analyzer (tools/eppi_analyze.py): fixture
#               self-test, then the repo scan gated by the committed
#               baseline; uses the clang AST frontend automatically when
#               clang++ and build/compile_commands.json are present
#   all         plain, then asan, then tsan, then lint, then analyze
# Stages may also be spelled --lint / --asan / etc.
#
# JOBS=<n> overrides the build/test parallelism (default: nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${JOBS:-$(nproc)}"
stage="${1:-plain}"
stage="${stage#--}"  # accept --lint as well as lint

run_preset() {
  local preset="$1"
  shift
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs" "$@"
}

case "$stage" in
  plain)
    run_preset default
    ;;
  fault)
    run_preset default -L fault
    ;;
  storage)
    run_preset default -L storage
    ;;
  concurrency)
    run_preset default -L concurrency
    ;;
  index)
    run_preset default -L index
    ;;
  obs)
    run_preset default -L obs
    # End-to-end exposition smoke: the serve command's Prometheus dump must
    # survive both the CLI's own validator and the standalone CI checker.
    ./build/tools/eppi_cli serve --smoke --prom 2>/dev/null \
      | ./build/tools/eppi_cli stats -
    ./build/tools/eppi_cli serve --smoke --prom 2>/dev/null \
      | python3 scripts/check_prometheus.py
    ;;
  bench)
    cmake --preset default
    cmake --build --preset default -j "$jobs" \
      --target bench_serving bench_tcp
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    ./build/bench/bench_serving --smoke --json "$tmpdir/BENCH_serving.json"
    ./build/bench/bench_tcp --smoke --json "$tmpdir/BENCH_tcp.json"
    python3 scripts/check_bench.py BENCH_serving.json \
      "$tmpdir/BENCH_serving.json"
    python3 scripts/check_bench.py BENCH_tcp.json "$tmpdir/BENCH_tcp.json"
    ;;
  asan)
    run_preset asan
    ;;
  tsan)
    # TSAN_OPTIONS halt_on_error keeps a race from scrolling past unnoticed.
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_preset tsan
    ;;
  lint)
    # Local gate first: the pure-Python linter needs no toolchain and exits
    # nonzero on any violation, failing this script via `set -e`.
    python3 tools/eppi_lint.py --self-test
    python3 tools/eppi_lint.py

    # Compile-fail probes + the lint-labeled ctest entries (uses the default
    # build tree so a prior `plain` run is reused).
    cmake --preset default
    cmake --build --preset default -j "$jobs"
    ctest --preset default -L lint

    # Clang-only layers: thread-safety -Werror build and clang-tidy. Skipped
    # with a notice when clang is not installed (the CI lint job has it).
    if command -v clang++ >/dev/null 2>&1; then
      cmake --preset lint
      cmake --build --preset lint -j "$jobs"
      ctest --preset lint -j "$jobs"
      if command -v clang-tidy >/dev/null 2>&1; then
        mapfile -t tidy_sources < <(git ls-files 'src/**/*.cpp')
        clang-tidy -p build-lint "${tidy_sources[@]}"
      else
        echo "check.sh: clang-tidy not installed; skipping (CI runs it)" >&2
      fi
    else
      echo "check.sh: clang++ not installed; skipping thread-safety" \
           "-Werror build and clang-tidy (CI runs them)" >&2
    fi
    ;;
  analyze)
    # Needs no build tree: the syntax frontend works from the sources alone.
    # When clang++ and an exported build/compile_commands.json are both
    # available the clang AST frontend sharpens the same facts (the
    # --frontend auto default handles the pick).
    python3 tools/eppi_analyze.py --self-test
    python3 tools/eppi_analyze.py --verbose
    ;;
  all)
    "$0" plain
    "$0" asan
    "$0" tsan
    "$0" lint
    "$0" analyze
    ;;
  *)
    echo "usage: $0 [plain|fault|storage|concurrency|index|obs|bench|asan|tsan|lint|analyze|all]" >&2
    exit 2
    ;;
esac
