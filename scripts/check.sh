#!/usr/bin/env bash
# Tier-1 verification plus sanitizer sweeps.
#
# Usage: scripts/check.sh [stage]
#   plain   build + full ctest in ./build (the tier-1 gate)        [default]
#   fault   plain build, but only the fault-injection matrix (ctest -L fault)
#   asan    ASan+UBSan build in ./build-asan, full ctest
#   tsan    TSan build in ./build-tsan, fault-labeled tests (the threaded
#           cluster/reliability/fault paths are where races would live)
#   all     plain, then asan, then tsan
#
# JOBS=<n> overrides the build/test parallelism (default: nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${JOBS:-$(nproc)}"
stage="${1:-plain}"

run_preset() {
  local preset="$1"
  shift
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs" "$@"
}

case "$stage" in
  plain)
    run_preset default
    ;;
  fault)
    run_preset default -L fault
    ;;
  asan)
    run_preset asan
    ;;
  tsan)
    # TSAN_OPTIONS halt_on_error keeps a race from scrolling past unnoticed.
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_preset tsan
    ;;
  all)
    "$0" plain
    "$0" asan
    "$0" tsan
    ;;
  *)
    echo "usage: $0 [plain|fault|asan|tsan|all]" >&2
    exit 2
    ;;
esac
