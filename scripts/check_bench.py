#!/usr/bin/env python3
"""Compare a fresh bench JSON against its committed baseline.

Usage: check_bench.py <baseline.json> <fresh.json> [--tolerance X]

Two gates, in order of importance:

 1. structure: the fresh run must contain every section and row key the
    baseline has (a silently vanished bench row is a regression even if all
    surviving numbers improved);
 2. timings: every numeric field whose name suggests a duration or rate must
    stay within `tolerance`x of the baseline in the slow direction (default
    5x). The bound is deliberately loose: CI machines differ wildly and the
    committed baselines come from --smoke runs on a 1-core container; this
    catches order-of-magnitude cliffs (an accidental O(n^2), a sleep in the
    hot path), not percent-level drift.

Exit code 0 = within bounds, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import sys

# Field-name suffixes treated as "smaller is better" timings.
TIMING_SUFFIXES = ("_us", "_ms", "_s")
# "Bigger is better" rates: compared in the opposite direction.
RATE_FIELDS = {"qps"}
# Compression/efficiency ratios (e.g. memory_reduction_x): bigger is
# better, and gated much tighter than timings — the ratio is a property of
# the encoder, not the machine, so it must stay within 1.5x of the
# baseline regardless of --tolerance.
REDUCTION_SUFFIX = "_reduction_x"
REDUCTION_TOLERANCE = 1.5


def walk(path, node, out):
    """Flatten to {dotted-path: number} for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            walk(f"{path}.{key}" if path else key, value, out)
    elif isinstance(node, list):
        for idx, value in enumerate(node):
            label = idx
            if isinstance(value, dict):
                # Stable row identity: protocol/parties/threads-style keys
                # beat positional indices when rows get reordered.
                ident = [
                    str(value[k])
                    for k in ("protocol", "parties", "threads", "batch",
                              "providers", "epsilon")
                    if k in value
                ]
                if ident:
                    label = "/".join(ident)
            walk(f"{path}[{label}]", value, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[path] = float(node)


def leaf_name(path):
    return path.rsplit(".", 1)[-1]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="allowed slowdown factor (default 5x)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench: {err}", file=sys.stderr)
        return 2

    base_leaves, fresh_leaves = {}, {}
    walk("", baseline, base_leaves)
    walk("", fresh, fresh_leaves)

    failures = []
    for path in base_leaves:
        if path.startswith("metrics"):
            continue  # registry snapshot: content varies run to run
        if path not in fresh_leaves:
            failures.append(f"missing from fresh run: {path}")

    for path, base in sorted(base_leaves.items()):
        if path not in fresh_leaves:
            continue
        name = leaf_name(path)
        current = fresh_leaves[path]
        if name.endswith(REDUCTION_SUFFIX):
            if base > 0 and current < base / REDUCTION_TOLERANCE:
                failures.append(
                    f"{path}: reduction fell {base:.1f} -> {current:.1f} "
                    f"(> {REDUCTION_TOLERANCE}x)")
        elif name in RATE_FIELDS:
            if base > 0 and current < base / args.tolerance:
                failures.append(
                    f"{path}: rate fell {base:.1f} -> {current:.1f} "
                    f"(> {args.tolerance}x)")
        elif name.endswith(TIMING_SUFFIXES):
            if base > 0 and current > base * args.tolerance:
                failures.append(
                    f"{path}: slowed {base:.1f} -> {current:.1f} "
                    f"(> {args.tolerance}x)")

    if failures:
        print(f"check_bench: {len(failures)} regression(s) vs {args.baseline}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"check_bench: {args.fresh} within {args.tolerance}x of "
          f"{args.baseline} ({len(base_leaves)} fields)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
