#!/usr/bin/env python3
"""Validate Prometheus text exposition read from stdin.

CI pipes `eppi_cli serve --smoke --prom` through this script to catch
regressions in obs::Registry::render_prometheus() with an independent
implementation (the CLI's own `stats` validator shares no code with this
one, so a bug would have to be made twice to slip through).

Checks, per https://prometheus.io/docs/instrumenting/exposition_formats/:
  * metric and label names match the allowed grammar
  * every sample parses (name, optional labels, float value, optional ts)
  * `# TYPE` kinds are known, and typed samples belong to a declared family
    (histogram samples may use the _bucket/_sum/_count suffixes)
  * histogram buckets are cumulative and end with an le="+Inf" bucket whose
    count equals the family's _count sample
  * at least one sample is present (an empty dump means the exporter broke)

Exit status: 0 on success, 1 with a line-numbered message on any violation.
Stdlib only: CI runners have no pip access.
"""

import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value [timestamp] — labels parsed separately.
SAMPLE = re.compile(
    r"([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r"\s+(\S+)"
    r"(?:\s+(-?\d+))?\s*$"
)
LABEL_PAIR = re.compile(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*(,|$)')
KNOWN_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(lineno, message):
    print(f"check_prometheus: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def parse_labels(lineno, raw):
    labels = {}
    pos = 0
    while pos < len(raw):
        match = LABEL_PAIR.match(raw, pos)
        if not match:
            fail(lineno, f"malformed label set: {{{raw}}}")
        labels[match.group(1)] = match.group(2)
        pos = match.end()
    return labels


def family_of(name, types):
    """Map a sample name to its declared family, folding histogram suffixes."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return None


def main():
    types = {}  # family -> kind
    samples = 0  # total parsed samples
    families = {}  # family -> sample count
    # histogram family -> {"buckets": [(le, count)], "count": int or None}
    histograms = {}

    for lineno, line in enumerate(sys.stdin, start=1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    fail(lineno, f"incomplete TYPE comment: {line}")
                name, kind = parts[2], parts[3].strip()
                if not METRIC_NAME.match(name):
                    fail(lineno, f"bad metric name in TYPE: {name}")
                if kind not in KNOWN_KINDS:
                    fail(lineno, f"unknown TYPE kind: {kind}")
                if name in types:
                    fail(lineno, f"duplicate TYPE for {name}")
                types[name] = kind
                if kind == "histogram":
                    histograms[name] = {"buckets": [], "count": None}
            continue  # HELP and other comments are free-form

        match = SAMPLE.match(line)
        if not match:
            fail(lineno, f"unparseable sample: {line}")
        name, raw_labels, value, _ts = match.groups()
        if not METRIC_NAME.match(name):
            fail(lineno, f"bad metric name: {name}")
        labels = parse_labels(lineno, raw_labels) if raw_labels else {}
        for label in labels:
            if not LABEL_NAME.match(label):
                fail(lineno, f"bad label name: {label}")
        try:
            parsed = float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN"):
                fail(lineno, f"bad sample value: {value}")
            parsed = float(value.replace("Inf", "inf"))

        family = family_of(name, types)
        if family is None and types:
            fail(lineno, f"sample {name} has no # TYPE declaration")
        samples += 1
        families[family or name] = families.get(family or name, 0) + 1

        if family in histograms:
            if name.endswith("_bucket"):
                if "le" not in labels:
                    fail(lineno, f"{name}: histogram bucket without le label")
                histograms[family]["buckets"].append((labels["le"], parsed))
            elif name.endswith("_count"):
                histograms[family]["count"] = parsed

    if samples == 0:
        fail(0, "no samples on stdin")

    for family, data in histograms.items():
        buckets = data["buckets"]
        if not buckets:
            fail(0, f"histogram {family} declared but has no buckets")
        if buckets[-1][0] != "+Inf":
            fail(0, f"histogram {family}: last bucket le={buckets[-1][0]}, "
                    "want +Inf")
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            fail(0, f"histogram {family}: bucket counts not cumulative")
        if data["count"] is not None and buckets[-1][1] != data["count"]:
            fail(0, f"histogram {family}: +Inf bucket {buckets[-1][1]} != "
                    f"_count {data['count']}")

    print(f"check_prometheus: OK — {len(types)} typed families, "
          f"{samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
