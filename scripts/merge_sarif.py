#!/usr/bin/env python3
"""Merge SARIF 2.1.0 files into one multi-run log.

GitHub code scanning accepts one SARIF upload per job category, and a SARIF
log may carry several runs — one per tool. eppi_lint.py and eppi_analyze.py
each emit a single-run log; this folds them (and any future tools) into the
one file the CI lint job uploads:

    python3 scripts/merge_sarif.py out.sarif lint.sarif analyze.sarif ...

Inputs that are missing or unreadable are skipped with a warning rather
than failing the merge — a tool that crashed before writing its log should
fail CI through its own exit status, not by wedging the upload step.
Exit status: 0 on success (even if some inputs were skipped), 2 on usage
error or if NO input could be read.
"""

import json
import sys


def main(argv):
    if len(argv) < 3:
        print("usage: merge_sarif.py OUT.sarif IN.sarif [IN.sarif...]",
              file=sys.stderr)
        return 2
    out_path, in_paths = argv[1], argv[2:]
    runs = []
    for path in in_paths:
        try:
            with open(path, encoding="utf-8") as f:
                log = json.load(f)
        except (OSError, ValueError) as e:
            print(f"merge_sarif: skipping {path}: {e}", file=sys.stderr)
            continue
        runs.extend(log.get("runs", []))
    if not runs:
        print("merge_sarif: no readable input runs", file=sys.stderr)
        return 2
    merged = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    }
    with open(out_path, "w", encoding="utf-8") as out:
        json.dump(merged, out, indent=2)
        out.write("\n")
    tools = ", ".join(
        r.get("tool", {}).get("driver", {}).get("name", "?") for r in runs)
    results = sum(len(r.get("results", [])) for r in runs)
    print(f"merge_sarif: {out_path}: {len(runs)} run(s) [{tools}], "
          f"{results} result(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
