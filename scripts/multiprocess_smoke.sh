#!/usr/bin/env bash
# Multi-process deployment smoke: the CI rehearsal of a real e-PPI rollout.
#
# Spawns one eppi_cli OS process per provider (m=4) on loopback, with every
# inter-party link routed through eppi_chaos_proxy applying mild TCP-level
# shaping (delay + split writes), then:
#
#   1. runs the full fault-tolerant distributed construction to completion,
#   2. scrapes each party's Prometheus endpoint and asserts zero secsum
#      aborts (shaping must not cost a single degraded epoch),
#   3. SIGTERMs the lingering parties and requires a clean drain (exit 0),
#      then merges the four per-party trace exports and gates on the wire
#      context propagation: >= 1 cross-process parent-child edge, ZERO
#      causality violations after clock-offset estimation, and a replayed
#      per-phase byte total exactly equal to the parties' summed CostMeter
#      ground truth — with the compute/wait decomposition and critical path
#      present in the replay table,
#   4. stands up `eppi_cli serve --listen` on the same collection and runs a
#      batched /query POST against it, checking the true positives,
#   5. rehearses membership churn: a locator daemon is SIGKILLed mid-churn
#      (a provider retirement posted but the epoch not yet rebuilt), a fresh
#      daemon takes over, the same churn replays against it plus a brand-new
#      provider joining, and POST /rebuild must publish the next epoch via
#      the DELTA path — the leaver gone from every answer, the joiner
#      serving its owner,
#   6. tears the daemons and the proxy down, again requiring exit 0.
#
# Usage: scripts/multiprocess_smoke.sh [build-dir]   (default: ./build)
# Needs: bash, python3 (stdlib only). Exits nonzero on any failed gate.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
cli="$build/tools/eppi_cli"
proxy_bin="$build/tools/eppi_chaos_proxy"
for bin in "$cli" "$proxy_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "multiprocess_smoke: missing $bin (build the default preset first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
pids=()
cleanup() {
  # Best-effort: anything still alive at exit gets killed hard.
  for pid in "${pids[@]:-}"; do kill -KILL "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "multiprocess_smoke: FAIL: $*" >&2; exit 1; }

http_get() {  # port path -> body on stdout
  python3 -c '
import sys, urllib.request
url = f"http://127.0.0.1:{sys.argv[1]}{sys.argv[2]}"
sys.stdout.write(urllib.request.urlopen(url, timeout=5).read().decode())
' "$1" "$2"
}

http_post() {  # port path body -> response on stdout
  python3 -c '
import sys, urllib.request
url = f"http://127.0.0.1:{sys.argv[1]}{sys.argv[2]}"
req = urllib.request.Request(url, data=sys.argv[3].encode())
sys.stdout.write(urllib.request.urlopen(req, timeout=5).read().decode())
' "$1" "$2" "$3"
}

wait_for() {  # seconds "description" command...
  local deadline=$(( $(date +%s) + $1 )); shift
  local what="$1"; shift
  until "$@" >/dev/null 2>&1; do
    (( $(date +%s) < deadline )) || fail "timed out waiting for $what"
    sleep 0.2
  done
}

# ---------------------------------------------------------------- topology --
# Four providers; alice/bob/carol/dave give every party at least one claim
# and 'alice' two true providers for the query gate at the end.
csv="$workdir/collection.csv"
cat > "$csv" <<'EOF'
general,alice
general,bob
mercy,alice
mercy,carol
lakeside,carol
lakeside,dave
county,carol
county,bob
EOF

m=4
base=$(( 21000 + RANDOM % 8000 ))
real=$base                 # ports the parties actually listen on
proxied=$(( base + 10 ))   # ports peers dial (fronted by the chaos proxy)
metrics=$(( base + 20 ))   # per-party Prometheus endpoints
serve_port=$(( base + 30 ))

hosts="$workdir/hosts"
: > "$hosts"
for (( i = 0; i < m; i++ )); do
  echo "127.0.0.1:$(( proxied + i ))" >> "$hosts"
done

# ------------------------------------------------------------- chaos proxy --
# Mild shaping only: this gate proves shaped links don't cost correctness;
# the hostile scenarios (reset, blackhole) live in ctest -L fault.
"$proxy_bin" \
  --route "$(( proxied + 0 )):127.0.0.1:$(( real + 0 )):0" \
  --route "$(( proxied + 1 )):127.0.0.1:$(( real + 1 )):1" \
  --route "$(( proxied + 2 )):127.0.0.1:$(( real + 2 )):2" \
  --route "$(( proxied + 3 )):127.0.0.1:$(( real + 3 )):3" \
  --scenario "link 1->0: delay=1..3ms; link 2->3: split=96" --seed 7 \
  2> "$workdir/proxy.err" &
proxy_pid=$!
pids+=("$proxy_pid")

# ----------------------------------------------------------------- parties --
declare -a party_pid
# The trace ring is sized up so per-message net.recv spans survive until the
# post-drain export (the 8192-slot default is tuned for phase spans only).
for (( i = m - 1; i >= 0; i-- )); do
  EPPI_TRACE_RING=65536 \
  "$cli" party "$csv" --id "$i" --host-file "$hosts" \
    --listen-port "$(( real + i ))" --metrics-port "$(( metrics + i ))" \
    --ft --c 2 --seed 5 --linger --trace "$workdir/trace$i.jsonl" \
    > "$workdir/party$i.out" 2> "$workdir/party$i.err" &
  party_pid[$i]=$!
  pids+=("${party_pid[$i]}")
done

for (( i = 0; i < m; i++ )); do
  wait_for 30 "party $i construction" \
    grep -q "construction complete" "$workdir/party$i.err"
done
echo "multiprocess_smoke: construction complete on all $m parties"

# Published claims must surface the true memberships (party 0 = general).
grep -q 'general,alice' "$workdir/party0.out" \
  || fail "party 0 did not publish general,alice"
grep -q 'mercy,carol' "$workdir/party1.out" \
  || fail "party 1 did not publish mercy,carol"

# -------------------------------------------------------- zero-abort gate --
# The counter is registered lazily on first secsum round, so it must exist
# after construction; any nonzero sample means shaping cost us an epoch.
for (( i = 0; i < m; i++ )); do
  scrape="$(http_get "$(( metrics + i ))" /metrics)" \
    || fail "scraping party $i metrics"
  aborts="$(printf '%s\n' "$scrape" \
            | awk '$1 == "eppi_secsum_aborts_total" { print $2 }')"
  [[ -n "$aborts" ]] || fail "party $i exposes no eppi_secsum_aborts_total"
  [[ "$aborts" == "0" ]] \
    || fail "party $i reports $aborts secsum aborts (expected 0)"
done
echo "multiprocess_smoke: all $m parties report zero secsum aborts"

# ------------------------------------------------------------- clean drain --
for (( i = 0; i < m; i++ )); do kill -TERM "${party_pid[$i]}"; done
for (( i = 0; i < m; i++ )); do
  wait "${party_pid[$i]}" || fail "party $i exited nonzero after SIGTERM"
done
echo "multiprocess_smoke: all parties drained cleanly on SIGTERM"

# ------------------------------------------- distributed trace merge gates --
# Join the four per-process exports into one causal timeline. The merge must
# reconstruct real cross-process parent-child edges from the v3 wire context
# (or propagation is broken), and after clock-offset estimation no message
# may appear received before it was sent.
total_bytes=0
for (( i = 0; i < m; i++ )); do
  [[ -s "$workdir/trace$i.jsonl" ]] || fail "party $i wrote no trace export"
  bytes="$(sed -n 's/^cost: bytes=\([0-9]*\).*/\1/p' "$workdir/party$i.err")"
  [[ -n "$bytes" ]] || fail "party $i printed no CostMeter cost line"
  total_bytes=$(( total_bytes + bytes ))
done
merged="$workdir/merged.jsonl"
"$cli" trace merge "$merged" \
    "$workdir"/trace0.jsonl "$workdir"/trace1.jsonl \
    "$workdir"/trace2.jsonl "$workdir"/trace3.jsonl \
    --require-edges 8 --max-violations 0 \
    > "$workdir/merge.out" 2>&1 \
  || fail "trace merge gate: $(cat "$workdir/merge.out")"
sed 's/^/multiprocess_smoke:   /' "$workdir/merge.out"
echo "multiprocess_smoke: merged trace has cross-process edges, zero causality violations"

# The merged trace must replay to the parties' summed CostMeter ground
# truth exactly, and carry the compute/wait decomposition + critical path.
replay="$workdir/replay.out"
"$cli" trace "$merged" --expect-bytes "$total_bytes" > "$replay" 2>&1 \
  || fail "merged replay did not match CostMeter bytes=$total_bytes: $(cat "$replay")"
grep -q 'compute_ms' "$replay" || fail "replay table lacks compute/wait decomposition"
grep -q 'critical path:' "$replay" || fail "replay table lacks the critical path"
echo "multiprocess_smoke: merged replay matches CostMeter ($total_bytes bytes) with critical path"

# --------------------------------------------------- serve + batched query --
"$cli" serve "$csv" --listen "$serve_port" 2> "$workdir/serve.err" &
serve_pid=$!
pids+=("$serve_pid")
wait_for 15 "serve daemon" http_get "$serve_port" /healthz

answer="$(http_post "$serve_port" /query $'alice\ncarol\nbob')"
for expect in 'alice,general' 'alice,mercy' 'carol,lakeside' 'bob,county'; do
  grep -q "$expect" <<< "$answer" \
    || fail "batched query missing $expect (got: $(tr '\n' ' ' <<< "$answer"))"
done
http_get "$serve_port" /metrics | grep -q '^eppi_' \
  || fail "serve daemon exposes no eppi_ metrics"
echo "multiprocess_smoke: batched query answered with true positives"

kill -TERM "$serve_pid"
wait "$serve_pid" || fail "serve daemon exited nonzero after SIGTERM"

# -------------------------------------------------------- membership churn --
# Kill a locator hard mid-churn, then prove a fresh one completes the same
# churn: lakeside leaves, newclinic joins with dave's delegation, and the
# next epoch must publish through the incremental (delta) protocol.
churn_port=$(( base + 31 ))
"$cli" serve "$csv" --listen "$churn_port" 2> "$workdir/churn1.err" &
churn_pid=$!
pids+=("$churn_pid")
wait_for 15 "churn daemon" http_get "$churn_port" /healthz
http_post "$churn_port" /retire 'lakeside' | grep -q 'retired 1' \
  || fail "first churn daemon refused the retirement"
kill -KILL "$churn_pid"      # the locator host dies before the rebuild
wait "$churn_pid" 2>/dev/null || true
echo "multiprocess_smoke: locator killed mid-churn (retirement unpublished)"

churn_port=$(( base + 32 ))
"$cli" serve "$csv" --listen "$churn_port" 2> "$workdir/churn2.err" &
churn_pid=$!
pids+=("$churn_pid")
wait_for 15 "replacement churn daemon" http_get "$churn_port" /healthz
http_post "$churn_port" /retire 'lakeside' | grep -q 'retired 1' \
  || fail "replacement daemon refused the retirement"
http_post "$churn_port" /delegate 'dave,0.6,newclinic' \
  | grep -q 'delegated 1' || fail "replacement daemon refused the join"
rebuild="$(http_post "$churn_port" /rebuild '')"
grep -q 'epoch=2 delta=1 degraded=0' <<< "$rebuild" \
  || fail "churn epoch did not publish via the delta path (got: $rebuild)"
grep -Eq 'joined=1 left=1' <<< "$rebuild" \
  || fail "churn epoch miscounted membership (got: $rebuild)"
answer="$(http_post "$churn_port" /query $'carol\ndave')"
grep -q 'lakeside' <<< "$answer" \
  && fail "retired provider still served after churn epoch"
grep -q 'dave,newclinic' <<< "$answer" \
  || fail "joined provider missing from churn epoch answers"
echo "multiprocess_smoke: churn epoch published via delta (leave + join)"

kill -TERM "$churn_pid"
wait "$churn_pid" || fail "churn daemon exited nonzero after SIGTERM"

kill -TERM "$proxy_pid"
wait "$proxy_pid" || fail "chaos proxy exited nonzero after SIGTERM"

echo "multiprocess_smoke: PASS"
