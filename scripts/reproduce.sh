#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every paper table and
# figure plus the ablations. Outputs land in ./results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" | tee results_tests.txt || exit 1

mkdir -p results
for bench in build/bench/bench_*; do
  name=$(basename "$bench")
  echo "== running $name =="
  "$bench" | tee "results/$name.txt"
done
echo "done; see results/ and EXPERIMENTS.md for the paper-vs-measured notes"
