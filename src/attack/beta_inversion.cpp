#include "attack/beta_inversion.h"

#include <cmath>

#include "common/error.h"

namespace eppi::attack {

namespace {

using eppi::core::BetaPolicy;
using eppi::core::PolicyKind;

std::optional<double> invert_basic(double beta, double epsilon) {
  // Eq. 3 rearranged: β = [(σ⁻¹−1)(ε⁻¹−1)]⁻¹  ⇒  σ⁻¹ = 1 + 1/(β(ε⁻¹−1)).
  if (epsilon <= 0.0 || epsilon >= 1.0) return std::nullopt;
  const double k = beta * (1.0 / epsilon - 1.0);
  if (k <= 0.0) return std::nullopt;
  return 1.0 / (1.0 + 1.0 / k);
}

}  // namespace

std::optional<double> invert_beta(const BetaPolicy& policy, double beta,
                                  double epsilon, std::size_t m) {
  require(m >= 1, "invert_beta: need at least one provider");
  require(epsilon >= 0.0 && epsilon <= 1.0,
          "invert_beta: epsilon out of [0,1]");
  if (beta <= 0.0 || beta >= 1.0) return std::nullopt;
  switch (policy.kind) {
    case PolicyKind::kBasic:
      return invert_basic(beta, epsilon);
    case PolicyKind::kIncExp: {
      const double raw = beta - policy.delta;
      if (raw <= 0.0) return std::nullopt;
      return invert_basic(raw, epsilon);
    }
    case PolicyKind::kChernoff:
    case PolicyKind::kExact: {
      // Both are strictly increasing in σ; bisect over [0, 1).
      double lo = 0.0;
      double hi = 1.0 - 1e-12;
      if (eppi::core::beta_raw(policy, hi, epsilon, m) < beta) {
        return std::nullopt;
      }
      for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const double value = eppi::core::beta_raw(policy, mid, epsilon, m);
        if (value < beta) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return 0.5 * (lo + hi);
    }
  }
  throw eppi::ConfigError("invert_beta: unknown policy");
}

std::optional<std::uint64_t> invert_beta_frequency(const BetaPolicy& policy,
                                                   double beta,
                                                   double epsilon,
                                                   std::size_t m) {
  const auto sigma = invert_beta(policy, beta, epsilon, m);
  if (!sigma) return std::nullopt;
  return static_cast<std::uint64_t>(
      std::llround(*sigma * static_cast<double>(m)));
}

}  // namespace eppi::attack
