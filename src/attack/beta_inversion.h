// β-inversion: recovering identity frequency from a released β value.
//
// The construction protocol ends with the β vector released to every
// provider (paper Eq. 8-9 and §IV-C point 3: "the final output β does not
// carry any private information"). That claim holds *only because of
// identity mixing*: for an unmixed identity, β* is a strictly increasing
// function of σ at fixed (ε, policy, m), so any provider — or an attacker a
// provider colludes with — can invert it and read off the identity's exact
// frequency. This module implements that inversion:
//
//  * basic policy: closed form from Eq. 3,
//        σ = 1 / (1 + 1 / (β (ε⁻¹ − 1)));
//  * inc-exp: closed form after subtracting Δ;
//  * Chernoff: monotone in σ ⇒ bisection.
//
// For a mixed identity β = 1 and the preimage is the entire common range
// plus the λ-selected decoys — the inversion collapses, which is precisely
// the defense. Tests verify the round trip on unmixed identities and the
// ambiguity on mixed ones; this is the quantitative argument for why the
// common-identity attack breaks unmixed designs (SS-PPI) and not ε-PPI.
#pragma once

#include <cstddef>
#include <optional>

#include "core/beta_policy.h"

namespace eppi::attack {

// Recovers σ from an observed raw β (< 1) for the given policy/ε/m.
// Returns std::nullopt when β >= 1 (saturated/mixed: the preimage is not a
// point) or β <= 0 (σ = 0 or ε = 0; nothing to invert).
std::optional<double> invert_beta(const eppi::core::BetaPolicy& policy,
                                  double beta, double epsilon, std::size_t m);

// Convenience: recovered absolute frequency (σ·m), rounded to the nearest
// integer, or nullopt as above.
std::optional<std::uint64_t> invert_beta_frequency(
    const eppi::core::BetaPolicy& policy, double beta, double epsilon,
    std::size_t m);

}  // namespace eppi::attack
