#include "attack/collusion.h"

#include "common/error.h"

namespace eppi::attack {

CollusionObserver::CollusionObserver(
    std::vector<std::vector<std::uint64_t>> views, std::uint64_t q)
    : views_(std::move(views)), q_(q) {
  require(q_ >= 2, "CollusionObserver: bad modulus");
  require(!views_.empty(), "CollusionObserver: no views");
  for (const auto& v : views_) {
    require(v.size() == views_[0].size(),
            "CollusionObserver: inconsistent view lengths");
  }
}

std::uint64_t CollusionObserver::partial_sum(
    std::span<const std::size_t> view_subset, std::size_t identity) const {
  require(identity < views_[0].size(), "CollusionObserver: bad identity");
  std::uint64_t sum = 0;
  for (const std::size_t v : view_subset) {
    require(v < views_.size(), "CollusionObserver: bad view index");
    sum = (sum + views_[v][identity]) % q_;
  }
  return sum;
}

double CollusionObserver::uniformity_chi2(
    std::span<const std::size_t> view_subset, std::size_t buckets) const {
  require(buckets >= 2, "CollusionObserver: need at least 2 buckets");
  const std::size_t n = views_[0].size();
  std::vector<std::size_t> counts(buckets, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t s = partial_sum(view_subset, j);
    const auto bucket = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(s) * buckets) / q_);
    ++counts[bucket];
  }
  const double expected =
      static_cast<double>(n) / static_cast<double>(buckets);
  double chi2 = 0.0;
  for (const std::size_t count : counts) {
    const double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

}  // namespace eppi::attack
