// Collusion observer for the SecSumShare secrecy property (Theorem 4.1).
//
// Models an adversary that pools the views of x < c coordinators and tries
// to learn an identity's frequency from the pooled shares. Theorem 4.1 says
// the conditional distribution of the secret given fewer than c shares
// equals the prior; the observer exposes the pooled partial sums so tests
// and the security benches can verify that empirically (the partial sums are
// uniform over Z_q and independent of the secret).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eppi::attack {

class CollusionObserver {
 public:
  // views[i] = coordinator i's output share vector from SecSumShare.
  explicit CollusionObserver(
      std::vector<std::vector<std::uint64_t>> views, std::uint64_t q);

  std::size_t n_views() const noexcept { return views_.size(); }

  // Pooled partial sum over a subset of the views for one identity: the best
  // sufficient statistic available to the colluders.
  std::uint64_t partial_sum(std::span<const std::size_t> view_subset,
                            std::size_t identity) const;

  // Chi-squared statistic of the partial-sum distribution across identities
  // against the uniform distribution over Z_q (small value = consistent with
  // uniform = nothing learned). Buckets Z_q into `buckets` cells.
  double uniformity_chi2(std::span<const std::size_t> view_subset,
                         std::size_t buckets) const;

 private:
  std::vector<std::vector<std::uint64_t>> views_;
  std::uint64_t q_;
};

}  // namespace eppi::attack
