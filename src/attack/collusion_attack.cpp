#include "attack/collusion_attack.h"

#include <algorithm>

#include "common/error.h"

namespace eppi::attack {

CollusionAttackResult colluding_primary_attack(
    const eppi::BitMatrix& truth, const eppi::BitMatrix& published,
    std::size_t identity, std::span<const std::size_t> coalition) {
  require(truth.rows() == published.rows() &&
              truth.cols() == published.cols(),
          "colluding_primary_attack: shape mismatch");
  require(identity < truth.cols(), "colluding_primary_attack: bad identity");

  std::vector<std::uint8_t> in_coalition(truth.rows(), 0);
  for (const std::size_t p : coalition) {
    require(p < truth.rows(), "colluding_primary_attack: bad coalition id");
    in_coalition[p] = 1;
  }

  CollusionAttackResult result;
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    if (!published.get(i, identity)) continue;
    if (in_coalition[i]) {
      ++result.coalition_claims;
      continue;
    }
    ++result.outside_claims;
    if (truth.get(i, identity)) ++result.outside_true;
  }
  return result;
}

std::vector<double> collusion_confidence_curve(
    const eppi::BitMatrix& truth, const eppi::BitMatrix& published,
    std::size_t identity, std::span<const std::size_t> coalition_sizes,
    std::size_t trials, eppi::Rng& rng) {
  require(trials >= 1, "collusion_confidence_curve: need trials");
  const std::size_t m = truth.rows();
  std::vector<std::size_t> providers(m);
  for (std::size_t i = 0; i < m; ++i) providers[i] = i;

  std::vector<double> curve;
  curve.reserve(coalition_sizes.size());
  for (const std::size_t size : coalition_sizes) {
    require(size <= m, "collusion_confidence_curve: coalition too large");
    double total = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      // Partial Fisher-Yates for a uniform coalition.
      for (std::size_t i = 0; i < size; ++i) {
        const std::size_t pick =
            i + static_cast<std::size_t>(rng.next_below(m - i));
        std::swap(providers[i], providers[pick]);
      }
      const auto result = colluding_primary_attack(
          truth, published, identity,
          std::span<const std::size_t>(providers.data(), size));
      total += result.outside_confidence();
    }
    curve.push_back(total / static_cast<double>(trials));
  }
  return curve;
}

}  // namespace eppi::attack
