// Colluding-provider attack on the published index.
//
// The paper's threat model (§II-B) notes the attacker "can exploit other
// knowledge through various channels, such as colluding providers" and
// defers the analysis to the technical report. This module implements that
// channel against the published matrix M':
//
// A coalition of providers shares its *true* local vectors with the
// attacker. For a target identity t_j the attacker then:
//   * discards coalition providers from the candidate set (their bits are
//     known exactly), and
//   * attacks only non-coalition providers with M'(i,j) = 1, with
//     confidence (true positives outside the coalition) / (claims outside
//     the coalition).
//
// Knowing part of the noise does not deflate the remaining noise: the
// non-coalition false-positive rate stays at ε in expectation because every
// provider flips its coin independently — the property measured by the
// collusion bench and tests. (The coalition does learn its *own* bits, so
// owners' privacy *at coalition members* is gone — which no index can
// prevent, since those providers hold the records.)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::attack {

struct CollusionAttackResult {
  std::size_t coalition_claims = 0;   // claims resolvable exactly (inside)
  std::size_t outside_claims = 0;     // claimed positives outside coalition
  std::size_t outside_true = 0;       // of which true
  // Attacker confidence against non-coalition providers.
  double outside_confidence() const noexcept {
    return outside_claims == 0
               ? 0.0
               : static_cast<double>(outside_true) /
                     static_cast<double>(outside_claims);
  }
};

// Evaluates the attack on one identity given the coalition's provider ids.
CollusionAttackResult colluding_primary_attack(
    const eppi::BitMatrix& truth, const eppi::BitMatrix& published,
    std::size_t identity, std::span<const std::size_t> coalition);

// Confidence as a function of coalition size for a fixed identity, with the
// coalition drawn uniformly without replacement `trials` times per size.
// Returns one averaged confidence per entry of `coalition_sizes`.
std::vector<double> collusion_confidence_curve(
    const eppi::BitMatrix& truth, const eppi::BitMatrix& published,
    std::size_t identity, std::span<const std::size_t> coalition_sizes,
    std::size_t trials, eppi::Rng& rng);

}  // namespace eppi::attack
