#include "attack/common_identity_attack.h"

#include "common/error.h"

namespace eppi::attack {

std::vector<bool> truly_common_flags(const eppi::BitMatrix& truth,
                                     std::uint64_t common_cutoff) {
  std::vector<bool> flags(truth.cols());
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    flags[j] = truth.col_count(j) >= common_cutoff;
  }
  return flags;
}

CommonAttackResult common_identity_attack(
    const eppi::BitMatrix& truth, std::span<const std::uint64_t> knowledge,
    std::uint64_t common_cutoff, std::size_t claims_per_identity,
    eppi::Rng& rng) {
  return common_identity_attack(truth, knowledge, common_cutoff,
                                truly_common_flags(truth, common_cutoff),
                                claims_per_identity, rng);
}

CommonAttackResult common_identity_attack(
    const eppi::BitMatrix& truth, std::span<const std::uint64_t> knowledge,
    std::uint64_t common_cutoff, const std::vector<bool>& truly_common,
    std::size_t claims_per_identity, eppi::Rng& rng) {
  require(knowledge.size() == truth.cols(),
          "common_identity_attack: knowledge size mismatch");
  require(truly_common.size() == truth.cols(),
          "common_identity_attack: ground-truth size mismatch");
  const std::size_t m = truth.rows();

  CommonAttackResult result;
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    if (knowledge[j] < common_cutoff) continue;
    ++result.candidates;
    if (truly_common[j]) ++result.identity_hits;
    for (std::size_t t = 0; t < claims_per_identity; ++t) {
      const auto provider = static_cast<std::size_t>(rng.next_below(m));
      ++result.trials;
      if (truth.get(provider, j)) ++result.successes;
    }
  }
  return result;
}

}  // namespace eppi::attack
