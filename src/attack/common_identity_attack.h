// Common-identity attack simulation (paper §II-B, Appendix B).
//
// The attacker targets identities that appear at almost every provider: if
// it can learn that σ_j is high, then *any* provider is a true positive with
// near-certainty and the PPI's row noise is useless. The attack has two
// steps — identify which identities are common, then claim membership at an
// arbitrary provider — and its power depends entirely on the frequency
// knowledge the PPI leaks:
//
//  * SS-PPI leaks exact frequencies during construction   -> NoProtect;
//  * grouping PPIs reveal the truthful frequency shape in
//    the published matrix                                 -> NoGuarantee;
//  * ε-PPI publishes all apparent-common identities at β = 1 and hides
//    their true frequencies behind λ-mixed decoys          -> confidence
//    bounded by 1 − ξ (ε-PRIVATE).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::attack {

struct CommonAttackResult {
  std::size_t candidates = 0;       // identities the attacker flagged common
  std::size_t identity_hits = 0;    // flagged identities that are truly common
  std::size_t trials = 0;           // membership claims mounted
  std::size_t successes = 0;        // claims that were true memberships

  // Step-1 confidence: picking a truly common identity out of the flagged
  // set. This is the quantity ε-PPI's mixing bounds by 1 − ξ.
  double identification_confidence() const noexcept {
    return candidates == 0 ? 0.0
                           : static_cast<double>(identity_hits) /
                                 static_cast<double>(candidates);
  }
  // End-to-end confidence of the membership claims.
  double claim_confidence() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

// Mounts the attack given the attacker's per-identity frequency knowledge
// (whatever the channel leaked: exact σ·m for SS-PPI, apparent frequencies
// read off M' otherwise). Identities with knowledge >= common_cutoff are
// flagged; `truly_common` is ground truth (frequency >= cutoff in M). For
// each flagged identity, `claims_per_identity` membership claims are made
// against uniformly chosen providers.
CommonAttackResult common_identity_attack(
    const eppi::BitMatrix& truth, std::span<const std::uint64_t> knowledge,
    std::uint64_t common_cutoff, std::size_t claims_per_identity,
    eppi::Rng& rng);

// Variant with explicit ground truth: `truly_common[j]` says whether owner j
// really is a common identity (e.g. by the β-policy's saturation threshold),
// decoupled from the attacker's flagging cutoff. This matters for ε-PPI,
// where every apparent-common column is full (knowledge cutoff = m) while
// the policy's common threshold is much lower.
CommonAttackResult common_identity_attack(
    const eppi::BitMatrix& truth, std::span<const std::uint64_t> knowledge,
    std::uint64_t knowledge_cutoff, const std::vector<bool>& truly_common,
    std::size_t claims_per_identity, eppi::Rng& rng);

// Ground-truth common flags at a frequency cutoff.
std::vector<bool> truly_common_flags(const eppi::BitMatrix& truth,
                                     std::uint64_t common_cutoff);

}  // namespace eppi::attack
