#include "attack/primary_attack.h"

#include "common/error.h"

namespace eppi::attack {

PrimaryAttackResult primary_attack(const eppi::BitMatrix& truth,
                                   const eppi::BitMatrix& claims,
                                   std::size_t identity, std::size_t trials,
                                   eppi::Rng& rng) {
  require(truth.rows() == claims.rows() && truth.cols() == claims.cols(),
          "primary_attack: shape mismatch");
  require(identity < truth.cols(), "primary_attack: unknown identity");

  std::vector<std::size_t> positives;
  for (std::size_t i = 0; i < claims.rows(); ++i) {
    if (claims.get(i, identity)) positives.push_back(i);
  }
  PrimaryAttackResult result;
  if (positives.empty()) return result;
  result.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t pick = positives[static_cast<std::size_t>(
        rng.next_below(positives.size()))];
    if (truth.get(pick, identity)) ++result.successes;
  }
  return result;
}

double exact_confidence(const eppi::BitMatrix& truth,
                        const eppi::BitMatrix& claims, std::size_t identity) {
  require(truth.rows() == claims.rows() && truth.cols() == claims.cols(),
          "exact_confidence: shape mismatch");
  require(identity < truth.cols(), "exact_confidence: unknown identity");
  std::size_t claimed = 0;
  std::size_t true_pos = 0;
  for (std::size_t i = 0; i < claims.rows(); ++i) {
    if (!claims.get(i, identity)) continue;
    ++claimed;
    if (truth.get(i, identity)) ++true_pos;
  }
  return claimed == 0 ? 0.0
                      : static_cast<double>(true_pos) /
                            static_cast<double>(claimed);
}

std::vector<double> exact_confidences(const eppi::BitMatrix& truth,
                                      const eppi::BitMatrix& claims) {
  std::vector<double> out(truth.cols());
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    out[j] = exact_confidence(truth, claims, j);
  }
  return out;
}

}  // namespace eppi::attack
