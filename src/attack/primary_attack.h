// Primary attack simulation (paper §II-B).
//
// The attacker reads the public PPI data M', picks an owner t_j and a
// provider p_i with M'(i,j) = 1, and claims "t_j has records at p_i". The
// attack succeeds iff M(i,j) = 1, so against a uniformly chosen positive
// provider the attacker's confidence equals 1 - fp_j (paper §II-C) — the
// quantity ε-PPI promises to bound by 1 - ε_j.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::attack {

struct PrimaryAttackResult {
  std::size_t trials = 0;       // attacks actually mounted
  std::size_t successes = 0;
  double empirical_confidence() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

// Mounts `trials` independent primary attacks against identity j, each
// picking a uniform provider among those with claims[i][j] = 1. Returns zero
// trials if nobody claims the identity.
PrimaryAttackResult primary_attack(const eppi::BitMatrix& truth,
                                   const eppi::BitMatrix& claims,
                                   std::size_t identity, std::size_t trials,
                                   eppi::Rng& rng);

// Exact attacker confidence: true positives / claimed positives for identity
// j (the quantity the empirical attack estimates).
double exact_confidence(const eppi::BitMatrix& truth,
                        const eppi::BitMatrix& claims, std::size_t identity);

// Per-identity exact confidences over the whole index.
std::vector<double> exact_confidences(const eppi::BitMatrix& truth,
                                      const eppi::BitMatrix& claims);

}  // namespace eppi::attack
