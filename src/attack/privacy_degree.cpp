#include "attack/privacy_degree.h"

#include "common/error.h"
#include "common/stats.h"

namespace eppi::attack {

std::string to_string(PrivacyDegree degree) {
  switch (degree) {
    case PrivacyDegree::kUnleaked:
      return "Unleaked";
    case PrivacyDegree::kEpsPrivate:
      return "eps-PRIVATE";
    case PrivacyDegree::kNoGuarantee:
      return "NoGuarantee";
    case PrivacyDegree::kNoProtect:
      return "NoProtect";
  }
  return "?";
}

double bound_satisfaction(std::span<const double> confidences,
                          std::span<const double> epsilons, double slack) {
  require(confidences.size() == epsilons.size(),
          "bound_satisfaction: size mismatch");
  if (confidences.empty()) return 1.0;
  std::size_t held = 0;
  for (std::size_t j = 0; j < confidences.size(); ++j) {
    if (confidences[j] <= 1.0 - epsilons[j] + slack) ++held;
  }
  return static_cast<double>(held) / static_cast<double>(confidences.size());
}

PrivacyDegree classify_degree(std::span<const double> confidences,
                              std::span<const double> epsilons,
                              const DegreeThresholds& thresholds,
                              double slack) {
  require(confidences.size() == epsilons.size(),
          "classify_degree: size mismatch");
  if (confidences.empty()) return PrivacyDegree::kUnleaked;
  const double quota = bound_satisfaction(confidences, epsilons, slack);
  if (quota >= thresholds.eps_private_quota) {
    return PrivacyDegree::kEpsPrivate;
  }
  const double avg = eppi::mean(confidences);
  if (avg >= thresholds.no_protect_confidence) {
    return PrivacyDegree::kNoProtect;
  }
  return PrivacyDegree::kNoGuarantee;
}

}  // namespace eppi::attack
