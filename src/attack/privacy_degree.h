// Privacy-degree classification (paper §II-C, Table II).
//
// The paper defines four discrete degrees on its information-flow model:
// Unleaked, ε-PRIVATE (attacker confidence provably bounded by 1 − ε),
// NoGuarantee (leakage unpredictable) and NoProtect (attack succeeds with
// certainty). This module classifies *measured* attack confidences so the
// Table II comparison can be reproduced empirically: a system is rated
// ε-PRIVATE when the per-owner bound holds for (almost) all owners,
// NoProtect when confidence is ~1, NoGuarantee otherwise.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace eppi::attack {

enum class PrivacyDegree {
  kUnleaked,
  kEpsPrivate,
  kNoGuarantee,
  kNoProtect,
};

std::string to_string(PrivacyDegree degree);

struct DegreeThresholds {
  // Fraction of owners whose bound must hold to rate ε-PRIVATE. Below 1.0 to
  // absorb sampling noise in randomized experiments.
  double eps_private_quota = 0.95;
  // Mean confidence at or above this rates NoProtect.
  double no_protect_confidence = 0.999;
};

// `confidences[j]` is the measured attacker confidence against owner j and
// `epsilons[j]` the owner's privacy degree; the per-owner requirement is
// confidence <= 1 − ε_j (+ slack).
PrivacyDegree classify_degree(std::span<const double> confidences,
                              std::span<const double> epsilons,
                              const DegreeThresholds& thresholds = {},
                              double slack = 0.02);

// Fraction of owners meeting the ε-PRIVATE bound (the paper's success
// ratio, from the attacker's side).
double bound_satisfaction(std::span<const double> confidences,
                          std::span<const double> epsilons,
                          double slack = 0.0);

}  // namespace eppi::attack
