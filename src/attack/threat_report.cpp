#include "attack/threat_report.h"

#include <algorithm>

#include "attack/common_identity_attack.h"
#include "attack/primary_attack.h"
#include "common/error.h"

namespace eppi::attack {

ThreatReport audit_index(const eppi::BitMatrix& truth,
                         const eppi::BitMatrix& published,
                         std::span<const double> epsilons,
                         const std::vector<bool>& truly_common,
                         eppi::Rng& rng,
                         const ThreatReportOptions& options) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "audit_index: epsilon count mismatch");
  require(truly_common.size() == n, "audit_index: common flags mismatch");

  ThreatReport report;

  // --- primary attack --------------------------------------------------------
  report.primary_confidences = exact_confidences(truth, published);
  double total = 0.0;
  for (const double c : report.primary_confidences) total += c;
  report.primary_mean_confidence =
      n == 0 ? 0.0 : total / static_cast<double>(n);

  std::vector<double> classified_conf;
  std::vector<double> classified_eps;
  for (std::size_t j = 0; j < n; ++j) {
    if (options.exclude_infeasible) {
      const double freq = static_cast<double>(truth.col_count(j));
      if (freq > (1.0 - epsilons[j]) * static_cast<double>(m)) continue;
    }
    classified_conf.push_back(report.primary_confidences[j]);
    classified_eps.push_back(epsilons[j]);
  }
  report.owners_classified = classified_conf.size();
  report.bound_satisfaction =
      bound_satisfaction(classified_conf, classified_eps, options.slack);
  report.primary_degree =
      classify_degree(classified_conf, classified_eps, {}, options.slack);

  // --- common-identity attack ---------------------------------------------
  report.xi = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (truly_common[j]) report.xi = std::max(report.xi, epsilons[j]);
  }
  std::vector<std::uint64_t> knowledge(n);
  for (std::size_t j = 0; j < n; ++j) {
    knowledge[j] = published.col_count(j);
  }
  const std::uint64_t cutoff =
      options.common_knowledge_cutoff == 0 ? m
                                           : options.common_knowledge_cutoff;
  const auto outcome = common_identity_attack(
      truth, knowledge, cutoff, truly_common, options.claims_per_identity,
      rng);
  report.common_candidates = outcome.candidates;
  report.common_hits = outcome.identity_hits;
  report.common_identification_confidence =
      outcome.identification_confidence();
  if (outcome.candidates == 0) {
    report.common_degree = PrivacyDegree::kUnleaked;  // nothing to attack
  } else if (report.common_identification_confidence >= 0.999) {
    report.common_degree = PrivacyDegree::kNoProtect;
  } else if (report.common_identification_confidence <=
             1.0 - report.xi + options.slack) {
    report.common_degree = PrivacyDegree::kEpsPrivate;
  } else {
    report.common_degree = PrivacyDegree::kNoGuarantee;
  }
  return report;
}

}  // namespace eppi::attack
