// Privacy audit: a one-call threat evaluation of a published index.
//
// Deployments want the paper's evaluation as a routine check, not a bench:
// given the ground-truth membership, the published view and the per-owner
// privacy degrees, produce the measured attacker confidences under both
// attacks of the threat model (§II-B), the per-owner bound satisfaction and
// the resulting privacy-degree classification (§II-C). The Table II bench
// and the attack_demo example are thin wrappers over this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/privacy_degree.h"
#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::attack {

struct ThreatReportOptions {
  // Per-owner primary-attack bound slack (absorbs sampling noise).
  double slack = 0.02;
  // Owners with frequency > (1 - eps) * m cannot meet the bound under any
  // 100%-recall index (no negatives left); exclude them from the primary
  // classification — they are covered by the common-identity defense.
  bool exclude_infeasible = true;
  // Apparent-frequency cutoff for flagging common identities (0 = full
  // column).
  std::uint64_t common_knowledge_cutoff = 0;
  std::size_t claims_per_identity = 5;
};

struct ThreatReport {
  // --- primary attack ----------------------------------------------------
  std::vector<double> primary_confidences;  // per owner, exact
  double primary_mean_confidence = 0.0;
  double bound_satisfaction = 0.0;          // over classified owners
  PrivacyDegree primary_degree = PrivacyDegree::kUnleaked;
  std::size_t owners_classified = 0;        // after feasibility filter

  // --- common-identity attack ---------------------------------------------
  std::size_t common_candidates = 0;        // flagged by the attacker
  std::size_t common_hits = 0;              // flagged and truly common
  double common_identification_confidence = 0.0;
  PrivacyDegree common_degree = PrivacyDegree::kUnleaked;
  double xi = 0.0;                          // max eps over true commons
};

// `truly_common[j]` is the policy-level common flag (e.g.
// ConstructionInfo::is_common); epsilons are the owners' degrees.
ThreatReport audit_index(const eppi::BitMatrix& truth,
                         const eppi::BitMatrix& published,
                         std::span<const double> epsilons,
                         const std::vector<bool>& truly_common,
                         eppi::Rng& rng,
                         const ThreatReportOptions& options = {});

}  // namespace eppi::attack
