#include "baseline/grouping_ppi.h"

#include "common/error.h"

namespace eppi::baseline {

GroupingPpi::GroupingPpi(const eppi::BitMatrix& truth, std::size_t n_groups,
                         eppi::Rng& rng)
    : n_groups_(n_groups) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(n_groups >= 1, "GroupingPpi: need at least one group");
  require(n_groups <= m, "GroupingPpi: more groups than providers");

  // Random assignment, the strategy of the published grouping PPIs. A
  // round-robin over a shuffled provider order keeps group sizes balanced
  // (|size difference| <= 1), matching the "uniform group size" setting the
  // paper benchmarks against.
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (std::size_t i = m; i > 1; --i) {
    const auto pick = static_cast<std::size_t>(rng.next_below(i));
    std::swap(order[i - 1], order[pick]);
  }
  group_of_.resize(m);
  members_.resize(n_groups);
  for (std::size_t pos = 0; pos < m; ++pos) {
    const auto g = static_cast<std::uint32_t>(pos % n_groups);
    group_of_[order[pos]] = g;
    members_[g].push_back(static_cast<eppi::core::ProviderId>(order[pos]));
  }

  group_index_ = eppi::BitMatrix(n_groups, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (truth.get(i, j)) group_index_.set(group_of_[i], j, true);
    }
  }
  provider_view_ = eppi::BitMatrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (group_index_.get(group_of_[i], j)) provider_view_.set(i, j, true);
    }
  }
}

std::uint32_t GroupingPpi::group_of(std::size_t provider) const {
  require(provider < group_of_.size(), "GroupingPpi: unknown provider");
  return group_of_[provider];
}

std::vector<eppi::core::ProviderId> GroupingPpi::query(
    eppi::core::IdentityId identity) const {
  require(identity < group_index_.cols(), "GroupingPpi: unknown identity");
  std::vector<eppi::core::ProviderId> result;
  for (std::size_t g = 0; g < n_groups_; ++g) {
    if (!group_index_.get(g, identity)) continue;
    result.insert(result.end(), members_[g].begin(), members_[g].end());
  }
  return result;
}

std::size_t GroupingPpi::apparent_frequency(
    eppi::core::IdentityId identity) const {
  return provider_view_.col_count(identity);
}

SsPpi::SsPpi(const eppi::BitMatrix& truth, std::size_t n_groups,
             eppi::Rng& rng)
    : index(truth, n_groups, rng) {
  leaked_frequencies.resize(truth.cols());
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    leaked_frequencies[j] = truth.col_count(j);
  }
}

}  // namespace eppi::baseline
