// Grouping-based PPI baselines (paper refs [12], [13], [22]; Appendix B).
//
// Existing PPIs, inspired by k-anonymity, randomly assign providers to
// disjoint privacy groups; a group reports 1 for identity t_j iff at least
// one member holds t_j, and a searcher must contact every provider of every
// positive group. True positives hide among their group peers — but the
// achieved false positive rate per identity is emergent from the random
// assignment rather than controlled, which is why these designs are
// NoGuarantee under the primary attack and why Fig. 4 shows their success
// ratio collapsing.
//
// SS-PPI ([22]) uses the same index shape but its construction protocol
// discloses true identity frequencies to the participating providers; the
// SsPpi wrapper models that leak explicitly (leaked_frequencies), which is
// what makes it NoProtect under the common-identity attack (Table II).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "core/ppi_index.h"

namespace eppi::baseline {

class GroupingPpi {
 public:
  // Randomly assigns the truth matrix's providers to n_groups groups and
  // builds the group-level index. Throws ConfigError if n_groups is 0 or
  // exceeds the provider count.
  GroupingPpi(const eppi::BitMatrix& truth, std::size_t n_groups,
              eppi::Rng& rng);

  std::size_t n_groups() const noexcept { return n_groups_; }
  std::uint32_t group_of(std::size_t provider) const;

  // QueryPPI: all providers belonging to groups that reported 1.
  std::vector<eppi::core::ProviderId> query(
      eppi::core::IdentityId identity) const;

  // Provider-level published view M' implied by the group index: provider i
  // claims identity j iff i's group is positive for j. This is what the
  // attacker observes, and it makes grouping PPIs directly comparable to
  // ε-PPI under the shared privacy metrics (false_positive_rates etc.).
  const eppi::BitMatrix& provider_view() const noexcept {
    return provider_view_;
  }

  // Apparent identity frequency in the provider-level view.
  std::size_t apparent_frequency(eppi::core::IdentityId identity) const;

 private:
  std::size_t n_groups_;
  std::vector<std::uint32_t> group_of_;
  std::vector<std::vector<eppi::core::ProviderId>> members_;
  eppi::BitMatrix group_index_;    // groups x identities
  eppi::BitMatrix provider_view_;  // providers x identities
};

// SS-PPI: grouping index whose construction leaks the exact identity
// frequencies to (potentially colluding) providers.
struct SsPpi {
  GroupingPpi index;
  std::vector<std::uint64_t> leaked_frequencies;

  SsPpi(const eppi::BitMatrix& truth, std::size_t n_groups, eppi::Rng& rng);
};

}  // namespace eppi::baseline
