#include "baseline/pure_mpc_runner.h"

#include <chrono>

#include "common/error.h"
#include "mpc/gmw.h"
#include "net/cluster.h"

namespace eppi::baseline {

PureMpcRunResult run_pure_mpc(const eppi::BitMatrix& truth,
                              std::span<const std::uint64_t> thresholds,
                              const PureMpcRunOptions& options) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(m >= 2, "run_pure_mpc: need at least 2 providers");
  require(thresholds.size() == n, "run_pure_mpc: threshold count mismatch");

  eppi::mpc::PureMpcSpec spec;
  spec.m = m;
  spec.thresholds.assign(thresholds.begin(), thresholds.end());
  spec.lambda = options.lambda;
  spec.coin_bits = options.coin_bits;
  spec.include_mixing = options.include_mixing;
  const eppi::mpc::Circuit circuit = eppi::mpc::build_pure_mpc_circuit(spec);

  eppi::net::Cluster cluster(m, options.seed);
  std::vector<bool> opened;  // written by party 0 only

  const auto start = std::chrono::steady_clock::now();
  cluster.run([&](eppi::net::PartyContext& ctx) {
    const std::size_t me = ctx.id();
    std::vector<bool> inputs;
    inputs.reserve(n * (1 + options.coin_bits));
    for (std::size_t j = 0; j < n; ++j) {
      inputs.push_back(truth.get(me, j));
    }
    if (options.include_mixing) {
      for (std::size_t j = 0; j < n; ++j) {
        for (unsigned b = 0; b < options.coin_bits; ++b) {
          inputs.push_back(ctx.rng().bernoulli(0.5));
        }
      }
    }
    eppi::mpc::GmwSession session;
    for (std::size_t i = 0; i < m; ++i) {
      session.parties.push_back(static_cast<eppi::net::PartyId>(i));
    }
    auto out = eppi::mpc::run_gmw_party(ctx, session, circuit, inputs);
    if (me == 0) opened = std::move(out);
  });
  const auto stop = std::chrono::steady_clock::now();

  PureMpcRunResult result;
  result.output = eppi::mpc::decode_pure_mpc(spec, opened);
  result.stats = circuit.stats();
  result.cost = cluster.meter().snapshot();
  result.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace eppi::baseline
