// Pure-MPC construction baseline runner (paper §V-B).
//
// The comparison point that justifies ε-PPI's MPC-reduced design: instead of
// confining generic MPC to c coordinators fed by SecSumShare, the pure
// approach runs the entire β computation as one generic MPC directly over
// all m providers' raw membership bits. Circuit size, rounds, bytes and
// execution time all grow with m, which is what Fig. 6 plots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_matrix.h"
#include "mpc/eppi_circuits.h"
#include "net/cost_meter.h"

namespace eppi::baseline {

struct PureMpcRunOptions {
  double lambda = 0.0;
  unsigned coin_bits = 8;
  std::uint64_t seed = 1;
  // false = the paper's measured baseline: common-count only, no mixing
  // outputs (and no coin inputs).
  bool include_mixing = true;
};

struct PureMpcRunResult {
  eppi::mpc::PureMpcResult output;
  eppi::mpc::CircuitStats stats;
  eppi::net::CostSnapshot cost;
  double wall_seconds = 0.0;  // measured engine time, threads on one host
};

// Runs the pure-MPC construction over an m-party cluster; truth row i is
// party i's private input. `thresholds` are the public per-identity common
// thresholds t_j.
PureMpcRunResult run_pure_mpc(const eppi::BitMatrix& truth,
                              std::span<const std::uint64_t> thresholds,
                              const PureMpcRunOptions& options);

}  // namespace eppi::baseline
