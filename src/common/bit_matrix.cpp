#include "common/bit_matrix.h"

#include <bit>

#include "common/error.h"

namespace eppi {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  words_.assign(rows_ * words_per_row_, 0);
}

void BitMatrix::check_bounds(std::size_t row, std::size_t col) const {
  require(row < rows_ && col < cols_, "BitMatrix: index out of range");
}

bool BitMatrix::get(std::size_t row, std::size_t col) const {
  check_bounds(row, col);
  const std::uint64_t word = words_[row * words_per_row_ + col / 64];
  return (word >> (col % 64)) & 1u;
}

void BitMatrix::set(std::size_t row, std::size_t col, bool value) {
  check_bounds(row, col);
  std::uint64_t& word = words_[row * words_per_row_ + col / 64];
  const std::uint64_t mask = std::uint64_t{1} << (col % 64);
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

std::size_t BitMatrix::col_count(std::size_t col) const {
  require(col < cols_, "BitMatrix: column out of range");
  const std::size_t word_index = col / 64;
  const std::uint64_t mask = std::uint64_t{1} << (col % 64);
  std::size_t count = 0;
  for (std::size_t row = 0; row < rows_; ++row) {
    if (words_[row * words_per_row_ + word_index] & mask) ++count;
  }
  return count;
}

std::size_t BitMatrix::row_count(std::size_t row) const {
  require(row < rows_, "BitMatrix: row out of range");
  std::size_t count = 0;
  const std::uint64_t* w = &words_[row * words_per_row_];
  for (std::size_t k = 0; k < words_per_row_; ++k) {
    count += static_cast<std::size_t>(std::popcount(w[k]));
  }
  return count;
}

std::size_t BitMatrix::popcount() const noexcept {
  std::size_t count = 0;
  for (const std::uint64_t word : words_) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

const std::uint64_t* BitMatrix::row_words(std::size_t row) const {
  require(row < rows_, "BitMatrix: row out of range");
  return &words_[row * words_per_row_];
}

void BitMatrix::or_with(const BitMatrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "BitMatrix: shape mismatch in or_with");
  for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= other.words_[k];
}

}  // namespace eppi
