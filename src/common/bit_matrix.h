// Packed Boolean membership matrix.
//
// In the ε-PPI data model (paper §II-A, Fig. 2) a provider p_i summarizes its
// local repository by a membership vector M_i(·) over n owner identities, and
// the PPI holds the m×n matrix M'(·,·). Both are represented here as a packed
// bit matrix: rows are providers, columns are owner identities. The packed
// representation keeps the m = 10,000 × n = 100,000-scale simulation
// experiments (paper §V-A) memory-friendly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eppi {

class BitMatrix {
 public:
  BitMatrix() = default;

  // rows × cols matrix, all bits zero.
  BitMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  bool get(std::size_t row, std::size_t col) const;
  void set(std::size_t row, std::size_t col, bool value);

  // Number of set bits in a column (identity frequency σ_j · m) or row
  // (provider's local corpus size).
  std::size_t col_count(std::size_t col) const;
  std::size_t row_count(std::size_t row) const;

  // Total set bits.
  std::size_t popcount() const noexcept;

  // Row-wise view: the packed 64-bit words of one row.
  const std::uint64_t* row_words(std::size_t row) const;
  std::size_t words_per_row() const noexcept { return words_per_row_; }

  // OR another matrix of identical shape into this one.
  void or_with(const BitMatrix& other);

  bool operator==(const BitMatrix& other) const noexcept = default;

 private:
  void check_bounds(std::size_t row, std::size_t col) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace eppi
