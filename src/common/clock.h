// Process-wide monotonic time anchor and small thread indices.
//
// Observability output (log prefixes, trace spans) wants timestamps that are
// monotonic, comparable across threads, and small enough to read — so both
// the logger and the trace layer measure against one shared anchor taken the
// first time anyone asks. Header-only on purpose: src/obs must be usable
// from eppi_common itself (ServingMetrics lives there), so the shared clock
// cannot live behind either library's link line.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace eppi {

// The anchor is the steady_clock reading at first use anywhere in the
// process (inline function-local static: one instance across all TUs).
inline std::chrono::steady_clock::time_point process_start() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// Monotonic nanoseconds since process_start().
inline std::uint64_t monotonic_ns() noexcept {
  const auto dt = std::chrono::steady_clock::now() - process_start();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

// Monotonic milliseconds since process_start(), with fractional part.
inline double monotonic_ms() noexcept {
  return static_cast<double>(monotonic_ns()) / 1e6;
}

// Small, stable per-thread index (1, 2, 3, ... in first-use order) —
// readable in log lines and trace events, unlike std::thread::id.
inline std::uint64_t thread_index() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

}  // namespace eppi
