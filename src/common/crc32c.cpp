#include "common/crc32c.h"

#include <array>

namespace eppi {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 4 <= n; i += 4) {
    crc ^= static_cast<std::uint32_t>(data[i]) |
           (static_cast<std::uint32_t>(data[i + 1]) << 8) |
           (static_cast<std::uint32_t>(data[i + 2]) << 16) |
           (static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = kTables.t[3][crc & 0xffu] ^ kTables.t[2][(crc >> 8) & 0xffu] ^
          kTables.t[1][(crc >> 16) & 0xffu] ^ kTables.t[0][crc >> 24];
  }
  for (; i < n; ++i) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ data[i]) & 0xffu];
  }
  return ~crc;
}

std::uint32_t crc32c_mask(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

std::uint32_t crc32c_unmask(std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace eppi
