// CRC32C (Castagnoli) checksums for on-disk integrity sections.
//
// The durable store (eppi-index-v2 files, the epoch MANIFEST journal) guards
// every section with a CRC32C so that torn writes, bit rot and truncation are
// detected at load time instead of silently corrupting the served index.
// CRC32C is the polynomial used by iSCSI/ext4/LevelDB; we use a portable
// slice-by-4 table implementation — checksum cost is immaterial next to the
// fsyncs on the commit path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace eppi {

// CRC32C of `data`, optionally continuing from a previous checksum: pass the
// prior call's return value as `seed` to checksum a byte stream in chunks.
// crc32c({}) == 0, and crc32c("123456789") == 0xE3069283 (the standard check
// value for the Castagnoli polynomial).
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0) noexcept;

// Masked variant for values stored alongside the data they checksum
// (LevelDB's trick): a CRC of bytes that themselves contain CRCs is weak, so
// stored checksums are masked with a rotation + constant.
std::uint32_t crc32c_mask(std::uint32_t crc) noexcept;
std::uint32_t crc32c_unmask(std::uint32_t masked) noexcept;

}  // namespace eppi
