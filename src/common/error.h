// Error types shared across the eppi libraries.
//
// We follow the C++ Core Guidelines (E.14): use purpose-designed exception
// types derived from std::exception. Protocol code throws ProtocolError for
// violations of a distributed protocol's contract (malformed message, wrong
// round, missing share); ConfigError for invalid user-supplied parameters.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace eppi {

// Invalid user-supplied parameter (epsilon out of range, c < 2, ...).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

// A distributed protocol's contract was violated at runtime.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

// A peer stopped responding (crash, partition, or message loss past the
// delivery deadline). Derives from ProtocolError so existing catch sites and
// tests that treat any protocol failure uniformly keep working; fault-aware
// callers (dropout recovery, EpochManager degradation) catch PartyFailure
// specifically and can ask which party went silent.
class PartyFailure : public ProtocolError {
 public:
  static constexpr std::uint32_t kUnknownParty = 0xffffffffu;

  explicit PartyFailure(const std::string& what,
                        std::uint32_t party = kUnknownParty)
      : ProtocolError(what), party_(party) {}

  // The party believed to have failed; kUnknownParty when the failure could
  // not be attributed (e.g. a missed broadcast with several candidates).
  std::uint32_t party() const noexcept { return party_; }

 private:
  std::uint32_t party_;
};

// Malformed serialized data.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_config(const std::string& what) {
  throw ConfigError(what);
}
}  // namespace detail

// Validate a configuration precondition; throws ConfigError on failure.
inline void require(bool cond, const std::string& what) {
  if (!cond) detail::throw_config(what);
}

}  // namespace eppi
