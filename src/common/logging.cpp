#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace eppi {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[eppi " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace eppi
