#include "common/logging.h"

#include <iostream>

#include "common/mutex.h"

namespace eppi {
namespace {

Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const MutexLock lock(g_mutex);
  std::cerr << "[eppi " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace eppi
