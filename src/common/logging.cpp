#include "common/logging.h"

#include <cstdio>
#include <iostream>

#include "common/clock.h"
#include "common/mutex.h"

namespace eppi {
namespace {

Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  // Monotonic ms since process start plus a small per-thread index: enough
  // to order interleaved party/worker output without wall-clock formatting
  // (and without leaking absolute time into test-pinned stderr).
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[eppi %s +%.3fms t%llu] ",
                level_name(level), monotonic_ms(),
                static_cast<unsigned long long>(thread_index()));
  const MutexLock lock(g_mutex);
  std::cerr << prefix << msg << '\n';
}
}  // namespace detail

}  // namespace eppi
