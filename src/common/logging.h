// Minimal leveled logger.
//
// Benchmarks and examples print structured result rows on stdout; diagnostic
// logging goes to stderr through this logger so result streams stay clean.
#pragma once

#include <sstream>
#include <string>

namespace eppi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default: kWarn so
// tests and benches are quiet unless something is wrong.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define EPPI_LOG(level, expr)                                   \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::eppi::log_level())) {                \
      std::ostringstream eppi_log_stream;                       \
      eppi_log_stream << expr;                                  \
      ::eppi::detail::log_line(level, eppi_log_stream.str());   \
    }                                                           \
  } while (0)

#define EPPI_DEBUG(expr) EPPI_LOG(::eppi::LogLevel::kDebug, expr)
#define EPPI_INFO(expr) EPPI_LOG(::eppi::LogLevel::kInfo, expr)
#define EPPI_WARN(expr) EPPI_LOG(::eppi::LogLevel::kWarn, expr)
#define EPPI_ERROR(expr) EPPI_LOG(::eppi::LogLevel::kError, expr)

}  // namespace eppi
