// Minimal leveled logger.
//
// Benchmarks and examples print structured result rows on stdout; diagnostic
// logging goes to stderr through this logger so result streams stay clean.
//
// Cost discipline: the level gate is an inline relaxed atomic load, so a
// disabled EPPI_DEBUG in a hot protocol loop costs one load + branch and the
// stream expression is NEVER evaluated (no side effects, no allocations).
// logging_test.cpp pins this.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace eppi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
// Inline so the EPPI_LOG gate compiles to a relaxed load in every TU instead
// of a call into logging.cpp. Default: kWarn so tests and benches are quiet
// unless something is wrong.
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

// Global minimum level; messages below it are dropped.
inline void set_log_level(LogLevel level) noexcept {
  detail::g_log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

inline LogLevel log_level() noexcept {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

// True iff a message at `level` would actually be emitted.
inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         detail::g_log_level.load(std::memory_order_relaxed);
}

// `expr` is evaluated only after log_enabled passes: side effects inside a
// suppressed log statement do not fire, and the disabled path builds no
// ostringstream.
#define EPPI_LOG(level, expr)                                 \
  do {                                                        \
    if (::eppi::log_enabled(level)) {                         \
      std::ostringstream eppi_log_stream;                     \
      eppi_log_stream << expr;                                \
      ::eppi::detail::log_line(level, eppi_log_stream.str()); \
    }                                                         \
  } while (0)

#define EPPI_DEBUG(expr) EPPI_LOG(::eppi::LogLevel::kDebug, expr)
#define EPPI_INFO(expr) EPPI_LOG(::eppi::LogLevel::kInfo, expr)
#define EPPI_WARN(expr) EPPI_LOG(::eppi::LogLevel::kWarn, expr)
#define EPPI_ERROR(expr) EPPI_LOG(::eppi::LogLevel::kError, expr)

}  // namespace eppi
