#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <string>

namespace eppi {

namespace {

std::size_t bucket_for(double us) noexcept {
  if (!(us > 1.0)) return 0;  // sub-microsecond, negative or NaN
  const auto n = static_cast<std::uint64_t>(us);
  const auto b = static_cast<std::size_t>(std::bit_width(n) - 1);
  return b < LatencyHistogram::kBuckets ? b : LatencyHistogram::kBuckets - 1;
}

// Every ServingMetrics registers under a distinct `instance` label so two
// LocatorServices in one process (common in tests) never share counters.
obs::Labels next_instance_labels() {
  static std::atomic<std::uint64_t> next{0};
  return obs::Labels{}.add(
      "instance", std::to_string(next.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

void LatencyHistogram::record(double us) noexcept {
  counts_[bucket_for(us)].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    snap.counts[k] = counts_[k].load(std::memory_order_relaxed);
    snap.total += snap.counts[k];
  }
  return snap;
}

double LatencyHistogram::Snapshot::quantile_us(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), walked over bucket counts.
  // Clamped up to 1 so q=0 means "the first sample" — a rank of 0 would be
  // satisfied by the empty running count at bucket 0 and report that
  // bucket's upper edge even when every sample lies higher.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    seen += counts[k];
    if (seen >= rank) {
      return static_cast<double>(std::uint64_t{1} << (k + 1));  // upper edge
    }
  }
  return static_cast<double>(std::uint64_t{1} << counts.size());
}

ServingMetrics::ServingMetrics() : ServingMetrics(next_instance_labels()) {}

ServingMetrics::ServingMetrics(const obs::Labels& instance)
    : queries_(obs::Registry::global().counter(
          "eppi_serving_queries_total", instance,
          "Single-owner QueryPPI calls resolved")),
      batches_(obs::Registry::global().counter(
          "eppi_serving_batches_total", instance,
          "query_ppi_many calls resolved")),
      owners_resolved_(obs::Registry::global().counter(
          "eppi_serving_owners_resolved_total", instance,
          "Owners answered, single + batched")),
      unknown_owners_(obs::Registry::global().counter(
          "eppi_serving_unknown_owners_total", instance,
          "Lookups for owners absent from the served epoch")),
      epoch_swaps_(obs::Registry::global().counter(
          "eppi_serving_epoch_swaps_total", instance,
          "Epoch snapshot publications (swaps and staleness updates)")),
      degraded_serves_(obs::Registry::global().counter(
          "eppi_serving_degraded_serves_total", instance,
          "Queries answered from a stale (degraded) epoch")),
      latency_us_(obs::Registry::global().histogram(
          "eppi_serving_latency_us", instance,
          "Query latency in microseconds, log2 buckets")) {}

void ServingMetrics::record_query(double latency_us) noexcept {
  queries_.add();
  owners_resolved_.add();
  latency_us_.record(latency_us);
}

void ServingMetrics::record_batch(std::size_t owners,
                                  double latency_us) noexcept {
  batches_.add();
  owners_resolved_.add(owners);
  latency_us_.record(latency_us);
}

void ServingMetrics::record_unknown_owner() noexcept {
  unknown_owners_.add();
}

void ServingMetrics::record_epoch_swap() noexcept { epoch_swaps_.add(); }

void ServingMetrics::record_degraded_serve() noexcept {
  degraded_serves_.add();
}

ServingMetrics::Snapshot ServingMetrics::snapshot() const noexcept {
  Snapshot snap;
  snap.queries = queries_.value();
  snap.batches = batches_.value();
  snap.owners_resolved = owners_resolved_.value();
  snap.unknown_owners = unknown_owners_.value();
  snap.epoch_swaps = epoch_swaps_.value();
  snap.degraded_serves = degraded_serves_.value();
  const obs::Histogram::Snapshot lat = latency_us_.snapshot();
  snap.latency.counts = lat.counts;
  snap.latency.total = lat.total;
  return snap;
}

}  // namespace eppi
