#include "common/metrics.h"

#include <bit>
#include <cmath>

namespace eppi {

namespace {

std::size_t bucket_for(double us) noexcept {
  if (!(us > 1.0)) return 0;  // sub-microsecond, negative or NaN
  const auto n = static_cast<std::uint64_t>(us);
  const auto b = static_cast<std::size_t>(std::bit_width(n) - 1);
  return b < LatencyHistogram::kBuckets ? b : LatencyHistogram::kBuckets - 1;
}

}  // namespace

void LatencyHistogram::record(double us) noexcept {
  counts_[bucket_for(us)].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    snap.counts[k] = counts_[k].load(std::memory_order_relaxed);
    snap.total += snap.counts[k];
  }
  return snap;
}

double LatencyHistogram::Snapshot::quantile_us(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), walked over bucket counts.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    seen += counts[k];
    if (seen >= rank) {
      return static_cast<double>(std::uint64_t{1} << (k + 1));  // upper edge
    }
  }
  return static_cast<double>(std::uint64_t{1} << counts.size());
}

void ServingMetrics::record_query(double latency_us) noexcept {
  queries_.fetch_add(1, std::memory_order_relaxed);
  owners_resolved_.fetch_add(1, std::memory_order_relaxed);
  latency_.record(latency_us);
}

void ServingMetrics::record_batch(std::size_t owners,
                                  double latency_us) noexcept {
  batches_.fetch_add(1, std::memory_order_relaxed);
  owners_resolved_.fetch_add(owners, std::memory_order_relaxed);
  latency_.record(latency_us);
}

void ServingMetrics::record_unknown_owner() noexcept {
  unknown_owners_.fetch_add(1, std::memory_order_relaxed);
}

void ServingMetrics::record_epoch_swap() noexcept {
  epoch_swaps_.fetch_add(1, std::memory_order_relaxed);
}

void ServingMetrics::record_degraded_serve() noexcept {
  degraded_serves_.fetch_add(1, std::memory_order_relaxed);
}

ServingMetrics::Snapshot ServingMetrics::snapshot() const noexcept {
  Snapshot snap;
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.owners_resolved = owners_resolved_.load(std::memory_order_relaxed);
  snap.unknown_owners = unknown_owners_.load(std::memory_order_relaxed);
  snap.epoch_swaps = epoch_swaps_.load(std::memory_order_relaxed);
  snap.degraded_serves = degraded_serves_.load(std::memory_order_relaxed);
  snap.latency = latency_.snapshot();
  return snap;
}

}  // namespace eppi
