// Lock-free serving-tier metrics.
//
// The concurrent read path (core/locator_service.h) is wait-free by design:
// readers acquire an immutable epoch snapshot and never block on the writer.
// Its observability must not reintroduce a lock, so ServingMetrics is built
// entirely from relaxed atomics — any number of reader threads record
// queries concurrently with the writer recording epoch swaps, and snapshot()
// can be taken from any thread at any time. Relaxed ordering is sufficient:
// the counters are statistics, not synchronization; nothing is published
// *through* them. (This is also what keeps them invisible to TSan — there is
// genuinely no ordering requirement to violate.)
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/registry.h"

namespace eppi {

// Fixed log2-bucketed latency histogram over microseconds. Bucket k counts
// samples in [2^k, 2^(k+1)) µs (bucket 0 also takes sub-microsecond
// samples); 32 buckets reach ~71 minutes, far past any serving latency.
// Recording is one relaxed fetch_add; quantiles are estimated at read time
// from the bucket counts (upper bucket edge, so estimates err pessimistic).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(double us) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;

    // q in [0,1]; 0 when no samples were recorded.
    double quantile_us(double q) const noexcept;
  };
  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

// Counters + latency for the QueryPPI serving tier. One instance per
// LocatorService; every method is safe to call from any thread.
//
// Since the observability layer landed, the instruments live in the
// process-wide obs::Registry (under eppi_serving_* names with a unique
// `instance` label per ServingMetrics), so serve runs expose them through
// Registry::render_prometheus() with no extra plumbing. The class API and
// Snapshot shape are unchanged; the recording path is still one relaxed
// fetch_add per counter — registration (the only locking) happens once in
// the constructor.
class ServingMetrics {
 public:
  ServingMetrics();
  ServingMetrics(const ServingMetrics&) = delete;
  ServingMetrics& operator=(const ServingMetrics&) = delete;

  // One query_ppi / query_ppi_with_status call that resolved successfully.
  void record_query(double latency_us) noexcept;
  // One query_ppi_many call resolving `owners` owners in one snapshot
  // acquisition (the batch counts once in the latency histogram).
  void record_batch(std::size_t owners, double latency_us) noexcept;
  // A lookup that failed because the owner is not in the served epoch.
  void record_unknown_owner() noexcept;
  // The writer published a new epoch snapshot (swap or staleness update).
  void record_epoch_swap() noexcept;
  // A query was answered from a degraded (stale) epoch.
  void record_degraded_serve() noexcept;

  struct Snapshot {
    std::uint64_t queries = 0;         // single-owner query calls
    std::uint64_t batches = 0;         // query_ppi_many calls
    std::uint64_t owners_resolved = 0; // owners answered, single + batched
    std::uint64_t unknown_owners = 0;
    std::uint64_t epoch_swaps = 0;
    std::uint64_t degraded_serves = 0;
    LatencyHistogram::Snapshot latency;
  };
  Snapshot snapshot() const noexcept;

 private:
  // All seven instruments share one freshly minted `instance` label value.
  explicit ServingMetrics(const obs::Labels& instance);

  obs::Counter& queries_;
  obs::Counter& batches_;
  obs::Counter& owners_resolved_;
  obs::Counter& unknown_owners_;
  obs::Counter& epoch_swaps_;
  obs::Counter& degraded_serves_;
  obs::Histogram& latency_us_;
};

}  // namespace eppi
