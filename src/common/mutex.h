// Annotated mutex primitives for clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::condition_variable carry no capability
// attributes, so code locking them directly is invisible to
// -Wthread-safety. These thin wrappers (same idea as absl::Mutex /
// absl::MutexLock) add the attributes and nothing else: zero-overhead
// forwarding to the std types underneath.
//
// CondVar::wait takes the Mutex wrapper directly and re-asserts the
// capability, so `while (!ready_) cv_.wait(mutex_);` analyzes cleanly.
// Note the analysis is intraprocedural: predicate-lambda overloads like
// std::condition_variable::wait(lock, pred) would NOT see the caller's
// capabilities inside the lambda, so waits here are written as explicit
// while loops.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace eppi {

class CondVar;

// A std::mutex with the `capability` attribute so EPPI_GUARDED_BY fields can
// name it.
class EPPI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EPPI_ACQUIRE() { inner_.lock(); }
  void unlock() EPPI_RELEASE() { inner_.unlock(); }
  bool try_lock() EPPI_TRY_ACQUIRE(true) { return inner_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex inner_;
};

// RAII guard; also supports mid-scope unlock()/lock() cycles (the reliable
// and faulty transports drop the lock around inner sends and sleeps).
class EPPI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EPPI_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~MutexLock() EPPI_RELEASE() {
    if (owned_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() EPPI_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }
  void lock() EPPI_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }

 private:
  Mutex& mu_;
  bool owned_;
};

// Condition variable working directly on eppi::Mutex. The wait methods
// require (and preserve) the caller's hold on the mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) EPPI_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.inner_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // caller still owns the mutex; don't unlock on destruction
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      EPPI_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.inner_, std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, dur);
    lk.release();
    return st;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& tp)
      EPPI_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.inner_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, tp);
    lk.release();
    return st;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace eppi
