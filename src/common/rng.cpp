#include "common/rng.h"

#include <cstring>

namespace eppi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() noexcept {
  Rng child(0);
  for (auto& word : child.state_) word = next();
  return child;
}

void Rng::fill_bytes(void* out, std::size_t len) noexcept {
  auto* dst = static_cast<unsigned char*>(out);
  while (len >= 8) {
    const std::uint64_t word = next();
    std::memcpy(dst, &word, 8);
    dst += 8;
    len -= 8;
  }
  if (len > 0) {
    const std::uint64_t word = next();
    std::memcpy(dst, &word, len);
  }
}

}  // namespace eppi
