// Deterministic, seedable random number generation.
//
// All randomized components in this repository (randomized publication,
// identity mixing, secret-share generation, dataset synthesis, attack
// simulation) draw from an explicitly passed Rng so that every experiment is
// reproducible bit-for-bit. The generator is xoshiro256** (public domain,
// Blackman & Vigna), which is fast, has a 256-bit state and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace eppi {

class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the 256-bit state from a single 64-bit seed via splitmix64, the
  // recommended seeding procedure for the xoshiro family.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // UniformRandomBitGenerator interface, usable with <random> distributions.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Derives an independent child generator; used to hand each party /
  // protocol instance its own stream without sharing state across threads.
  Rng fork() noexcept;

  // Fills `out` bytes with random data.
  void fill_bytes(void* out, std::size_t len) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace eppi
