#include "common/serialize.h"

#include "common/error.h"

namespace eppi {

void BinaryWriter::write_u8(std::uint8_t v) { buf_.push_back(v); }

void BinaryWriter::write_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void BinaryWriter::write_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void BinaryWriter::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  write_varint(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::write_u64_vector(std::span<const std::uint64_t> values) {
  write_varint(values.size());
  for (const std::uint64_t v : values) write_varint(v);
}

void BinaryReader::need(std::size_t n) const {
  if (remaining() < n) throw SerializeError("BinaryReader: truncated input");
}

std::uint8_t BinaryReader::read_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BinaryReader::read_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t BinaryReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64) throw SerializeError("BinaryReader: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_bytes() {
  const std::uint64_t len = read_varint();
  need(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::vector<std::uint64_t> BinaryReader::read_u64_vector() {
  const std::uint64_t len = read_varint();
  std::vector<std::uint64_t> out;
  out.reserve(len);
  for (std::uint64_t k = 0; k < len; ++k) out.push_back(read_varint());
  return out;
}

}  // namespace eppi
