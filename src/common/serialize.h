// Compact binary serialization for protocol messages.
//
// Substitutes for the protobuf framing used by the paper's prototype; only
// the wire byte counts matter for the network cost model, so the format is a
// straightforward little-endian length-delimited encoding. Varints are used
// for integers so message sizes reflect realistic framing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace eppi {

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);   // fixed-width little-endian
  void write_u64(std::uint64_t v);   // fixed-width little-endian
  void write_varint(std::uint64_t v);
  void write_bytes(std::span<const std::uint8_t> bytes);  // length-prefixed
  void write_u64_vector(std::span<const std::uint64_t> values);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::uint64_t read_varint();
  std::vector<std::uint8_t> read_bytes();
  std::vector<std::uint64_t> read_u64_vector();

  bool exhausted() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace eppi
