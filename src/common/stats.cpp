#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eppi {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double q) {
  require(!xs.empty(), "percentile: empty input");
  require(q >= 0.0 && q <= 1.0, "percentile: q out of [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double fraction_true(std::span<const bool> xs) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (const bool x : xs) count += x ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace eppi
