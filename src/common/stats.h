// Small statistics helpers used by the benchmark harness and the
// effectiveness experiments (success-ratio aggregation, Chernoff-bound
// computation helpers).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eppi {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);

// q-th percentile via linear interpolation; q in [0,1]. Copies + sorts.
double percentile(std::span<const double> xs, double q);

// Online accumulator (Welford) for streaming experiments.
class RunningStat {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fraction of entries that satisfy a predicate-style Boolean vector; the
// "success ratio" metric of paper §V-A is computed through this.
double fraction_true(std::span<const bool> xs);

}  // namespace eppi
