// Clang thread-safety-analysis annotation macros.
//
// These wrap clang's `-Wthread-safety` attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the net layer's
// mutex discipline — which PR 1 could only check dynamically with TSan — is
// verified at compile time: a field marked EPPI_GUARDED_BY(mutex_) read or
// written without the mutex held is a build error under the clang presets
// (`cmake --preset lint`, CI), and a no-op everywhere else. Use together
// with the annotated eppi::Mutex / eppi::MutexLock / eppi::CondVar wrappers
// in common/mutex.h (std::mutex itself carries no capability attributes on
// libstdc++, so locking through the std types would leave the analysis
// blind).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define EPPI_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define EPPI_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

// Type annotations ----------------------------------------------------------

// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define EPPI_CAPABILITY(x) EPPI_THREAD_ANNOTATION_(capability(x))

// Marks an RAII guard whose constructor acquires and destructor releases.
#define EPPI_SCOPED_CAPABILITY EPPI_THREAD_ANNOTATION_(scoped_lockable)

// Data-member annotations ---------------------------------------------------

// The member may only be accessed while holding capability `x`.
#define EPPI_GUARDED_BY(x) EPPI_THREAD_ANNOTATION_(guarded_by(x))

// The pointed-to data (not the pointer itself) is guarded by `x`.
#define EPPI_PT_GUARDED_BY(x) EPPI_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function annotations ------------------------------------------------------

// Caller must hold the capabilities on entry (held, not acquired).
#define EPPI_REQUIRES(...) \
  EPPI_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Function acquires the capabilities and holds them on return.
#define EPPI_ACQUIRE(...) \
  EPPI_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

// Function releases the capabilities; they must be held on entry.
#define EPPI_RELEASE(...) \
  EPPI_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `ret`.
#define EPPI_TRY_ACQUIRE(ret, ...) \
  EPPI_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

// Caller must NOT hold the capabilities (deadlock prevention).
#define EPPI_EXCLUDES(...) \
  EPPI_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define EPPI_RETURN_CAPABILITY(x) \
  EPPI_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot follow; use sparingly and leave
// a comment explaining why the access is in fact safe.
#define EPPI_NO_THREAD_SAFETY_ANALYSIS \
  EPPI_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Reactor-affinity annotations ----------------------------------------------
//
// Clang has no built-in notion of "runs on the event-loop thread", so these
// emit plain annotate() attributes that tools/eppi_analyze.py reads (via the
// clang AST frontend, or textually via its syntax frontend). They are no-ops
// for codegen on every compiler.

// The function touches loop-owned state and may only be reached from loop
// context: another EPPI_LOOP_AFFINE function, an EPPI_LOOP_ENTRY body, or a
// closure handed to EventLoop::post()/add_timer()/add_fd(). eppi_analyze's
// `loop-affinity` check flags any other call site, and its
// `blocking-in-reactor` check forbids blocking primitives anywhere reachable
// from one of these.
#define EPPI_LOOP_AFFINE EPPI_THREAD_ANNOTATION_(annotate("eppi::loop_affine"))

// The function establishes loop context (EventLoop::run): callable from any
// thread, and everything it invokes runs on the loop thread.
#define EPPI_LOOP_ENTRY EPPI_THREAD_ANNOTATION_(annotate("eppi::loop_entry"))
