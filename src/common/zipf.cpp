#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eppi {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  require(n > 0, "ZipfSampler: n must be positive");
  require(s >= 0.0, "ZipfSampler: exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  require(rank < cdf_.size(), "ZipfSampler: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace eppi
