// Zipf-distributed sampling over ranks {0, ..., n-1}.
//
// Used by the synthetic dataset generator to produce a realistic skewed
// identity-frequency profile (a few "common" identities appearing at almost
// every provider, a long tail of rare ones), substituting for the TREC-WT10g
// derived collection dataset used in the paper's simulation experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace eppi {

class ZipfSampler {
 public:
  // n ranks, exponent s (s = 1.0 is classic Zipf). Throws ConfigError if
  // n == 0 or s < 0.
  ZipfSampler(std::size_t n, double s);

  // Samples a rank in [0, n); rank 0 is the most frequent.
  std::size_t sample(Rng& rng) const;

  // Probability mass of a given rank.
  double pmf(std::size_t rank) const;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.0
};

}  // namespace eppi
