#include "core/advisor.h"

#include <algorithm>

#include "common/error.h"

namespace eppi::core {

double epsilon_for_confidence_bound(double max_confidence) {
  require(max_confidence >= 0.0 && max_confidence <= 1.0,
          "epsilon_for_confidence_bound: bound must be in [0,1]");
  return 1.0 - max_confidence;
}

double expected_overhead(const BetaPolicy& policy, double sigma,
                         double epsilon, std::size_t m) {
  require(m >= 1, "expected_overhead: need at least one provider");
  const double beta = beta_clamped(policy, sigma, epsilon, m);
  const double negatives =
      static_cast<double>(m) * std::max(0.0, 1.0 - sigma);
  return negatives * beta;
}

double expected_result_size(const BetaPolicy& policy, double sigma,
                            double epsilon, std::size_t m) {
  return static_cast<double>(m) * sigma +
         expected_overhead(policy, sigma, epsilon, m);
}

double delegation_price(const Tariff& tariff, const BetaPolicy& policy,
                        double sigma, double epsilon, std::size_t m) {
  require(tariff.per_noise_provider >= 0.0 && tariff.base_fee >= 0.0,
          "delegation_price: tariff must be non-negative");
  return tariff.base_fee +
         tariff.per_noise_provider *
             expected_overhead(policy, sigma, epsilon, m);
}

}  // namespace eppi::core
