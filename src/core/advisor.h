// Privacy/cost advisor for the ε knob.
//
// ε is a trade: higher values bound the attacker's confidence tighter but
// inflate every searcher's provider list (and the paper's footnote 3
// suggests charging owners accordingly, since "higher privacy settings come
// with more search overhead"). This module quantifies the trade so a
// deployment can surface it at Delegate() time:
//
//  * epsilon_for_confidence_bound — the ε needed to cap attacker confidence;
//  * expected_overhead — expected extra providers a searcher contacts for
//    one owner under a policy;
//  * price estimation — a linear tariff on expected overhead.
#pragma once

#include <cstddef>

#include "core/beta_policy.h"

namespace eppi::core {

// Smallest ε that bounds the primary-attack confidence by
// `max_confidence` (the ε-PRIVATE inequality, Eq. 1: confidence <= 1 - ε).
double epsilon_for_confidence_bound(double max_confidence);

// Expected number of false-positive providers in QueryPPI's answer for an
// owner with relative frequency sigma under the given policy:
// (m - f) * beta, capped at m - f (β saturation / mixing).
double expected_overhead(const BetaPolicy& policy, double sigma,
                         double epsilon, std::size_t m);

// Expected total result-list size (true + false positives).
double expected_result_size(const BetaPolicy& policy, double sigma,
                            double epsilon, std::size_t m);

struct Tariff {
  double base_fee = 0.0;          // flat per-owner fee
  double per_noise_provider = 1.0;  // cost unit per expected noise contact
};

// The paper's footnote-3 charging model: owners pay for the search overhead
// their ε imposes on the network.
double delegation_price(const Tariff& tariff, const BetaPolicy& policy,
                        double sigma, double epsilon, std::size_t m);

}  // namespace eppi::core
