#include "core/auth_search.h"

#include "common/error.h"

namespace eppi::core {

SearchOutcome two_phase_search(
    const PpiIndex& index, const eppi::BitMatrix& truth, IdentityId identity,
    std::uint32_t searcher,
    const std::function<bool(std::uint32_t, ProviderId)>& authorize) {
  require(truth.rows() == index.providers() &&
              truth.cols() == index.identities(),
          "two_phase_search: truth/index shape mismatch");
  SearchOutcome outcome;
  outcome.contacted = index.query(identity);
  for (const ProviderId p : outcome.contacted) {
    if (!authorize(searcher, p)) continue;
    outcome.authorized.push_back(p);
    if (truth.get(p, identity)) outcome.matched.push_back(p);
  }
  return outcome;
}

SearchOutcome two_phase_search(const PpiIndex& index,
                               const eppi::BitMatrix& truth,
                               IdentityId identity) {
  return two_phase_search(index, truth, identity, 0,
                          [](std::uint32_t, ProviderId) { return true; });
}

}  // namespace eppi::core
