// Two-phase search simulation (paper §II-A, Fig. 1).
//
// A searcher first calls QueryPPI(t_j) at the PPI server, then runs
// AuthSearch against every returned provider: after authentication and
// authorization at the provider's local access-control subsystem, the
// provider's private repository is searched for the owner's records. The
// simulation models authorization as a per-(searcher, provider) grant set
// and reports the search-cost metrics the paper's overhead discussion uses
// (providers contacted vs. providers that truly matched).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bit_matrix.h"
#include "core/ppi_index.h"

namespace eppi::core {

struct SearchOutcome {
  std::vector<ProviderId> contacted;   // phase-1 result list
  std::vector<ProviderId> authorized;  // providers that granted access
  std::vector<ProviderId> matched;     // providers truly holding the records
  // Search overhead: contacted providers that held nothing (the false
  // positives the searcher paid for).
  std::size_t wasted_contacts() const noexcept {
    return contacted.size() - matched.size();
  }
};

// `authorize(searcher, provider)` models each provider's local access
// control decision. `truth` is the ground-truth membership matrix (the union
// of the providers' private repositories).
SearchOutcome two_phase_search(
    const PpiIndex& index, const eppi::BitMatrix& truth, IdentityId identity,
    std::uint32_t searcher,
    const std::function<bool(std::uint32_t, ProviderId)>& authorize);

// Convenience overload: authorization always granted (the common benchmark
// setting, where overhead rather than access control is under study).
SearchOutcome two_phase_search(const PpiIndex& index,
                               const eppi::BitMatrix& truth,
                               IdentityId identity);

}  // namespace eppi::core
