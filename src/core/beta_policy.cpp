#include "core/beta_policy.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "core/guarantee.h"

namespace eppi::core {

namespace {

void check_unit(double x, const char* name) {
  require(x >= 0.0 && x <= 1.0, std::string(name) + " must be in [0,1]");
}

}  // namespace

double beta_basic(double sigma, double epsilon) {
  check_unit(sigma, "sigma");
  check_unit(epsilon, "epsilon");
  if (epsilon == 0.0 || sigma == 0.0) return 0.0;
  if (epsilon >= 1.0 || sigma >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  // [(σ⁻¹ − 1)(ε⁻¹ − 1)]⁻¹
  return 1.0 / ((1.0 / sigma - 1.0) * (1.0 / epsilon - 1.0));
}

double beta_inc_exp(double sigma, double epsilon, double delta) {
  require(delta >= 0.0, "delta must be non-negative");
  return beta_basic(sigma, epsilon) + delta;
}

double beta_chernoff(double sigma, double epsilon, double gamma,
                     std::size_t m) {
  require(gamma > 0.5 && gamma < 1.0, "gamma must be in (0.5, 1)");
  require(m >= 1, "need at least one provider");
  const double bb = beta_basic(sigma, epsilon);
  if (std::isinf(bb)) return bb;
  if (sigma >= 1.0) return std::numeric_limits<double>::infinity();
  // G = ln(1/(1-γ)) / ((1-σ) m)
  const double g =
      std::log(1.0 / (1.0 - gamma)) / ((1.0 - sigma) * static_cast<double>(m));
  return bb + g + std::sqrt(g * g + 2.0 * bb * g);
}

double beta_exact(double sigma, double epsilon, double gamma,
                  std::size_t m) {
  require(gamma > 0.5 && gamma < 1.0, "gamma must be in (0.5, 1)");
  require(m >= 1, "need at least one provider");
  check_unit(sigma, "sigma");
  check_unit(epsilon, "epsilon");
  if (epsilon == 0.0 || sigma == 0.0) return 0.0;
  if (sigma >= 1.0 || epsilon >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  const auto f = static_cast<std::uint64_t>(
      std::llround(sigma * static_cast<double>(m)));
  if (f >= m) return std::numeric_limits<double>::infinity();
  // Even full broadcast may not meet the requirement (common identity).
  if (publication_success_probability(m, f, epsilon, 1.0) < gamma) {
    return 1.0 + 1e-9;  // saturated: handled by the mixing path
  }
  // The success probability is monotone non-decreasing in beta: bisect for
  // the minimal beta reaching gamma.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (publication_success_probability(m, f, epsilon, mid) >= gamma) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double beta_raw(const BetaPolicy& policy, double sigma, double epsilon,
                std::size_t m) {
  switch (policy.kind) {
    case PolicyKind::kBasic:
      return beta_basic(sigma, epsilon);
    case PolicyKind::kIncExp:
      return beta_inc_exp(sigma, epsilon, policy.delta);
    case PolicyKind::kChernoff:
      return beta_chernoff(sigma, epsilon, policy.gamma, m);
    case PolicyKind::kExact:
      return beta_exact(sigma, epsilon, policy.gamma, m);
  }
  throw ConfigError("beta_raw: unknown policy");
}

double beta_clamped(const BetaPolicy& policy, double sigma, double epsilon,
                    std::size_t m) {
  const double b = beta_raw(policy, sigma, epsilon, m);
  if (b >= 1.0) return 1.0;
  return b < 0.0 ? 0.0 : b;
}

std::uint64_t common_threshold(const BetaPolicy& policy, double epsilon,
                               std::size_t m) {
  check_unit(epsilon, "epsilon");
  require(m >= 1, "need at least one provider");
  // beta_raw is non-decreasing in sigma for all three policies (β_b is
  // increasing; the Chernoff correction's G term is increasing in σ too), so
  // binary search over the integer frequency grid.
  const auto saturated = [&](std::uint64_t f) {
    const double sigma =
        static_cast<double>(f) / static_cast<double>(m);
    return beta_raw(policy, sigma, epsilon, m) >= 1.0;
  };
  if (!saturated(m)) return m + 1;  // never saturates (only when ε == 0)
  std::uint64_t lo = 0;
  std::uint64_t hi = m;  // saturated(hi) holds
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (saturated(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::vector<std::uint64_t> common_thresholds(const BetaPolicy& policy,
                                             std::span<const double> epsilons,
                                             std::size_t m) {
  std::vector<std::uint64_t> out;
  out.reserve(epsilons.size());
  for (const double eps : epsilons) {
    out.push_back(common_threshold(policy, eps, m));
  }
  return out;
}

}  // namespace eppi::core
