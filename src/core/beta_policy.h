// β-calculation policies (paper §III-B).
//
// In randomized publication every negative provider flips its 0 bit to 1
// with probability β_j; β_j must be large enough that the achieved false
// positive rate fp_j meets the owner's privacy degree ε_j. The paper gives
// three policies:
//
//  * basic (Eq. 3):        β_b = [(σ⁻¹ − 1)(ε⁻¹ − 1)]⁻¹
//      — sets the *expected* false-positive mass to the requirement, so
//        fp_j >= ε_j holds with only ~50% probability.
//  * incremented expectation (Eq. 4): β_d = β_b + Δ
//      — a configurable constant bump with no direct success-ratio control.
//  * Chernoff bound (Eq. 5, Theorem 3.1):
//        G = ln(1/(1−γ)) / ((1−σ)m),   β_c = β_b + G + sqrt(G² + 2 β_b G)
//      — statistically guarantees fp_j >= ε_j with success ratio >= γ.
//
// A β value >= 1 marks the identity as *common* (β saturates; the identity
// must go through identity mixing, §III-B.2). common_threshold() returns the
// smallest integer frequency at which a policy saturates — this is the
// public per-identity threshold t_j fed to the secure CountBelow stage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eppi::core {

enum class PolicyKind {
  kBasic,
  kIncExp,
  kChernoff,
  // Beyond the paper: the minimal β whose *exact* binomial success
  // probability (core/guarantee.h) reaches γ — same guarantee as the
  // Chernoff policy with strictly less search overhead (the bound's slack
  // is returned to the searchers). See bench_ablation_policies.
  kExact,
};

struct BetaPolicy {
  PolicyKind kind = PolicyKind::kChernoff;
  double delta = 0.02;  // Δ for kIncExp
  double gamma = 0.9;   // success ratio target for kChernoff (in (0.5, 1))

  static BetaPolicy basic() { return {PolicyKind::kBasic, 0.0, 0.0}; }
  static BetaPolicy inc_exp(double delta) {
    return {PolicyKind::kIncExp, delta, 0.0};
  }
  static BetaPolicy chernoff(double gamma) {
    return {PolicyKind::kChernoff, 0.0, gamma};
  }
  static BetaPolicy exact(double gamma) {
    return {PolicyKind::kExact, 0.0, gamma};
  }
};

// Eq. 3. sigma and epsilon in [0,1]; returns +inf when saturated by
// sigma -> 1 or epsilon -> 1. Returns 0 when epsilon == 0 or sigma == 0.
double beta_basic(double sigma, double epsilon);

// Eq. 4.
double beta_inc_exp(double sigma, double epsilon, double delta);

// Eq. 5 (m = number of providers).
double beta_chernoff(double sigma, double epsilon, double gamma,
                     std::size_t m);

// Minimal β with exact success probability >= gamma (bisection over the
// binomial tail; see core/guarantee.h). Returns a value > 1 when even
// β = 1 cannot meet the requirement (common identity).
double beta_exact(double sigma, double epsilon, double gamma, std::size_t m);

// Raw β* for a policy; may exceed 1 (saturation).
double beta_raw(const BetaPolicy& policy, double sigma, double epsilon,
                std::size_t m);

// β* clamped to [0,1] (the probability actually used when publishing a
// non-common identity).
double beta_clamped(const BetaPolicy& policy, double sigma, double epsilon,
                    std::size_t m);

// Smallest integer frequency count f in [0, m] such that
// beta_raw(policy, f/m, epsilon, m) >= 1; identities at or above it are
// common. Exploits that beta_raw is non-decreasing in sigma.
std::uint64_t common_threshold(const BetaPolicy& policy, double epsilon,
                               std::size_t m);

// Per-identity thresholds for a whole epsilon vector.
std::vector<std::uint64_t> common_thresholds(const BetaPolicy& policy,
                                             std::span<const double> epsilons,
                                             std::size_t m);

}  // namespace eppi::core
