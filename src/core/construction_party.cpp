#include "core/construction_party.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/serialize.h"
#include "core/mixing.h"
#include "core/publisher.h"
#include "mpc/eppi_circuits.h"
#include "mpc/garbled.h"
#include "mpc/gmw.h"
#include "net/phase_span.h"
#include "secret/sec_sum_share.h"

namespace eppi::core {

namespace {

using eppi::net::MessageTag;
using eppi::net::PartyContext;
using eppi::net::PartyId;

// Distinct ε values, ascending; rank 0 is reserved for "no common identity",
// so identity j gets rank index+1 of its ε.
struct EpsilonRanks {
  std::vector<double> unique_values;
  std::vector<std::uint64_t> ranks;

  double value_of_rank(std::uint64_t rank) const {
    if (rank == 0) return 0.0;
    require(rank <= unique_values.size(), "EpsilonRanks: bad rank");
    return unique_values[rank - 1];
  }
};

EpsilonRanks rank_epsilons(std::span<const double> epsilons) {
  EpsilonRanks er;
  er.unique_values.assign(epsilons.begin(), epsilons.end());
  std::sort(er.unique_values.begin(), er.unique_values.end());
  er.unique_values.erase(
      std::unique(er.unique_values.begin(), er.unique_values.end()),
      er.unique_values.end());
  er.ranks.reserve(epsilons.size());
  for (const double e : epsilons) {
    const auto it = std::lower_bound(er.unique_values.begin(),
                                     er.unique_values.end(), e);
    er.ranks.push_back(
        static_cast<std::uint64_t>(it - er.unique_values.begin()) + 1);
  }
  return er;
}

struct OpenedMix {
  std::vector<bool> mixed;
  std::vector<std::uint64_t> frequencies;
};

std::vector<std::uint8_t> encode_opened(const OpenedMix& opened) {
  eppi::BinaryWriter w;
  w.write_varint(opened.mixed.size());
  for (std::size_t j = 0; j < opened.mixed.size(); ++j) {
    w.write_u8(opened.mixed[j] ? 1 : 0);
  }
  w.write_u64_vector(opened.frequencies);
  return w.take();
}

OpenedMix decode_opened(std::span<const std::uint8_t> payload,
                        std::size_t n) {
  eppi::BinaryReader r(payload);
  const std::uint64_t count = r.read_varint();
  if (count != n) throw eppi::ProtocolError("broadcast: size mismatch");
  OpenedMix opened;
  opened.mixed.resize(n);
  for (std::size_t j = 0; j < n; ++j) opened.mixed[j] = r.read_u8() != 0;
  opened.frequencies = r.read_u64_vector();
  if (opened.frequencies.size() != n) {
    throw eppi::ProtocolError("broadcast: frequency vector size mismatch");
  }
  return opened;
}

}  // namespace

ConstructionPartyResult run_construction_party(
    PartyContext& ctx, std::span<const std::uint8_t> my_row,
    std::span<const double> epsilons, const DistributedOptions& options) {
  const std::size_t m = ctx.n_parties();
  const std::size_t n = my_row.size();
  require(n >= 1, "construction party: need at least one identity");
  require(epsilons.size() == n, "construction party: epsilon count");
  require(options.c >= 2 && options.c <= m,
          "construction party: need 2 <= c <= m");
  require(options.backend == MpcBackend::kGmw || options.c == 2,
          "construction party: the garbled backend is two-party (c == 2)");

  // Public, deterministic pre-computation (identical on every party).
  const eppi::secret::SecSumShareParams ss_params{options.c, options.q, n};
  const EpsilonRanks er = rank_epsilons(epsilons);

  const PartyId me = ctx.id();
  const bool coordinator = me < options.c;
  const FaultToleranceOptions& ft = options.fault_tolerance;

  ConstructionPartyResult result;

  // Phase 1.1: SecSumShare over all m providers. In fault-tolerant mode the
  // commit may cover fewer providers; every public parameter that depends on
  // the provider count (ring, thresholds, β denominator) is derived from the
  // committed survivor set so all survivors still agree on it.
  std::optional<std::vector<eppi::SecretU64>> my_shares;
  std::uint64_t committed_q = 0;
  {
    eppi::net::PhaseSpan phase(ctx, "phase:secsum");
    if (ft.enabled) {
      eppi::secret::SecSumShareFtOptions ss_ft;
      ss_ft.stage_timeout = ft.stage_timeout;
      ss_ft.max_attempts = ft.max_attempts;
      auto outcome = eppi::secret::run_sec_sum_share_party_ft(ctx, ss_params,
                                                              my_row, ss_ft);
      my_shares = std::move(outcome.shares);
      result.survivors = std::move(outcome.survivors);
      result.secsum_attempts = outcome.attempts;
      committed_q = outcome.q;
      phase.span().attr("attempts", result.secsum_attempts);
    } else {
      my_shares = eppi::secret::run_sec_sum_share_party(ctx, ss_params, my_row);
      result.survivors.resize(m);
      std::iota(result.survivors.begin(), result.survivors.end(),
                PartyId{0});
      committed_q = eppi::secret::resolve_ring(ss_params, m).q();
    }
    phase.span().attr("survivors", result.survivors.size());
  }
  const std::size_t m_eff = result.survivors.size();
  const eppi::secret::ModRing ring(committed_q);
  const unsigned width = ring.bit_width();
  const auto thresholds = common_thresholds(options.policy, epsilons, m_eff);

  OpenedMix opened;
  if (coordinator) {
    eppi::mpc::CountBelowSpec cb_spec;
    cb_spec.c = options.c;
    cb_spec.q = ring.q();
    cb_spec.thresholds.assign(thresholds.begin(), thresholds.end());
    cb_spec.xi_ranks = er.ranks;
    const auto cb_circuit = eppi::mpc::build_count_below_circuit(cb_spec);

    eppi::mpc::GmwSession session;
    for (std::size_t i = 0; i < options.c; ++i) {
      session.parties.push_back(static_cast<PartyId>(i));
    }
    const auto run_secure = [&](const eppi::mpc::Circuit& circuit,
                                const std::vector<bool>& bits,
                                std::uint64_t seq_base) {
      if (options.backend == MpcBackend::kGarbled) {
        eppi::mpc::GarbledSession yao;
        yao.garbler = 0;
        yao.evaluator = 1;
        yao.seq_base = seq_base;
        return eppi::mpc::run_garbled_party(ctx, yao, circuit, bits);
      }
      eppi::mpc::GmwSession gmw = session;
      gmw.seq_base = seq_base;
      return eppi::mpc::run_gmw_party(ctx, gmw, circuit, bits);
    };

    // Phase 1.2a: CountBelow.
    std::optional<eppi::net::PhaseSpan> phase;
    phase.emplace(ctx, "phase:count_below");
    const auto cb_bits = eppi::mpc::share_input_bits(*my_shares, width);
    const auto cb_out = run_secure(cb_circuit, cb_bits, 0);
    const auto counted = eppi::mpc::decode_count_below(cb_spec, cb_out);
    phase->span().attr("common_count", counted.common_count);
    phase.reset();

    const double xi = er.value_of_rank(counted.max_xi_rank);
    const double lambda =
        options.enable_mixing
            ? lambda_for(xi, static_cast<std::size_t>(counted.common_count),
                         n)
            : 0.0;

    // Phase 1.2b: MixAndReveal.
    eppi::mpc::MixRevealSpec mr_spec;
    mr_spec.c = options.c;
    mr_spec.q = ring.q();
    mr_spec.thresholds = cb_spec.thresholds;
    mr_spec.lambda = lambda;
    mr_spec.coin_bits = options.coin_bits;
    const auto mr_circuit = eppi::mpc::build_mix_reveal_circuit(mr_spec);

    phase.emplace(ctx, "phase:mix_reveal");
    phase->span().attr("lambda", lambda);
    std::vector<bool> mr_bits = eppi::mpc::share_input_bits(*my_shares, width);
    mr_bits.reserve(mr_bits.size() + n * options.coin_bits);
    for (std::size_t j = 0; j < n; ++j) {
      for (unsigned b = 0; b < options.coin_bits; ++b) {
        mr_bits.push_back(ctx.rng().bernoulli(0.5));
      }
    }
    const auto mr_out =
        run_secure(mr_circuit, mr_bits, eppi::mpc::GmwSession::kSeqStride);
    const auto results = eppi::mpc::decode_mix_reveal(mr_spec, mr_out);
    phase.reset();

    opened.mixed.resize(n);
    opened.frequencies.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      opened.mixed[j] = results[j].mixed;
      opened.frequencies[j] = results[j].frequency;
    }

    CoordinatorView view;
    view.mixed = opened.mixed;
    view.revealed_frequencies = opened.frequencies;
    view.common_count = counted.common_count;
    view.xi = xi;
    view.lambda = lambda;
    view.count_below_stats = cb_circuit.stats();
    view.mix_reveal_stats = mr_circuit.stats();
    result.coordinator = std::move(view);

    if (me == 0) {
      // Phase 2 prologue: broadcast the opened vector to the surviving
      // non-coordinators (in the plain path, survivors == all m parties).
      eppi::net::PhaseSpan phase(ctx, "phase:broadcast");
      const auto payload = encode_opened(opened);
      for (const PartyId p : result.survivors) {
        if (p < options.c) continue;
        ctx.send(p, MessageTag::kBroadcast, 0, payload);
      }
      ctx.mark_round();
    }
  } else {
    eppi::net::PhaseSpan phase(ctx, "phase:broadcast");
    const auto payload = ctx.recv(0, MessageTag::kBroadcast, 0);
    opened = decode_opened(payload, n);
  }

  // Phase 2: local β computation (Eq. 9) and randomized publication.
  eppi::net::PhaseSpan phase(ctx, "phase:publish");
  result.betas.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (opened.mixed[j]) {
      result.betas[j] = 1.0;
    } else {
      const double sigma = static_cast<double>(opened.frequencies[j]) /
                           static_cast<double>(m_eff);
      result.betas[j] =
          std::clamp(beta_raw(options.policy, sigma, epsilons[j], m_eff), 0.0,
                     1.0);
    }
  }
  result.published_row = publish_row(my_row, result.betas, ctx.rng());
  return result;
}

}  // namespace eppi::core
