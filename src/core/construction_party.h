// Standalone per-party body of the distributed ε-PPI construction.
//
// construct_distributed (distributed_constructor.h) drives m of these inside
// one in-process cluster; a real deployment runs ONE of them per provider
// process over a socket transport (net/socket_transport.h, tools/eppi_cli
// `party` mode). The body is self-contained: it derives all public
// parameters (ring, thresholds, ε ranks, circuits) deterministically from
// the public inputs, runs SecSumShare → CountBelow → MixAndReveal →
// broadcast → local β → randomized publication, and returns this provider's
// published row (plus the opened aggregates when the caller is a
// coordinator).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/distributed_constructor.h"
#include "net/cluster.h"

namespace eppi::core {

struct CoordinatorView {
  std::vector<bool> mixed;                         // per identity
  std::vector<std::uint64_t> revealed_frequencies; // 0 where mixed
  std::uint64_t common_count = 0;
  double xi = 0.0;
  double lambda = 0.0;
  eppi::mpc::CircuitStats count_below_stats;
  eppi::mpc::CircuitStats mix_reveal_stats;
};

struct ConstructionPartyResult {
  std::vector<std::uint8_t> published_row;
  std::vector<double> betas;  // final per-identity β (identical on parties)
  // Present on coordinators (party id < options.c).
  std::optional<CoordinatorView> coordinator;
  // Committed provider set (sorted; all m parties unless fault tolerance
  // evicted dropouts) and the SecSumShare attempts the commit took.
  std::vector<eppi::net::PartyId> survivors;
  std::size_t secsum_attempts = 1;
};

// `my_row` is this provider's private membership vector (one Boolean per
// identity); `epsilons` and `options` are public and must be identical on
// every party. The cluster (or socket runtime) must span exactly the m
// providers as parties 0..m-1.
ConstructionPartyResult run_construction_party(
    eppi::net::PartyContext& ctx, std::span<const std::uint8_t> my_row,
    std::span<const double> epsilons, const DistributedOptions& options);

}  // namespace eppi::core
