#include "core/constructor.h"

#include "common/error.h"
#include "core/mixing.h"
#include "core/publisher.h"

namespace eppi::core {

ConstructionInfo calculate_betas(const eppi::BitMatrix& truth,
                                 std::span<const double> epsilons,
                                 const ConstructionOptions& options,
                                 eppi::Rng& rng) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "calculate_betas: epsilon count mismatch");
  require(m >= 1, "calculate_betas: need at least one provider");

  ConstructionInfo info;
  info.betas.resize(n);
  info.is_common.assign(n, false);
  info.is_apparent_common.assign(n, false);
  info.thresholds.resize(n);

  // Raw β* per identity; saturation marks common identities (paper Eq. 8).
  std::vector<double> raw(n);
  for (std::size_t j = 0; j < n; ++j) {
    require(epsilons[j] >= 0.0 && epsilons[j] <= 1.0,
            "calculate_betas: epsilon out of [0,1]");
    const double sigma = static_cast<double>(truth.col_count(j)) /
                         static_cast<double>(m);
    raw[j] = beta_raw(options.policy, sigma, epsilons[j], m);
    info.is_common[j] = raw[j] >= 1.0;
    info.thresholds[j] = common_threshold(options.policy, epsilons[j], m);
  }

  // Identity mixing (Eq. 6/7): non-common identities are exaggerated to
  // β = 1 with probability λ.
  std::size_t n_common = 0;
  for (std::size_t j = 0; j < n; ++j) n_common += info.is_common[j] ? 1 : 0;
  info.xi = xi_for(info.is_common, epsilons);
  info.lambda = options.enable_mixing ? lambda_for(info.xi, n_common, n) : 0.0;

  for (std::size_t j = 0; j < n; ++j) {
    if (info.is_common[j]) {
      info.betas[j] = 1.0;
      info.is_apparent_common[j] = true;
    } else if (options.enable_mixing && rng.bernoulli(info.lambda)) {
      info.betas[j] = 1.0;
      info.is_apparent_common[j] = true;
    } else {
      info.betas[j] = raw[j] < 0.0 ? 0.0 : raw[j];
    }
  }
  return info;
}

ConstructionResult construct_centralized(const eppi::BitMatrix& truth,
                                         std::span<const double> epsilons,
                                         const ConstructionOptions& options,
                                         eppi::Rng& rng) {
  ConstructionResult result;
  result.info = calculate_betas(truth, epsilons, options, rng);
  result.index =
      PpiIndex(publish_matrix(truth, result.info.betas, rng));
  return result;
}

}  // namespace eppi::core
