// Centralized reference constructor for ε-PPI.
//
// Computes exactly the functionality of the secure distributed protocol
// (paper §III: β calculation with common-identity mixing, then randomized
// publication) but with direct access to the full membership matrix. This is
// the form used by the paper's first experiment set ("based on simulations",
// §V-A), where effectiveness at m = 10,000 providers is measured without
// running cryptography; the distributed constructor
// (distributed_constructor.h) produces a statistically identical index and
// is cross-checked against this one in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "core/ppi_index.h"

namespace eppi::core {

struct ConstructionOptions {
  BetaPolicy policy = BetaPolicy::chernoff(0.9);
  // Identity mixing on/off; off reproduces the mixing ablation (a PPI
  // vulnerable to the common-identity attack).
  bool enable_mixing = true;
};

struct ConstructionInfo {
  std::vector<double> betas;        // final per-identity β (post mixing)
  std::vector<bool> is_common;      // β* >= 1 by the true frequency
  std::vector<bool> is_apparent_common;  // published with β == 1
  std::vector<std::uint64_t> thresholds; // per-identity common thresholds t_j
  double xi = 0.0;                  // max ε over common identities
  double lambda = 0.0;              // mixing probability used
};

struct ConstructionResult {
  PpiIndex index;
  ConstructionInfo info;
};

// Builds the ε-PPI from the ground-truth membership matrix and per-owner
// privacy degrees. Throws ConfigError on malformed inputs (epsilon count
// mismatch, out-of-range ε).
ConstructionResult construct_centralized(const eppi::BitMatrix& truth,
                                         std::span<const double> epsilons,
                                         const ConstructionOptions& options,
                                         eppi::Rng& rng);

// Computes only the final β vector (phase 1 of the two-phase framework);
// exposed separately for the policy-comparison experiments (Fig. 5), which
// re-publish many times under one β calculation.
ConstructionInfo calculate_betas(const eppi::BitMatrix& truth,
                                 std::span<const double> epsilons,
                                 const ConstructionOptions& options,
                                 eppi::Rng& rng);

}  // namespace eppi::core
