#include "core/distributed_constructor.h"

#include <algorithm>

#include "common/error.h"
#include "core/construction_party.h"
#include "net/cluster.h"
#include "net/fault.h"

namespace eppi::core {

DistributedResult construct_distributed(const eppi::BitMatrix& truth,
                                        std::span<const double> epsilons,
                                        const DistributedOptions& options) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(n >= 1, "construct_distributed: need at least one identity");
  require(epsilons.size() == n, "construct_distributed: epsilon count");
  require(options.c >= 2 && options.c <= m,
          "construct_distributed: need 2 <= c <= m");
  require(options.backend == MpcBackend::kGmw || options.c == 2,
          "construct_distributed: the garbled backend is two-party (c == 2)");

  // Per-party private inputs (rows of the truth matrix).
  std::vector<std::vector<std::uint8_t>> rows(m,
                                              std::vector<std::uint8_t>(n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      rows[i][j] = truth.get(i, j) ? 1 : 0;
    }
  }

  const FaultToleranceOptions& ft = options.fault_tolerance;

  std::vector<ConstructionPartyResult> party_results(m);
  eppi::net::Cluster cluster(m, options.seed);
  if (!ft.fault_scenario.empty()) {
    cluster.inject_faults(eppi::net::FaultScenario::parse(ft.fault_scenario),
                          ft.fault_seed);
  }
  if (ft.reliable_delivery) cluster.enable_reliability(ft.reliable);
  if (ft.enabled) {
    // Bound every receive outside SecSumShare (MPC rounds, broadcast) so a
    // coordinator crash surfaces as PartyFailure instead of a hang. The
    // SecSumShare FT path uses its own stage_timeout internally.
    cluster.set_recv_timeout(ft.mpc_timeout);
  }
  cluster.run([&](eppi::net::PartyContext& ctx) {
    party_results[ctx.id()] =
        run_construction_party(ctx, rows[ctx.id()], epsilons, options);
  });
  const std::vector<eppi::net::PartyId>& crashed = cluster.crashed();
  const auto has_crashed = [&](eppi::net::PartyId p) {
    return std::binary_search(crashed.begin(), crashed.end(), p);
  };
  require(!has_crashed(0) && party_results[0].coordinator.has_value(),
          "construct_distributed: coordinator 0 produced no view");

  // Assemble the PPI server's matrix from the published rows. A crashed
  // provider publishes nothing: its row stays all-zero (the locator simply
  // never routes to it), matching the committed survivor view.
  eppi::BitMatrix published(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    if (has_crashed(static_cast<eppi::net::PartyId>(i))) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (party_results[i].published_row[j] != 0) published.set(i, j, true);
    }
  }

  DistributedResult result;
  result.index = PpiIndex(std::move(published));
  const CoordinatorView& view = *party_results[0].coordinator;
  result.report.betas = party_results[0].betas;
  result.report.mixed = view.mixed;
  result.report.revealed_frequencies = view.revealed_frequencies;
  result.report.common_count = view.common_count;
  result.report.xi = view.xi;
  result.report.lambda = view.lambda;
  result.report.count_below_stats = view.count_below_stats;
  result.report.mix_reveal_stats = view.mix_reveal_stats;
  result.report.total_cost = cluster.meter().snapshot();
  result.report.survivors = party_results[0].survivors;
  result.report.crashed = crashed;
  result.report.secsum_attempts = party_results[0].secsum_attempts;
  return result;
}

}  // namespace eppi::core
