// Distributed secure ε-PPI construction (paper §IV).
//
// Runs the full realization pipeline over a threaded multi-party cluster in
// which every provider is a party and no trusted third party exists:
//
//   1. SecSumShare over all m providers — the coordinators (p_0..p_{c-1})
//      obtain (c,c)-secret-shared identity frequencies (2 rounds, parallel
//      in the number of identities).
//   2. CountBelow by generic MPC among only the c coordinators — opens the
//      number of common identities and ξ (the max ε over the secret common
//      set, selected securely over public ε ranks). This is the expensive
//      part the MPC-reduced design confines to c parties.
//   3. λ is derived publicly from the opened count and ξ (Eq. 7); then the
//      MixAndReveal MPC opens, per identity, either "mixed" (β = 1; covers
//      all common identities and a λ-fraction of decoys) or the true
//      frequency — so a common identity's frequency never leaves the MPC.
//   4. Coordinator p_0 broadcasts the opened vector; every provider computes
//      its final β_j locally (complex floating-point work pushed to the
//      non-private end, Eq. 9) and runs randomized publication on its own
//      private row.
//
// The returned report carries the protocol-level cost counters and circuit
// statistics that drive the Fig. 6 benchmarks.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "core/beta_policy.h"
#include "core/ppi_index.h"
#include "mpc/circuit.h"
#include "net/cost_meter.h"
#include "net/message.h"
#include "net/reliable_transport.h"

namespace eppi::core {

// Engine used for the secure stages among the coordinators.
enum class MpcBackend {
  kGmw,      // any c; rounds proportional to circuit depth
  kGarbled,  // c == 2 only; constant rounds (Yao garbled circuits)
};

// Dropout tolerance for the distributed construction. Defaults are
// paper-faithful: everything off, receives unbounded, exactly the §IV
// protocol. Enabling `enabled` turns on bounded receives, the SecSumShare
// failure detector with restart-over-survivors, and typed PartyFailure
// aborts when a coordinator dies (docs/fault_tolerance.md).
struct FaultToleranceOptions {
  bool enabled = false;
  // Bound on each SecSumShare-stage receive (suspicion threshold).
  std::chrono::milliseconds stage_timeout{250};
  // Bound on every other receive (MPC openings, broadcast); must cover the
  // coordinators' circuit-evaluation time.
  std::chrono::milliseconds mpc_timeout{2000};
  // SecSumShare restarts over shrinking survivor sets before giving up.
  std::size_t max_attempts = 3;

  // Reliable delivery (acks + retransmission + per-message deadline) under
  // the protocol; turns transient loss into latency so the failure detector
  // only fires on genuinely dead parties.
  bool reliable_delivery = false;
  eppi::net::ReliableOptions reliable;

  // Fault injection for tests/benches: a FaultScenario DSL string (see
  // net/fault.h) applied to the in-process transport, deterministic under
  // fault_seed. Empty = no injected faults.
  std::string fault_scenario;
  std::uint64_t fault_seed = 1;
};

struct DistributedOptions {
  BetaPolicy policy = BetaPolicy::chernoff(0.9);
  bool enable_mixing = true;
  std::size_t c = 3;          // coordinators / collusion tolerance knob
  std::uint64_t q = 0;        // SecSumShare modulus; 0 = auto power of two
  unsigned coin_bits = 16;    // λ-coin resolution inside the MPC
  std::uint64_t seed = 1;     // drives all party RNG streams
  MpcBackend backend = MpcBackend::kGmw;
  FaultToleranceOptions fault_tolerance;
};

struct DistributedReport {
  std::vector<double> betas;                  // final per-identity β
  std::vector<bool> mixed;                    // published with β == 1
  std::vector<std::uint64_t> revealed_frequencies;  // 0 where mixed
  std::uint64_t common_count = 0;             // opened by CountBelow
  double xi = 0.0;
  double lambda = 0.0;
  eppi::mpc::CircuitStats count_below_stats;
  eppi::mpc::CircuitStats mix_reveal_stats;
  eppi::net::CostSnapshot total_cost;         // messages/bytes/rounds
  // Dropout accounting (fault-tolerant mode; trivial otherwise): providers
  // whose inputs the committed construction covers, providers that crashed
  // mid-protocol (their rows are all-zero in the index), and how many
  // SecSumShare attempts the commit took.
  std::vector<eppi::net::PartyId> survivors;
  std::vector<eppi::net::PartyId> crashed;
  std::size_t secsum_attempts = 1;
};

struct DistributedResult {
  PpiIndex index;
  DistributedReport report;
};

// `truth` row i is provider i's private membership vector; `epsilons` are
// the public per-owner privacy degrees. Requires m >= options.c >= 2.
DistributedResult construct_distributed(const eppi::BitMatrix& truth,
                                        std::span<const double> epsilons,
                                        const DistributedOptions& options);

}  // namespace eppi::core
