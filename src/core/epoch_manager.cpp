#include "core/epoch_manager.h"

#include "common/error.h"
#include "core/mixing.h"
#include "core/sticky_publisher.h"

namespace eppi::core {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t EpochManager::provider_key(std::size_t provider) const noexcept {
  return mix64(options_.master_key ^ (0xA5A5A5A5A5A5A5A5ULL + provider));
}

bool EpochManager::sticky_mix_coin(std::size_t identity,
                                   double lambda) const noexcept {
  if (lambda <= 0.0) return false;
  if (lambda >= 1.0) return true;
  const std::uint64_t draw =
      mix64(mix64(options_.master_key ^ 0x5bd1e995ULL) + identity);
  const long double scaled =
      static_cast<long double>(lambda) * 18446744073709551616.0L;
  const std::uint64_t threshold =
      scaled >= 18446744073709551615.0L ? ~std::uint64_t{0}
                                        : static_cast<std::uint64_t>(scaled);
  return draw < threshold;
}

EpochManager::EpochResult EpochManager::rebuild(
    const eppi::BitMatrix& truth, std::span<const double> epsilons) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "EpochManager: epsilon count mismatch");
  require(m >= 1, "EpochManager: need at least one provider");

  // β calculation with deterministic, monotone mixing.
  ConstructionInfo info;
  info.betas.resize(n);
  info.is_common.assign(n, false);
  info.is_apparent_common.assign(n, false);
  info.thresholds.resize(n);
  std::vector<double> raw(n);
  for (std::size_t j = 0; j < n; ++j) {
    require(epsilons[j] >= 0.0 && epsilons[j] <= 1.0,
            "EpochManager: epsilon out of [0,1]");
    const double sigma =
        static_cast<double>(truth.col_count(j)) / static_cast<double>(m);
    raw[j] = beta_raw(options_.policy, sigma, epsilons[j], m);
    info.is_common[j] = raw[j] >= 1.0;
    info.thresholds[j] = common_threshold(options_.policy, epsilons[j], m);
  }
  std::size_t n_common = 0;
  for (std::size_t j = 0; j < n; ++j) n_common += info.is_common[j] ? 1 : 0;
  info.xi = xi_for(info.is_common, epsilons);
  info.lambda =
      options_.enable_mixing ? lambda_for(info.xi, n_common, n) : 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (info.is_common[j] ||
        (options_.enable_mixing && sticky_mix_coin(j, info.lambda))) {
      info.betas[j] = 1.0;
      info.is_apparent_common[j] = true;
    } else {
      info.betas[j] = raw[j] < 0.0 ? 0.0 : raw[j];
    }
  }

  // Sticky publication.
  std::vector<std::uint64_t> keys(m);
  for (std::size_t i = 0; i < m; ++i) keys[i] = provider_key(i);
  eppi::BitMatrix published =
      sticky_publish_matrix(truth, info.betas, keys);

  EpochResult result;
  result.info = std::move(info);
  result.epoch = ++epoch_;
  if (has_previous_ && previous_.rows() == published.rows() &&
      previous_.cols() == published.cols()) {
    std::size_t churn = 0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (previous_.get(i, j) != published.get(i, j)) ++churn;
      }
    }
    result.churn = churn;
  } else {
    result.churn = m * n;
  }
  previous_ = published;
  has_previous_ = true;
  result.index = PpiIndex(std::move(published));
  return result;
}

EpochManager::DistributedEpochResult EpochManager::rebuild_distributed(
    const eppi::BitMatrix& truth, std::span<const double> epsilons,
    const DistributedOptions& options) {
  DistributedEpochResult result;
  DistributedResult built;
  try {
    built = construct_distributed(truth, epsilons, options);
  } catch (const eppi::ProtocolError& failure) {
    // Degraded mode: the rebuild aborted (a PartyFailure names the dead
    // party). Keep serving the last good epoch rather than going dark; the
    // stale index is correct for the previous network state and strictly
    // better than no locator service.
    if (!has_previous_) throw;  // nothing to fall back to
    ++failed_rebuilds_;
    last_failure_ = failure.what();
    result.index = PpiIndex(previous_);
    result.epoch = epoch_;
    result.degraded = true;
    result.failure = last_failure_;
    return result;
  }

  const eppi::BitMatrix& published = built.index.matrix();
  result.epoch = ++epoch_;
  if (has_previous_ && previous_.rows() == published.rows() &&
      previous_.cols() == published.cols()) {
    std::size_t churn = 0;
    for (std::size_t i = 0; i < published.rows(); ++i) {
      for (std::size_t j = 0; j < published.cols(); ++j) {
        if (previous_.get(i, j) != published.get(i, j)) ++churn;
      }
    }
    result.churn = churn;
  } else {
    result.churn = published.rows() * published.cols();
  }
  previous_ = published;
  has_previous_ = true;
  result.report = std::move(built.report);
  result.index = std::move(built.index);
  return result;
}

}  // namespace eppi::core
