#include "core/epoch_manager.h"

#include "common/error.h"
#include "core/epoch_store.h"
#include "core/mixing.h"
#include "core/sticky_publisher.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace eppi::core {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t EpochManager::provider_key(std::size_t provider) const noexcept {
  return mix64(options_.master_key ^ (0xA5A5A5A5A5A5A5A5ULL + provider));
}

bool EpochManager::sticky_mix_coin(std::size_t identity,
                                   double lambda) const noexcept {
  if (lambda <= 0.0) return false;
  if (lambda >= 1.0) return true;
  const std::uint64_t draw =
      mix64(mix64(options_.master_key ^ 0x5bd1e995ULL) + identity);
  const long double scaled =
      static_cast<long double>(lambda) * 18446744073709551616.0L;
  const std::uint64_t threshold =
      scaled >= 18446744073709551615.0L ? ~std::uint64_t{0}
                                        : static_cast<std::uint64_t>(scaled);
  return draw < threshold;
}

EpochManager::EpochResult EpochManager::rebuild(
    const eppi::BitMatrix& truth, std::span<const double> epsilons) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "EpochManager: epsilon count mismatch");
  require(m >= 1, "EpochManager: need at least one provider");

  obs::Span span("serve.rebuild");
  span.attr("providers", m);
  span.attr("identities", n);
  span.attr("distributed", false);

  // β calculation with deterministic, monotone mixing.
  ConstructionInfo info;
  info.betas.resize(n);
  info.is_common.assign(n, false);
  info.is_apparent_common.assign(n, false);
  info.thresholds.resize(n);
  std::vector<double> raw(n);
  for (std::size_t j = 0; j < n; ++j) {
    require(epsilons[j] >= 0.0 && epsilons[j] <= 1.0,
            "EpochManager: epsilon out of [0,1]");
    const double sigma =
        static_cast<double>(truth.col_count(j)) / static_cast<double>(m);
    raw[j] = beta_raw(options_.policy, sigma, epsilons[j], m);
    info.is_common[j] = raw[j] >= 1.0;
    info.thresholds[j] = common_threshold(options_.policy, epsilons[j], m);
  }
  std::size_t n_common = 0;
  for (std::size_t j = 0; j < n; ++j) n_common += info.is_common[j] ? 1 : 0;
  info.xi = xi_for(info.is_common, epsilons);
  info.lambda =
      options_.enable_mixing ? lambda_for(info.xi, n_common, n) : 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (info.is_common[j] ||
        (options_.enable_mixing && sticky_mix_coin(j, info.lambda))) {
      info.betas[j] = 1.0;
      info.is_apparent_common[j] = true;
    } else {
      info.betas[j] = raw[j] < 0.0 ? 0.0 : raw[j];
    }
  }

  // Sticky publication.
  std::vector<std::uint64_t> keys(m);
  for (std::size_t i = 0; i < m; ++i) keys[i] = provider_key(i);
  eppi::BitMatrix published =
      sticky_publish_matrix(truth, info.betas, keys);

  const std::size_t churn = churn_against_previous(published);
  // Commit first (durable), then mutate: if the store throws, the manager
  // keeps serving the old epoch unchanged and a retry is safe.
  adopt_epoch(published, info.lambda);
  span.attr("epoch", epoch_);
  span.attr("churn", churn);

  EpochResult result;
  result.info = std::move(info);
  result.epoch = epoch_;
  result.churn = churn;
  result.index = PpiIndex(std::move(published));
  return result;
}

std::size_t EpochManager::churn_against_previous(
    const eppi::BitMatrix& published) const {
  if (!has_previous_ || previous_.rows() != published.rows() ||
      previous_.cols() != published.cols()) {
    return published.rows() * published.cols();
  }
  std::size_t churn = 0;
  for (std::size_t i = 0; i < published.rows(); ++i) {
    for (std::size_t j = 0; j < published.cols(); ++j) {
      if (previous_.get(i, j) != published.get(i, j)) ++churn;
    }
  }
  return churn;
}

void EpochManager::adopt_epoch(const eppi::BitMatrix& published,
                               double lambda) {
  if (store_ != nullptr) {
    store_->commit_epoch(epoch_ + 1, PpiIndex(published), lambda);
  }
  previous_ = published;
  has_previous_ = true;
  ++epoch_;
  served_epoch_ = epoch_;
  failed_since_commit_ = 0;
  epoch_time_ = std::chrono::steady_clock::now();
  has_epoch_time_ = true;
}

void EpochManager::attach_store(EpochStore& store) {
  store_ = &store;
  if (store.has_sticky_state()) {
    // The recorded lineage wins: deriving noise from a *new* key would
    // rotate every sticky decision and reopen the intersection attacks.
    options_.master_key = store.sticky_state().master_key;
    options_.enable_mixing = store.sticky_state().enable_mixing;
  } else {
    store.record_sticky_state(
        {options_.master_key, options_.enable_mixing});
  }
  if (!store.lineage().empty()) {
    // Never reuse an epoch number, even one whose file was quarantined.
    epoch_ = store.lineage().back().epoch;
  }
  if (const auto latest = store.latest_epoch()) {
    // The epoch *served* is the newest intact one, which can be older than
    // the newest committed id when recovery quarantined a rotted file.
    previous_ = store.load_epoch(*latest).matrix();
    has_previous_ = true;
    served_epoch_ = *latest;
    epoch_time_ = std::chrono::steady_clock::now();
    has_epoch_time_ = true;
  }
}

EpochManager::ServingStatus EpochManager::serving_status() const {
  ServingStatus status;
  status.epoch = served_epoch_;
  status.serving = has_previous_;
  status.degraded = failed_since_commit_ > 0;
  status.rebuilds_behind = failed_since_commit_;
  if (has_epoch_time_) {
    status.age_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - epoch_time_)
                             .count();
  }
  return status;
}

PpiIndex EpochManager::current_index() const {
  require(has_previous_, "EpochManager: no epoch has been built yet");
  return PpiIndex(previous_);
}

const eppi::BitMatrix& EpochManager::current_matrix() const {
  require(has_previous_, "EpochManager: no epoch has been built yet");
  return previous_;
}

EpochManager::DistributedEpochResult EpochManager::rebuild_distributed(
    const eppi::BitMatrix& truth, std::span<const double> epsilons,
    const DistributedOptions& options) {
  obs::Span span("serve.rebuild");
  span.attr("providers", truth.rows());
  span.attr("identities", truth.cols());
  span.attr("distributed", true);

  DistributedEpochResult result;
  DistributedResult built;
  try {
    built = construct_distributed(truth, epsilons, options);
  } catch (const eppi::ProtocolError& failure) {
    // Degraded mode: the rebuild aborted (a PartyFailure names the dead
    // party). Keep serving the last good epoch rather than going dark; the
    // stale index is correct for the previous network state and strictly
    // better than no locator service.
    if (!has_previous_) throw;  // nothing to fall back to
    ++failed_rebuilds_;
    ++failed_since_commit_;
    last_failure_ = failure.what();
    span.event("serve.rebuild_failed");
    obs::Registry::global()
        .counter("eppi_serving_failed_rebuilds_total", {},
                 "Distributed rebuilds that aborted into degraded serving")
        .add();
    result.index = PpiIndex(previous_);
    result.epoch = served_epoch_;
    result.degraded = true;
    result.failure = last_failure_;
    return result;
  }

  const eppi::BitMatrix& published = built.index.matrix();
  const std::size_t churn = churn_against_previous(published);
  adopt_epoch(published, built.report.lambda);
  span.attr("epoch", epoch_);
  span.attr("churn", churn);
  result.epoch = epoch_;
  result.churn = churn;
  result.report = std::move(built.report);
  result.index = std::move(built.index);
  return result;
}

}  // namespace eppi::core
