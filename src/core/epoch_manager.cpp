#include "core/epoch_manager.h"

#include <algorithm>

#include "common/error.h"
#include "core/epoch_store.h"
#include "core/mixing.h"
#include "core/sticky_publisher.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace eppi::core {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t EpochManager::provider_key(std::size_t provider) const noexcept {
  return mix64(options_.master_key ^ (0xA5A5A5A5A5A5A5A5ULL + provider));
}

bool EpochManager::sticky_mix_coin(std::size_t identity,
                                   double lambda) const noexcept {
  if (lambda <= 0.0) return false;
  if (lambda >= 1.0) return true;
  const std::uint64_t draw =
      mix64(mix64(options_.master_key ^ 0x5bd1e995ULL) + identity);
  const long double scaled =
      static_cast<long double>(lambda) * 18446744073709551616.0L;
  const std::uint64_t threshold =
      scaled >= 18446744073709551615.0L ? ~std::uint64_t{0}
                                        : static_cast<std::uint64_t>(scaled);
  return draw < threshold;
}

EpochManager::EpochResult EpochManager::rebuild(
    const eppi::BitMatrix& truth, std::span<const double> epsilons) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "EpochManager: epsilon count mismatch");
  require(m >= 1, "EpochManager: need at least one provider");

  obs::Span span("serve.rebuild");
  span.attr("providers", m);
  span.attr("identities", n);
  span.attr("distributed", false);

  // β calculation with deterministic, monotone mixing.
  ConstructionInfo info;
  info.betas.resize(n);
  info.is_common.assign(n, false);
  info.is_apparent_common.assign(n, false);
  info.thresholds.resize(n);
  std::vector<double> raw(n);
  for (std::size_t j = 0; j < n; ++j) {
    require(epsilons[j] >= 0.0 && epsilons[j] <= 1.0,
            "EpochManager: epsilon out of [0,1]");
    const double sigma =
        static_cast<double>(truth.col_count(j)) / static_cast<double>(m);
    raw[j] = beta_raw(options_.policy, sigma, epsilons[j], m);
    info.is_common[j] = raw[j] >= 1.0;
    info.thresholds[j] = common_threshold(options_.policy, epsilons[j], m);
  }
  std::size_t n_common = 0;
  for (std::size_t j = 0; j < n; ++j) n_common += info.is_common[j] ? 1 : 0;
  info.xi = xi_for(info.is_common, epsilons);
  info.lambda =
      options_.enable_mixing ? lambda_for(info.xi, n_common, n) : 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (info.is_common[j] ||
        (options_.enable_mixing && sticky_mix_coin(j, info.lambda))) {
      info.betas[j] = 1.0;
      info.is_apparent_common[j] = true;
    } else {
      info.betas[j] = raw[j] < 0.0 ? 0.0 : raw[j];
    }
  }

  // Sticky publication.
  std::vector<std::uint64_t> keys(m);
  for (std::size_t i = 0; i < m; ++i) keys[i] = provider_key(i);
  eppi::BitMatrix published =
      sticky_publish_matrix(truth, info.betas, keys);
  zero_retired_rows(published);

  const std::size_t churn = churn_against_previous(published);
  // Commit first (durable), then mutate: if the store throws, the manager
  // keeps serving the old epoch unchanged and a retry is safe.
  adopt_epoch(published, info.lambda);
  span.attr("epoch", epoch_);
  span.attr("churn", churn);

  // Retain the per-identity derivation state so the next rebuild_delta can
  // recompute only what changed.
  last_raw_ = std::move(raw);
  last_info_ = info;
  has_last_info_ = true;
  record_churn_metrics(churn, /*delta=*/false);

  EpochResult result;
  result.info = std::move(info);
  result.epoch = epoch_;
  result.churn = churn;
  result.index = PpiIndex(std::move(published));
  return result;
}

EpochManager::EpochResult EpochManager::rebuild_delta(
    const eppi::BitMatrix& truth, std::span<const double> epsilons,
    const DeltaRequest& request) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "EpochManager: epsilon count mismatch");
  require(m >= 1, "EpochManager: need at least one provider");
  apply_membership(request, m);

  if (!has_previous_ || !has_last_info_ || previous_.rows() > m ||
      previous_.cols() > n) {
    // No base to splice over (first epoch, fresh restart, or a shrinking
    // shape): run the full path — same result, more work.
    EpochResult result = rebuild(truth, epsilons);
    result.delta = DeltaStats{};
    return result;
  }

  obs::Span span("serve.rebuild_delta");
  span.attr("providers", m);
  span.attr("identities", n);

  const bool shape_changed = previous_.rows() != m || previous_.cols() != n;

  // Grow the retained derivation state; new identities are implicitly
  // dirty, so the placeholder values below are always overwritten.
  last_raw_.resize(n, 0.0);
  last_info_.betas.resize(n, 0.0);
  last_info_.is_common.resize(n, false);
  last_info_.is_apparent_common.resize(n, false);
  last_info_.thresholds.resize(n, 0.0);

  std::vector<std::uint8_t> dirty(n, 0);
  for (const IdentityId j : request.dirty) {
    require(j < n, "EpochManager: dirty identity out of range");
    dirty[j] = 1;
  }
  for (std::size_t j = previous_.cols(); j < n; ++j) dirty[j] = 1;

  // Re-derive β*/commonness only where the global frequency or ε could have
  // moved; everything else keeps the previous epoch's values verbatim.
  for (std::size_t j = 0; j < n; ++j) {
    if (!dirty[j]) continue;
    require(epsilons[j] >= 0.0 && epsilons[j] <= 1.0,
            "EpochManager: epsilon out of [0,1]");
    const double sigma =
        static_cast<double>(truth.col_count(j)) / static_cast<double>(m);
    last_raw_[j] = beta_raw(options_.policy, sigma, epsilons[j], m);
    last_info_.is_common[j] = last_raw_[j] >= 1.0;
    last_info_.thresholds[j] = common_threshold(options_.policy, epsilons[j], m);
  }

  // ξ and λ are global functions of the (updated) common set, recomputed
  // with the same formulas as the full path — so they land on the same
  // values a full rebuild would.
  std::size_t n_common = 0;
  for (std::size_t j = 0; j < n; ++j) {
    n_common += last_info_.is_common[j] ? 1 : 0;
  }
  last_info_.xi = xi_for(last_info_.is_common, epsilons);
  const double lambda =
      options_.enable_mixing ? lambda_for(last_info_.xi, n_common, n) : 0.0;
  last_info_.lambda = lambda;

  // λ moving can flip any identity's sticky mixing decision, so the dirty
  // set widens to every identity whose β or apparent-common bit changed.
  std::vector<std::uint8_t> affected = dirty;
  for (std::size_t j = 0; j < n; ++j) {
    const bool apparent =
        last_info_.is_common[j] ||
        (options_.enable_mixing && sticky_mix_coin(j, lambda));
    const double beta =
        apparent ? 1.0 : (last_raw_[j] < 0.0 ? 0.0 : last_raw_[j]);
    if (apparent != last_info_.is_apparent_common[j] ||
        beta != last_info_.betas[j]) {
      affected[j] = 1;
    }
    last_info_.is_apparent_common[j] = apparent;
    last_info_.betas[j] = beta;
  }

  // Splice over the previous epoch's published matrix.
  eppi::BitMatrix published(m, n);
  if (!shape_changed) {
    published = previous_;
  } else {
    for (std::size_t i = 0; i < previous_.rows(); ++i) {
      for (std::size_t j = 0; j < previous_.cols(); ++j) {
        if (previous_.get(i, j)) published.set(i, j, true);
      }
    }
  }

  std::vector<StickyPublisher> publishers;
  publishers.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    publishers.emplace_back(provider_key(i));
  }
  const auto publish_cell = [&](std::size_t i, std::size_t j) {
    if (i < retired_.size() && retired_[i]) return false;
    return truth.get(i, j) ||
           publishers[i].noise_bit(j, last_info_.betas[j]);
  };
  // Every write below stores the cell's FINAL value, so overlaps (a joined
  // row crossing an affected column) are written twice with the same bit
  // and the flip count stays exact.
  std::size_t flips = 0;
  const auto write_cell = [&](std::size_t i, std::size_t j, bool bit) {
    if (published.get(i, j) != bit) {
      ++flips;
      published.set(i, j, bit);
    }
  };

  for (std::size_t p = 0; p < m; ++p) {
    if (p < retired_.size() && retired_[p]) {
      for (std::size_t j = 0; j < n; ++j) write_cell(p, j, false);
    }
  }
  std::size_t recomputed = 0;
  std::vector<IdentityId> affected_ids;
  for (std::size_t j = 0; j < n; ++j) {
    if (!affected[j]) continue;
    ++recomputed;
    affected_ids.push_back(static_cast<IdentityId>(j));
    for (std::size_t i = 0; i < m; ++i) write_cell(i, j, publish_cell(i, j));
  }
  for (const ProviderId p : request.joined) {
    for (std::size_t j = 0; j < n; ++j) write_cell(p, j, publish_cell(p, j));
  }

  const std::size_t churn = shape_changed ? m * n : flips;

  // Journal as a delta record when the store's lineage head can base one.
  EpochStore::EpochDelta rec;
  rec.epoch = epoch_ + 1;
  rec.base_epoch = epoch_;
  rec.rows = m;
  rec.cols = n;
  rec.lambda = lambda;
  rec.joined = request.joined;
  rec.left = request.left;
  for (const ProviderId p : request.joined) {
    EpochStore::EpochDelta::Row row;
    row.provider = p;
    row.bits.assign((n + 7) / 8, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (published.get(p, j)) row.bits[j >> 3] |= 1u << (j & 7);
    }
    rec.row_splices.push_back(std::move(row));
  }
  for (const IdentityId j : affected_ids) {
    EpochStore::EpochDelta::Column col;
    col.identity = j;
    col.bits.assign((m + 7) / 8, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (published.get(i, j)) col.bits[i >> 3] |= 1u << (i & 7);
    }
    rec.col_splices.push_back(std::move(col));
  }
  rec.matrix_crc = matrix_checksum(published);
  rec.postings_crc = postings_checksum(published);
  rec.has_postings_crc = true;

  adopt_epoch(published, lambda, &rec);
  has_last_info_ = true;
  span.attr("epoch", epoch_);
  span.attr("churn", churn);
  span.attr("recomputed", recomputed);
  record_churn_metrics(churn, /*delta=*/true);

  EpochResult result;
  result.info = last_info_;
  result.epoch = epoch_;
  result.churn = churn;
  result.delta.delta = true;
  result.delta.recomputed = recomputed;
  result.delta.spliced_rows = request.joined.size();
  result.delta.affected_ids = std::move(affected_ids);
  result.index = PpiIndex(std::move(published));
  return result;
}

std::size_t EpochManager::churn_against_previous(
    const eppi::BitMatrix& published) const {
  if (!has_previous_ || previous_.rows() != published.rows() ||
      previous_.cols() != published.cols()) {
    return published.rows() * published.cols();
  }
  std::size_t churn = 0;
  for (std::size_t i = 0; i < published.rows(); ++i) {
    for (std::size_t j = 0; j < published.cols(); ++j) {
      if (previous_.get(i, j) != published.get(i, j)) ++churn;
    }
  }
  return churn;
}

void EpochManager::adopt_epoch(const eppi::BitMatrix& published,
                               double lambda,
                               const EpochStore::EpochDelta* delta_rec) {
  if (store_ != nullptr) {
    bool as_delta = false;
    if (delta_rec != nullptr && options_.delta_base_interval > 0 &&
        store_->deltas_since_full() + 1 < options_.delta_base_interval &&
        !store_->lineage().empty()) {
      // The journal-only commit needs a loadable lineage head of the same
      // id and a non-shrinking shape; anything else (quarantined head,
      // record too large) falls back to a full index file — the published
      // matrix is identical either way.
      const EpochStore::EpochRecord& head = store_->lineage().back();
      as_delta = head.epoch == epoch_ && head.file_intact &&
                 head.rows <= delta_rec->rows &&
                 head.cols <= delta_rec->cols &&
                 !EpochStore::delta_overflows(*delta_rec);
    }
    if (as_delta) {
      store_->commit_delta(*delta_rec);
    } else {
      store_->commit_epoch(epoch_ + 1, PostingIndex(published), lambda,
                           commit_lexicon_.get());
    }
  }
  previous_ = published;
  has_previous_ = true;
  last_lambda_ = lambda;
  ++epoch_;
  served_epoch_ = epoch_;
  failed_since_commit_ = 0;
  epoch_time_ = std::chrono::steady_clock::now();
  has_epoch_time_ = true;
}

void EpochManager::apply_membership(const DeltaRequest& request,
                                    std::size_t m) {
  if (retired_.size() < m) retired_.resize(m, 0);
  for (const ProviderId p : request.joined) {
    require(p < m, "EpochManager: joined provider row out of range");
    retired_[p] = 0;
  }
  for (const ProviderId p : request.left) {
    require(p < m, "EpochManager: leaving provider row out of range");
    retired_[p] = 1;
  }
}

void EpochManager::zero_retired_rows(eppi::BitMatrix& published) const {
  const std::size_t rows = std::min(retired_.size(), published.rows());
  for (std::size_t p = 0; p < rows; ++p) {
    if (!retired_[p]) continue;
    for (std::size_t j = 0; j < published.cols(); ++j) {
      published.set(p, j, false);
    }
  }
}

std::size_t EpochManager::retired_count() const noexcept {
  std::size_t count = 0;
  for (const std::uint8_t r : retired_) count += r ? 1 : 0;
  return count;
}

std::size_t EpochManager::pending_churn(const eppi::BitMatrix& truth) const {
  if (!has_previous_) return truth.rows() * truth.cols();
  std::size_t pending = 0;
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    const bool retired = i < retired_.size() && retired_[i];
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      const bool served = i < previous_.rows() && j < previous_.cols() &&
                          previous_.get(i, j);
      if (retired ? served : (truth.get(i, j) && !served)) ++pending;
    }
  }
  return pending;
}

void EpochManager::record_churn_metrics(std::size_t churn, bool delta) const {
  auto& registry = obs::Registry::global();
  registry
      .counter("eppi_epoch_churn", {},
               "Cells changed between consecutive published epochs")
      .add(churn);
  registry
      .gauge("eppi_epoch_churn_last", {},
             "Churn of the most recent rebuild attempt (pending cells when "
             "degraded)")
      .set(static_cast<std::int64_t>(churn));
  if (delta) {
    registry
        .counter("eppi_delta_rebuilds_total", {},
                 "Epochs produced via the incremental delta path")
        .add();
  }
}

void EpochManager::attach_store(EpochStore& store) {
  store_ = &store;
  if (store.has_sticky_state()) {
    // The recorded lineage wins: deriving noise from a *new* key would
    // rotate every sticky decision and reopen the intersection attacks.
    options_.master_key = store.sticky_state().master_key;
    options_.enable_mixing = store.sticky_state().enable_mixing;
  } else {
    store.record_sticky_state(
        {options_.master_key, options_.enable_mixing});
  }
  if (!store.lineage().empty()) {
    // Never reuse an epoch number, even one whose file was quarantined.
    epoch_ = store.lineage().back().epoch;
  }
  // Membership survives restarts through the journaled delta records:
  // replaying every intact delta's joined/left lists in lineage order
  // reproduces the retired set as of the newest epoch (full epochs never
  // change membership). Changes riding on quarantined deltas are lost with
  // the epochs themselves — consistent with recovery's rollback semantics.
  retired_.clear();
  for (const auto& rec : store.lineage()) {
    if (!rec.is_delta || !rec.file_intact) continue;
    const EpochStore::EpochDelta& delta = store.delta_record(rec.epoch);
    DeltaRequest membership;
    membership.joined.assign(delta.joined.begin(), delta.joined.end());
    membership.left.assign(delta.left.begin(), delta.left.end());
    apply_membership(membership, delta.rows);
  }
  if (const auto latest = store.latest_epoch()) {
    // The epoch *served* is the newest intact one, which can be older than
    // the newest committed id when recovery quarantined a rotted file.
    previous_ = store.load_epoch(*latest).matrix();
    has_previous_ = true;
    served_epoch_ = *latest;
    epoch_time_ = std::chrono::steady_clock::now();
    has_epoch_time_ = true;
    for (const auto& rec : store.lineage()) {
      if (rec.epoch == *latest) last_lambda_ = rec.lambda;
    }
  }
}

EpochManager::ServingStatus EpochManager::serving_status() const {
  ServingStatus status;
  status.epoch = served_epoch_;
  status.serving = has_previous_;
  status.degraded = failed_since_commit_ > 0;
  status.rebuilds_behind = failed_since_commit_;
  if (has_epoch_time_) {
    status.age_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - epoch_time_)
                             .count();
  }
  return status;
}

PpiIndex EpochManager::current_index() const {
  require(has_previous_, "EpochManager: no epoch has been built yet");
  return PpiIndex(previous_);
}

const eppi::BitMatrix& EpochManager::current_matrix() const {
  require(has_previous_, "EpochManager: no epoch has been built yet");
  return previous_;
}

EpochManager::DistributedEpochResult EpochManager::rebuild_distributed(
    const eppi::BitMatrix& truth, std::span<const double> epsilons,
    const DistributedOptions& options) {
  obs::Span span("serve.rebuild");
  span.attr("providers", truth.rows());
  span.attr("identities", truth.cols());
  span.attr("distributed", true);

  DistributedEpochResult result;
  DistributedResult built;
  try {
    built = construct_distributed(truth, epsilons, options);
  } catch (const eppi::ProtocolError& failure) {
    // Degraded mode: the rebuild aborted (a PartyFailure names the dead
    // party). Keep serving the last good epoch rather than going dark; the
    // stale index is correct for the previous network state and strictly
    // better than no locator service.
    if (!has_previous_) throw;  // nothing to fall back to
    ++failed_rebuilds_;
    ++failed_since_commit_;
    last_failure_ = failure.what();
    span.event("serve.rebuild_failed");
    obs::Registry::global()
        .counter("eppi_serving_failed_rebuilds_total", {},
                 "Distributed rebuilds that aborted into degraded serving")
        .add();
    result.index = PpiIndex(previous_);
    result.epoch = served_epoch_;
    result.degraded = true;
    result.failure = last_failure_;
    // Not zero (the old hardwired value): the stale index is behind the new
    // network state by this many known cells, which is what distinguishes a
    // degraded epoch from a genuinely quiet one on a dashboard.
    result.churn = pending_churn(truth);
    record_churn_metrics(result.churn, /*delta=*/false);
    return result;
  }

  eppi::BitMatrix published = built.index.matrix();
  zero_retired_rows(published);
  const std::size_t churn = churn_against_previous(published);
  adopt_epoch(published, built.report.lambda);
  // The distributed constructor derives β inside the MPC, so the retained
  // centralized derivation state no longer matches what is being served.
  has_last_info_ = false;
  span.attr("epoch", epoch_);
  span.attr("churn", churn);
  record_churn_metrics(churn, /*delta=*/false);
  result.epoch = epoch_;
  result.churn = churn;
  result.report = std::move(built.report);
  result.index = PpiIndex(std::move(published));
  return result;
}

EpochManager::DistributedEpochResult EpochManager::rebuild_delta_distributed(
    const eppi::BitMatrix& truth, std::span<const double> epsilons,
    const DeltaRequest& request, const DistributedOptions& options) {
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  require(epsilons.size() == n, "EpochManager: epsilon count mismatch");
  apply_membership(request, m);

  if (!has_previous_ || previous_.rows() > m || previous_.cols() > n) {
    DistributedEpochResult result = rebuild_distributed(truth, epsilons,
                                                        options);
    result.delta = DeltaStats{};
    return result;
  }

  obs::Span span("serve.rebuild_delta");
  span.attr("providers", m);
  span.attr("identities", n);
  span.attr("distributed", true);

  const bool shape_changed = previous_.rows() != m || previous_.cols() != n;

  std::vector<std::uint8_t> dirty(n, 0);
  for (const IdentityId j : request.dirty) {
    require(j < n, "EpochManager: dirty identity out of range");
    dirty[j] = 1;
  }
  for (std::size_t j = previous_.cols(); j < n; ++j) dirty[j] = 1;
  std::vector<IdentityId> dirty_ids;
  for (std::size_t j = 0; j < n; ++j) {
    if (dirty[j]) dirty_ids.push_back(static_cast<IdentityId>(j));
  }

  // The sub-run is an active-providers × dirty-identities job: retired rows
  // never participate again, and a joining party enters here — after having
  // synced the sticky master key from the manifest via attach_store on its
  // own replica.
  std::vector<ProviderId> active;
  for (std::size_t i = 0; i < m; ++i) {
    if (!(i < retired_.size() && retired_[i])) {
      active.push_back(static_cast<ProviderId>(i));
    }
  }
  require(active.size() >= 2,
          "EpochManager: delta rebuild needs at least two active providers");

  DistributedEpochResult result;
  result.delta.delta = true;
  result.delta.recomputed = dirty_ids.size();
  result.delta.spliced_rows = request.joined.size();

  DistributedResult built;
  bool ran_sub = false;
  if (!dirty_ids.empty()) {
    eppi::BitMatrix sub(active.size(), dirty_ids.size());
    for (std::size_t a = 0; a < active.size(); ++a) {
      for (std::size_t d = 0; d < dirty_ids.size(); ++d) {
        if (truth.get(active[a], dirty_ids[d])) sub.set(a, d, true);
      }
    }
    std::vector<double> sub_epsilons(dirty_ids.size());
    for (std::size_t d = 0; d < dirty_ids.size(); ++d) {
      sub_epsilons[d] = epsilons[dirty_ids[d]];
    }
    DistributedOptions sub_options = options;
    sub_options.c = std::min<std::size_t>(options.c, active.size());
    try {
      built = construct_distributed(sub, sub_epsilons, sub_options);
      ran_sub = true;
    } catch (const eppi::ProtocolError& failure) {
      ++failed_rebuilds_;
      ++failed_since_commit_;
      last_failure_ = failure.what();
      span.event("serve.rebuild_failed");
      obs::Registry::global()
          .counter("eppi_serving_failed_rebuilds_total", {},
                   "Distributed rebuilds that aborted into degraded serving")
          .add();
      result.index = PpiIndex(previous_);
      result.epoch = served_epoch_;
      result.degraded = true;
      result.failure = last_failure_;
      result.churn = pending_churn(truth);
      record_churn_metrics(result.churn, /*delta=*/true);
      return result;
    }
  }

  // Splice the recomputed columns over the previous epoch. λ only widens
  // (max of previous and sub-run) so the decoy set stays monotone across
  // partial recomputes.
  eppi::BitMatrix published(m, n);
  if (!shape_changed) {
    published = previous_;
  } else {
    for (std::size_t i = 0; i < previous_.rows(); ++i) {
      for (std::size_t j = 0; j < previous_.cols(); ++j) {
        if (previous_.get(i, j)) published.set(i, j, true);
      }
    }
  }
  std::size_t flips = 0;
  const auto write_cell = [&](std::size_t i, std::size_t j, bool bit) {
    if (published.get(i, j) != bit) {
      ++flips;
      published.set(i, j, bit);
    }
  };
  for (std::size_t p = 0; p < m; ++p) {
    if (p < retired_.size() && retired_[p]) {
      for (std::size_t j = 0; j < n; ++j) write_cell(p, j, false);
    }
  }
  if (ran_sub) {
    const eppi::BitMatrix& sub_published = built.index.matrix();
    for (std::size_t d = 0; d < dirty_ids.size(); ++d) {
      const std::size_t j = dirty_ids[d];
      for (std::size_t a = 0; a < active.size(); ++a) {
        write_cell(active[a], j, sub_published.get(a, d));
      }
      // Retired rows in a recomputed column stay zero — handled above.
    }
  }
  const std::size_t churn = shape_changed ? m * n : flips;
  const double lambda =
      std::max(last_lambda_, ran_sub ? built.report.lambda : 0.0);

  EpochStore::EpochDelta rec;
  rec.epoch = epoch_ + 1;
  rec.base_epoch = epoch_;
  rec.rows = m;
  rec.cols = n;
  rec.lambda = lambda;
  rec.joined = request.joined;
  rec.left = request.left;
  for (const IdentityId j : dirty_ids) {
    EpochStore::EpochDelta::Column col;
    col.identity = j;
    col.bits.assign((m + 7) / 8, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (published.get(i, j)) col.bits[i >> 3] |= 1u << (i & 7);
    }
    rec.col_splices.push_back(std::move(col));
  }
  rec.matrix_crc = matrix_checksum(published);
  rec.postings_crc = postings_checksum(published);
  rec.has_postings_crc = true;

  adopt_epoch(published, lambda, &rec);
  has_last_info_ = false;
  span.attr("epoch", epoch_);
  span.attr("churn", churn);
  span.attr("recomputed", dirty_ids.size());
  record_churn_metrics(churn, /*delta=*/true);

  result.epoch = epoch_;
  result.churn = churn;
  result.delta.affected_ids = std::move(dirty_ids);
  if (ran_sub) result.report = std::move(built.report);
  result.index = PpiIndex(std::move(published));
  return result;
}

}  // namespace eppi::core
