// Epoch manager: reconstruction over time without leaking through churn.
//
// The paper's index is static (§III-C) — that is what makes repeated attacks
// no stronger than a single one. Real networks change, so the index must be
// rebuilt; naive rebuilding leaks twice:
//
//  * fresh publication noise rotates between epochs, so intersecting
//    snapshots strips false positives (solved by core/sticky_publisher);
//  * fresh λ-mixing coins rotate the *decoy* set while true common
//    identities stay mixed in every epoch — intersecting the apparent-
//    common sets across epochs isolates exactly the identities the mixing
//    is meant to hide.
//
// EpochManager makes both decisions sticky: publication noise is keyed per
// provider, and the mixing coin for identity j is a fixed PRF draw compared
// against the current λ. Both decisions are *monotone* (raising β or λ only
// adds noise/decoys), so an epoch's snapshot differs from the previous one
// only where the data or the privacy requirements actually changed.
//
// Concurrency: EpochManager is the build/commit side of the serving tier
// and is single-threaded by contract — one writer at a time calls
// rebuild*/attach_store. Concurrent readers never touch it; they read the
// immutable EpochSnapshot a LocatorService publishes after each successful
// rebuild (core/epoch_snapshot.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "core/beta_policy.h"
#include "core/constructor.h"
#include "core/distributed_constructor.h"
#include "core/epoch_store.h"
#include "core/ppi_index.h"

namespace eppi::core {

class EpochManager {
 public:
  struct Options {
    BetaPolicy policy;
    bool enable_mixing = true;
    std::uint64_t master_key = 1;  // derives provider keys + mixing PRF
    // With a store attached, at most this many consecutive incremental
    // epochs are journaled as delta records before the next one is written
    // as a full index file again (bounds recovery replay chains). 0 means
    // every epoch is committed full.
    std::size_t delta_base_interval = 16;

    Options() : policy(BetaPolicy::chernoff(0.9)) {}
  };

  EpochManager() : EpochManager(Options{}) {}
  explicit EpochManager(Options options) : options_(options) {}

  // How an epoch was produced, for callers that care whether the delta path
  // actually engaged (benches, the locator service's status surface).
  struct DeltaStats {
    bool delta = false;            // false: a full rebuild ran instead
    std::size_t recomputed = 0;    // identity columns recomputed/republished
    std::size_t spliced_rows = 0;  // joined provider rows published whole
    // The identity columns actually republished (the request's dirty set
    // widened by λ-flips) — what a serving-tier snapshot splice must
    // re-invert. Empty when `delta` is false.
    std::vector<IdentityId> affected_ids;
  };

  struct EpochResult {
    PpiIndex index;
    ConstructionInfo info;
    std::uint64_t epoch = 0;
    // Cells that differ from the previous epoch's published matrix
    // (0 when data and requirements are unchanged); the full matrix size on
    // the first epoch or after a shape change.
    std::size_t churn = 0;
    DeltaStats delta;
  };

  // Builds the next epoch's index for the current network state.
  EpochResult rebuild(const eppi::BitMatrix& truth,
                      std::span<const double> epsilons);

  // Input to an incremental rebuild. Contract: `dirty` must name every
  // identity whose global frequency or ε could have changed since the
  // previous epoch — including every identity appearing in a joined or
  // leaving provider's row (the locator service derives this set from
  // provider-reported diffs). The manager re-derives β/ξ/λ only over that
  // set and widens it automatically to identities whose λ-mixing decision
  // flipped, so the published matrix is bit-identical to a full rebuild()
  // over the same truth.
  struct DeltaRequest {
    std::vector<IdentityId> dirty;
    std::vector<ProviderId> joined;  // provider rows entering this epoch
    std::vector<ProviderId> left;    // provider rows retiring this epoch
  };

  // Incremental rebuild: recomputes only the dirty identity columns and the
  // joined/left provider rows, splicing them over the previous epoch's
  // published matrix. Falls back to a full rebuild (same result, more work)
  // when there is no in-memory base to splice over — first epoch, right
  // after attach_store, or a shrinking shape. With a store attached the
  // epoch is journaled as a delta record unless the record would overflow
  // or the replay chain hit delta_base_interval, in which case a full index
  // file is committed (the published matrix is identical either way).
  EpochResult rebuild_delta(const eppi::BitMatrix& truth,
                            std::span<const double> epsilons,
                            const DeltaRequest& request);

  struct DistributedEpochResult {
    PpiIndex index;             // fresh on success; the previous epoch's
                                // index when degraded
    DistributedReport report;   // meaningful only when !degraded
    std::uint64_t epoch = 0;    // advances only on success
    // On success: as EpochResult::churn. On a degraded rebuild: the number
    // of cells the stale index is known to be behind by — true postings it
    // does not serve yet plus retired rows it still shows — so dashboards
    // can tell a quiet epoch (0 churn, fresh) from a degraded one (stale
    // with pending changes).
    std::size_t churn = 0;
    bool degraded = false;
    std::string failure;        // what() of the aborting error when degraded
    DeltaStats delta;
  };

  // Builds the next epoch via the secure distributed constructor, degrading
  // gracefully on protocol failure: if a rebuild aborts (PartyFailure or any
  // ProtocolError) and a previous epoch exists, the previous index is
  // returned with `degraded` set and the failure recorded. A failure with no
  // previous epoch to fall back to propagates.
  DistributedEpochResult rebuild_distributed(const eppi::BitMatrix& truth,
                                             std::span<const double> epsilons,
                                             const DistributedOptions& options);

  // Incremental distributed rebuild: runs SecSumShare/CountBelow only over
  // the dirty identities (an m×d submatrix job among the surviving active
  // providers) and splices the resulting columns over the previous epoch.
  // λ only ever widens (max of the previous and the sub-run's λ), so the
  // decoy set stays monotone; non-dirty columns keep their previous bits
  // until the next full rebuild. Degrades exactly like
  // rebuild_distributed — and additionally when there is no previous epoch
  // to splice over, the request falls back to a full distributed rebuild.
  DistributedEpochResult rebuild_delta_distributed(
      const eppi::BitMatrix& truth, std::span<const double> epsilons,
      const DeltaRequest& request, const DistributedOptions& options);

  // Providers currently retired (rows forced to zero in every published
  // epoch until the id rejoins). Maintained by rebuild_delta*'s
  // joined/left lists; also applied by full rebuilds.
  std::size_t retired_count() const noexcept;

  std::uint64_t epochs_built() const noexcept { return epoch_; }
  std::size_t failed_rebuilds() const noexcept { return failed_rebuilds_; }
  const std::string& last_failure() const noexcept { return last_failure_; }

  // Attaches a durable store (core/epoch_store.h) and resumes from it.
  //
  // The store's recorded sticky state WINS over the configured options: after
  // a restart the manager must derive the exact same provider noise keys and
  // mixing coins as before, even if the process was relaunched with a
  // different configured master key (re-rolling sticky randomness is the
  // cross-epoch leak this class exists to prevent). A fresh store records the
  // configured state instead. The last committed epoch (if any) is loaded so
  // serving resumes where the previous process stopped, and every subsequent
  // successful rebuild is committed durably before it takes effect.
  void attach_store(EpochStore& store);

  // Owner-name lexicon persisted alongside each full-epoch commit (omitted
  // when null), so a recovered store can republish name lookups without
  // re-running registration. The serving tier refreshes it before every
  // rebuild; the manager only forwards the pointer to the store.
  void set_commit_lexicon(std::shared_ptr<const Lexicon> lexicon) {
    commit_lexicon_ = std::move(lexicon);
  }

  // What the manager is currently serving, for staleness-aware callers.
  struct ServingStatus {
    std::uint64_t epoch = 0;      // epoch of the index being served
    bool serving = false;         // an index is available at all
    bool degraded = false;        // most recent rebuild attempt failed
    std::size_t rebuilds_behind = 0;  // consecutive failed rebuilds since
                                      // the served epoch was built
    double age_seconds = 0.0;     // time since the served epoch was built
                                  // (or restored from the store)
  };
  ServingStatus serving_status() const;

  bool serving() const noexcept { return has_previous_; }
  PpiIndex current_index() const;  // requires serving(); copies
  // The served epoch's published matrix without the PpiIndex copy — the
  // serving tier inverts it straight into a PostingIndex snapshot. The
  // reference is invalidated by the next successful rebuild/attach_store
  // (writer-side use only; readers go through LocatorService's snapshots).
  const eppi::BitMatrix& current_matrix() const;  // requires serving()

 private:
  std::uint64_t provider_key(std::size_t provider) const noexcept;
  bool sticky_mix_coin(std::size_t identity, double lambda) const noexcept;
  std::size_t churn_against_previous(const eppi::BitMatrix& published) const;
  // Commits (store attached) and starts serving `published`. When
  // `delta_rec` is non-null and the store's lineage head can base a delta
  // of that shape, the epoch is journaled as a delta record instead of a
  // full index file.
  void adopt_epoch(const eppi::BitMatrix& published, double lambda,
                   const EpochStore::EpochDelta* delta_rec = nullptr);
  void apply_membership(const DeltaRequest& request, std::size_t m);
  void zero_retired_rows(eppi::BitMatrix& published) const;
  // Cells the served index is behind by relative to `truth`: true postings
  // not yet published plus bits still shown in retired rows.
  std::size_t pending_churn(const eppi::BitMatrix& truth) const;
  void record_churn_metrics(std::size_t churn, bool delta) const;

  Options options_;
  // uint64_t to match EpochStore::EpochRecord::epoch — size_t would
  // truncate restored epoch ids on 32-bit builds and could then break the
  // monotone-lineage invariant in commit_epoch.
  std::uint64_t epoch_ = 0;         // newest *committed* epoch id (never
                                    // reused)
  std::uint64_t served_epoch_ = 0;  // epoch of previous_ — older than epoch_
                                    // when recovery quarantined newer files
  eppi::BitMatrix previous_;
  bool has_previous_ = false;
  // Per-identity derivation state of the previous epoch, the base the delta
  // path recomputes from. Only valid alongside has_previous_ when the
  // previous epoch was built in-process (attach_store restores the matrix
  // but not this, so the first rebuild after a restart runs full).
  bool has_last_info_ = false;
  std::vector<double> last_raw_;  // pre-mixing β* per identity
  ConstructionInfo last_info_;
  // retired_[p] != 0: provider p has left; its row publishes as all-zero in
  // every epoch until the same id rejoins.
  std::vector<std::uint8_t> retired_;
  double last_lambda_ = 0.0;  // λ of the currently served epoch
  std::size_t failed_rebuilds_ = 0;
  std::string last_failure_;
  EpochStore* store_ = nullptr;
  std::shared_ptr<const Lexicon> commit_lexicon_;
  std::size_t failed_since_commit_ = 0;
  bool has_epoch_time_ = false;
  std::chrono::steady_clock::time_point epoch_time_{};
};

}  // namespace eppi::core
