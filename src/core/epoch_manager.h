// Epoch manager: reconstruction over time without leaking through churn.
//
// The paper's index is static (§III-C) — that is what makes repeated attacks
// no stronger than a single one. Real networks change, so the index must be
// rebuilt; naive rebuilding leaks twice:
//
//  * fresh publication noise rotates between epochs, so intersecting
//    snapshots strips false positives (solved by core/sticky_publisher);
//  * fresh λ-mixing coins rotate the *decoy* set while true common
//    identities stay mixed in every epoch — intersecting the apparent-
//    common sets across epochs isolates exactly the identities the mixing
//    is meant to hide.
//
// EpochManager makes both decisions sticky: publication noise is keyed per
// provider, and the mixing coin for identity j is a fixed PRF draw compared
// against the current λ. Both decisions are *monotone* (raising β or λ only
// adds noise/decoys), so an epoch's snapshot differs from the previous one
// only where the data or the privacy requirements actually changed.
//
// Concurrency: EpochManager is the build/commit side of the serving tier
// and is single-threaded by contract — one writer at a time calls
// rebuild*/attach_store. Concurrent readers never touch it; they read the
// immutable EpochSnapshot a LocatorService publishes after each successful
// rebuild (core/epoch_snapshot.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "core/beta_policy.h"
#include "core/constructor.h"
#include "core/distributed_constructor.h"
#include "core/ppi_index.h"

namespace eppi::core {

class EpochStore;

class EpochManager {
 public:
  struct Options {
    BetaPolicy policy;
    bool enable_mixing = true;
    std::uint64_t master_key = 1;  // derives provider keys + mixing PRF

    Options() : policy(BetaPolicy::chernoff(0.9)) {}
  };

  EpochManager() : EpochManager(Options{}) {}
  explicit EpochManager(Options options) : options_(options) {}

  struct EpochResult {
    PpiIndex index;
    ConstructionInfo info;
    std::uint64_t epoch = 0;
    // Cells that differ from the previous epoch's published matrix
    // (0 when data and requirements are unchanged); the full matrix size on
    // the first epoch or after a shape change.
    std::size_t churn = 0;
  };

  // Builds the next epoch's index for the current network state.
  EpochResult rebuild(const eppi::BitMatrix& truth,
                      std::span<const double> epsilons);

  struct DistributedEpochResult {
    PpiIndex index;             // fresh on success; the previous epoch's
                                // index when degraded
    DistributedReport report;   // meaningful only when !degraded
    std::uint64_t epoch = 0;    // advances only on success
    std::size_t churn = 0;      // as EpochResult::churn; 0 when degraded
    // The distributed rebuild aborted (e.g. a coordinator died mid-MPC);
    // the manager keeps serving the previous epoch's index and records the
    // failure instead of propagating it.
    bool degraded = false;
    std::string failure;        // what() of the aborting error when degraded
  };

  // Builds the next epoch via the secure distributed constructor, degrading
  // gracefully on protocol failure: if a rebuild aborts (PartyFailure or any
  // ProtocolError) and a previous epoch exists, the previous index is
  // returned with `degraded` set and the failure recorded. A failure with no
  // previous epoch to fall back to propagates.
  DistributedEpochResult rebuild_distributed(const eppi::BitMatrix& truth,
                                             std::span<const double> epsilons,
                                             const DistributedOptions& options);

  std::uint64_t epochs_built() const noexcept { return epoch_; }
  std::size_t failed_rebuilds() const noexcept { return failed_rebuilds_; }
  const std::string& last_failure() const noexcept { return last_failure_; }

  // Attaches a durable store (core/epoch_store.h) and resumes from it.
  //
  // The store's recorded sticky state WINS over the configured options: after
  // a restart the manager must derive the exact same provider noise keys and
  // mixing coins as before, even if the process was relaunched with a
  // different configured master key (re-rolling sticky randomness is the
  // cross-epoch leak this class exists to prevent). A fresh store records the
  // configured state instead. The last committed epoch (if any) is loaded so
  // serving resumes where the previous process stopped, and every subsequent
  // successful rebuild is committed durably before it takes effect.
  void attach_store(EpochStore& store);

  // What the manager is currently serving, for staleness-aware callers.
  struct ServingStatus {
    std::uint64_t epoch = 0;      // epoch of the index being served
    bool serving = false;         // an index is available at all
    bool degraded = false;        // most recent rebuild attempt failed
    std::size_t rebuilds_behind = 0;  // consecutive failed rebuilds since
                                      // the served epoch was built
    double age_seconds = 0.0;     // time since the served epoch was built
                                  // (or restored from the store)
  };
  ServingStatus serving_status() const;

  bool serving() const noexcept { return has_previous_; }
  PpiIndex current_index() const;  // requires serving(); copies
  // The served epoch's published matrix without the PpiIndex copy — the
  // serving tier inverts it straight into a PostingIndex snapshot. The
  // reference is invalidated by the next successful rebuild/attach_store
  // (writer-side use only; readers go through LocatorService's snapshots).
  const eppi::BitMatrix& current_matrix() const;  // requires serving()

 private:
  std::uint64_t provider_key(std::size_t provider) const noexcept;
  bool sticky_mix_coin(std::size_t identity, double lambda) const noexcept;
  std::size_t churn_against_previous(const eppi::BitMatrix& published) const;
  void adopt_epoch(const eppi::BitMatrix& published, double lambda);

  Options options_;
  // uint64_t to match EpochStore::EpochRecord::epoch — size_t would
  // truncate restored epoch ids on 32-bit builds and could then break the
  // monotone-lineage invariant in commit_epoch.
  std::uint64_t epoch_ = 0;         // newest *committed* epoch id (never
                                    // reused)
  std::uint64_t served_epoch_ = 0;  // epoch of previous_ — older than epoch_
                                    // when recovery quarantined newer files
  eppi::BitMatrix previous_;
  bool has_previous_ = false;
  std::size_t failed_rebuilds_ = 0;
  std::string last_failure_;
  EpochStore* store_ = nullptr;
  std::size_t failed_since_commit_ = 0;
  bool has_epoch_time_ = false;
  std::chrono::steady_clock::time_point epoch_time_{};
};

}  // namespace eppi::core
