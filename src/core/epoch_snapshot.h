// Immutable serving snapshot + the lock-free publication slot (RCU-style).
//
// The paper sells PPI over searchable encryption on serving-time cost
// ("query evaluation in the PPI server is trivial", §II-A) — but a serving
// tier only realizes that if reads scale across cores and a rebuild never
// invalidates the index out from under a reader. The mechanism here is the
// classic immutable-snapshot / atomic-swap split used by high-throughput
// index servers:
//
//  * EpochSnapshot is deeply immutable once published: the posting-list
//    index, the name catalogs it was built against, and the epoch/staleness
//    labels are frozen together, so every field a reader touches is
//    consistent with every other field.
//  * SnapshotSlot is an atomically-swapped shared_ptr<const EpochSnapshot>:
//    readers acquire() a private reference and work entirely on it; the
//    writer builds the next epoch off to the side and publish()es it with
//    one pointer flip. Everything written before publish() happens-before
//    everything read after acquire(), which is what makes the snapshot's
//    plain (non-atomic) fields safely readable.
//  * Reclamation is the shared_ptr refcount: an old epoch stays alive until
//    the last in-flight reader drops its reference — no epochs are freed
//    under a reader, no reader ever waits for a rebuild (grace periods are
//    implicit, which is the RCU part).
//
// Why not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic guards its
// plain pointer field with a lock bit embedded in the control-block word,
// but load() RELEASES that lock with a relaxed fetch_sub — so a reader's
// plain read of the pointer has no happens-before edge to a later store()'s
// plain write. ThreadSanitizer reports exactly that pair on our
// `concurrency` gate (and the report is defensible under the C++ memory
// model: a relaxed RMW heads no release sequence). The slot below is the
// same idea implemented portably: two shared_ptr buffers written only by
// the single writer, a seq_cst active-index flip, and per-buffer reader pin
// counts so the writer never overwrites a buffer mid-copy. The seq_cst
// pin/recheck on the reader and flip/drain on the writer form the classic
// store-buffering (Dekker) pair: either the writer observes the pin and
// waits, or the reader observes the flip and retries — both observing
// neither is impossible in the seq_cst total order.
//
// Concurrency contract: any number of concurrent readers, ONE writer at a
// time (rebuilds are serialized by the caller — LocatorService's mutation
// API is single-writer, like the rest of the library). Readers retry only
// if a flip lands inside their two-instruction pin window and never block
// on the writer; the writer drains at most the handful of readers caught
// mid-copy in the buffer it is about to reuse.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/lexicon.h"
#include "core/posting_index.h"

namespace eppi::core {

struct EpochSnapshot {
  // The served index, in the O(answer) posting-list form. Shared (not
  // owned) so a staleness-only republish — same epoch, new degraded
  // accounting — costs two refcounts, not an index copy.
  std::shared_ptr<const PostingIndex> postings;

  // The catalogs the served epoch was built against. Readers resolve names
  // through these frozen copies, never through the live (writer-mutable)
  // registration maps: an owner delegated after this epoch was built is
  // simply "unknown" to it, exactly as it is unknown to the index itself.
  // The owner catalog is the front-coded Lexicon (core/lexicon.h), not a
  // hash map — at millions of owners the map's per-node overhead would
  // dwarf the compressed index it sits next to.
  std::shared_ptr<const Lexicon> owners;
  std::shared_ptr<const std::vector<std::string>> provider_names;

  // Staleness labels, frozen with the data they describe (mirrors
  // EpochManager::ServingStatus at publication time).
  std::uint64_t epoch = 0;
  bool degraded = false;
  std::size_t rebuilds_behind = 0;
  std::chrono::steady_clock::time_point built_at{};

  double age_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         built_at)
        .count();
  }
};

class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  // Reader side: pin the active buffer, copy its shared_ptr, unpin.
  // Returns nullptr before the first publication.
  std::shared_ptr<const EpochSnapshot> acquire() const noexcept {
    for (;;) {
      const unsigned k = active_.load(std::memory_order_seq_cst);
      pins_[k].fetch_add(1, std::memory_order_seq_cst);
      if (active_.load(std::memory_order_seq_cst) == k) {
        // The pin is visible, so the writer cannot reuse buffer k until we
        // unpin; if the buffer was republished since the first load we
        // simply copy the NEWER snapshot (the flip's seq_cst store
        // happens-before this read of the recheck that observed it).
        std::shared_ptr<const EpochSnapshot> snap = buffers_[k];
        pins_[k].fetch_sub(1, std::memory_order_release);
        return snap;
      }
      // A flip landed inside the pin window: unpin the stale buffer and
      // re-read the index. At most one retry per concurrent publish.
      pins_[k].fetch_sub(1, std::memory_order_release);
    }
  }

  // Writer side (single writer): stage the next epoch in the inactive
  // buffer, then commit with one index flip. Drains readers still copying
  // out of the buffer being reused — a wait bounded by a shared_ptr copy.
  void publish(std::shared_ptr<const EpochSnapshot> next) noexcept {
    const unsigned other = active_.load(std::memory_order_relaxed) ^ 1u;
    while (pins_[other].load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    // No pinned readers and any future pin rechecks the active index, so
    // this plain write cannot race; the release half of the seq_cst flip
    // publishes it to every reader that observes the new index.
    buffers_[other] = std::move(next);
    active_.store(other, std::memory_order_seq_cst);
  }

 private:
  // Buffers are written ONLY by the writer, only while unpinned+inactive;
  // readers copy (never mutate) them, which shared_ptr allows concurrently.
  std::shared_ptr<const EpochSnapshot> buffers_[2];
  std::atomic<unsigned> active_{0};
  mutable std::atomic<std::uint64_t> pins_[2]{};
};

}  // namespace eppi::core
