#include "core/epoch_store.h"

#include <algorithm>
#include <bit>
#include <set>

#include "common/crc32c.h"
#include "common/error.h"
#include "common/serialize.h"
#include "core/index_io.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace eppi::core {

namespace {

constexpr char kManifestMagic[8] = {'e', 'p', 'p', 'i', 'm', 'a', 'n', '1'};
constexpr char kManifestName[] = "MANIFEST";
constexpr char kQuarantineDir[] = "quarantine";

constexpr std::uint8_t kRecordSticky = 1;
constexpr std::uint8_t kRecordEpoch = 2;
constexpr std::uint8_t kRecordDelta = 3;    // pins replay to matrix_checksum
constexpr std::uint8_t kRecordDeltaV2 = 4;  // pins replay to postings_checksum

// Journal records cannot plausibly exceed this; a larger length field is a
// torn/corrupt tail, not a record.
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

std::string epoch_file_name(std::uint64_t epoch) {
  return "epoch-" + std::to_string(epoch) + ".idx";
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t take_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
  }
  return v;
}

bool manifest_magic_ok(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= sizeof(kManifestMagic) &&
         std::equal(kManifestMagic, kManifestMagic + sizeof(kManifestMagic),
                    bytes.begin(), [](char c, std::uint8_t b) {
                      return static_cast<std::uint8_t>(c) == b;
                    });
}

std::vector<std::uint8_t> delta_payload(const EpochStore::EpochDelta& d) {
  BinaryWriter w;
  // Both delta record generations share one layout; the type byte decides
  // whether the u32 after λ is a matrix_checksum (type 3, legacy) or a
  // postings_checksum (type 4). Old readers skip type 4 as unknown rather
  // than misinterpreting the checksum.
  w.write_u8(d.has_postings_crc ? kRecordDeltaV2 : kRecordDelta);
  w.write_u64(d.epoch);
  w.write_u64(d.base_epoch);
  w.write_u64(d.rows);
  w.write_u64(d.cols);
  w.write_u64(std::bit_cast<std::uint64_t>(d.lambda));
  w.write_u32(d.has_postings_crc ? d.postings_crc : d.matrix_crc);
  w.write_varint(d.joined.size());
  for (const std::uint32_t p : d.joined) w.write_u32(p);
  w.write_varint(d.left.size());
  for (const std::uint32_t p : d.left) w.write_u32(p);
  w.write_varint(d.row_splices.size());
  for (const auto& r : d.row_splices) {
    w.write_u32(r.provider);
    w.write_bytes(r.bits);
  }
  w.write_varint(d.col_splices.size());
  for (const auto& c : d.col_splices) {
    w.write_u32(c.identity);
    w.write_bytes(c.bits);
  }
  return w.take();
}

// Inverse of delta_payload; the leading type byte is already consumed and
// `postings_pinned` says which generation it named.
// Throws SerializeError on truncation (the caller treats it as torn tail).
EpochStore::EpochDelta read_delta(BinaryReader& r, bool postings_pinned) {
  EpochStore::EpochDelta d;
  d.epoch = r.read_u64();
  d.base_epoch = r.read_u64();
  d.rows = r.read_u64();
  d.cols = r.read_u64();
  d.lambda = std::bit_cast<double>(r.read_u64());
  const std::uint32_t crc = r.read_u32();
  d.has_postings_crc = postings_pinned;
  (postings_pinned ? d.postings_crc : d.matrix_crc) = crc;
  // Each count is validated against the bytes actually left before any
  // allocation: an implausible count is a malformed record, not an OOM.
  const auto checked_count = [&r](std::size_t per_element) {
    const std::uint64_t n = r.read_varint();
    if (n > r.remaining() / per_element) {
      throw SerializeError("delta record count exceeds payload");
    }
    return static_cast<std::size_t>(n);
  };
  d.joined.resize(checked_count(4));
  for (auto& p : d.joined) p = r.read_u32();
  d.left.resize(checked_count(4));
  for (auto& p : d.left) p = r.read_u32();
  d.row_splices.resize(checked_count(5));  // u32 id + ≥1-byte length prefix
  for (auto& row : d.row_splices) {
    row.provider = r.read_u32();
    row.bits = r.read_bytes();
  }
  d.col_splices.resize(checked_count(5));
  for (auto& col : d.col_splices) {
    col.identity = r.read_u32();
    col.bits = r.read_bytes();
  }
  return d;
}

// Whether a replayed result reaches the checksum its delta record pinned —
// postings_checksum for type-4 records, matrix_checksum for legacy type 3.
// Either way the verification runs in posting space.
bool delta_matches(const PostingIndex& next,
                   const EpochStore::EpochDelta& d) {
  return d.has_postings_crc ? postings_checksum(next) == d.postings_crc
                            : matrix_checksum(next) == d.matrix_crc;
}

// Result of a read-only journal scan, shared by recovery and fsck.
struct ManifestScan {
  std::optional<EpochStore::StickyState> sticky;
  bool conflicting_sticky = false;
  std::vector<EpochStore::EpochRecord> epochs;
  std::map<std::uint64_t, EpochStore::EpochDelta> deltas;
  std::size_t valid_prefix = 0;  // bytes up to the last good record
  bool torn_tail = false;
  std::vector<std::string> notes;
};

ManifestScan scan_manifest(std::span<const std::uint8_t> bytes) {
  ManifestScan scan;
  std::size_t pos = sizeof(kManifestMagic);
  scan.valid_prefix = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      scan.torn_tail = true;
      scan.notes.push_back("torn journal tail: short frame header");
      break;
    }
    const std::uint32_t len = take_u32(bytes, pos);
    const std::uint32_t want_crc = crc32c_unmask(take_u32(bytes, pos + 4));
    if (len > kMaxRecordBytes || bytes.size() - pos - 8 < len) {
      scan.torn_tail = true;
      scan.notes.push_back("torn journal tail: short or implausible record");
      break;
    }
    const auto payload = bytes.subspan(pos + 8, len);
    if (crc32c(payload) != want_crc) {
      scan.torn_tail = true;
      scan.notes.push_back("torn journal tail: record checksum mismatch");
      break;
    }
    try {
      BinaryReader r(payload);
      const std::uint8_t type = r.read_u8();
      if (type == kRecordSticky) {
        EpochStore::StickyState state;
        state.master_key = r.read_u64();
        state.enable_mixing = r.read_u8() != 0;
        if (!scan.sticky) {
          scan.sticky = state;
        } else if (*scan.sticky != state) {
          // First record wins; a differing duplicate is recorded for fsck.
          scan.conflicting_sticky = true;
          scan.notes.push_back(
              "conflicting sticky-state record ignored (first wins)");
        }
      } else if (type == kRecordEpoch) {
        EpochStore::EpochRecord rec;
        rec.epoch = r.read_u64();
        const auto name = r.read_bytes();
        rec.file.assign(name.begin(), name.end());
        rec.rows = r.read_u64();
        rec.cols = r.read_u64();
        rec.lambda = std::bit_cast<double>(r.read_u64());
        if (!scan.epochs.empty() && rec.epoch <= scan.epochs.back().epoch) {
          scan.notes.push_back("non-monotone epoch record " +
                               std::to_string(rec.epoch) + " skipped");
        } else {
          scan.epochs.push_back(std::move(rec));
        }
      } else if (type == kRecordDelta || type == kRecordDeltaV2) {
        EpochStore::EpochDelta delta = read_delta(r, type == kRecordDeltaV2);
        EpochStore::EpochRecord rec;
        rec.epoch = delta.epoch;
        rec.rows = delta.rows;
        rec.cols = delta.cols;
        rec.lambda = delta.lambda;
        rec.is_delta = true;
        rec.base_epoch = delta.base_epoch;
        if (!scan.epochs.empty() && rec.epoch <= scan.epochs.back().epoch) {
          scan.notes.push_back("non-monotone delta record " +
                               std::to_string(rec.epoch) + " skipped");
        } else {
          scan.epochs.push_back(std::move(rec));
          scan.deltas.emplace(delta.epoch, std::move(delta));
        }
      }
      // Unknown record types are skipped (forward compatibility); their CRC
      // already proved they were written whole.
    } catch (const SerializeError&) {
      scan.torn_tail = true;
      scan.notes.push_back("malformed journal record; truncating here");
      break;
    }
    pos += 8 + len;
    scan.valid_prefix = pos;
  }
  return scan;
}

std::vector<std::uint8_t> frame_record(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32c_mask(crc32c(payload)));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> sticky_payload(const EpochStore::StickyState& s) {
  BinaryWriter w;
  w.write_u8(kRecordSticky);
  w.write_u64(s.master_key);
  w.write_u8(s.enable_mixing ? 1 : 0);
  return w.take();
}

std::vector<std::uint8_t> epoch_payload(const EpochStore::EpochRecord& r) {
  BinaryWriter w;
  w.write_u8(kRecordEpoch);
  w.write_u64(r.epoch);
  w.write_bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(r.file.data()), r.file.size()));
  w.write_u64(r.rows);
  w.write_u64(r.cols);
  w.write_u64(std::bit_cast<std::uint64_t>(r.lambda));
  return w.take();
}

}  // namespace

EpochStore::EpochStore(storage::Vfs& vfs, std::string dir)
    : vfs_(vfs), dir_(std::move(dir)) {
  recover();
}

std::string EpochStore::path_of(const std::string& name) const {
  return dir_ + "/" + name;
}

void EpochStore::quarantine(const std::string& name, const std::string& why) {
  const std::string qdir = path_of(kQuarantineDir);
  vfs_.make_dir(qdir);
  std::string target = qdir + "/" + name;
  for (int i = 1; vfs_.exists(target); ++i) {
    target = qdir + "/" + name + "." + std::to_string(i);
  }
  vfs_.rename_file(path_of(name), target);
  vfs_.fsync_dir(qdir);
  vfs_.fsync_dir(dir_);
  ++report_.quarantined;
  obs::Registry::global()
      .counter("eppi_store_quarantined_total", {},
               "Store files moved aside as corrupt or orphaned")
      .add();
  report_.notes.push_back("quarantined " + name + ": " + why);
}

void EpochStore::append_record(std::span<const std::uint8_t> payload) {
  if (journal_dirty_) {
    throw storage::StorageError(
        "epoch store journal has an unrepaired torn tail; reopen the store "
        "to recover before appending");
  }
  const std::vector<std::uint8_t> frame = frame_record(payload);
  try {
    storage::durable_append(vfs_, path_of(kManifestName), frame);
  } catch (const storage::StorageError&) {
    // The append may have landed partially (ENOSPC mid-write, fsync
    // failure), leaving torn bytes at the tail. A later append after that
    // garbage would make the *next* commit unreadable at recovery, so cut
    // the journal back to the last known-good record boundary now.
    try {
      const auto bytes = vfs_.read_file(path_of(kManifestName));
      if (bytes.size() > journal_len_) {
        storage::atomic_write_file(
            vfs_, path_of(kManifestName),
            std::span(bytes).subspan(0, journal_len_));
      }
    } catch (const storage::StorageError&) {
      // Rollback itself failed; refuse further appends until reopened.
      journal_dirty_ = true;
    }
    throw;
  }
  journal_len_ += frame.size();
}

void EpochStore::recover() {
  obs::Span span("store.recover");
  vfs_.make_dir(dir_);
  const std::string manifest = path_of(kManifestName);

  if (!vfs_.exists(manifest)) {
    // Fresh store (or a crash before the manifest became durable — in which
    // case nothing else was either). Initialize atomically so the manifest
    // entry itself can never be torn.
    if (vfs_.exists(manifest + std::string(".tmp"))) {
      quarantine(std::string(kManifestName) + ".tmp",
                 "crash during store initialization");
    }
    const std::vector<std::uint8_t> magic(kManifestMagic,
                                          kManifestMagic +
                                              sizeof(kManifestMagic));
    storage::atomic_write_file(vfs_, manifest, magic);
    report_.notes.push_back("initialized empty store");
  }

  const auto bytes = vfs_.read_file(manifest);
  if (!manifest_magic_ok(bytes)) {
    // Not a crash artifact (initialization is atomic): the journal header
    // itself is damaged, and with it the sticky-key lineage. Refuse to
    // guess — re-rolling sticky keys silently would be a privacy violation.
    throw storage::StorageError(
        "epoch store manifest corrupt (bad magic): " + manifest);
  }

  ManifestScan scan = scan_manifest(bytes);
  for (auto& note : scan.notes) report_.notes.push_back(std::move(note));
  if (scan.torn_tail) {
    // Physically cut the torn tail so future appends start at a clean
    // record boundary (an append after garbage would be unreadable).
    storage::atomic_write_file(
        vfs_, manifest,
        std::span(bytes).subspan(0, scan.valid_prefix));
    report_.manifest_truncated = true;
    span.event("store.truncate_tail");
    obs::Registry::global()
        .counter("eppi_store_truncations_total", {},
                 "Torn journal tails cut back to a record boundary")
        .add();
  }
  journal_len_ = scan.valid_prefix;
  journal_dirty_ = false;
  sticky_ = scan.sticky;
  epochs_ = std::move(scan.epochs);
  deltas_ = std::move(scan.deltas);

  // Validate every referenced index file; quarantine what fails checksums.
  // Delta records own no file — they are validated by the replay pass below.
  std::set<std::string> referenced{kManifestName};
  for (auto& rec : epochs_) {
    if (rec.is_delta) continue;
    referenced.insert(rec.file);
    if (!vfs_.exists(path_of(rec.file))) {
      report_.notes.push_back("epoch " + std::to_string(rec.epoch) +
                              ": index file missing (" + rec.file + ")");
      continue;
    }
    const auto idx_bytes = vfs_.read_file(path_of(rec.file));
    const IndexValidation v = validate_index(idx_bytes);
    if (!v.ok) {
      std::string sections;
      for (const auto& c : v.sections) {
        if (!c.ok) {
          sections += std::string(sections.empty() ? "" : ", ") +
                      to_string(c.section) + ": " + c.detail;
        }
      }
      quarantine(rec.file, sections);
      continue;
    }
    const IndexShape shape = index_shape(idx_bytes);
    if (shape.rows != rec.rows || shape.cols != rec.cols) {
      quarantine(rec.file, "shape differs from journal record");
      continue;
    }
    rec.file_intact = true;
  }

  // Replay pass: walk the lineage once, carrying the current replayed
  // postings forward, and mark each delta intact only if its base is the
  // immediately preceding replayable epoch AND the replay matches the
  // record's checksum. The whole pass runs in posting space — at a
  // million-owner shape the dense matrix would not fit the recovery budget.
  // An orphaned delta (base missing/quarantined, checksum mismatch) has its
  // payload dumped to quarantine/ for post-mortems — the journal itself is
  // never rewritten — and breaks the chain until the next intact full epoch.
  std::optional<PostingIndex> replayed;
  std::uint64_t replayed_epoch = 0;
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    EpochRecord& rec = epochs_[i];
    if (!rec.is_delta) {
      replayed.reset();
      // Only load the postings if a delta actually builds on them.
      const bool needed =
          i + 1 < epochs_.size() && epochs_[i + 1].is_delta;
      if (rec.file_intact && needed) {
        replayed =
            load_postings_bytes(vfs_.read_file(path_of(rec.file))).postings;
        replayed_epoch = rec.epoch;
      }
      continue;
    }
    const auto it = deltas_.find(rec.epoch);
    if (it == deltas_.end()) {  // unreachable: scan inserts both together
      replayed.reset();
      continue;
    }
    std::string why;
    if (!replayed || replayed_epoch != rec.base_epoch) {
      why = "base epoch " + std::to_string(rec.base_epoch) +
            " is not replayable";
    } else {
      try {
        PostingIndex next = apply_delta_postings(*replayed, it->second);
        if (!delta_matches(next, it->second)) {
          why = "replayed matrix checksum mismatch";
        } else {
          rec.file_intact = true;
          replayed = std::move(next);
          replayed_epoch = rec.epoch;
        }
      } catch (const ConfigError& err) {
        why = err.what();
      }
    }
    if (!rec.file_intact) {
      // Deterministic name: repeated recoveries overwrite rather than pile
      // up copies (the journal record that spawns this never goes away).
      const std::string qdir = path_of(kQuarantineDir);
      vfs_.make_dir(qdir);
      const std::string qname =
          std::string("delta-") + std::to_string(rec.epoch) + ".rec";
      storage::atomic_write_file(vfs_, qdir + "/" + qname,
                                 delta_payload(it->second));
      ++report_.quarantined;
      obs::Registry::global()
          .counter("eppi_store_quarantined_total", {},
                   "Store files moved aside as corrupt or orphaned")
          .add();
      report_.notes.push_back("quarantined " + qname + ": orphaned delta (" +
                              why + ")");
      deltas_.erase(it);
      replayed.reset();
    }
  }

  // Orphans: crash artifacts (a .tmp that never got renamed, an index file
  // whose commit record never landed). Quarantined, never deleted.
  for (const auto& name : vfs_.list_dir(dir_)) {
    if (referenced.count(name)) continue;
    if (name.ends_with(".tmp") || name.ends_with(".idx")) {
      quarantine(name, "not referenced by the journal");
    } else {
      report_.notes.push_back("ignoring unknown file " + name);
    }
  }

  span.attr("journal_bytes", journal_len_);
  span.attr("epochs", epochs_.size());
  span.attr("quarantined", report_.quarantined);
  span.attr("truncated", report_.manifest_truncated);
}

const EpochStore::StickyState& EpochStore::sticky_state() const {
  require(sticky_.has_value(), "EpochStore: no sticky state recorded");
  return *sticky_;
}

void EpochStore::record_sticky_state(const StickyState& state) {
  if (sticky_) {
    require(*sticky_ == state,
            "EpochStore: refusing to replace the recorded sticky state — "
            "rotating sticky keys re-enables cross-epoch intersection");
    return;
  }
  append_record(sticky_payload(state));
  sticky_ = state;
}

std::vector<double> EpochStore::lambda_history() const {
  std::vector<double> history;
  history.reserve(epochs_.size());
  for (const auto& rec : epochs_) history.push_back(rec.lambda);
  return history;
}

std::optional<std::uint64_t> EpochStore::latest_epoch() const {
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if (it->file_intact) return it->epoch;
  }
  return std::nullopt;
}

LoadedIndex EpochStore::load_epoch_postings(std::uint64_t epoch) const {
  auto it = std::find_if(
      epochs_.begin(), epochs_.end(),
      [&](const EpochRecord& r) { return r.epoch == epoch; });
  require(it != epochs_.end(), "EpochStore: unknown epoch " +
                                   std::to_string(epoch));
  // Walk a delta epoch back to the nearest full epoch, then replay forward.
  std::vector<const EpochDelta*> chain;
  while (it->is_delta) {
    require(it->file_intact,
            "EpochStore: epoch " + std::to_string(it->epoch) +
                " is an orphaned delta");
    chain.push_back(&deltas_.at(it->epoch));
    const std::uint64_t base = it->base_epoch;
    it = std::find_if(epochs_.begin(), epochs_.end(),
                      [&](const EpochRecord& r) { return r.epoch == base; });
    require(it != epochs_.end(),
            "EpochStore: delta chain references unknown epoch " +
                std::to_string(base));
  }
  LoadedIndex loaded = load_postings_bytes(vfs_.read_file(path_of(it->file)));
  if (loaded.postings.providers() != it->rows ||
      loaded.postings.identities() != it->cols) {
    throw CorruptIndexError(IndexSection::kHeader,
                            "epoch file shape differs from journal record");
  }
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    loaded.postings = apply_delta_postings(loaded.postings, **rit);
    if (!delta_matches(loaded.postings, **rit)) {
      throw CorruptIndexError(
          IndexSection::kPayload,
          "delta replay checksum mismatch at epoch " +
              std::to_string((*rit)->epoch));
    }
  }
  return loaded;
}

PpiIndex EpochStore::load_epoch(std::uint64_t epoch) const {
  return load_epoch_postings(epoch).postings.to_matrix_index();
}

void EpochStore::commit_epoch(std::uint64_t epoch, const PostingIndex& index,
                              double lambda, const Lexicon* lexicon) {
  require(epochs_.empty() || epoch > epochs_.back().epoch,
          "EpochStore: epoch must advance the lineage");
  EpochRecord rec;
  rec.epoch = epoch;
  rec.file = epoch_file_name(epoch);
  rec.rows = index.providers();
  rec.cols = index.identities();
  rec.lambda = lambda;
  rec.file_intact = true;

  obs::Span span("store.commit");
  span.attr("epoch", epoch);
  span.attr("rows", rec.rows);
  span.attr("cols", rec.cols);

  // Index first, journal second: the record must never reference a file
  // that is not fully durable.
  const auto bytes = save_index_v3_bytes(index, lexicon);
  span.attr("bytes", bytes.size());
  storage::atomic_write_file(vfs_, path_of(rec.file), bytes);
  append_record(epoch_payload(rec));
  epochs_.push_back(std::move(rec));
  obs::Registry::global()
      .counter("eppi_store_commits_total", {},
               "Epoch indexes committed to the durable store")
      .add();
}

void EpochStore::commit_epoch(std::uint64_t epoch, const PpiIndex& index,
                              double lambda) {
  commit_epoch(epoch, PostingIndex(index), lambda, nullptr);
}

void EpochStore::commit_delta(const EpochDelta& delta) {
  require(!epochs_.empty() && epochs_.back().epoch == delta.base_epoch,
          "EpochStore: delta base must be the lineage head");
  require(epochs_.back().file_intact,
          "EpochStore: delta base epoch " + std::to_string(delta.base_epoch) +
              " is not loadable; commit a full epoch instead");
  require(delta.epoch > delta.base_epoch,
          "EpochStore: epoch must advance the lineage");
  require(delta.rows >= epochs_.back().rows &&
              delta.cols >= epochs_.back().cols,
          "EpochStore: a delta may not shrink the matrix");
  const std::size_t row_bytes = (delta.cols + 7) / 8;
  const std::size_t col_bytes = (delta.rows + 7) / 8;
  for (const auto& r : delta.row_splices) {
    require(r.provider < delta.rows && r.bits.size() == row_bytes,
            "EpochStore: malformed row splice in delta");
  }
  for (const auto& c : delta.col_splices) {
    require(c.identity < delta.cols && c.bits.size() == col_bytes,
            "EpochStore: malformed column splice in delta");
  }
  for (const std::uint32_t p : delta.left) {
    require(p < delta.rows, "EpochStore: delta retires an unknown provider");
  }
  const auto payload = delta_payload(delta);
  require(payload.size() <= kMaxRecordBytes,
          "EpochStore: delta record exceeds the journal record bound; "
          "commit a full epoch instead");

  obs::Span span("store.commit_delta");
  span.attr("epoch", delta.epoch);
  span.attr("base_epoch", delta.base_epoch);
  span.attr("bytes", payload.size());
  span.attr("col_splices", delta.col_splices.size());
  span.attr("row_splices", delta.row_splices.size());

  append_record(payload);
  EpochRecord rec;
  rec.epoch = delta.epoch;
  rec.rows = delta.rows;
  rec.cols = delta.cols;
  rec.lambda = delta.lambda;
  rec.file_intact = true;
  rec.is_delta = true;
  rec.base_epoch = delta.base_epoch;
  epochs_.push_back(std::move(rec));
  deltas_[delta.epoch] = delta;
  obs::Registry::global()
      .counter("eppi_store_delta_commits_total", {},
               "Incremental epochs committed as journal-only delta records")
      .add();
}

bool EpochStore::delta_overflows(const EpochDelta& delta) {
  return delta_payload(delta).size() > kMaxRecordBytes;
}

const EpochStore::EpochDelta& EpochStore::delta_record(
    std::uint64_t epoch) const {
  const auto it = deltas_.find(epoch);
  require(it != deltas_.end(),
          "EpochStore: no delta record for epoch " + std::to_string(epoch));
  return it->second;
}

std::size_t EpochStore::deltas_since_full() const {
  std::size_t n = 0;
  for (auto it = epochs_.rbegin(); it != epochs_.rend() && it->is_delta; ++it) {
    ++n;
  }
  return n;
}

std::uint32_t matrix_checksum(const eppi::BitMatrix& matrix) {
  BinaryWriter w;
  w.write_u64(matrix.rows());
  w.write_u64(matrix.cols());
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::uint64_t* words = matrix.row_words(i);
    for (std::size_t k = 0; k < matrix.words_per_row(); ++k) {
      w.write_u64(words[k]);
    }
  }
  return crc32c(w.buffer());
}

eppi::BitMatrix apply_delta(const eppi::BitMatrix& base,
                            const EpochStore::EpochDelta& delta) {
  require(delta.rows >= base.rows() && delta.cols >= base.cols(),
          "apply_delta: delta shrinks the matrix");
  eppi::BitMatrix next(delta.rows, delta.cols);
  if (delta.rows == base.rows() && delta.cols == base.cols()) {
    next = base;
  } else {
    // Shape grew: re-seat the surviving bits (sparse walk via row words).
    for (std::size_t i = 0; i < base.rows(); ++i) {
      const std::uint64_t* words = base.row_words(i);
      for (std::size_t k = 0; k < base.words_per_row(); ++k) {
        std::uint64_t word = words[k];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          word &= word - 1;
          next.set(i, k * 64 + static_cast<std::size_t>(bit), true);
        }
      }
    }
  }
  // Covered sections carry FINAL values, so the write order below never
  // changes the result: a cell touched twice receives the same bit twice.
  const std::size_t row_bytes = (delta.cols + 7) / 8;
  const std::size_t col_bytes = (delta.rows + 7) / 8;
  for (const std::uint32_t p : delta.left) {
    require(p < delta.rows, "apply_delta: retired row out of range");
    for (std::size_t j = 0; j < delta.cols; ++j) next.set(p, j, false);
  }
  for (const auto& r : delta.row_splices) {
    require(r.provider < delta.rows, "apply_delta: row splice out of range");
    require(r.bits.size() == row_bytes,
            "apply_delta: row splice length mismatch");
    for (std::size_t j = 0; j < delta.cols; ++j) {
      next.set(r.provider, j, (r.bits[j >> 3] >> (j & 7)) & 1);
    }
  }
  for (const auto& c : delta.col_splices) {
    require(c.identity < delta.cols, "apply_delta: column splice out of range");
    require(c.bits.size() == col_bytes,
            "apply_delta: column splice length mismatch");
    for (std::size_t i = 0; i < delta.rows; ++i) {
      next.set(i, c.identity, (c.bits[i >> 3] >> (i & 7)) & 1);
    }
  }
  return next;
}

std::uint32_t matrix_checksum(const PostingIndex& postings) {
  const std::size_t rows = postings.providers();
  const std::size_t cols = postings.identities();
  // Transpose to per-provider identity lists — O(set bits), not O(m·n).
  // Identities arrive in ascending order, so each list comes out sorted.
  std::vector<std::vector<IdentityId>> by_provider(rows);
  std::vector<ProviderId> list;
  for (std::size_t j = 0; j < cols; ++j) {
    postings.query_into(static_cast<IdentityId>(j), list);
    for (const ProviderId p : list) {
      by_provider[p].push_back(static_cast<IdentityId>(j));
    }
  }
  // Stream exactly the bytes matrix_checksum(BitMatrix) hashes — u64 LE
  // shape then packed row words — reusing ONE row's worth of buffer.
  BinaryWriter header;
  header.write_u64(rows);
  header.write_u64(cols);
  std::uint32_t crc = crc32c(header.buffer());
  const std::size_t words = (cols + 63) / 64;
  std::vector<std::uint64_t> row(words);
  std::vector<std::uint8_t> bytes(words * 8);
  for (std::size_t i = 0; i < rows; ++i) {
    std::fill(row.begin(), row.end(), std::uint64_t{0});
    for (const IdentityId j : by_provider[i]) {
      row[j >> 6] |= std::uint64_t{1} << (j & 63);
    }
    for (std::size_t k = 0; k < words; ++k) {
      for (int b = 0; b < 8; ++b) {
        bytes[k * 8 + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(row[k] >> (8 * b));
      }
    }
    crc = crc32c(bytes, crc);
  }
  return crc;
}

namespace {

// Shared tail of the two postings_checksum overloads: hash the u64 LE shape,
// then per identity a u32 count followed by the sorted u32 provider ids.
// Chunked per column so a million-identity index never builds one giant
// contiguous hash buffer.
template <typename ColumnFn>
std::uint32_t postings_checksum_stream(std::size_t rows, std::size_t cols,
                                       ColumnFn&& column_of) {
  BinaryWriter header;
  header.write_u64(rows);
  header.write_u64(cols);
  std::uint32_t crc = crc32c(header.buffer());
  std::vector<ProviderId> list;
  std::vector<std::uint8_t> col;
  const auto put = [&col](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      col.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  };
  for (std::size_t j = 0; j < cols; ++j) {
    column_of(j, list);
    col.clear();
    put(static_cast<std::uint32_t>(list.size()));
    for (const ProviderId p : list) put(p);
    crc = crc32c(col, crc);
  }
  return crc;
}

}  // namespace

std::uint32_t postings_checksum(const eppi::BitMatrix& matrix) {
  return postings_checksum_stream(
      matrix.rows(), matrix.cols(),
      [&](std::size_t j, std::vector<ProviderId>& out) {
        out.clear();
        for (std::size_t i = 0; i < matrix.rows(); ++i) {
          if (matrix.get(i, j)) out.push_back(static_cast<ProviderId>(i));
        }
      });
}

std::uint32_t postings_checksum(const PostingIndex& postings) {
  return postings_checksum_stream(
      postings.providers(), postings.identities(),
      [&](std::size_t j, std::vector<ProviderId>& out) {
        postings.query_into(static_cast<IdentityId>(j), out);
      });
}

PostingIndex apply_delta_postings(const PostingIndex& base,
                                  const EpochStore::EpochDelta& delta) {
  require(delta.rows >= base.providers() && delta.cols >= base.identities(),
          "apply_delta: delta shrinks the matrix");
  const std::size_t row_bytes = (delta.cols + 7) / 8;
  const std::size_t col_bytes = (delta.rows + 7) / 8;
  // Decode the base lists into the result shape. New identity columns start
  // empty; new provider rows contribute nothing until a splice grafts them.
  std::vector<std::vector<ProviderId>> lists(delta.cols);
  {
    std::vector<ProviderId> buf;
    for (std::size_t j = 0; j < base.identities(); ++j) {
      base.query_into(static_cast<IdentityId>(j), buf);
      lists[j].assign(buf.begin(), buf.end());
    }
  }
  // Providers whose base rows are replaced wholesale — retired (zeroed) or
  // re-rowed by a splice — are erased from every list in ONE pass, which is
  // what makes this the posting-space mirror of apply_delta's row writes.
  std::vector<bool> dropped(delta.rows, false);
  bool any_dropped = false;
  for (const std::uint32_t p : delta.left) {
    require(p < delta.rows, "apply_delta: retired row out of range");
    dropped[p] = true;
    any_dropped = true;
  }
  for (const auto& r : delta.row_splices) {
    require(r.provider < delta.rows, "apply_delta: row splice out of range");
    require(r.bits.size() == row_bytes,
            "apply_delta: row splice length mismatch");
    dropped[r.provider] = true;
    any_dropped = true;
  }
  if (any_dropped) {
    for (auto& l : lists) {
      std::erase_if(l, [&](ProviderId p) { return dropped[p]; });
    }
  }
  // Graft the spliced rows back in; the dropped-erase above guarantees no
  // duplicate, and the sorted insert keeps each list ordered.
  for (const auto& r : delta.row_splices) {
    for (std::size_t j = 0; j < delta.cols; ++j) {
      if ((r.bits[j >> 3] >> (j & 7)) & 1) {
        auto& l = lists[j];
        l.insert(std::lower_bound(l.begin(), l.end(), r.provider),
                 r.provider);
      }
    }
  }
  // Column splices carry FINAL values and apply_delta writes them last, so
  // they overwrite whatever the row pass produced for the same cell.
  for (const auto& c : delta.col_splices) {
    require(c.identity < delta.cols, "apply_delta: column splice out of range");
    require(c.bits.size() == col_bytes,
            "apply_delta: column splice length mismatch");
    auto& l = lists[c.identity];
    l.clear();
    for (std::size_t i = 0; i < delta.rows; ++i) {
      if ((c.bits[i >> 3] >> (i & 7)) & 1) l.push_back(static_cast<ProviderId>(i));
    }
  }
  return PostingIndex(delta.rows, lists, base.shard_span());
}

// --- fsck ------------------------------------------------------------------

namespace {

IndexValidation check_index_bytes(const std::string& file,
                                  std::span<const std::uint8_t> bytes,
                                  FsckReport& report) {
  ++report.files_checked;
  IndexValidation v = validate_index(bytes);
  if (v.ok) {
    report.notes.push_back(file + ": v" + std::to_string(v.version) + " ok");
  } else {
    report.ok = false;
    for (const auto& c : v.sections) {
      if (!c.ok) {
        report.issues.push_back({file, to_string(c.section), c.detail});
      }
    }
  }
  return v;
}

}  // namespace

FsckReport fsck_index_file(storage::Vfs& vfs, const std::string& path) {
  FsckReport report;
  if (!vfs.exists(path)) {
    report.ok = false;
    report.issues.push_back({path, "store", "no such file"});
    return report;
  }
  check_index_bytes(path, vfs.read_file(path), report);
  return report;
}

FsckReport fsck_store(storage::Vfs& vfs, const std::string& dir) {
  obs::Span span("store.fsck");
  FsckReport report;
  const std::string manifest = dir + "/" + kManifestName;
  if (!vfs.exists(manifest)) {
    report.ok = false;
    report.issues.push_back({kManifestName, "store", "no manifest"});
    return report;
  }
  const auto bytes = vfs.read_file(manifest);
  ++report.files_checked;
  if (!manifest_magic_ok(bytes)) {
    report.ok = false;
    report.issues.push_back({kManifestName, "manifest", "bad magic"});
    return report;
  }
  const ManifestScan scan = scan_manifest(bytes);
  if (scan.torn_tail) {
    report.ok = false;
    report.issues.push_back(
        {kManifestName, "manifest",
         "torn journal tail (recovery would truncate at byte " +
             std::to_string(scan.valid_prefix) + ")"});
  }
  if (scan.conflicting_sticky) {
    report.ok = false;
    report.issues.push_back(
        {kManifestName, "manifest", "conflicting sticky-state records"});
  }
  if (!scan.sticky && !scan.epochs.empty()) {
    report.ok = false;
    report.issues.push_back(
        {kManifestName, "manifest",
         "epochs committed but no sticky-state record: a restart would "
         "re-roll publication noise"});
  }

  // Full epochs: validate each referenced index file. Delta epochs: verify
  // that base+delta replay reproduces the record's checksummed head — the
  // delta has no file of its own, so the replayed postings are carried
  // forward across the walk exactly as recovery does it (in posting space;
  // fsck at a million-owner shape must not build the dense matrix either).
  std::set<std::string> referenced{kManifestName};
  std::optional<PostingIndex> replayed;
  std::optional<std::uint64_t> prev_epoch;
  for (const auto& rec : scan.epochs) {
    if (rec.is_delta) {
      const auto it = scan.deltas.find(rec.epoch);
      const std::string label = "delta " + std::to_string(rec.epoch);
      if (prev_epoch != rec.base_epoch) {
        // Can only come from a buggy writer or journal tampering — a crash
        // leaves either a whole record (valid base) or a torn tail.
        report.ok = false;
        report.issues.push_back(
            {kManifestName, "manifest",
             label + ": base epoch " + std::to_string(rec.base_epoch) +
                 " is not its lineage predecessor"});
        replayed.reset();
      } else if (!replayed || it == scan.deltas.end()) {
        report.notes.push_back(
            "epoch " + std::to_string(rec.epoch) +
            ": delta base not replayable (quarantined or lost)");
      } else {
        try {
          PostingIndex next = apply_delta_postings(*replayed, it->second);
          if (!delta_matches(next, it->second)) {
            report.ok = false;
            report.issues.push_back(
                {kManifestName, "manifest",
                 label + ": replay does not reach the checksummed head "
                         "(recovery quarantines this delta)"});
            replayed.reset();
          } else {
            report.notes.push_back(label + ": replay ok");
            replayed = std::move(next);
          }
        } catch (const ConfigError& err) {
          report.ok = false;
          report.issues.push_back(
              {kManifestName, "manifest", label + ": " + err.what()});
          replayed.reset();
        }
      }
      prev_epoch = rec.epoch;
      continue;
    }
    prev_epoch = rec.epoch;
    replayed.reset();
    referenced.insert(rec.file);
    if (!vfs.exists(dir + "/" + rec.file)) {
      report.notes.push_back("epoch " + std::to_string(rec.epoch) +
                             ": file missing (quarantined or lost)");
      continue;
    }
    const auto idx = vfs.read_file(dir + "/" + rec.file);
    const IndexValidation v = check_index_bytes(rec.file, idx, report);
    if (v.ok) {
      const IndexShape shape = index_shape(idx);
      if (shape.rows != rec.rows || shape.cols != rec.cols) {
        report.ok = false;
        report.issues.push_back(
            {rec.file, "header", "shape differs from journal record"});
      } else {
        replayed = load_postings_bytes(idx).postings;
      }
    }
  }

  for (const auto& name : vfs.list_dir(dir)) {
    if (referenced.count(name)) continue;
    if (name.ends_with(".tmp") || name.ends_with(".idx")) {
      report.ok = false;
      report.issues.push_back(
          {name, "store",
           "orphan file not referenced by the journal (crash artifact; "
           "recovery quarantines it)"});
    }
  }
  span.attr("files_checked", report.files_checked);
  span.attr("issues", report.issues.size());
  span.attr("ok", report.ok);
  return report;
}

}  // namespace eppi::core
