// Durable, crash-safe persistence for the epoch lifecycle.
//
// The epoch design (core/epoch_manager.h) is only privacy-safe if its sticky
// decisions — provider publication-noise keys and the λ-mixing PRF key, both
// derived from the master key — survive a process restart. A crash that
// silently re-rolled them would rotate the published noise and re-enable the
// exact cross-epoch intersection attacks the EpochManager exists to prevent.
// EpochStore therefore persists, in one directory:
//
//   MANIFEST        an append-only journal: a magic header followed by
//                   CRC32C-framed records — the sticky state (written once,
//                   first record wins forever) and one commit record per
//                   epoch (id, file name, shape, λ). The journal is the
//                   source of truth: an index file not referenced by a
//                   record was never committed.
//   epoch-<N>.idx   the published index of epoch N in the checksummed
//                   eppi-index-v2 format (core/index_io.h).
//   quarantine/     corrupt or orphaned files moved aside by recovery, kept
//                   for post-mortems instead of deleted.
//
// Commit protocol (all I/O via storage::Vfs, so it is fault-injectable):
//   1. write epoch-<N>.idx.tmp, fsync, rename to epoch-<N>.idx, fsync dir;
//   2. append the commit record to MANIFEST, fsync.
// A crash between 1 and 2 leaves an unreferenced index file that recovery
// quarantines; the epoch is simply not committed, and a re-run rebuild
// regenerates byte-identical content (sticky noise). A torn journal append
// is detected by the record CRC and truncated away.
//
// Opening a store runs recovery: scan the journal, stop at the first torn or
// corrupt record (physically truncating the tail so future appends land on a
// clean boundary), validate every referenced index file's checksums,
// quarantine corrupt ones, and open at the newest epoch whose file is fully
// intact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ppi_index.h"
#include "storage/vfs.h"

namespace eppi::core {

class EpochStore {
 public:
  // The restart-critical randomness: everything the EpochManager derives
  // noise and mixing coins from. Recorded once; later attempts to record a
  // *different* state throw (the first key wins for the store's lifetime).
  struct StickyState {
    std::uint64_t master_key = 0;
    bool enable_mixing = true;

    bool operator==(const StickyState&) const = default;
  };

  struct EpochRecord {
    std::uint64_t epoch = 0;
    std::string file;  // name within the store directory
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    double lambda = 0.0;  // the λ-history entry for this epoch
    bool file_intact = false;  // validated at open (or just committed)
  };

  struct RecoveryReport {
    std::vector<std::string> notes;   // human-readable recovery actions
    std::size_t quarantined = 0;      // files moved to quarantine/
    bool manifest_truncated = false;  // a torn journal tail was cut off
  };

  // Opens (creating if necessary) the store at `dir`, running recovery.
  // Throws storage::StorageError if the manifest is damaged beyond the torn
  // tail that recovery can repair (e.g. a corrupted header) — losing the
  // journal means losing the sticky-key lineage, which must never happen
  // silently.
  EpochStore(storage::Vfs& vfs, std::string dir);

  const RecoveryReport& recovery_report() const noexcept { return report_; }
  const std::string& dir() const noexcept { return dir_; }

  // --- sticky state -------------------------------------------------------
  bool has_sticky_state() const noexcept { return sticky_.has_value(); }
  const StickyState& sticky_state() const;  // requires has_sticky_state()
  // Durably records the sticky state. Idempotent for an equal state; throws
  // ConfigError if a different state is already recorded (replacing sticky
  // keys mid-lineage is a privacy violation, not a configuration change).
  void record_sticky_state(const StickyState& state);

  // --- epoch lineage ------------------------------------------------------
  const std::vector<EpochRecord>& lineage() const noexcept { return epochs_; }
  // λ per committed epoch, oldest first.
  std::vector<double> lambda_history() const;
  // Newest epoch whose index file is intact; nullopt for an empty store.
  std::optional<std::uint64_t> latest_epoch() const;

  // Loads a committed epoch's index, re-validating its checksums. Throws
  // ConfigError for an unknown epoch, CorruptIndexError if the file rotted
  // since recovery, storage::StorageError if it is missing.
  PpiIndex load_epoch(std::uint64_t epoch) const;

  // Atomically commits the next epoch (must be greater than every committed
  // epoch). On return the index and its journal record are durable.
  void commit_epoch(std::uint64_t epoch, const PpiIndex& index,
                    double lambda);

 private:
  std::string path_of(const std::string& name) const;
  void quarantine(const std::string& name, const std::string& why);
  void append_record(std::span<const std::uint8_t> payload);
  void recover();

  storage::Vfs& vfs_;
  std::string dir_;
  RecoveryReport report_;
  std::optional<StickyState> sticky_;
  std::vector<EpochRecord> epochs_;
  // Journal length up to the last record known durable; a failed append is
  // rolled back to this boundary so a retry never lands after torn bytes.
  std::size_t journal_len_ = 0;
  // Set when rolling back a failed append itself failed: the journal tail
  // may hold garbage, so further appends are refused until the store is
  // reopened (recovery truncates the tail).
  bool journal_dirty_ = false;
};

// --- fsck ------------------------------------------------------------------
// Offline validation with section-level reporting, used by `eppi_cli fsck`
// and CI. Unlike recovery, fsck never modifies anything: a crashed store
// that recovery *would* repair is reported as unclean.

struct FsckIssue {
  std::string file;     // file the issue is in
  std::string section;  // index section / "manifest" / "store"
  std::string message;
};

struct FsckReport {
  bool ok = true;
  std::vector<FsckIssue> issues;
  std::vector<std::string> notes;  // non-fatal observations
  std::size_t files_checked = 0;
};

// Validates a single index file (either format version).
FsckReport fsck_index_file(storage::Vfs& vfs, const std::string& path);

// Validates a whole store directory: manifest framing, sticky record
// presence, every referenced index file's checksums, and orphan detection.
FsckReport fsck_store(storage::Vfs& vfs, const std::string& dir);

}  // namespace eppi::core
