// Durable, crash-safe persistence for the epoch lifecycle.
//
// The epoch design (core/epoch_manager.h) is only privacy-safe if its sticky
// decisions — provider publication-noise keys and the λ-mixing PRF key, both
// derived from the master key — survive a process restart. A crash that
// silently re-rolled them would rotate the published noise and re-enable the
// exact cross-epoch intersection attacks the EpochManager exists to prevent.
// EpochStore therefore persists, in one directory:
//
//   MANIFEST        an append-only journal: a magic header followed by
//                   CRC32C-framed records — the sticky state (written once,
//                   first record wins forever), one commit record per full
//                   epoch (id, file name, shape, λ), and delta records for
//                   incremental epochs (membership changes + spliced
//                   rows/columns + a checksum of the replayed result; no
//                   index file is written for a delta epoch). The journal is
//                   the source of truth: an index file not referenced by a
//                   record was never committed.
//   epoch-<N>.idx   the published index of epoch N in the compressed
//                   sharded eppi-index-v3 format (core/index_io.h);
//                   v1/v2 files from older stores are still readable.
//   quarantine/     corrupt or orphaned files moved aside by recovery, kept
//                   for post-mortems instead of deleted.
//
// Commit protocol (all I/O via storage::Vfs, so it is fault-injectable):
//   1. write epoch-<N>.idx.tmp, fsync, rename to epoch-<N>.idx, fsync dir;
//   2. append the commit record to MANIFEST, fsync.
// A crash between 1 and 2 leaves an unreferenced index file that recovery
// quarantines; the epoch is simply not committed, and a re-run rebuild
// regenerates byte-identical content (sticky noise). A torn journal append
// is detected by the record CRC and truncated away.
//
// Opening a store runs recovery: scan the journal, stop at the first torn or
// corrupt record (physically truncating the tail so future appends land on a
// clean boundary), validate every referenced index file's checksums,
// quarantine corrupt ones, and open at the newest epoch whose file is fully
// intact.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/index_io.h"
#include "core/lexicon.h"
#include "core/posting_index.h"
#include "core/ppi_index.h"
#include "storage/vfs.h"

namespace eppi::core {

class EpochStore {
 public:
  // The restart-critical randomness: everything the EpochManager derives
  // noise and mixing coins from. Recorded once; later attempts to record a
  // *different* state throw (the first key wins for the store's lifetime).
  struct StickyState {
    std::uint64_t master_key = 0;
    bool enable_mixing = true;

    bool operator==(const StickyState&) const = default;
  };

  struct EpochRecord {
    std::uint64_t epoch = 0;
    std::string file;  // name within the store directory ("" for deltas)
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    double lambda = 0.0;  // the λ-history entry for this epoch
    // For a full epoch: the index file validated at open (or just
    // committed). For a delta epoch: the base+delta replay chain validated
    // against the record's checksum — either way, load_epoch(epoch) works.
    bool file_intact = false;
    bool is_delta = false;
    std::uint64_t base_epoch = 0;  // lineage predecessor (deltas only)
  };

  // An incremental epoch: everything needed to derive epoch `epoch` from its
  // lineage predecessor `base_epoch` without writing a full index file.
  // Cells not covered by `rows`/`columns`/`left` keep their base value;
  // covered sections carry FINAL values (replay order is insensitive).
  struct EpochDelta {
    struct Column {
      std::uint32_t identity = 0;
      std::vector<std::uint8_t> bits;  // packed column, LSB-first, ⌈rows/8⌉
    };
    struct Row {
      std::uint32_t provider = 0;
      std::vector<std::uint8_t> bits;  // packed row, LSB-first, ⌈cols/8⌉
    };
    std::uint64_t epoch = 0;
    std::uint64_t base_epoch = 0;
    std::uint64_t rows = 0;  // shape of the RESULT (>= base shape)
    std::uint64_t cols = 0;
    double lambda = 0.0;
    std::vector<std::uint32_t> joined;  // providers entering at this epoch
    std::vector<std::uint32_t> left;    // providers retired (rows zeroed)
    std::vector<Row> row_splices;       // full rows (joining providers)
    std::vector<Column> col_splices;    // recomputed identity columns
    std::uint32_t matrix_crc = 0;  // matrix_checksum() of the replayed result
    // Newer records (journal type 4) pin the replay to postings_checksum()
    // instead — a column-major fingerprint that replay can verify directly
    // in posting space. Legacy type-3 records carry only matrix_crc; both
    // kinds verify without materializing the dense matrix.
    std::uint32_t postings_crc = 0;
    bool has_postings_crc = false;
  };

  struct RecoveryReport {
    std::vector<std::string> notes;   // human-readable recovery actions
    std::size_t quarantined = 0;      // files moved to quarantine/
    bool manifest_truncated = false;  // a torn journal tail was cut off
  };

  // Opens (creating if necessary) the store at `dir`, running recovery.
  // Throws storage::StorageError if the manifest is damaged beyond the torn
  // tail that recovery can repair (e.g. a corrupted header) — losing the
  // journal means losing the sticky-key lineage, which must never happen
  // silently.
  EpochStore(storage::Vfs& vfs, std::string dir);

  const RecoveryReport& recovery_report() const noexcept { return report_; }
  const std::string& dir() const noexcept { return dir_; }

  // --- sticky state -------------------------------------------------------
  bool has_sticky_state() const noexcept { return sticky_.has_value(); }
  const StickyState& sticky_state() const;  // requires has_sticky_state()
  // Durably records the sticky state. Idempotent for an equal state; throws
  // ConfigError if a different state is already recorded (replacing sticky
  // keys mid-lineage is a privacy violation, not a configuration change).
  void record_sticky_state(const StickyState& state);

  // --- epoch lineage ------------------------------------------------------
  const std::vector<EpochRecord>& lineage() const noexcept { return epochs_; }
  // λ per committed epoch, oldest first.
  std::vector<double> lambda_history() const;
  // Newest epoch whose index file is intact; nullopt for an empty store.
  std::optional<std::uint64_t> latest_epoch() const;

  // Loads a committed epoch in the compressed serving form, re-validating
  // its checksums and replaying any delta chain entirely in posting space —
  // the dense matrix is never materialized. The lexicon is whatever the
  // backing full-epoch file carries (null for v1/v2 files). Throws
  // ConfigError for an unknown epoch, CorruptIndexError if the file rotted
  // since recovery, storage::StorageError if it is missing.
  LoadedIndex load_epoch_postings(std::uint64_t epoch) const;

  // Construction-tier convenience: load_epoch_postings + to_matrix_index.
  PpiIndex load_epoch(std::uint64_t epoch) const;

  // Atomically commits the next epoch (must be greater than every committed
  // epoch) as an eppi-index-v3 file, carrying `lexicon` when non-null so a
  // recovered store can republish name lookups. On return the index and its
  // journal record are durable.
  void commit_epoch(std::uint64_t epoch, const PostingIndex& index,
                    double lambda, const Lexicon* lexicon = nullptr);
  // Dense-index convenience (compresses, then commits as v3).
  void commit_epoch(std::uint64_t epoch, const PpiIndex& index,
                    double lambda);

  // Commits an incremental epoch as a journal record only — no index file is
  // written, which is what makes delta commits cheap. Requires a committed
  // lineage whose head is `delta.base_epoch` and is itself loadable (a delta
  // over a quarantined epoch would be born orphaned). Throws ConfigError if
  // the encoded record would exceed the journal's record-size bound — the
  // caller should fall back to a full commit_epoch (delta_overflows() tells
  // it in advance).
  void commit_delta(const EpochDelta& delta);
  // Whether commit_delta(delta) would be refused for size.
  static bool delta_overflows(const EpochDelta& delta);
  // The retained delta record for a delta epoch (ConfigError otherwise).
  const EpochDelta& delta_record(std::uint64_t epoch) const;
  // Number of delta records since (and not counting) the newest full epoch.
  std::size_t deltas_since_full() const;

 private:
  std::string path_of(const std::string& name) const;
  void quarantine(const std::string& name, const std::string& why);
  void append_record(std::span<const std::uint8_t> payload);
  void recover();

  storage::Vfs& vfs_;
  std::string dir_;
  RecoveryReport report_;
  std::optional<StickyState> sticky_;
  std::vector<EpochRecord> epochs_;
  std::map<std::uint64_t, EpochDelta> deltas_;  // delta epochs by id
  // Journal length up to the last record known durable; a failed append is
  // rolled back to this boundary so a retry never lands after torn bytes.
  std::size_t journal_len_ = 0;
  // Set when rolling back a failed append itself failed: the journal tail
  // may hold garbage, so further appends are refused until the store is
  // reopened (recovery truncates the tail).
  bool journal_dirty_ = false;
};

// CRC32C fingerprint of a published matrix (shape + packed row words) — what
// a legacy (type-3) delta record pins its replayed result to.
std::uint32_t matrix_checksum(const eppi::BitMatrix& matrix);

// The same fingerprint computed from the compressed serving form: the
// postings are transposed back to per-provider rows and the packed words
// are streamed through the CRC one provider at a time, so the value is
// bit-identical to matrix_checksum(BitMatrix) without ever holding the
// m×n matrix. This is what lets recovery verify legacy delta chains in
// posting space.
std::uint32_t matrix_checksum(const PostingIndex& postings);

// Column-major fingerprint of the published postings (shape + per-identity
// count and sorted provider ids) — what a type-4 delta record pins its
// replay to. Both overloads produce the same value for the same content.
std::uint32_t postings_checksum(const eppi::BitMatrix& matrix);
std::uint32_t postings_checksum(const PostingIndex& postings);

// Applies one delta to its base matrix (pure; shared by the commit-side
// verification and the dense differential tests). Throws ConfigError when
// the base shape does not fit under the delta's result shape.
eppi::BitMatrix apply_delta(const eppi::BitMatrix& base,
                            const EpochStore::EpochDelta& delta);

// The same splice computed entirely in posting space: decode the base
// lists, drop every provider the delta retires or re-rows, graft the
// spliced rows back in, overwrite the spliced columns, re-encode. Recovery
// and load_epoch_postings replay with this — bit-identical to apply_delta
// (the differential suite pins it) with no dense intermediate.
PostingIndex apply_delta_postings(const PostingIndex& base,
                                  const EpochStore::EpochDelta& delta);

// --- fsck ------------------------------------------------------------------
// Offline validation with section-level reporting, used by `eppi_cli fsck`
// and CI. Unlike recovery, fsck never modifies anything: a crashed store
// that recovery *would* repair is reported as unclean.

struct FsckIssue {
  std::string file;     // file the issue is in
  std::string section;  // index section / "manifest" / "store"
  std::string message;
};

struct FsckReport {
  bool ok = true;
  std::vector<FsckIssue> issues;
  std::vector<std::string> notes;  // non-fatal observations
  std::size_t files_checked = 0;
};

// Validates a single index file (either format version).
FsckReport fsck_index_file(storage::Vfs& vfs, const std::string& path);

// Validates a whole store directory: manifest framing, sticky record
// presence, every referenced index file's checksums, and orphan detection.
FsckReport fsck_store(storage::Vfs& vfs, const std::string& dir);

}  // namespace eppi::core
