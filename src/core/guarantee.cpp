#include "core/guarantee.h"

#include <cmath>

#include "common/error.h"

namespace eppi::core {

namespace {

// log(trials choose k) via lgamma.
double log_choose(std::uint64_t trials, std::uint64_t k) {
  return std::lgamma(static_cast<double>(trials) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(trials - k) + 1.0);
}

}  // namespace

double binomial_tail_at_least(std::uint64_t trials, double p,
                              std::uint64_t threshold) {
  require(p >= 0.0 && p <= 1.0, "binomial_tail: p out of [0,1]");
  if (threshold == 0) return 1.0;
  if (threshold > trials) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;

  // Sum the smaller side for numerical stability.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  const auto term = [&](std::uint64_t k) {
    return log_choose(trials, k) + static_cast<double>(k) * log_p +
           static_cast<double>(trials - k) * log_q;
  };
  // Decide which side to sum: tail [threshold, trials] vs head
  // [0, threshold-1].
  const bool sum_tail = (trials - threshold) <= threshold;
  double total = 0.0;
  if (sum_tail) {
    for (std::uint64_t k = threshold; k <= trials; ++k) {
      total += std::exp(term(k));
    }
    return std::min(1.0, total);
  }
  for (std::uint64_t k = 0; k < threshold; ++k) {
    total += std::exp(term(k));
  }
  return std::max(0.0, 1.0 - std::min(1.0, total));
}

double publication_success_probability(std::size_t m, std::uint64_t frequency,
                                       double epsilon, double beta) {
  require(m >= 1, "publication_success: need providers");
  require(frequency <= m, "publication_success: frequency exceeds m");
  require(epsilon >= 0.0 && epsilon <= 1.0,
          "publication_success: epsilon out of [0,1]");
  require(beta >= 0.0 && beta <= 1.0,
          "publication_success: beta out of [0,1]");
  const std::uint64_t negatives = m - frequency;
  if (epsilon == 0.0) return 1.0;  // fp >= 0 always holds
  if (negatives == 0) return 0.0;  // no noise possible, fp = 0 < eps
  // fp = X/(X+f) >= eps  <=>  X >= eps/(1-eps) * f  (eps < 1).
  std::uint64_t threshold;
  if (epsilon >= 1.0) {
    // fp can reach 1 only when f == 0 and X >= 1.
    if (frequency > 0) return 0.0;
    threshold = 1;
  } else {
    const double needed =
        epsilon / (1.0 - epsilon) * static_cast<double>(frequency);
    threshold = static_cast<std::uint64_t>(std::ceil(needed));
    if (frequency == 0) threshold = std::max<std::uint64_t>(threshold, 1);
    // Exact boundary: X = needed exactly meets fp == eps (>=).
    if (std::floor(needed) == needed) {
      threshold = static_cast<std::uint64_t>(needed);
      if (frequency == 0) threshold = std::max<std::uint64_t>(threshold, 1);
    }
  }
  return binomial_tail_at_least(negatives, beta, threshold);
}

double policy_success_probability(const BetaPolicy& policy, std::size_t m,
                                  std::uint64_t frequency, double epsilon) {
  const double sigma =
      static_cast<double>(frequency) / static_cast<double>(m);
  const double beta = beta_clamped(policy, sigma, epsilon, m);
  return publication_success_probability(m, frequency, epsilon, beta);
}

}  // namespace eppi::core
