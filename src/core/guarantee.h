// Exact success-probability calculator for the β policies.
//
// Theorem 3.1 gives a Chernoff *lower bound* on the probability that
// randomized publication meets fp_j >= ε_j; the exact probability is a
// binomial tail: with T = m − f negative providers each flipping with
// probability β,
//
//   p_p = Pr[ X >= ceil( ε/(1−ε) · f ) ],   X ~ Binomial(T, β)
//
// (fp = X/(X+f) >= ε  ⇔  X >= ε/(1−ε)·f). This module evaluates that tail
// exactly in log space, so tests and benches can verify the statistical
// guarantees analytically instead of (only) by simulation, and deployments
// can answer "what success ratio does this configuration actually achieve?"
// without Monte Carlo.
#pragma once

#include <cstdint>

#include "core/beta_policy.h"

namespace eppi::core {

// Exact Pr[X >= threshold] for X ~ Binomial(trials, p). Log-space
// summation; O(trials).
double binomial_tail_at_least(std::uint64_t trials, double p,
                              std::uint64_t threshold);

// Exact success probability Pr[fp >= epsilon] for an identity with
// `frequency` true providers out of m, published at rate `beta`.
// frequency == 0 degenerates to Pr[X >= 1] (any false positive makes the
// list pure noise); frequency == m returns 0 (no negatives to flip).
double publication_success_probability(std::size_t m, std::uint64_t frequency,
                                       double epsilon, double beta);

// Convenience: the success probability a policy achieves at (m, frequency,
// epsilon) — beta saturation (common identities) returns 1 iff broadcasting
// meets the requirement.
double policy_success_probability(const BetaPolicy& policy, std::size_t m,
                                  std::uint64_t frequency, double epsilon);

}  // namespace eppi::core
