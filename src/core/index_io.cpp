#include "core/index_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32c.h"

namespace eppi::core {

namespace {

constexpr char kMagicV1[8] = {'e', 'p', 'p', 'i', 'i', 'd', 'x', '1'};
constexpr char kMagicV2[8] = {'e', 'p', 'p', 'i', 'i', 'd', 'x', '2'};
constexpr char kSealMagic[8] = {'e', 'p', 'p', 'i', 's', 'e', 'a', 'l'};

constexpr std::size_t kDimsOffset = sizeof(kMagicV2);
constexpr std::size_t kHeaderBytes = kDimsOffset + 16;       // magic + dims
constexpr std::size_t kHeaderEnd = kHeaderBytes + 4;         // + header CRC
constexpr std::size_t kFooterBytes = sizeof(kSealMagic) + 4;

// Dimension bounds checked before any allocation: a hostile header must not
// drive an n*m overflow or a multi-gigabyte allocation.
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 34;  // 2 Gib of bits

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
  }
  return v;
}

bool magic_is(std::span<const std::uint8_t> bytes, const char (&magic)[8],
              std::size_t at = 0) {
  return bytes.size() >= at + 8 &&
         std::equal(magic, magic + 8, bytes.begin() + at,
                    [](char c, std::uint8_t b) {
                      return static_cast<std::uint8_t>(c) == b;
                    });
}

// Validates rows/cols and computes the exact payload size. Returns a
// non-empty error string on implausible dimensions.
struct Dims {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::size_t words_per_row = 0;
  std::size_t payload_bytes = 0;
};

std::string check_dims(std::uint64_t rows, std::uint64_t cols, Dims& dims) {
  if (rows > kMaxDim || cols > kMaxDim ||
      (rows != 0 && cols > kMaxCells / rows)) {
    return "implausible dimensions (" + std::to_string(rows) + " x " +
           std::to_string(cols) + ")";
  }
  dims.rows = rows;
  dims.cols = cols;
  dims.words_per_row = static_cast<std::size_t>((cols + 63) / 64);
  dims.payload_bytes =
      static_cast<std::size_t>(rows) * dims.words_per_row * 8;
  return {};
}

void append_payload(std::vector<std::uint8_t>& out, const PpiIndex& index) {
  const auto& matrix = index.matrix();
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::uint64_t* words = matrix.row_words(i);
    for (std::size_t w = 0; w < matrix.words_per_row(); ++w) {
      append_u64(out, words[w]);
    }
  }
}

PpiIndex build_matrix(std::span<const std::uint8_t> payload,
                      const Dims& dims) {
  eppi::BitMatrix matrix(static_cast<std::size_t>(dims.rows),
                         static_cast<std::size_t>(dims.cols));
  for (std::uint64_t i = 0; i < dims.rows; ++i) {
    for (std::size_t w = 0; w < dims.words_per_row; ++w) {
      const std::uint64_t word =
          get_u64(payload, (static_cast<std::size_t>(i) * dims.words_per_row +
                            w) * 8);
      for (unsigned b = 0; b < 64; ++b) {
        const std::uint64_t col = w * 64 + b;
        if (col < dims.cols && ((word >> b) & 1)) {
          matrix.set(static_cast<std::size_t>(i),
                     static_cast<std::size_t>(col), true);
        }
      }
    }
  }
  return PpiIndex(std::move(matrix));
}

void add_check(IndexValidation& v, IndexSection section, bool ok,
               std::string detail) {
  v.sections.push_back({section, ok, ok ? std::string{} : std::move(detail)});
}

void validate_v1(std::span<const std::uint8_t> bytes, IndexValidation& v) {
  add_check(v, IndexSection::kMagic, true, {});
  if (bytes.size() < 24) {
    add_check(v, IndexSection::kHeader, false, "truncated header");
    return;
  }
  Dims dims;
  const std::string dim_err = check_dims(get_u64(bytes, 8), get_u64(bytes, 16),
                                         dims);
  if (!dim_err.empty()) {
    add_check(v, IndexSection::kHeader, false, dim_err);
    return;
  }
  add_check(v, IndexSection::kHeader, true, {});
  if (bytes.size() < 24 + dims.payload_bytes) {
    add_check(v, IndexSection::kPayload, false, "truncated payload");
    return;
  }
  add_check(v, IndexSection::kPayload, true, {});
  if (bytes.size() > 24 + dims.payload_bytes) {
    add_check(v, IndexSection::kTrailing, false,
              "trailing garbage after payload");
  }
}

void validate_v2(std::span<const std::uint8_t> bytes, IndexValidation& v) {
  add_check(v, IndexSection::kMagic, true, {});
  if (bytes.size() < kHeaderEnd) {
    add_check(v, IndexSection::kHeader, false, "truncated header");
    return;
  }
  const std::uint32_t want_header =
      crc32c_unmask(get_u32(bytes, kHeaderBytes));
  if (crc32c(bytes.subspan(0, kHeaderBytes)) != want_header) {
    add_check(v, IndexSection::kHeader, false, "header checksum mismatch");
    return;  // dimensions untrustworthy; later offsets are meaningless
  }
  Dims dims;
  const std::string dim_err =
      check_dims(get_u64(bytes, kDimsOffset), get_u64(bytes, kDimsOffset + 8),
                 dims);
  if (!dim_err.empty()) {
    add_check(v, IndexSection::kHeader, false, dim_err);
    return;
  }
  add_check(v, IndexSection::kHeader, true, {});

  const std::size_t payload_end = kHeaderEnd + dims.payload_bytes;
  const std::size_t sealed_end = payload_end + 4;  // through payload CRC
  if (bytes.size() < sealed_end) {
    add_check(v, IndexSection::kPayload, false, "truncated payload");
    add_check(v, IndexSection::kFooter, false,
              "missing footer (torn write)");
    return;
  }
  const std::uint32_t want_payload = crc32c_unmask(get_u32(bytes, payload_end));
  add_check(v, IndexSection::kPayload,
            crc32c(bytes.subspan(kHeaderEnd, dims.payload_bytes)) ==
                want_payload,
            "payload checksum mismatch");

  if (bytes.size() < sealed_end + kFooterBytes ||
      !magic_is(bytes, kSealMagic, sealed_end)) {
    add_check(v, IndexSection::kFooter, false, "missing footer (torn write)");
    return;
  }
  const std::uint32_t want_seal =
      crc32c_unmask(get_u32(bytes, sealed_end + sizeof(kSealMagic)));
  add_check(v, IndexSection::kFooter,
            crc32c(bytes.subspan(0, sealed_end)) == want_seal,
            "seal checksum mismatch");
  if (bytes.size() > sealed_end + kFooterBytes) {
    add_check(v, IndexSection::kTrailing, false,
              "trailing garbage after footer");
  }
}

}  // namespace

const char* to_string(IndexSection section) noexcept {
  switch (section) {
    case IndexSection::kMagic: return "magic";
    case IndexSection::kHeader: return "header";
    case IndexSection::kPayload: return "payload";
    case IndexSection::kFooter: return "footer";
    case IndexSection::kTrailing: return "trailing";
  }
  return "?";
}

std::vector<std::uint8_t> save_index_bytes(const PpiIndex& index) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  append_u64(out, index.matrix().rows());
  append_u64(out, index.matrix().cols());
  append_u32(out, crc32c_mask(crc32c(out)));
  const std::size_t payload_begin = out.size();
  append_payload(out, index);
  append_u32(out, crc32c_mask(crc32c(std::span(out).subspan(payload_begin))));
  const std::uint32_t seal = crc32c(out);
  out.insert(out.end(), kSealMagic, kSealMagic + sizeof(kSealMagic));
  append_u32(out, crc32c_mask(seal));
  return out;
}

void save_index(std::ostream& out, const PpiIndex& index) {
  const auto bytes = save_index_bytes(index);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void save_index_v1(std::ostream& out, const PpiIndex& index) {
  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), kMagicV1, kMagicV1 + sizeof(kMagicV1));
  append_u64(bytes, index.matrix().rows());
  append_u64(bytes, index.matrix().cols());
  append_payload(bytes, index);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

IndexValidation validate_index(std::span<const std::uint8_t> bytes) {
  IndexValidation v;
  if (magic_is(bytes, kMagicV1)) {
    v.version = 1;
    validate_v1(bytes, v);
  } else if (magic_is(bytes, kMagicV2)) {
    v.version = 2;
    validate_v2(bytes, v);
  } else {
    add_check(v, IndexSection::kMagic, false, "bad magic or version");
  }
  v.ok = std::all_of(v.sections.begin(), v.sections.end(),
                     [](const IndexSectionCheck& c) { return c.ok; });
  return v;
}

IndexShape index_shape(std::span<const std::uint8_t> bytes) {
  // v1 and v2 both put u64 rows, u64 cols right after the 8-byte magic.
  if (bytes.size() < 24) {
    throw CorruptIndexError(IndexSection::kHeader,
                            "index_shape: truncated header");
  }
  return {get_u64(bytes, 8), get_u64(bytes, 16)};
}

PpiIndex load_index_bytes(std::span<const std::uint8_t> bytes) {
  const IndexValidation v = validate_index(bytes);
  for (const auto& check : v.sections) {
    if (!check.ok) {
      throw CorruptIndexError(
          check.section, "load_index: " + check.detail + " [" +
                             to_string(check.section) + " section]");
    }
  }
  Dims dims;
  const std::size_t dims_at = v.version == 2 ? kDimsOffset : std::size_t{8};
  (void)check_dims(get_u64(bytes, dims_at), get_u64(bytes, dims_at + 8), dims);
  const std::size_t payload_at = v.version == 2 ? kHeaderEnd : std::size_t{24};
  return build_matrix(bytes.subspan(payload_at, dims.payload_bytes), dims);
}

PpiIndex load_index(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.insert(bytes.end(), chunk, chunk + in.gcount());
    if (in.eof()) break;
  }
  return load_index_bytes(bytes);
}

}  // namespace eppi::core
