#include "core/index_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32c.h"

namespace eppi::core {

namespace {

constexpr char kMagicV1[8] = {'e', 'p', 'p', 'i', 'i', 'd', 'x', '1'};
constexpr char kMagicV2[8] = {'e', 'p', 'p', 'i', 'i', 'd', 'x', '2'};
constexpr char kMagicV3[8] = {'e', 'p', 'p', 'i', 'i', 'd', 'x', '3'};
constexpr char kSealMagic[8] = {'e', 'p', 'p', 'i', 's', 'e', 'a', 'l'};

constexpr std::size_t kDimsOffset = sizeof(kMagicV2);
constexpr std::size_t kHeaderBytes = kDimsOffset + 16;       // magic + dims
constexpr std::size_t kHeaderEnd = kHeaderBytes + 4;         // + header CRC
constexpr std::size_t kFooterBytes = sizeof(kSealMagic) + 4;

// v3 header: magic + u64 rows + u64 cols + u32 shard_count + u32 shard_span
// + u32 flags, then the header CRC.
constexpr std::size_t kV3HeaderBytes = kHeaderBytes + 12;
constexpr std::size_t kV3HeaderEnd = kV3HeaderBytes + 4;
constexpr std::uint32_t kV3FlagLexicon = 1u;

// Dimension bounds checked before any allocation: a hostile header must not
// drive an n*m overflow or a multi-gigabyte allocation.
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 34;  // 2 Gib of bits

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
  }
  return v;
}

bool magic_is(std::span<const std::uint8_t> bytes, const char (&magic)[8],
              std::size_t at = 0) {
  return bytes.size() >= at + 8 &&
         std::equal(magic, magic + 8, bytes.begin() + at,
                    [](char c, std::uint8_t b) {
                      return static_cast<std::uint8_t>(c) == b;
                    });
}

// Validates rows/cols and computes the exact payload size. Returns a
// non-empty error string on implausible dimensions.
struct Dims {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::size_t words_per_row = 0;
  std::size_t payload_bytes = 0;
};

std::string check_dims(std::uint64_t rows, std::uint64_t cols, Dims& dims) {
  if (rows > kMaxDim || cols > kMaxDim ||
      (rows != 0 && cols > kMaxCells / rows)) {
    return "implausible dimensions (" + std::to_string(rows) + " x " +
           std::to_string(cols) + ")";
  }
  dims.rows = rows;
  dims.cols = cols;
  dims.words_per_row = static_cast<std::size_t>((cols + 63) / 64);
  dims.payload_bytes =
      static_cast<std::size_t>(rows) * dims.words_per_row * 8;
  return {};
}

void append_payload(std::vector<std::uint8_t>& out, const PpiIndex& index) {
  const auto& matrix = index.matrix();
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::uint64_t* words = matrix.row_words(i);
    for (std::size_t w = 0; w < matrix.words_per_row(); ++w) {
      append_u64(out, words[w]);
    }
  }
}

// Inverts a v1/v2 dense payload straight into posting lists — the compat
// load path reads the file's row words without ever building a BitMatrix.
std::vector<std::vector<ProviderId>> lists_from_payload(
    std::span<const std::uint8_t> payload, const Dims& dims) {
  std::vector<std::vector<ProviderId>> lists(
      static_cast<std::size_t>(dims.cols));
  for (std::uint64_t i = 0; i < dims.rows; ++i) {
    for (std::size_t w = 0; w < dims.words_per_row; ++w) {
      std::uint64_t word =
          get_u64(payload, (static_cast<std::size_t>(i) * dims.words_per_row +
                            w) * 8);
      while (word != 0) {
        const unsigned b = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const std::uint64_t col = w * 64 + b;
        if (col < dims.cols) {
          lists[static_cast<std::size_t>(col)].push_back(
              static_cast<ProviderId>(i));
        }
      }
    }
  }
  return lists;
}

void add_check(IndexValidation& v, IndexSection section, bool ok,
               std::string detail) {
  v.sections.push_back({section, ok, ok ? std::string{} : std::move(detail)});
}

void validate_v1(std::span<const std::uint8_t> bytes, IndexValidation& v) {
  add_check(v, IndexSection::kMagic, true, {});
  if (bytes.size() < 24) {
    add_check(v, IndexSection::kHeader, false, "truncated header");
    return;
  }
  Dims dims;
  const std::string dim_err = check_dims(get_u64(bytes, 8), get_u64(bytes, 16),
                                         dims);
  if (!dim_err.empty()) {
    add_check(v, IndexSection::kHeader, false, dim_err);
    return;
  }
  add_check(v, IndexSection::kHeader, true, {});
  if (bytes.size() < 24 + dims.payload_bytes) {
    add_check(v, IndexSection::kPayload, false, "truncated payload");
    return;
  }
  add_check(v, IndexSection::kPayload, true, {});
  if (bytes.size() > 24 + dims.payload_bytes) {
    add_check(v, IndexSection::kTrailing, false,
              "trailing garbage after payload");
  }
}

void validate_v2(std::span<const std::uint8_t> bytes, IndexValidation& v) {
  add_check(v, IndexSection::kMagic, true, {});
  if (bytes.size() < kHeaderEnd) {
    add_check(v, IndexSection::kHeader, false, "truncated header");
    return;
  }
  const std::uint32_t want_header =
      crc32c_unmask(get_u32(bytes, kHeaderBytes));
  if (crc32c(bytes.subspan(0, kHeaderBytes)) != want_header) {
    add_check(v, IndexSection::kHeader, false, "header checksum mismatch");
    return;  // dimensions untrustworthy; later offsets are meaningless
  }
  Dims dims;
  const std::string dim_err =
      check_dims(get_u64(bytes, kDimsOffset), get_u64(bytes, kDimsOffset + 8),
                 dims);
  if (!dim_err.empty()) {
    add_check(v, IndexSection::kHeader, false, dim_err);
    return;
  }
  add_check(v, IndexSection::kHeader, true, {});

  const std::size_t payload_end = kHeaderEnd + dims.payload_bytes;
  const std::size_t sealed_end = payload_end + 4;  // through payload CRC
  if (bytes.size() < sealed_end) {
    add_check(v, IndexSection::kPayload, false, "truncated payload");
    add_check(v, IndexSection::kFooter, false,
              "missing footer (torn write)");
    return;
  }
  const std::uint32_t want_payload = crc32c_unmask(get_u32(bytes, payload_end));
  add_check(v, IndexSection::kPayload,
            crc32c(bytes.subspan(kHeaderEnd, dims.payload_bytes)) ==
                want_payload,
            "payload checksum mismatch");

  if (bytes.size() < sealed_end + kFooterBytes ||
      !magic_is(bytes, kSealMagic, sealed_end)) {
    add_check(v, IndexSection::kFooter, false, "missing footer (torn write)");
    return;
  }
  const std::uint32_t want_seal =
      crc32c_unmask(get_u32(bytes, sealed_end + sizeof(kSealMagic)));
  add_check(v, IndexSection::kFooter,
            crc32c(bytes.subspan(0, sealed_end)) == want_seal,
            "seal checksum mismatch");
  if (bytes.size() > sealed_end + kFooterBytes) {
    add_check(v, IndexSection::kTrailing, false,
              "trailing garbage after footer");
  }
}

// Everything validate_v3 learns that a successful load wants to adopt.
struct ParsedV3 {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint32_t shard_span = 0;
  std::vector<std::shared_ptr<const PostingShard>> shards;
  std::shared_ptr<const Lexicon> lexicon;
};

// Validates a v3 file section by section; when `out` is non-null, collects
// the adopted shards/lexicon for the load path. Per-shard failures are
// independent entries — a file with one rotten shard still reports the
// health of every other shard (fsck names exactly what is damaged).
void validate_v3(std::span<const std::uint8_t> bytes, IndexValidation& v,
                 ParsedV3* out) {
  add_check(v, IndexSection::kMagic, true, {});
  if (bytes.size() < kV3HeaderEnd) {
    add_check(v, IndexSection::kHeader, false, "truncated header");
    return;
  }
  const std::uint32_t want_header =
      crc32c_unmask(get_u32(bytes, kV3HeaderBytes));
  if (crc32c(bytes.subspan(0, kV3HeaderBytes)) != want_header) {
    add_check(v, IndexSection::kHeader, false, "header checksum mismatch");
    return;
  }
  const std::uint64_t rows = get_u64(bytes, kDimsOffset);
  const std::uint64_t cols = get_u64(bytes, kDimsOffset + 8);
  const std::uint32_t shard_count = get_u32(bytes, kHeaderBytes);
  const std::uint32_t shard_span = get_u32(bytes, kHeaderBytes + 4);
  const std::uint32_t flags = get_u32(bytes, kHeaderBytes + 8);
  if (rows > kMaxDim || cols > kMaxDim) {
    add_check(v, IndexSection::kHeader,
              false, "implausible dimensions (" + std::to_string(rows) +
                         " x " + std::to_string(cols) + ")");
    return;
  }
  const std::uint64_t expect_shards =
      shard_span == 0 ? 0 : (cols + shard_span - 1) / shard_span;
  if (shard_span == 0 || shard_span % 64 != 0 ||
      shard_count != expect_shards || (flags & ~kV3FlagLexicon) != 0) {
    add_check(v, IndexSection::kHeader, false,
              "bad shard geometry or flags");
    return;
  }
  add_check(v, IndexSection::kHeader, true, {});
  v.shards = static_cast<int>(shard_count);
  v.has_lexicon = (flags & kV3FlagLexicon) != 0;
  if (out != nullptr) {
    out->rows = rows;
    out->cols = cols;
    out->shard_span = shard_span;
    out->shards.reserve(shard_count);
  }

  std::size_t pos = kV3HeaderEnd;
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    const std::string label = "shard " + std::to_string(k);
    if (bytes.size() - pos < 4) {
      add_check(v, IndexSection::kShard, false, label + ": truncated");
      add_check(v, IndexSection::kFooter, false,
                "missing footer (torn write)");
      return;
    }
    const std::uint32_t blob_len = get_u32(bytes, pos);
    if (blob_len < 16 ||
        static_cast<std::uint64_t>(blob_len) + 4 > bytes.size() - pos - 4) {
      add_check(v, IndexSection::kShard, false,
                label + ": truncated or implausible length");
      add_check(v, IndexSection::kFooter, false,
                "missing footer (torn write)");
      return;
    }
    const auto blob = bytes.subspan(pos + 4, blob_len);
    const std::uint32_t want =
        crc32c_unmask(get_u32(bytes, pos + 4 + blob_len));
    pos += 4 + static_cast<std::size_t>(blob_len) + 4;
    if (crc32c(blob) != want) {
      add_check(v, IndexSection::kShard, false,
                label + ": checksum mismatch");
      continue;  // independently framed: the next shard is still scannable
    }
    const std::uint32_t first = get_u32(blob, 0);
    const std::uint32_t n_rows = get_u32(blob, 4);
    const std::uint32_t universe = get_u32(blob, 8);
    const std::uint32_t arena_bytes = get_u32(blob, 12);
    const std::uint64_t expect_first =
        static_cast<std::uint64_t>(k) * shard_span;
    const std::uint64_t expect_rows =
        std::min<std::uint64_t>(shard_span, cols - expect_first);
    if (first != expect_first || n_rows != expect_rows ||
        universe != rows ||
        16 + std::uint64_t{4} * n_rows + arena_bytes != blob_len) {
      add_check(v, IndexSection::kShard, false,
                label + ": geometry disagrees with the header");
      continue;
    }
    std::vector<std::uint32_t> offsets(n_rows);
    for (std::uint32_t r = 0; r < n_rows; ++r) {
      offsets[r] = get_u32(blob, 16 + std::size_t{4} * r);
    }
    std::vector<std::uint8_t> arena(
        blob.begin() + 16 + std::size_t{4} * n_rows, blob.end());
    try {
      auto shard = std::make_shared<const PostingShard>(
          first, static_cast<std::size_t>(universe), std::move(offsets),
          std::move(arena));
      if (out != nullptr) out->shards.push_back(std::move(shard));
      add_check(v, IndexSection::kShard, true, {});
    } catch (const SerializeError& e) {
      add_check(v, IndexSection::kShard,
                false, label + ": " + e.what());
    }
  }

  if ((flags & kV3FlagLexicon) != 0) {
    if (bytes.size() - pos < 4 ||
        static_cast<std::uint64_t>(get_u32(bytes, pos)) + 8 >
            bytes.size() - pos) {
      add_check(v, IndexSection::kLexicon, false,
                "truncated lexicon section");
      add_check(v, IndexSection::kFooter, false,
                "missing footer (torn write)");
      return;
    }
    const std::uint32_t len = get_u32(bytes, pos);
    const auto blob = bytes.subspan(pos + 4, len);
    const std::uint32_t want = crc32c_unmask(get_u32(bytes, pos + 4 + len));
    pos += 4 + static_cast<std::size_t>(len) + 4;
    if (crc32c(blob) != want) {
      add_check(v, IndexSection::kLexicon, false,
                "lexicon checksum mismatch");
    } else {
      try {
        auto lex = std::make_shared<const Lexicon>(Lexicon::deserialize(blob));
        // The fsck invariant: ids dense in [0, count) and names sorted —
        // deserialize enforces both. The ids must also cover exactly the
        // identity universe the header declares... unless the file was
        // written before some owners registered; we only require ids to
        // stay inside the universe.
        if (lex->size() > cols) {
          add_check(v, IndexSection::kLexicon, false,
                    "lexicon larger than the identity universe");
        } else {
          if (out != nullptr) out->lexicon = std::move(lex);
          add_check(v, IndexSection::kLexicon, true, {});
        }
      } catch (const SerializeError& e) {
        add_check(v, IndexSection::kLexicon, false, e.what());
      }
    }
  }

  if (bytes.size() - pos < kFooterBytes || !magic_is(bytes, kSealMagic, pos)) {
    add_check(v, IndexSection::kFooter, false, "missing footer (torn write)");
    return;
  }
  const std::uint32_t want_seal =
      crc32c_unmask(get_u32(bytes, pos + sizeof(kSealMagic)));
  add_check(v, IndexSection::kFooter, crc32c(bytes.subspan(0, pos)) == want_seal,
            "seal checksum mismatch");
  if (bytes.size() > pos + kFooterBytes) {
    add_check(v, IndexSection::kTrailing, false,
              "trailing garbage after footer");
  }
}

void throw_first_failure(const IndexValidation& v, const char* who) {
  for (const auto& check : v.sections) {
    if (!check.ok) {
      throw CorruptIndexError(
          check.section, std::string(who) + ": " + check.detail + " [" +
                             to_string(check.section) + " section]");
    }
  }
}

}  // namespace

const char* to_string(IndexSection section) noexcept {
  switch (section) {
    case IndexSection::kMagic: return "magic";
    case IndexSection::kHeader: return "header";
    case IndexSection::kPayload: return "payload";
    case IndexSection::kShard: return "shard";
    case IndexSection::kLexicon: return "lexicon";
    case IndexSection::kFooter: return "footer";
    case IndexSection::kTrailing: return "trailing";
  }
  return "?";
}

std::vector<std::uint8_t> save_index_bytes(const PpiIndex& index) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  append_u64(out, index.matrix().rows());
  append_u64(out, index.matrix().cols());
  append_u32(out, crc32c_mask(crc32c(out)));
  const std::size_t payload_begin = out.size();
  append_payload(out, index);
  append_u32(out, crc32c_mask(crc32c(std::span(out).subspan(payload_begin))));
  const std::uint32_t seal = crc32c(out);
  out.insert(out.end(), kSealMagic, kSealMagic + sizeof(kSealMagic));
  append_u32(out, crc32c_mask(seal));
  return out;
}

void save_index(std::ostream& out, const PpiIndex& index) {
  const auto bytes = save_index_bytes(index);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void save_index_v1(std::ostream& out, const PpiIndex& index) {
  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), kMagicV1, kMagicV1 + sizeof(kMagicV1));
  append_u64(bytes, index.matrix().rows());
  append_u64(bytes, index.matrix().cols());
  append_payload(bytes, index);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> save_index_v3_bytes(const PostingIndex& index,
                                              const Lexicon* lexicon) {
  require(index.shard_span() <= 0xffffffffu &&
              index.shard_count() <= 0xffffffffu,
          "save_index_v3: shard geometry exceeds the u32 header fields");
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagicV3, kMagicV3 + sizeof(kMagicV3));
  append_u64(out, index.providers());
  append_u64(out, index.identities());
  append_u32(out, static_cast<std::uint32_t>(index.shard_count()));
  append_u32(out, static_cast<std::uint32_t>(index.shard_span()));
  append_u32(out, lexicon != nullptr ? kV3FlagLexicon : 0u);
  append_u32(out, crc32c_mask(crc32c(out)));

  for (std::size_t k = 0; k < index.shard_count(); ++k) {
    const PostingShard& shard = *index.shard(k);
    const auto offsets = shard.tagged_offsets();
    const auto arena = shard.arena();
    const std::uint64_t blob_len =
        16 + std::uint64_t{4} * offsets.size() + arena.size();
    require(blob_len <= 0xffffffffu, "save_index_v3: shard blob too large");
    append_u32(out, static_cast<std::uint32_t>(blob_len));
    const std::size_t blob_begin = out.size();
    append_u32(out, shard.first_identity());
    append_u32(out, static_cast<std::uint32_t>(shard.rows()));
    append_u32(out, static_cast<std::uint32_t>(shard.universe()));
    append_u32(out, static_cast<std::uint32_t>(arena.size()));
    for (const std::uint32_t off : offsets) append_u32(out, off);
    out.insert(out.end(), arena.begin(), arena.end());
    append_u32(out,
               crc32c_mask(crc32c(std::span(out).subspan(blob_begin))));
  }

  if (lexicon != nullptr) {
    const auto blob = lexicon->serialize();
    require(blob.size() <= 0xffffffffu, "save_index_v3: lexicon too large");
    append_u32(out, static_cast<std::uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
    append_u32(out, crc32c_mask(crc32c(blob)));
  }

  const std::uint32_t seal = crc32c(out);
  out.insert(out.end(), kSealMagic, kSealMagic + sizeof(kSealMagic));
  append_u32(out, crc32c_mask(seal));
  return out;
}

void save_index_v3(std::ostream& out, const PostingIndex& index,
                   const Lexicon* lexicon) {
  const auto bytes = save_index_v3_bytes(index, lexicon);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

IndexValidation validate_index(std::span<const std::uint8_t> bytes) {
  IndexValidation v;
  if (magic_is(bytes, kMagicV1)) {
    v.version = 1;
    validate_v1(bytes, v);
  } else if (magic_is(bytes, kMagicV2)) {
    v.version = 2;
    validate_v2(bytes, v);
  } else if (magic_is(bytes, kMagicV3)) {
    v.version = 3;
    validate_v3(bytes, v, nullptr);
  } else {
    add_check(v, IndexSection::kMagic, false, "bad magic or version");
  }
  v.ok = std::all_of(v.sections.begin(), v.sections.end(),
                     [](const IndexSectionCheck& c) { return c.ok; });
  return v;
}

IndexShape index_shape(std::span<const std::uint8_t> bytes) {
  // All versions put u64 rows, u64 cols right after the 8-byte magic.
  if (bytes.size() < 24) {
    throw CorruptIndexError(IndexSection::kHeader,
                            "index_shape: truncated header");
  }
  return {get_u64(bytes, 8), get_u64(bytes, 16)};
}

LoadedIndex load_postings_bytes(std::span<const std::uint8_t> bytes) {
  if (magic_is(bytes, kMagicV3)) {
    IndexValidation v;
    v.version = 3;
    ParsedV3 parsed;
    validate_v3(bytes, v, &parsed);
    throw_first_failure(v, "load_postings");
    return LoadedIndex{
        PostingIndex(static_cast<std::size_t>(parsed.rows),
                     static_cast<std::size_t>(parsed.cols),
                     parsed.shard_span, std::move(parsed.shards)),
        std::move(parsed.lexicon)};
  }
  const IndexValidation v = validate_index(bytes);
  throw_first_failure(v, "load_postings");
  Dims dims;
  const std::size_t dims_at = v.version == 2 ? kDimsOffset : std::size_t{8};
  (void)check_dims(get_u64(bytes, dims_at), get_u64(bytes, dims_at + 8), dims);
  const std::size_t payload_at = v.version == 2 ? kHeaderEnd : std::size_t{24};
  const auto lists = lists_from_payload(
      bytes.subspan(payload_at, dims.payload_bytes), dims);
  return LoadedIndex{
      PostingIndex(static_cast<std::size_t>(dims.rows), lists), nullptr};
}

LoadedIndex load_postings(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.insert(bytes.end(), chunk, chunk + in.gcount());
    if (in.eof()) break;
  }
  return load_postings_bytes(bytes);
}

PpiIndex load_index_bytes(std::span<const std::uint8_t> bytes) {
  return load_postings_bytes(bytes).postings.to_matrix_index();
}

PpiIndex load_index(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.insert(bytes.end(), chunk, chunk + in.gcount());
    if (in.eof()) break;
  }
  return load_index_bytes(bytes);
}

}  // namespace eppi::core
