#include "core/index_io.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace eppi::core {

namespace {

constexpr char kMagic[8] = {'e', 'p', 'p', 'i', 'i', 'd', 'x', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.write(bytes, 8);
}

std::uint64_t read_u64(std::istream& in) {
  char bytes[8];
  in.read(bytes, 8);
  if (!in) throw SerializeError("load_index: truncated input");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void save_index(std::ostream& out, const PpiIndex& index) {
  out.write(kMagic, sizeof(kMagic));
  const auto& matrix = index.matrix();
  write_u64(out, matrix.rows());
  write_u64(out, matrix.cols());
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::uint64_t* words = matrix.row_words(i);
    for (std::size_t w = 0; w < matrix.words_per_row(); ++w) {
      write_u64(out, words[w]);
    }
  }
}

PpiIndex load_index(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(kMagic), kMagic)) {
    throw SerializeError("load_index: bad magic or version");
  }
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  // Guard against hostile headers before allocating.
  constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;
  constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 34;  // 2 GiB of bits
  if (rows > kMaxDim || cols > kMaxDim ||
      (rows != 0 && cols > kMaxCells / rows)) {
    throw SerializeError("load_index: implausible dimensions");
  }
  eppi::BitMatrix matrix(static_cast<std::size_t>(rows),
                         static_cast<std::size_t>(cols));
  for (std::uint64_t i = 0; i < rows; ++i) {
    for (std::uint64_t w = 0; w < matrix.words_per_row(); ++w) {
      const std::uint64_t word = read_u64(in);
      for (unsigned b = 0; b < 64; ++b) {
        const std::uint64_t col = w * 64 + b;
        if (col < cols && ((word >> b) & 1)) {
          matrix.set(static_cast<std::size_t>(i),
                     static_cast<std::size_t>(col), true);
        }
      }
    }
  }
  return PpiIndex(std::move(matrix));
}

}  // namespace eppi::core
