// Binary persistence for the published PPI.
//
// The PPI server hands the constructed index to its serving tier (and ships
// it to replicas); this module defines the on-disk/wire format. Two versions
// exist:
//
//   eppi-index-v1  magic + dimensions + packed row words. No integrity
//                  metadata: a torn write or bit flip loads as a silently
//                  different index. Still readable (and writable, for
//                  compatibility tests), never written by default.
//
//   eppi-index-v2  the durable-store format. Three checksummed sections:
//                    header  magic "eppiidx2", u64 rows, u64 cols,
//                            masked CRC32C of the preceding 24 bytes;
//                    payload packed row words, masked CRC32C;
//                    footer  seal magic "eppiseal" + masked CRC32C of every
//                            preceding byte. The footer is written last, so
//                            its absence identifies a torn (partially
//                            written) file as opposed to bit rot.
//                  Trailing bytes after the footer are rejected.
//
// Loads validate magic, dimensions (bounded before any allocation) and, for
// v2, every section checksum; failures throw CorruptIndexError naming the
// failing section. fsck-style callers use validate_index for a no-throw
// section-by-section report of the same checks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/ppi_index.h"

namespace eppi::core {

// The file regions validated independently on load.
enum class IndexSection {
  kMagic,     // version/magic bytes
  kHeader,    // dimensions + header checksum
  kPayload,   // packed matrix words + payload checksum
  kFooter,    // seal magic + whole-file checksum (absent in a torn write)
  kTrailing,  // bytes after the end of the format
};

const char* to_string(IndexSection section) noexcept;

// A load failed integrity validation: checksum mismatch, truncation, torn
// write, implausible dimensions or trailing garbage. Derives from
// SerializeError so pre-v2 catch sites keep working; recovery code switches
// on section() (a missing footer is a torn commit; a payload mismatch is
// corruption worth quarantining).
class CorruptIndexError : public SerializeError {
 public:
  CorruptIndexError(IndexSection section, const std::string& what)
      : SerializeError(what), section_(section) {}
  IndexSection section() const noexcept { return section_; }

 private:
  IndexSection section_;
};

// Writes the index in the eppi-index-v2 format (checksummed, sealed).
void save_index(std::ostream& out, const PpiIndex& index);
std::vector<std::uint8_t> save_index_bytes(const PpiIndex& index);

// Legacy writer for the unchecksummed eppi-index-v1 format; kept so
// cross-version loads stay testable and old tooling can be fed.
void save_index_v1(std::ostream& out, const PpiIndex& index);

// Reads an index in either format; throws CorruptIndexError (a
// SerializeError) on bad magic/version/shape, checksum mismatch, truncated
// input or trailing garbage.
PpiIndex load_index(std::istream& in);
PpiIndex load_index_bytes(std::span<const std::uint8_t> bytes);

// No-throw validation for fsck: runs the same checks as load_index but
// reports every failing section instead of stopping at the first.
struct IndexSectionCheck {
  IndexSection section;
  bool ok = false;
  std::string detail;  // non-empty iff !ok
};

struct IndexValidation {
  int version = 0;  // 1, 2, or 0 when the magic itself is unrecognized
  bool ok = false;
  std::vector<IndexSectionCheck> sections;
};

IndexValidation validate_index(std::span<const std::uint8_t> bytes);

// The dimensions an index file declares in its header (both versions store
// them in the same place). Read verbatim, without decoding the payload —
// callers must have validated `bytes` first (validate_index / load); a span
// too short to hold a header throws CorruptIndexError.
struct IndexShape {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

IndexShape index_shape(std::span<const std::uint8_t> bytes);

}  // namespace eppi::core
