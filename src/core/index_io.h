// Binary persistence for the published PPI.
//
// The PPI server hands the constructed index to its serving tier (and ships
// it to replicas); this module defines the on-disk/wire format. Two versions
// exist:
//
//   eppi-index-v1  magic + dimensions + packed row words. No integrity
//                  metadata: a torn write or bit flip loads as a silently
//                  different index. Still readable (and writable, for
//                  compatibility tests), never written by default.
//
//   eppi-index-v2  the dense checksummed format. Three sections:
//                    header  magic "eppiidx2", u64 rows, u64 cols,
//                            masked CRC32C of the preceding 24 bytes;
//                    payload packed row words, masked CRC32C;
//                    footer  seal magic "eppiseal" + masked CRC32C of every
//                            preceding byte. The footer is written last, so
//                            its absence identifies a torn (partially
//                            written) file as opposed to bit rot.
//                  Trailing bytes after the footer are rejected. Still
//                  readable (migration + compatibility), no longer written
//                  by the store.
//
//   eppi-index-v3  the compressed sharded format the store writes today. It
//                  persists the PostingShard storage verbatim — tagged
//                  offsets + encoded-row arena per shard — so load adopts
//                  the bytes without re-encoding and NOTHING on the load or
//                  replay path materializes the dense matrix. Layout:
//                    header   magic "eppiidx3", u64 rows (providers),
//                             u64 cols (identities — same offsets as
//                             v1/v2 so index_shape is version-blind),
//                             u32 shard_count, u32 shard_span, u32 flags
//                             (bit 0: lexicon section present), masked
//                             CRC32C of the preceding 36 bytes;
//                    shard ×N u32 blob_len, blob { u32 first_identity,
//                             u32 n_rows, u32 universe, u32 arena_bytes,
//                             n_rows × u32 tagged offsets, arena bytes },
//                             masked CRC32C of the blob. Each shard is
//                             independently checksummed and validated, so
//                             fsck can name exactly which shards of a file
//                             are damaged;
//                    lexicon  (iff flags bit 0) u32 len, front-coded
//                             Lexicon blob, masked CRC32C;
//                    footer   as v2: seal magic + whole-file masked CRC32C.
//                  Trailing bytes after the footer are rejected.
//
// Loads validate magic, dimensions (bounded before any allocation) and
// every section checksum — v3 additionally decodes every posting row
// (bounds-checked) before adopting a shard; failures throw
// CorruptIndexError naming the failing section. fsck-style callers use
// validate_index for a no-throw section-by-section report of the same
// checks, one entry per shard for v3.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/lexicon.h"
#include "core/posting_index.h"
#include "core/ppi_index.h"

namespace eppi::core {

// The file regions validated independently on load.
enum class IndexSection {
  kMagic,     // version/magic bytes
  kHeader,    // dimensions + header checksum
  kPayload,   // packed matrix words + payload checksum (v1/v2)
  kShard,     // one compressed shard blob + its checksum (v3)
  kLexicon,   // owner-name lexicon blob + its checksum (v3)
  kFooter,    // seal magic + whole-file checksum (absent in a torn write)
  kTrailing,  // bytes after the end of the format
};

const char* to_string(IndexSection section) noexcept;

// A load failed integrity validation: checksum mismatch, truncation, torn
// write, implausible dimensions or trailing garbage. Derives from
// SerializeError so pre-v2 catch sites keep working; recovery code switches
// on section() (a missing footer is a torn commit; a payload mismatch is
// corruption worth quarantining).
class CorruptIndexError : public SerializeError {
 public:
  CorruptIndexError(IndexSection section, const std::string& what)
      : SerializeError(what), section_(section) {}
  IndexSection section() const noexcept { return section_; }

 private:
  IndexSection section_;
};

// Writes the index in the eppi-index-v2 format (dense, checksummed).
// Kept for migration tests and old tooling; the store writes v3.
void save_index(std::ostream& out, const PpiIndex& index);
std::vector<std::uint8_t> save_index_bytes(const PpiIndex& index);

// Legacy writer for the unchecksummed eppi-index-v1 format; kept so
// cross-version loads stay testable and old tooling can be fed.
void save_index_v1(std::ostream& out, const PpiIndex& index);

// Writes the compressed sharded eppi-index-v3 format. `lexicon` is
// optional (nullptr omits the section) — store-internal commits always
// carry it so recovery can republish name lookups without the registry.
void save_index_v3(std::ostream& out, const PostingIndex& index,
                   const Lexicon* lexicon);
std::vector<std::uint8_t> save_index_v3_bytes(const PostingIndex& index,
                                              const Lexicon* lexicon);

// A loaded index in its serving form. `lexicon` is null for v1/v2 files
// and v3 files written without one.
struct LoadedIndex {
  PostingIndex postings;
  std::shared_ptr<const Lexicon> lexicon;
};

// Reads any version into the compressed serving form. v3 adopts the shard
// bytes directly; v1/v2 payloads are inverted row-by-row into posting
// lists — no path builds a BitMatrix. Throws CorruptIndexError (a
// SerializeError) on bad magic/version/shape, checksum mismatch, truncated
// input or trailing garbage.
LoadedIndex load_postings(std::istream& in);
LoadedIndex load_postings_bytes(std::span<const std::uint8_t> bytes);

// Reads an index in any format as the dense construction-tier form
// (convenience over load_postings + to_matrix_index; same validation).
PpiIndex load_index(std::istream& in);
PpiIndex load_index_bytes(std::span<const std::uint8_t> bytes);

// No-throw validation for fsck: runs the same checks as load_index but
// reports every failing section instead of stopping at the first.
struct IndexSectionCheck {
  IndexSection section;
  bool ok = false;
  std::string detail;  // non-empty iff !ok
};

struct IndexValidation {
  int version = 0;  // 1, 2, 3, or 0 when the magic itself is unrecognized
  bool ok = false;
  std::vector<IndexSectionCheck> sections;
  // v3 extras for fsck reporting: declared shard count (-1 before the
  // header parses) and whether a lexicon section is declared.
  int shards = -1;
  bool has_lexicon = false;
};

IndexValidation validate_index(std::span<const std::uint8_t> bytes);

// The dimensions an index file declares in its header (both versions store
// them in the same place). Read verbatim, without decoding the payload —
// callers must have validated `bytes` first (validate_index / load); a span
// too short to hold a header throws CorruptIndexError.
struct IndexShape {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

IndexShape index_shape(std::span<const std::uint8_t> bytes);

}  // namespace eppi::core
