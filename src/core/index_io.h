// Binary persistence for the published PPI.
//
// The PPI server hands the constructed index to its serving tier (and ships
// it to replicas); this module defines the on-disk/wire format: a small
// header (magic, version, dimensions) followed by the packed row words of
// the published matrix. The format is versioned and validated on load.
#pragma once

#include <iosfwd>

#include "core/ppi_index.h"

namespace eppi::core {

// Writes the index in the eppi-index-v1 format.
void save_index(std::ostream& out, const PpiIndex& index);

// Reads an index back; throws SerializeError on bad magic/version/shape or
// truncated input.
PpiIndex load_index(std::istream& in);

}  // namespace eppi::core
