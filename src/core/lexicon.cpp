#include "core/lexicon.h"

#include <algorithm>

#include "common/error.h"

namespace eppi::core {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= bytes.size()) {
      throw SerializeError("lexicon: truncated varint");
    }
    const std::uint8_t b = bytes[pos++];
    if (shift >= 64 || (shift == 63 && (b & 0x7E) != 0)) {
      throw SerializeError("lexicon: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::size_t common_prefix(std::string_view a, std::string_view b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

Lexicon::Lexicon(std::vector<std::pair<std::string, IdentityId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  const std::size_t n = pairs.size();
  require(n <= 0xffffffffu, "lexicon: too many owners");
  starts_.reserve(n);
  prefix_.reserve(n);
  ids_.reserve(n);
  rank_of_.assign(n, 0xffffffffu);
  std::string_view prev;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const auto& [name, id] = pairs[rank];
    require(rank == 0 || prev < name, "lexicon: duplicate owner name");
    require(id < n, "lexicon: identity id out of range");
    require(rank_of_[id] == 0xffffffffu, "lexicon: duplicate identity id");
    rank_of_[id] = static_cast<std::uint32_t>(rank);
    const std::size_t pfx =
        rank % kBlock == 0 ? 0 : common_prefix(prev, name);
    starts_.push_back(static_cast<std::uint32_t>(arena_.size()));
    prefix_.push_back(static_cast<std::uint32_t>(pfx));
    arena_.insert(arena_.end(), name.begin() + pfx, name.end());
    ids_.push_back(id);
    prev = name;
  }
  arena_.shrink_to_fit();
}

void Lexicon::expand(std::size_t rank, std::string& scratch) const {
  const std::size_t end =
      rank + 1 < starts_.size() ? starts_[rank + 1] : arena_.size();
  scratch.resize(prefix_[rank]);
  scratch.append(arena_.data() + starts_[rank], end - starts_[rank]);
}

std::optional<IdentityId> Lexicon::find(std::string_view name) const {
  if (ids_.empty()) return std::nullopt;
  // Binary search over restart entries (full names, prefix 0) for the last
  // restart whose name <= target.
  const std::size_t restarts = (ids_.size() + kBlock - 1) / kBlock;
  std::size_t lo = 0, hi = restarts;  // invariant: name(restart lo*kBlock) <= target or lo == 0
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t rank = mid * kBlock;
    const std::size_t end =
        rank + 1 < starts_.size() ? starts_[rank + 1] : arena_.size();
    const std::string_view restart(arena_.data() + starts_[rank],
                                   end - starts_[rank]);
    if (restart <= name) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::string scratch;
  const std::size_t first = lo * kBlock;
  const std::size_t last = std::min(first + kBlock, ids_.size());
  for (std::size_t rank = first; rank < last; ++rank) {
    expand(rank, scratch);
    if (scratch == name) return ids_[rank];
    if (std::string_view(scratch) > name) break;  // sorted: gone past it
  }
  return std::nullopt;
}

std::string Lexicon::name_of(IdentityId id) const {
  require(id < ids_.size(), "lexicon: unknown identity id");
  const std::size_t rank = rank_of_[id];
  std::string scratch;
  for (std::size_t r = rank - rank % kBlock; r <= rank; ++r) {
    expand(r, scratch);
  }
  return scratch;
}

std::vector<std::pair<std::string, IdentityId>> Lexicon::entries() const {
  std::vector<std::pair<std::string, IdentityId>> out;
  out.reserve(ids_.size());
  std::string scratch;
  for (std::size_t rank = 0; rank < ids_.size(); ++rank) {
    expand(rank, scratch);
    out.emplace_back(scratch, ids_[rank]);
  }
  return out;
}

std::size_t Lexicon::memory_bytes() const noexcept {
  return arena_.capacity() * sizeof(char) +
         starts_.capacity() * sizeof(std::uint32_t) +
         prefix_.capacity() * sizeof(std::uint32_t) +
         ids_.capacity() * sizeof(IdentityId) +
         rank_of_.capacity() * sizeof(std::uint32_t);
}

std::vector<std::uint8_t> Lexicon::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(arena_.size() + ids_.size() * 4 + 8);
  put_varint(out, ids_.size());
  for (std::size_t rank = 0; rank < ids_.size(); ++rank) {
    const std::size_t end =
        rank + 1 < starts_.size() ? starts_[rank + 1] : arena_.size();
    put_varint(out, prefix_[rank]);
    put_varint(out, end - starts_[rank]);
    out.insert(out.end(), arena_.data() + starts_[rank],
               arena_.data() + end);
    put_varint(out, ids_[rank]);
  }
  return out;
}

Lexicon Lexicon::deserialize(std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(bytes, pos);
  if (count > bytes.size()) {
    // Each entry costs >= 3 bytes on the wire; a count past the byte count
    // is corrupt and would make the reserve below an allocation bomb.
    throw SerializeError("lexicon: implausible entry count");
  }
  std::vector<std::pair<std::string, IdentityId>> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  std::string prev;
  for (std::uint64_t rank = 0; rank < count; ++rank) {
    const std::uint64_t pfx = get_varint(bytes, pos);
    const std::uint64_t suffix_len = get_varint(bytes, pos);
    if (pfx > prev.size()) {
      throw SerializeError("lexicon: prefix length exceeds previous name");
    }
    if (suffix_len > bytes.size() - pos) {
      throw SerializeError("lexicon: truncated name suffix");
    }
    std::string name = prev.substr(0, static_cast<std::size_t>(pfx));
    name.append(reinterpret_cast<const char*>(bytes.data() + pos),
                static_cast<std::size_t>(suffix_len));
    pos += static_cast<std::size_t>(suffix_len);
    const std::uint64_t id = get_varint(bytes, pos);
    if (id >= count) {
      throw SerializeError("lexicon: identity id out of range");
    }
    if (rank > 0 && !(prev < name)) {
      throw SerializeError("lexicon: names not strictly increasing");
    }
    pairs.emplace_back(name, static_cast<IdentityId>(id));
    prev = std::move(name);
  }
  if (pos != bytes.size()) {
    throw SerializeError("lexicon: trailing bytes after entries");
  }
  try {
    return Lexicon(std::move(pairs));
  } catch (const ConfigError& e) {
    // Duplicate ids etc. — corruption from the wire's point of view.
    throw SerializeError(std::string("lexicon: ") + e.what());
  }
}

}  // namespace eppi::core
