// Owner-name → identity-id lexicon for the serving tier.
//
// The published snapshot used to carry an `unordered_map<string, IdentityId>`
// — ~64+ bytes of node/bucket overhead per owner, fatal at millions of
// owners. The Lexicon stores the sorted owner names front-coded (each name
// keeps only the suffix after its common prefix with the previous one) in a
// single arena, with a full restart name every kBlock entries so lookup is
// binary search over restarts + a short linear scan. This is the classic
// term-dictionary layout (PISA/Lucene lexicons).
//
// Identity ids are NOT required to arrive in name order — registration order
// assigns ids, names sort differently — so the lexicon keeps two small maps:
// rank→id (for find) and id→rank (for name_of). Serialization requires the
// id set to be exactly {0..count-1} (dense) and the names strictly sorted;
// `fsck_index_file` re-checks both on load.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/ppi_index.h"

namespace eppi::core {

class Lexicon {
 public:
  // Builds from (name, id) pairs; names must be unique, ids must be a
  // permutation of [0, pairs.size()). Throws ConfigError otherwise.
  explicit Lexicon(std::vector<std::pair<std::string, IdentityId>> pairs);

  Lexicon() = default;

  std::size_t size() const noexcept { return ids_.size(); }
  bool empty() const noexcept { return ids_.empty(); }

  // Name → id, or nullopt if absent. O(log n) restarts + O(kBlock) scan.
  std::optional<IdentityId> find(std::string_view name) const;

  // Id → name; throws ConfigError for an id not in the lexicon.
  std::string name_of(IdentityId id) const;

  // All (name, id) pairs in name order — for iteration/migration.
  std::vector<std::pair<std::string, IdentityId>> entries() const;

  // Heap bytes held (arena + tables); the honest footprint counterpart to
  // PostingIndex::memory_footprint().
  std::size_t memory_bytes() const noexcept;

  // Wire form: varint count, then per name-sorted entry
  // varint prefix_len / varint suffix_len / suffix bytes / varint id.
  std::vector<std::uint8_t> serialize() const;

  // Parses and validates (names strictly increasing, ids a dense
  // permutation). Throws SerializeError on malformed input.
  static Lexicon deserialize(std::span<const std::uint8_t> bytes);

  static constexpr std::size_t kBlock = 16;

 private:
  // Decodes the entry at `rank` into `scratch` (the full name), given the
  // name of rank-1 already in `scratch` when rank % kBlock != 0.
  void expand(std::size_t rank, std::string& scratch) const;

  std::vector<char> arena_;            // front-coded suffix bytes
  std::vector<std::uint32_t> starts_;  // arena offset of each entry's suffix
  std::vector<std::uint32_t> prefix_;  // shared-prefix length of each entry
  std::vector<IdentityId> ids_;        // rank → id
  std::vector<std::uint32_t> rank_of_; // id → rank
};

}  // namespace eppi::core
