#include "core/locator_service.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

#include "common/error.h"
#include "core/constructor.h"
#include "core/epoch_store.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"

namespace eppi::core {

namespace {

EpochManager::Options manager_options(const LocatorService::Options& o) {
  EpochManager::Options mo;
  mo.policy = o.policy;
  mo.enable_mixing = o.enable_mixing;
  mo.master_key = o.seed;
  mo.delta_base_interval = o.delta_base_interval;
  return mo;
}

void sort_unique(std::vector<ProviderId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

double elapsed_us(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

LocatorService::LocatorService() : LocatorService(Options{}) {}

LocatorService::LocatorService(Options options)
    : options_(std::move(options)), manager_(manager_options(options_)) {}

ProviderId LocatorService::register_provider(const std::string& name) {
  const auto [it, inserted] = provider_ids_.try_emplace(
      name, static_cast<ProviderId>(provider_names_.size()));
  if (inserted) {
    provider_names_.push_back(name);
    retired_providers_.push_back(0);
    // A provider appearing after an epoch is already served enters through
    // the join protocol at the next construction round.
    if (manager_.serving()) pending_joined_.push_back(it->second);
    matrix_dirty_ = true;
  } else if (it->second < retired_providers_.size() &&
             retired_providers_[it->second] != 0) {
    // A retired name registering again is a rejoin: the id (and with it the
    // sticky noise key) is reused, and the row re-enters at the next round.
    retired_providers_[it->second] = 0;
    std::erase(pending_left_, it->second);
    pending_joined_.push_back(it->second);
    matrix_dirty_ = true;
  }
  return it->second;
}

IdentityId LocatorService::register_owner(const std::string& name) {
  const auto [it, inserted] = owner_ids_.try_emplace(
      name, static_cast<IdentityId>(owner_names_.size()));
  if (inserted) {
    owner_names_.push_back(name);
    epsilons_.push_back(options_.default_epsilon);
    dirty_owners_.push_back(1);  // a new column is dirty by definition
    matrix_dirty_ = true;
    lexicon_dirty_ = true;
  }
  return it->second;
}

const std::string& LocatorService::provider_name(ProviderId p) const {
  require(p < provider_names_.size(), "LocatorService: unknown provider id");
  return provider_names_[p];
}

const std::string& LocatorService::owner_name(IdentityId t) const {
  require(t < owner_names_.size(), "LocatorService: unknown owner id");
  return owner_names_[t];
}

void LocatorService::delegate(const std::string& owner, double epsilon,
                              const std::string& provider) {
  require(epsilon >= 0.0 && epsilon <= 1.0,
          "LocatorService: epsilon must be in [0,1]");
  const IdentityId t = register_owner(owner);
  const ProviderId p = register_provider(provider);
  epsilons_[t] = epsilon;
  facts_.emplace_back(p, t);
  mark_owner_dirty(t);
  matrix_dirty_ = true;
  // The builder's index no longer reflects the data; the *published*
  // snapshot stays up for readers until the next construct_ppi() swap.
  index_.reset();
  report_.reset();
}

void LocatorService::mark_owner_dirty(IdentityId t) {
  if (t >= dirty_owners_.size()) dirty_owners_.resize(t + 1, 0);
  dirty_owners_[t] = 1;
}

void LocatorService::retire_provider(const std::string& name) {
  const auto it = provider_ids_.find(name);
  require(it != provider_ids_.end(), "LocatorService: unknown provider");
  const ProviderId p = it->second;
  if (retired_providers_[p] != 0) return;
  retired_providers_[p] = 1;
  // Joined-then-left within one round nets out to staying retired.
  std::erase(pending_joined_, p);
  pending_left_.push_back(p);
  // Withdraw its delegated facts; every identity it held changes global
  // frequency, so those columns must be recomputed.
  std::erase_if(facts_, [&](const std::pair<ProviderId, IdentityId>& f) {
    if (f.first != p) return false;
    mark_owner_dirty(f.second);
    return true;
  });
  matrix_dirty_ = true;
  index_.reset();
  report_.reset();
}

bool LocatorService::provider_retired(ProviderId p) const {
  return p < retired_providers_.size() && retired_providers_[p] != 0;
}

const eppi::BitMatrix& LocatorService::rebuild_matrix() const {
  if (matrix_dirty_) {
    cached_matrix_ =
        eppi::BitMatrix(provider_names_.size(), owner_names_.size());
    for (const auto& [p, t] : facts_) cached_matrix_.set(p, t, true);
    matrix_dirty_ = false;
  }
  return cached_matrix_;
}

void LocatorService::construct_ppi() {
  require(!facts_.empty(), "LocatorService: nothing delegated yet");
  obs::Span span("serve.build");
  span.attr("providers", provider_names_.size());
  span.attr("owners", owner_names_.size());
  span.attr("distributed", options_.distributed);
  const eppi::BitMatrix& truth = rebuild_matrix();
  const std::size_t n = owner_names_.size();
  dirty_owners_.resize(n, 0);
  // Freeze the owner catalog the epoch is built against; a store-attached
  // manager persists it with the full-epoch commit (eppi-index-v3 lexicon
  // section) so a recovered store answers by name too.
  manager_.set_commit_lexicon(serving_lexicon());

  EpochManager::DeltaRequest req;
  sort_unique(pending_joined_);
  sort_unique(pending_left_);
  req.joined = pending_joined_;
  req.left = pending_left_;
  const bool membership_pending = !req.joined.empty() || !req.left.empty();
  // The incremental path needs an in-memory base epoch to splice over.
  // Membership churn must route through it even with enable_delta off —
  // retirement and joins only take effect in the delta protocol — so in
  // that case everything is marked dirty instead (a full recompute carried
  // by the delta machinery).
  bool use_delta =
      manager_.serving() && (options_.enable_delta || membership_pending);
  if (use_delta) {
    if (options_.enable_delta) {
      for (std::size_t j = 0; j < n; ++j) {
        if (dirty_owners_[j] != 0) req.dirty.push_back(static_cast<IdentityId>(j));
      }
    } else {
      req.dirty.resize(n);
      for (std::size_t j = 0; j < n; ++j) req.dirty[j] = static_cast<IdentityId>(j);
    }
  }
  if (use_delta && !membership_pending) {
    if (options_.distributed) {
      // A partial distributed run reseeds the sub-protocol differently from
      // a full one; without membership churn forcing the delta protocol,
      // prefer the full rebuild (identical output to the pre-churn path).
      use_delta = false;
    } else if (static_cast<double>(req.dirty.size()) >
               options_.delta_max_dirty_fraction * static_cast<double>(n)) {
      // Nearly everything is dirty: a full rebuild is cheaper and (in
      // centralized mode) bit-identical.
      use_delta = false;
    }
  }
  span.attr("delta", use_delta);

  last_rebuild_ = RebuildInfo{};
  last_rebuild_.dirty = req.dirty.size();
  last_rebuild_.joined = req.joined.size();
  last_rebuild_.left = req.left.size();
  std::vector<IdentityId> affected;
  std::vector<ProviderId> touched = req.joined;
  touched.insert(touched.end(), req.left.begin(), req.left.end());
  bool spliced = false;

  if (options_.distributed) {
    DistributedOptions dopt;
    dopt.policy = options_.policy;
    dopt.enable_mixing = options_.enable_mixing;
    dopt.c = options_.c;
    dopt.seed = options_.seed;
    dopt.fault_tolerance = options_.fault_tolerance;
    auto result =
        use_delta ? manager_.rebuild_delta_distributed(truth, epsilons_, req, dopt)
                  : manager_.rebuild_distributed(truth, epsilons_, dopt);
    index_ = std::move(result.index);
    last_rebuild_.epoch = result.epoch;
    last_rebuild_.churn = result.churn;
    last_rebuild_.delta = result.delta.delta;
    last_rebuild_.recomputed = result.delta.recomputed;
    if (result.degraded) {
      // The rebuild aborted; we are serving the last committed epoch.
      // serving_status() carries the failure — the stale report (if any)
      // still describes the epoch actually being served. Readers get the
      // updated staleness accounting without an index copy. Dirty owners
      // and pending membership are KEPT so the next round retries them.
      last_rebuild_.degraded = true;
      publish_staleness_update();
      return;
    }
    report_ = std::move(result.report);
    spliced = result.delta.delta;
    affected = std::move(result.delta.affected_ids);
  } else {
    auto result = use_delta ? manager_.rebuild_delta(truth, epsilons_, req)
                            : manager_.rebuild(truth, epsilons_);
    index_ = std::move(result.index);
    last_rebuild_.epoch = result.epoch;
    last_rebuild_.churn = result.churn;
    last_rebuild_.delta = result.delta.delta;
    last_rebuild_.recomputed = result.delta.recomputed;
    spliced = result.delta.delta;
    affected = std::move(result.delta.affected_ids);
    report_.reset();
  }

  // The published epoch now reflects every pending change.
  std::fill(dirty_owners_.begin(), dirty_owners_.end(), 0);
  pending_joined_.clear();
  pending_left_.clear();
  if (spliced) {
    publish_snapshot_spliced(affected, touched);
  } else {
    publish_snapshot();
  }
}

void LocatorService::attach_store(EpochStore& store) {
  manager_.attach_store(store);
  if (!manager_.serving()) return;
  // Resume answering from the recovered epoch right away (the manager has
  // adopted the store's lineage); a later construct_ppi() replaces it with
  // a fresh one.
  index_ = PpiIndex(manager_.current_matrix());
  const auto latest = store.latest_epoch();
  if (latest.has_value() && owner_names_.empty()) {
    // A fresh process attaching a populated store has no in-memory owner
    // catalog; the committed epoch carries one (v3 lexicon section).
    // Restore it so the recovered epoch answers by name immediately — the
    // restored owners are dirty-by-definition, like any new registration,
    // and re-delegate their facts before the next rebuild.
    LoadedIndex loaded = store.load_epoch_postings(*latest);
    if (loaded.lexicon != nullptr && !loaded.lexicon->empty()) {
      // The persisted ids must survive verbatim — they are the index's
      // column numbers — so names are seated at their id, not re-assigned
      // in registration order.
      owner_names_.resize(loaded.lexicon->size());
      for (auto& [name, id] : loaded.lexicon->entries()) {
        owner_ids_.emplace(name, id);
        owner_names_[id] = std::move(name);
      }
      epsilons_.assign(owner_names_.size(), options_.default_epsilon);
      dirty_owners_.assign(owner_names_.size(), 1);
      matrix_dirty_ = true;
      lexicon_cache_ = std::move(loaded.lexicon);
      lexicon_dirty_ = false;
    }
    publish_with(std::make_shared<const PostingIndex>(
        std::move(loaded.postings)));
    return;
  }
  publish_snapshot();
}

void LocatorService::publish_snapshot() {
  publish_with(std::make_shared<const PostingIndex>(index_->matrix()));
}

void LocatorService::publish_snapshot_spliced(
    std::span<const IdentityId> affected,
    std::span<const ProviderId> touched) {
  const auto prev = snapshot_.acquire();
  const eppi::BitMatrix& published = index_->matrix();
  if (prev == nullptr || prev->postings == nullptr ||
      prev->postings->identities() > published.cols() ||
      prev->postings->providers() > published.rows()) {
    publish_snapshot();
    return;
  }
  publish_with(std::make_shared<const PostingIndex>(*prev->postings, published,
                                                    affected, touched));
}

std::shared_ptr<const Lexicon> LocatorService::serving_lexicon() {
  if (lexicon_dirty_ || lexicon_cache_ == nullptr) {
    std::vector<std::pair<std::string, IdentityId>> entries;
    entries.reserve(owner_names_.size());
    for (std::size_t t = 0; t < owner_names_.size(); ++t) {
      entries.emplace_back(owner_names_[t], static_cast<IdentityId>(t));
    }
    lexicon_cache_ = std::make_shared<const Lexicon>(std::move(entries));
    lexicon_dirty_ = false;
  }
  return lexicon_cache_;
}

void LocatorService::publish_with(
    std::shared_ptr<const PostingIndex> postings) {
  obs::Span span("serve.publish");
  auto snap = std::make_shared<EpochSnapshot>();
  snap->postings = std::move(postings);
  snap->owners = serving_lexicon();
  snap->provider_names =
      std::make_shared<const std::vector<std::string>>(provider_names_);
  // Surface the compression story per publish: encoded payload by codec,
  // what the process actually holds, and the shard topology.
  {
    const PostingIndex::MemoryFootprint fp =
        snap->postings->memory_footprint();
    auto& reg = obs::Registry::global();
    for (std::size_t c = 0; c < kPostingCodecCount; ++c) {
      reg.gauge("eppi_index_bytes",
                {{"codec", to_string(static_cast<PostingCodec>(c))}},
                "Encoded posting payload bytes of the served index, by codec")
          .set(static_cast<std::int64_t>(fp.by_codec[c].payload_bytes));
    }
    reg.gauge("eppi_index_resident_bytes", {},
              "Resident bytes of the served posting index (arenas, offsets, "
              "presence bitmaps, shard structures)")
        .set(static_cast<std::int64_t>(fp.resident_bytes));
    reg.gauge("eppi_index_shards", {},
              "Shard count of the served posting index")
        .set(static_cast<std::int64_t>(fp.shards));
    reg.gauge("eppi_lexicon_bytes", {},
              "Heap bytes of the served owner-name lexicon")
        .set(static_cast<std::int64_t>(snap->owners->memory_bytes()));
  }
  const auto status = manager_.serving_status();
  snap->epoch = status.epoch;
  snap->degraded = status.degraded;
  snap->rebuilds_behind = status.rebuilds_behind;
  snap->built_at = std::chrono::steady_clock::now();
  span.attr("epoch", snap->epoch);
  span.attr("degraded", snap->degraded);
  snapshot_.publish(std::move(snap));
  metrics_.record_epoch_swap();
}

void LocatorService::publish_staleness_update() {
  const auto prev = snapshot_.acquire();
  if (prev == nullptr) return;  // nothing published to re-label
  obs::Span span("serve.publish");
  span.attr("staleness_update", true);
  auto snap = std::make_shared<EpochSnapshot>(*prev);
  const auto status = manager_.serving_status();
  snap->epoch = status.epoch;
  snap->degraded = status.degraded;
  snap->rebuilds_behind = status.rebuilds_behind;
  span.attr("epoch", snap->epoch);
  span.attr("degraded", snap->degraded);
  // built_at is kept: the served content is unchanged and keeps aging.
  snapshot_.publish(std::move(snap));
  metrics_.record_epoch_swap();
}

std::shared_ptr<const EpochSnapshot> LocatorService::acquire_serving() const {
  auto snap = snapshot_.acquire();
  require(snap != nullptr, "LocatorService: ConstructPPI has not been run");
  return snap;
}

std::vector<std::string> LocatorService::resolve(const EpochSnapshot& snap,
                                                 const std::string& owner) {
  const std::optional<IdentityId> id = snap.owners->find(owner);
  require(id.has_value(), "LocatorService: unknown owner");
  const auto& list = snap.postings->query(*id);
  std::vector<std::string> result;
  result.reserve(list.size());
  for (const ProviderId p : list) {
    result.push_back((*snap.provider_names)[p]);
  }
  return result;
}

EpochManager::ServingStatus LocatorService::serving_status() const {
  const auto snap = snapshot_.acquire();
  EpochManager::ServingStatus status;
  if (snap == nullptr) return status;  // serving = false
  status.epoch = snap->epoch;
  status.serving = true;
  status.degraded = snap->degraded;
  status.rebuilds_behind = snap->rebuilds_behind;
  status.age_seconds = snap->age_seconds();
  return status;
}

std::vector<std::string> LocatorService::query_ppi(
    const std::string& owner) const {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = acquire_serving();
  std::vector<std::string> result;
  try {
    result = resolve(*snap, owner);
  } catch (const eppi::ConfigError&) {
    metrics_.record_unknown_owner();
    throw;
  }
  if (snap->degraded) metrics_.record_degraded_serve();
  metrics_.record_query(elapsed_us(start));
  return result;
}

LocatorService::QueryResult LocatorService::query_ppi_with_status(
    const std::string& owner) const {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = acquire_serving();
  QueryResult result;
  try {
    result.providers = resolve(*snap, owner);
  } catch (const eppi::ConfigError&) {
    metrics_.record_unknown_owner();
    throw;
  }
  result.epoch = snap->epoch;
  result.degraded = snap->degraded;
  result.rebuilds_behind = snap->rebuilds_behind;
  result.age_seconds = snap->age_seconds();
  if (snap->degraded) metrics_.record_degraded_serve();
  metrics_.record_query(elapsed_us(start));
  return result;
}

LocatorService::BatchQueryResult LocatorService::query_ppi_many(
    std::span<const std::string> owners) const {
  obs::Span span("query.ppi_many");
  span.attr("batch", static_cast<std::uint64_t>(owners.size()));
  const auto start = std::chrono::steady_clock::now();
  const auto snap = acquire_serving();
  BatchQueryResult result;
  result.providers.reserve(owners.size());
  std::size_t resolved = 0;
  try {
    for (const auto& owner : owners) {
      result.providers.push_back(resolve(*snap, owner));
      if (!result.providers.back().empty()) ++resolved;
    }
  } catch (const eppi::ConfigError&) {
    metrics_.record_unknown_owner();
    throw;
  }
  result.epoch = snap->epoch;
  result.degraded = snap->degraded;
  result.rebuilds_behind = snap->rebuilds_behind;
  result.age_seconds = snap->age_seconds();
  if (snap->degraded) metrics_.record_degraded_serve();
  const std::uint64_t us = elapsed_us(start);
  metrics_.record_batch(owners.size(), us);
  span.attr("resolved", static_cast<std::uint64_t>(resolved));
  span.attr("epoch", snap->epoch);
  // Sizes, timings, and trace ids only — never owner names (the slow log is
  // exported over /slowlog, and query contents are exactly what the paper's
  // privacy model hides).
  obs::SlowQueryLog::Entry entry;
  const obs::SpanContext ctx = span.context();
  entry.trace_id = ctx.trace_id;
  entry.span_id = ctx.span_id;
  entry.at_ns = monotonic_ns();
  entry.duration_us = us;
  entry.batch = owners.size();
  entry.resolved = resolved;
  entry.epoch = snap->epoch;
  obs::SlowQueryLog::global().offer(entry);
  return result;
}

const PpiIndex& LocatorService::index() const {
  require(index_.has_value(),
          "LocatorService: ConstructPPI has not been run");
  return *index_;
}

LocatorService::SearchResult LocatorService::search(
    const std::string& searcher, const std::string& owner,
    const Authorizer& authorize) const {
  const auto it = owner_ids_.find(owner);
  require(it != owner_ids_.end(), "LocatorService: unknown owner");
  const eppi::BitMatrix& truth = rebuild_matrix();

  SearchResult result;
  for (const ProviderId p : index().query(it->second)) {
    const std::string& name = provider_names_[p];
    result.contacted.push_back(name);
    if (authorize && !authorize(searcher, name)) {
      result.denied.push_back(name);
      continue;
    }
    if (truth.get(p, it->second)) result.matched.push_back(name);
  }
  return result;
}

}  // namespace eppi::core
