#include "core/locator_service.h"

#include <chrono>

#include "common/error.h"
#include "core/constructor.h"
#include "core/epoch_store.h"
#include "obs/trace.h"

namespace eppi::core {

namespace {

EpochManager::Options manager_options(const LocatorService::Options& o) {
  EpochManager::Options mo;
  mo.policy = o.policy;
  mo.enable_mixing = o.enable_mixing;
  mo.master_key = o.seed;
  return mo;
}

double elapsed_us(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

LocatorService::LocatorService() : LocatorService(Options{}) {}

LocatorService::LocatorService(Options options)
    : options_(std::move(options)), manager_(manager_options(options_)) {}

ProviderId LocatorService::register_provider(const std::string& name) {
  const auto [it, inserted] = provider_ids_.try_emplace(
      name, static_cast<ProviderId>(provider_names_.size()));
  if (inserted) {
    provider_names_.push_back(name);
    matrix_dirty_ = true;
  }
  return it->second;
}

IdentityId LocatorService::register_owner(const std::string& name) {
  const auto [it, inserted] = owner_ids_.try_emplace(
      name, static_cast<IdentityId>(owner_names_.size()));
  if (inserted) {
    owner_names_.push_back(name);
    epsilons_.push_back(options_.default_epsilon);
    matrix_dirty_ = true;
  }
  return it->second;
}

const std::string& LocatorService::provider_name(ProviderId p) const {
  require(p < provider_names_.size(), "LocatorService: unknown provider id");
  return provider_names_[p];
}

const std::string& LocatorService::owner_name(IdentityId t) const {
  require(t < owner_names_.size(), "LocatorService: unknown owner id");
  return owner_names_[t];
}

void LocatorService::delegate(const std::string& owner, double epsilon,
                              const std::string& provider) {
  require(epsilon >= 0.0 && epsilon <= 1.0,
          "LocatorService: epsilon must be in [0,1]");
  const IdentityId t = register_owner(owner);
  const ProviderId p = register_provider(provider);
  epsilons_[t] = epsilon;
  facts_.emplace_back(p, t);
  matrix_dirty_ = true;
  // The builder's index no longer reflects the data; the *published*
  // snapshot stays up for readers until the next construct_ppi() swap.
  index_.reset();
  report_.reset();
}

const eppi::BitMatrix& LocatorService::rebuild_matrix() const {
  if (matrix_dirty_) {
    cached_matrix_ =
        eppi::BitMatrix(provider_names_.size(), owner_names_.size());
    for (const auto& [p, t] : facts_) cached_matrix_.set(p, t, true);
    matrix_dirty_ = false;
  }
  return cached_matrix_;
}

void LocatorService::construct_ppi() {
  require(!facts_.empty(), "LocatorService: nothing delegated yet");
  obs::Span span("serve.build");
  span.attr("providers", provider_names_.size());
  span.attr("owners", owner_names_.size());
  span.attr("distributed", options_.distributed);
  const eppi::BitMatrix& truth = rebuild_matrix();
  if (options_.distributed) {
    DistributedOptions dopt;
    dopt.policy = options_.policy;
    dopt.enable_mixing = options_.enable_mixing;
    dopt.c = options_.c;
    dopt.seed = options_.seed;
    dopt.fault_tolerance = options_.fault_tolerance;
    auto result = manager_.rebuild_distributed(truth, epsilons_, dopt);
    index_ = std::move(result.index);
    if (result.degraded) {
      // The rebuild aborted; we are serving the last committed epoch.
      // serving_status() carries the failure — the stale report (if any)
      // still describes the epoch actually being served. Readers get the
      // updated staleness accounting without an index copy.
      publish_staleness_update();
      return;
    }
    report_ = std::move(result.report);
  } else {
    auto result = manager_.rebuild(truth, epsilons_);
    index_ = std::move(result.index);
    report_.reset();
  }
  publish_snapshot();
}

void LocatorService::attach_store(EpochStore& store) {
  manager_.attach_store(store);
  if (manager_.serving()) {
    // Resume answering from the recovered epoch right away (the manager has
    // adopted the store's lineage); a later construct_ppi() replaces it
    // with a fresh one.
    index_ = PpiIndex(manager_.current_matrix());
    publish_snapshot();
  }
}

void LocatorService::publish_snapshot() {
  obs::Span span("serve.publish");
  auto snap = std::make_shared<EpochSnapshot>();
  snap->postings = std::make_shared<const PostingIndex>(index_->matrix());
  snap->owner_ids = std::make_shared<
      const std::unordered_map<std::string, IdentityId>>(owner_ids_);
  snap->provider_names =
      std::make_shared<const std::vector<std::string>>(provider_names_);
  const auto status = manager_.serving_status();
  snap->epoch = status.epoch;
  snap->degraded = status.degraded;
  snap->rebuilds_behind = status.rebuilds_behind;
  snap->built_at = std::chrono::steady_clock::now();
  span.attr("epoch", snap->epoch);
  span.attr("degraded", snap->degraded);
  snapshot_.publish(std::move(snap));
  metrics_.record_epoch_swap();
}

void LocatorService::publish_staleness_update() {
  const auto prev = snapshot_.acquire();
  if (prev == nullptr) return;  // nothing published to re-label
  obs::Span span("serve.publish");
  span.attr("staleness_update", true);
  auto snap = std::make_shared<EpochSnapshot>(*prev);
  const auto status = manager_.serving_status();
  snap->epoch = status.epoch;
  snap->degraded = status.degraded;
  snap->rebuilds_behind = status.rebuilds_behind;
  span.attr("epoch", snap->epoch);
  span.attr("degraded", snap->degraded);
  // built_at is kept: the served content is unchanged and keeps aging.
  snapshot_.publish(std::move(snap));
  metrics_.record_epoch_swap();
}

std::shared_ptr<const EpochSnapshot> LocatorService::acquire_serving() const {
  auto snap = snapshot_.acquire();
  require(snap != nullptr, "LocatorService: ConstructPPI has not been run");
  return snap;
}

std::vector<std::string> LocatorService::resolve(const EpochSnapshot& snap,
                                                 const std::string& owner) {
  const auto it = snap.owner_ids->find(owner);
  require(it != snap.owner_ids->end(), "LocatorService: unknown owner");
  const auto& list = snap.postings->query(it->second);
  std::vector<std::string> result;
  result.reserve(list.size());
  for (const ProviderId p : list) {
    result.push_back((*snap.provider_names)[p]);
  }
  return result;
}

EpochManager::ServingStatus LocatorService::serving_status() const {
  const auto snap = snapshot_.acquire();
  EpochManager::ServingStatus status;
  if (snap == nullptr) return status;  // serving = false
  status.epoch = snap->epoch;
  status.serving = true;
  status.degraded = snap->degraded;
  status.rebuilds_behind = snap->rebuilds_behind;
  status.age_seconds = snap->age_seconds();
  return status;
}

std::vector<std::string> LocatorService::query_ppi(
    const std::string& owner) const {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = acquire_serving();
  std::vector<std::string> result;
  try {
    result = resolve(*snap, owner);
  } catch (const eppi::ConfigError&) {
    metrics_.record_unknown_owner();
    throw;
  }
  if (snap->degraded) metrics_.record_degraded_serve();
  metrics_.record_query(elapsed_us(start));
  return result;
}

LocatorService::QueryResult LocatorService::query_ppi_with_status(
    const std::string& owner) const {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = acquire_serving();
  QueryResult result;
  try {
    result.providers = resolve(*snap, owner);
  } catch (const eppi::ConfigError&) {
    metrics_.record_unknown_owner();
    throw;
  }
  result.epoch = snap->epoch;
  result.degraded = snap->degraded;
  result.rebuilds_behind = snap->rebuilds_behind;
  result.age_seconds = snap->age_seconds();
  if (snap->degraded) metrics_.record_degraded_serve();
  metrics_.record_query(elapsed_us(start));
  return result;
}

LocatorService::BatchQueryResult LocatorService::query_ppi_many(
    std::span<const std::string> owners) const {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = acquire_serving();
  BatchQueryResult result;
  result.providers.reserve(owners.size());
  try {
    for (const auto& owner : owners) {
      result.providers.push_back(resolve(*snap, owner));
    }
  } catch (const eppi::ConfigError&) {
    metrics_.record_unknown_owner();
    throw;
  }
  result.epoch = snap->epoch;
  result.degraded = snap->degraded;
  result.rebuilds_behind = snap->rebuilds_behind;
  result.age_seconds = snap->age_seconds();
  if (snap->degraded) metrics_.record_degraded_serve();
  metrics_.record_batch(owners.size(), elapsed_us(start));
  return result;
}

const PpiIndex& LocatorService::index() const {
  require(index_.has_value(),
          "LocatorService: ConstructPPI has not been run");
  return *index_;
}

LocatorService::SearchResult LocatorService::search(
    const std::string& searcher, const std::string& owner,
    const Authorizer& authorize) const {
  const auto it = owner_ids_.find(owner);
  require(it != owner_ids_.end(), "LocatorService: unknown owner");
  const eppi::BitMatrix& truth = rebuild_matrix();

  SearchResult result;
  for (const ProviderId p : index().query(it->second)) {
    const std::string& name = provider_names_[p];
    result.contacted.push_back(name);
    if (authorize && !authorize(searcher, name)) {
      result.denied.push_back(name);
      continue;
    }
    if (truth.get(p, it->second)) result.matched.push_back(name);
  }
  return result;
}

}  // namespace eppi::core
