#include "core/locator_service.h"

#include "common/error.h"
#include "core/constructor.h"
#include "core/epoch_store.h"

namespace eppi::core {

namespace {

EpochManager::Options manager_options(const LocatorService::Options& o) {
  EpochManager::Options mo;
  mo.policy = o.policy;
  mo.enable_mixing = o.enable_mixing;
  mo.master_key = o.seed;
  return mo;
}

}  // namespace

LocatorService::LocatorService() : LocatorService(Options{}) {}

LocatorService::LocatorService(Options options)
    : options_(std::move(options)), manager_(manager_options(options_)) {}

ProviderId LocatorService::register_provider(const std::string& name) {
  const auto [it, inserted] = provider_ids_.try_emplace(
      name, static_cast<ProviderId>(provider_names_.size()));
  if (inserted) {
    provider_names_.push_back(name);
    matrix_dirty_ = true;
  }
  return it->second;
}

IdentityId LocatorService::register_owner(const std::string& name) {
  const auto [it, inserted] = owner_ids_.try_emplace(
      name, static_cast<IdentityId>(owner_names_.size()));
  if (inserted) {
    owner_names_.push_back(name);
    epsilons_.push_back(options_.default_epsilon);
    matrix_dirty_ = true;
  }
  return it->second;
}

const std::string& LocatorService::provider_name(ProviderId p) const {
  require(p < provider_names_.size(), "LocatorService: unknown provider id");
  return provider_names_[p];
}

const std::string& LocatorService::owner_name(IdentityId t) const {
  require(t < owner_names_.size(), "LocatorService: unknown owner id");
  return owner_names_[t];
}

void LocatorService::delegate(const std::string& owner, double epsilon,
                              const std::string& provider) {
  require(epsilon >= 0.0 && epsilon <= 1.0,
          "LocatorService: epsilon must be in [0,1]");
  const IdentityId t = register_owner(owner);
  const ProviderId p = register_provider(provider);
  epsilons_[t] = epsilon;
  facts_.emplace_back(p, t);
  matrix_dirty_ = true;
  index_.reset();  // the published index no longer reflects the data
  report_.reset();
}

const eppi::BitMatrix& LocatorService::rebuild_matrix() const {
  if (matrix_dirty_) {
    cached_matrix_ =
        eppi::BitMatrix(provider_names_.size(), owner_names_.size());
    for (const auto& [p, t] : facts_) cached_matrix_.set(p, t, true);
    matrix_dirty_ = false;
  }
  return cached_matrix_;
}

void LocatorService::construct_ppi() {
  require(!facts_.empty(), "LocatorService: nothing delegated yet");
  const eppi::BitMatrix& truth = rebuild_matrix();
  if (options_.distributed) {
    DistributedOptions dopt;
    dopt.policy = options_.policy;
    dopt.enable_mixing = options_.enable_mixing;
    dopt.c = options_.c;
    dopt.seed = options_.seed;
    dopt.fault_tolerance = options_.fault_tolerance;
    auto result = manager_.rebuild_distributed(truth, epsilons_, dopt);
    index_ = std::move(result.index);
    if (result.degraded) {
      // The rebuild aborted; we are serving the last committed epoch.
      // serving_status() carries the failure — the stale report (if any)
      // still describes the epoch actually being served.
      return;
    }
    report_ = std::move(result.report);
  } else {
    auto result = manager_.rebuild(truth, epsilons_);
    index_ = std::move(result.index);
    report_.reset();
  }
}

void LocatorService::attach_store(EpochStore& store) {
  manager_.attach_store(store);
  if (manager_.serving() && !index_.has_value()) {
    // Resume answering from the recovered epoch right away; a later
    // construct_ppi() replaces it with a fresh one.
    index_ = manager_.current_index();
  }
}

LocatorService::QueryResult LocatorService::query_ppi_with_status(
    const std::string& owner) const {
  QueryResult result;
  result.providers = query_ppi(owner);
  const auto status = manager_.serving_status();
  result.epoch = status.epoch;
  result.degraded = status.degraded;
  result.rebuilds_behind = status.rebuilds_behind;
  result.age_seconds = status.age_seconds;
  return result;
}

const PpiIndex& LocatorService::index() const {
  require(index_.has_value(),
          "LocatorService: ConstructPPI has not been run");
  return *index_;
}

std::vector<std::string> LocatorService::query_ppi(
    const std::string& owner) const {
  const auto it = owner_ids_.find(owner);
  require(it != owner_ids_.end(), "LocatorService: unknown owner");
  std::vector<std::string> result;
  for (const ProviderId p : index().query(it->second)) {
    result.push_back(provider_names_[p]);
  }
  return result;
}

LocatorService::SearchResult LocatorService::search(
    const std::string& searcher, const std::string& owner,
    const Authorizer& authorize) const {
  const auto it = owner_ids_.find(owner);
  require(it != owner_ids_.end(), "LocatorService: unknown owner");
  const eppi::BitMatrix& truth = rebuild_matrix();

  SearchResult result;
  for (const ProviderId p : index().query(it->second)) {
    const std::string& name = provider_names_[p];
    result.contacted.push_back(name);
    if (authorize && !authorize(searcher, name)) {
      result.denied.push_back(name);
      continue;
    }
    if (truth.get(p, it->second)) result.matched.push_back(name);
  }
  return result;
}

}  // namespace eppi::core
