// The four-operation system facade (paper §II-A).
//
// The paper formulates the system as four interactions between owners,
// providers, the PPI server and searchers:
//
//   Delegate(<t_j, ε_j>, p_i)   — an owner places records at a provider and
//                                 states a personal privacy degree;
//   ConstructPPI({ε_j})         — all providers jointly build the index;
//   QueryPPI(t_j) -> {p_i}      — a searcher asks the locator service;
//   AuthSearch(s, {p_i}, t_j)   — the searcher authenticates at each
//                                 candidate provider and searches locally.
//
// LocatorService packages the library's pieces behind exactly that surface:
// registration by name, delegation with an ε knob, construction via either
// the centralized reference path or the trust-free distributed protocol,
// and the two-phase search with pluggable per-provider access control.
//
// Concurrency model (single writer / wait-free readers):
//
//   * The QUERY tier — query_ppi, query_ppi_with_status, query_ppi_many,
//     serving_status, metrics — is safe from any number of threads,
//     concurrently with the mutation tier. Readers resolve against an
//     immutable EpochSnapshot acquired with one atomic load
//     (core/epoch_snapshot.h); a rebuild never invalidates an answer in
//     flight, and an epoch stays alive until its last reader drops it.
//   * The MUTATION tier — register_*, delegate, construct_ppi,
//     attach_store, set_fault_tolerance — plus the builder-state accessors
//     (index, last_report, search, membership_for_testing) is
//     single-threaded: callers serialize writers externally, as everywhere
//     else in the library. A successful rebuild is committed to readers by
//     a single snapshot-pointer swap; until that instant they keep
//     answering from the previous epoch.
//   * Delegating does NOT unpublish: readers keep getting the last built
//     epoch (with its honest epoch/staleness labels) until the next
//     construct_ppi() swaps the fresh one in. constructed()/index() still
//     describe the builder's view, where a delegation invalidates the
//     index until it is rebuilt.
#pragma once

#include <cstdint>
#include <utility>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bit_matrix.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/beta_policy.h"
#include "core/distributed_constructor.h"
#include "core/epoch_manager.h"
#include "core/epoch_snapshot.h"
#include "core/ppi_index.h"

namespace eppi::core {

class EpochStore;

class LocatorService {
 public:
  struct Options {
    BetaPolicy policy = BetaPolicy::chernoff(0.9);
    bool enable_mixing = true;
    // Construction mode: the distributed secure protocol (the paper's
    // realization; requires >= c providers) or the centralized reference.
    bool distributed = true;
    std::size_t c = 3;
    std::uint64_t seed = 1;
    // If an owner never stated a degree, this one applies.
    double default_epsilon = 0.5;
    // Dropout tolerance for distributed construction (timeouts, reliable
    // delivery, injected fault scenarios for tests).
    FaultToleranceOptions fault_tolerance;
    // Incremental epochs: when a previous epoch exists, construct_ppi()
    // recomputes only the owners touched since the last build and splices
    // the result over it (centralized mode: bit-identical to a full
    // rebuild). Membership churn (joins/retirements) always routes through
    // the delta protocol regardless of this flag — retirement only takes
    // effect there. A full rebuild still runs when more than
    // delta_max_dirty_fraction of the owners are dirty (recomputing nearly
    // everything incrementally costs more than a clean rebuild).
    bool enable_delta = true;
    double delta_max_dirty_fraction = 0.10;
    // Journal bound: see EpochManager::Options::delta_base_interval.
    std::size_t delta_base_interval = 16;
  };

  LocatorService();  // default options
  explicit LocatorService(Options options);

  // --- registration -----------------------------------------------------
  // Registering is idempotent; both return the stable numeric id.
  ProviderId register_provider(const std::string& name);
  IdentityId register_owner(const std::string& name);

  std::size_t n_providers() const noexcept { return provider_names_.size(); }
  std::size_t n_owners() const noexcept { return owner_names_.size(); }
  const std::string& provider_name(ProviderId p) const;
  const std::string& owner_name(IdentityId t) const;

  // --- Delegate(<t, eps>, p) ---------------------------------------------
  // Records the membership fact and the owner's privacy degree. Repeating a
  // delegation updates ε. Unknown names auto-register. Throws ConfigError
  // for ε outside [0,1]. Concurrent readers keep being served from the last
  // published epoch, which does not yet reflect this delegation.
  void delegate(const std::string& owner, double epsilon,
                const std::string& provider);

  // --- membership churn ---------------------------------------------------
  // Retires a provider: its delegated facts are withdrawn, the identities it
  // held become dirty, and from the next construct_ppi() on its published
  // row is zeroed in every epoch (a deliberate leave, not a crash — crashes
  // are the fault-tolerance layer's job). The numeric id is never reused; a
  // later registration or delegation under the same name rejoins the
  // provider at the next construction round with its sticky noise key
  // intact. Idempotent; throws ConfigError for an unknown name.
  void retire_provider(const std::string& name);
  bool provider_retired(ProviderId p) const;

  // --- ConstructPPI -------------------------------------------------------
  // (Re)builds the index over everything delegated so far and publishes it
  // to concurrent readers with one atomic snapshot swap. Throws ConfigError
  // if nothing was delegated or the distributed mode lacks providers for
  // the chosen c.
  //
  // Construction runs through an internal EpochManager, so repeated rebuilds
  // keep publication noise and mixing decisions sticky, and a distributed
  // rebuild that aborts mid-protocol degrades gracefully: the service keeps
  // answering from the last successful epoch (see serving_status()) instead
  // of going dark.
  void construct_ppi();

  bool constructed() const noexcept { return index_.has_value(); }
  const PpiIndex& index() const;

  // How the most recent construct_ppi() ran — whether the incremental path
  // engaged, how much it recomputed, and what it cost in published-cell
  // churn. Builder-side (mutation tier).
  struct RebuildInfo {
    bool delta = false;      // the incremental path actually engaged
    bool degraded = false;   // the rebuild aborted; serving the stale epoch
    std::size_t dirty = 0;   // owner columns requested dirty
    std::size_t recomputed = 0;  // columns actually republished (λ-widened)
    std::size_t joined = 0;
    std::size_t left = 0;
    std::size_t churn = 0;   // published cells that changed
    std::uint64_t epoch = 0;
  };
  const RebuildInfo& last_rebuild() const noexcept { return last_rebuild_; }

  // Adjusts the dropout-tolerance knobs for subsequent construct_ppi()
  // runs (epoch state and sticky randomness are untouched).
  void set_fault_tolerance(const FaultToleranceOptions& ft) {
    options_.fault_tolerance = ft;
  }
  // Construction diagnostics of the last distributed run (nullopt in
  // centralized mode).
  const std::optional<DistributedReport>& last_report() const noexcept {
    return report_;
  }

  // --- durability ----------------------------------------------------------
  // Attaches a durable epoch store (core/epoch_store.h). The store's
  // recorded sticky state overrides the configured seed-derived one, every
  // successful construction is committed before it is served, and if the
  // store holds a committed epoch the service resumes serving it immediately
  // (degraded-mode answers survive a process restart): the recovered epoch
  // is published to readers the same way a rebuilt one is.
  void attach_store(EpochStore& store);

  // Epoch/staleness of what queries are currently answered from. Reader-
  // safe: derived from the published snapshot, so it describes exactly what
  // a concurrent query_ppi would be answered from.
  EpochManager::ServingStatus serving_status() const;

  // --- QueryPPI(t) ---------------------------------------------------------
  // Provider names that may hold the owner's records. Throws ConfigError if
  // nothing has been published yet or the owner is unknown to the served
  // epoch. Wait-free with respect to concurrent rebuilds.
  std::vector<std::string> query_ppi(const std::string& owner) const;

  // query_ppi plus the staleness of the answer: which epoch served it,
  // whether the service is degraded (a rebuild failed since), how many
  // rebuilds behind the answer is, and its age.
  struct QueryResult {
    std::vector<std::string> providers;
    std::uint64_t epoch = 0;
    bool degraded = false;
    std::size_t rebuilds_behind = 0;
    double age_seconds = 0.0;
  };
  QueryResult query_ppi_with_status(const std::string& owner) const;

  // Batched QueryPPI: resolves every owner against ONE snapshot
  // acquisition, amortizing the atomic load and guaranteeing the whole
  // batch is answered from a single consistent epoch even while a rebuild
  // swaps snapshots mid-flight. providers[k] answers owners[k]. Throws
  // ConfigError (before returning any answers) if any owner is unknown to
  // the served epoch.
  struct BatchQueryResult {
    std::vector<std::vector<std::string>> providers;
    std::uint64_t epoch = 0;
    bool degraded = false;
    std::size_t rebuilds_behind = 0;
    double age_seconds = 0.0;
  };
  BatchQueryResult query_ppi_many(std::span<const std::string> owners) const;

  // Serving-tier counters and latency distribution (lock-free; safe from
  // any thread).
  eppi::ServingMetrics::Snapshot metrics() const {
    return metrics_.snapshot();
  }

  // --- AuthSearch(s, {p}, t) -----------------------------------------------
  struct SearchResult {
    std::vector<std::string> contacted;
    std::vector<std::string> denied;   // authorization failed
    std::vector<std::string> matched;  // records found
  };

  using Authorizer =
      std::function<bool(const std::string& searcher,
                         const std::string& provider)>;

  // Runs the full two-phase search. The default authorizer grants access.
  // Builder-side (consults the ground-truth membership): not safe
  // concurrently with mutations.
  SearchResult search(const std::string& searcher, const std::string& owner,
                      const Authorizer& authorize = {}) const;

  // Ground-truth membership (the union of providers' private repositories);
  // exposed for experiments and tests, not part of the public protocol.
  const eppi::BitMatrix& membership_for_testing() const {
    return rebuild_matrix();
  }

 private:
  const eppi::BitMatrix& rebuild_matrix() const;
  void mark_owner_dirty(IdentityId t);
  // Writer side: freeze the current builder state + manager staleness into
  // a new immutable snapshot and swap it in.
  void publish_snapshot();
  // Writer side, delta epoch: like publish_snapshot() but reuses the served
  // snapshot's posting lists except the `affected` identity columns and the
  // `touched` provider rows (joined/retired), so snapshot cost scales with
  // the delta, not the index. Falls back to a full publish when there is no
  // compatible served snapshot to splice over.
  void publish_snapshot_spliced(std::span<const IdentityId> affected,
                                std::span<const ProviderId> touched);
  void publish_with(std::shared_ptr<const PostingIndex> postings);
  // Writer side, degraded rebuild: republish the already-served epoch with
  // updated staleness accounting (shares the served postings; no copy).
  void publish_staleness_update();
  // Writer side: the frozen owner-name catalog for the next snapshot —
  // rebuilt from the registration state only when an owner was added since
  // the last publication, shared (two refcounts) otherwise.
  std::shared_ptr<const Lexicon> serving_lexicon();
  // Reader side: the served snapshot, or ConfigError if none is published.
  std::shared_ptr<const EpochSnapshot> acquire_serving() const;
  static std::vector<std::string> resolve(const EpochSnapshot& snap,
                                          const std::string& owner);

  Options options_;
  EpochManager manager_;
  std::vector<std::string> provider_names_;
  std::vector<std::string> owner_names_;
  std::unordered_map<std::string, ProviderId> provider_ids_;
  std::unordered_map<std::string, IdentityId> owner_ids_;
  std::vector<double> epsilons_;                 // per owner
  std::vector<std::pair<ProviderId, IdentityId>> facts_;
  // Churn bookkeeping between constructions: which owner columns changed
  // (delegations, ε updates, withdrawn facts) and which provider rows are
  // entering/leaving at the next round. Cleared only on a successful
  // rebuild, so a degraded round retries the same delta.
  std::vector<std::uint8_t> dirty_owners_;       // per owner
  std::vector<std::uint8_t> retired_providers_;  // per provider
  std::vector<ProviderId> pending_joined_;
  std::vector<ProviderId> pending_left_;
  RebuildInfo last_rebuild_;
  mutable eppi::BitMatrix cached_matrix_;
  mutable bool matrix_dirty_ = true;
  std::optional<PpiIndex> index_;
  std::optional<DistributedReport> report_;
  // Cached frozen owner catalog; rebuilt lazily when registrations dirtied
  // it (front-coding a million names on every republish would make the
  // staleness-only path quadratic).
  std::shared_ptr<const Lexicon> lexicon_cache_;
  bool lexicon_dirty_ = true;
  SnapshotSlot snapshot_;
  mutable eppi::ServingMetrics metrics_;
};

}  // namespace eppi::core
