#include "core/mixing.h"

#include <algorithm>

#include "common/error.h"

namespace eppi::core {

double lambda_for(double xi, std::size_t n_common, std::size_t n_total) {
  require(xi >= 0.0 && xi <= 1.0, "lambda_for: xi must be in [0,1]");
  require(n_common <= n_total, "lambda_for: common count exceeds total");
  if (n_common == 0) return 0.0;
  if (xi >= 1.0 || n_common == n_total) return 1.0;
  const double lambda = (xi / (1.0 - xi)) *
                        (static_cast<double>(n_common) /
                         static_cast<double>(n_total - n_common));
  return std::clamp(lambda, 0.0, 1.0);
}

double xi_for(const std::vector<bool>& is_common,
              std::span<const double> epsilons) {
  require(is_common.size() == epsilons.size(), "xi_for: size mismatch");
  double xi = 0.0;
  for (std::size_t j = 0; j < is_common.size(); ++j) {
    if (is_common[j]) xi = std::max(xi, epsilons[j]);
  }
  return xi;
}

double achieved_decoy_fraction(const std::vector<bool>& is_common,
                               const std::vector<bool>& is_apparent_common) {
  require(is_common.size() == is_apparent_common.size(),
          "achieved_decoy_fraction: size mismatch");
  std::size_t apparent = 0;
  std::size_t decoys = 0;
  for (std::size_t j = 0; j < is_common.size(); ++j) {
    if (!is_apparent_common[j]) continue;
    ++apparent;
    if (!is_common[j]) ++decoys;
  }
  if (apparent == 0) return 0.0;
  return static_cast<double>(decoys) / static_cast<double>(apparent);
}

}  // namespace eppi::core
