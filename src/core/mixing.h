// Identity mixing against the common-identity attack (paper §III-B.2).
//
// Common identities (β* >= 1) are published with β = 1, but publishing *only*
// them at β = 1 would let an attacker who learns the β vector (e.g. through
// a colluding provider) identify exactly the common identities — the
// common-identity attack. The defense exaggerates the β of each non-common
// identity to 1 with probability λ (Eq. 6) so the true common identities
// hide among mixed decoys. λ is set (Eq. 7) so the decoy fraction among the
// apparent-common set is at least ξ, the strongest privacy degree among the
// common identities:
//
//     λ >= ξ/(1−ξ) · |common| / (n − |common|)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eppi::core {

// Eq. 7: minimal mixing probability. Clamped to [0,1]; returns 1 when
// xi == 1 or when every identity is common.
double lambda_for(double xi, std::size_t n_common, std::size_t n_total);

// ξ = max ε over the common identities (0 if none). `is_common` and
// `epsilons` are parallel over identities.
double xi_for(const std::vector<bool>& is_common,
              std::span<const double> epsilons);

// Decoy fraction actually achieved by a published apparent-common set:
// (#mixed non-common) / (#apparent common). The privacy degree against the
// common-identity attack equals this fraction (paper §III-C).
double achieved_decoy_fraction(const std::vector<bool>& is_common,
                               const std::vector<bool>& is_apparent_common);

}  // namespace eppi::core
