#include "core/posting_codec.h"

#include <bit>

#include "common/error.h"

namespace eppi::core {

namespace {

std::size_t varint_len(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Reads a varint at bytes[pos], advancing pos. Bounds- and width-checked:
// a truncated or >64-bit varint throws instead of reading past the span.
std::uint64_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= bytes.size()) {
      throw SerializeError("posting codec: truncated varint");
    }
    const std::uint8_t b = bytes[pos++];
    if (shift >= 64 || (shift == 63 && (b & 0x7E) != 0)) {
      throw SerializeError("posting codec: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

// The Elias-Fano low-bit width for `count` values over [0, universe):
// ⌊log2(universe/count)⌋, the width that balances the packed low array
// against the unary high part.
unsigned ef_lo_bits(std::size_t count, std::size_t universe) noexcept {
  if (count == 0 || universe <= count) return 0;
  const std::uint64_t ratio = universe / count;
  return static_cast<unsigned>(std::bit_width(ratio) - 1);
}

std::size_t ef_hi_bits(std::size_t count, std::size_t universe,
                       unsigned lo_bits) noexcept {
  // Bit positions run 0 .. ((universe-1)>>l) + count - 1.
  return ((universe - 1) >> lo_bits) + count;
}

void check_sorted_in_range(std::span<const ProviderId> sorted,
                           std::size_t universe) {
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    require(sorted[i] < universe,
            "posting codec: provider id out of universe");
    require(i == 0 || sorted[i - 1] < sorted[i],
            "posting codec: posting list not strictly increasing");
  }
}

}  // namespace

const char* to_string(PostingCodec codec) noexcept {
  switch (codec) {
    case PostingCodec::kEmpty: return "empty";
    case PostingCodec::kBitvector: return "bitvector";
    case PostingCodec::kEliasFano: return "elias_fano";
  }
  return "?";
}

std::size_t bitvector_encoded_bytes(std::size_t count,
                                    std::size_t universe) noexcept {
  return varint_len(count) + (universe + 7) / 8;
}

std::size_t elias_fano_encoded_bytes(std::size_t count,
                                     std::size_t universe) noexcept {
  if (count == 0) return varint_len(0) + 1;
  const unsigned l = ef_lo_bits(count, universe);
  return varint_len(count) + 1 + (count * l + 7) / 8 +
         (ef_hi_bits(count, universe, l) + 7) / 8;
}

PostingCodec choose_codec(std::size_t count, std::size_t universe) noexcept {
  if (count == 0) return PostingCodec::kEmpty;
  return elias_fano_encoded_bytes(count, universe) <
                 bitvector_encoded_bytes(count, universe)
             ? PostingCodec::kEliasFano
             : PostingCodec::kBitvector;
}

std::size_t encode_postings(PostingCodec codec,
                            std::span<const ProviderId> sorted,
                            std::size_t universe,
                            std::vector<std::uint8_t>& arena) {
  check_sorted_in_range(sorted, universe);
  const std::size_t begin = arena.size();
  switch (codec) {
    case PostingCodec::kEmpty:
      require(sorted.empty(), "posting codec: kEmpty with entries");
      break;
    case PostingCodec::kBitvector: {
      put_varint(arena, sorted.size());
      const std::size_t bitmap_at = arena.size();
      arena.resize(bitmap_at + (universe + 7) / 8, 0);
      for (const ProviderId p : sorted) {
        arena[bitmap_at + (p >> 3)] |=
            static_cast<std::uint8_t>(1u << (p & 7));
      }
      break;
    }
    case PostingCodec::kEliasFano: {
      require(!sorted.empty(), "posting codec: kEliasFano with no entries");
      const unsigned l = ef_lo_bits(sorted.size(), universe);
      put_varint(arena, sorted.size());
      arena.push_back(static_cast<std::uint8_t>(l));
      const std::size_t lo_at = arena.size();
      arena.resize(lo_at + (sorted.size() * l + 7) / 8, 0);
      const std::size_t hi_at = arena.size();
      arena.resize(
          hi_at + (ef_hi_bits(sorted.size(), universe, l) + 7) / 8, 0);
      const std::uint64_t lo_mask = l == 0 ? 0 : ((std::uint64_t{1} << l) - 1);
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        const std::uint64_t v = sorted[i];
        // Low bits, packed LSB-first across the lo array.
        std::uint64_t lo = v & lo_mask;
        for (unsigned b = 0; b < l; ++b) {
          const std::size_t bit = i * l + b;
          if ((lo >> b) & 1) {
            arena[lo_at + (bit >> 3)] |=
                static_cast<std::uint8_t>(1u << (bit & 7));
          }
        }
        // High part, unary: the i-th set bit lands at (v >> l) + i.
        const std::size_t pos = static_cast<std::size_t>(v >> l) + i;
        arena[hi_at + (pos >> 3)] |=
            static_cast<std::uint8_t>(1u << (pos & 7));
      }
      break;
    }
  }
  return arena.size() - begin;
}

void decode_postings(PostingCodec codec, std::span<const std::uint8_t> bytes,
                     std::size_t universe, std::vector<ProviderId>& out) {
  out.clear();
  switch (codec) {
    case PostingCodec::kEmpty:
      return;
    case PostingCodec::kBitvector: {
      std::size_t pos = 0;
      const std::uint64_t count = get_varint(bytes, pos);
      const std::size_t bitmap_bytes = (universe + 7) / 8;
      if (count > universe || bytes.size() - pos < bitmap_bytes) {
        throw SerializeError("posting codec: truncated bitvector row");
      }
      out.reserve(static_cast<std::size_t>(count));
      for (std::size_t byte = 0; byte < bitmap_bytes; ++byte) {
        std::uint8_t b = bytes[pos + byte];
        while (b != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(b));
          b &= static_cast<std::uint8_t>(b - 1);
          const std::size_t p = byte * 8 + bit;
          if (p >= universe) {
            throw SerializeError(
                "posting codec: bitvector bit beyond the universe");
          }
          out.push_back(static_cast<ProviderId>(p));
        }
      }
      if (out.size() != count) {
        throw SerializeError(
            "posting codec: bitvector popcount disagrees with its count");
      }
      return;
    }
    case PostingCodec::kEliasFano: {
      std::size_t pos = 0;
      const std::uint64_t count = get_varint(bytes, pos);
      if (count == 0 || count > universe) {
        throw SerializeError("posting codec: implausible elias-fano count");
      }
      if (pos >= bytes.size()) {
        throw SerializeError("posting codec: truncated elias-fano header");
      }
      const unsigned l = bytes[pos++];
      if (l > 32) {
        throw SerializeError("posting codec: elias-fano low width > 32");
      }
      const std::size_t n = static_cast<std::size_t>(count);
      const std::size_t lo_bytes = (n * l + 7) / 8;
      const std::size_t hi_bits = ef_hi_bits(n, universe, l);
      const std::size_t hi_bytes = (hi_bits + 7) / 8;
      if (bytes.size() - pos < lo_bytes ||
          bytes.size() - pos - lo_bytes < hi_bytes) {
        throw SerializeError("posting codec: truncated elias-fano row");
      }
      const std::size_t lo_at = pos;
      const std::size_t hi_at = pos + lo_bytes;
      out.reserve(n);
      std::size_t i = 0;
      std::uint64_t prev = 0;
      for (std::size_t byte = 0; byte < hi_bytes; ++byte) {
        std::uint8_t b = bytes[hi_at + byte];
        while (b != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(b));
          b &= static_cast<std::uint8_t>(b - 1);
          const std::size_t p = byte * 8 + bit;
          if (p >= hi_bits || i >= n) {
            throw SerializeError(
                "posting codec: elias-fano high bits overflow the count");
          }
          std::uint64_t v = static_cast<std::uint64_t>(p - i) << l;
          for (unsigned lb = 0; lb < l; ++lb) {
            const std::size_t lbit = i * l + lb;
            if ((bytes[lo_at + (lbit >> 3)] >> (lbit & 7)) & 1) {
              v |= std::uint64_t{1} << lb;
            }
          }
          if (v >= universe || (i > 0 && v <= prev)) {
            throw SerializeError(
                "posting codec: elias-fano decodes non-monotone or "
                "out-of-universe value");
          }
          out.push_back(static_cast<ProviderId>(v));
          prev = v;
          ++i;
        }
      }
      if (i != n) {
        throw SerializeError(
            "posting codec: elias-fano high bits short of the count");
      }
      return;
    }
  }
  throw SerializeError("posting codec: unknown codec tag");
}

std::size_t decode_count(PostingCodec codec,
                         std::span<const std::uint8_t> bytes) {
  if (codec == PostingCodec::kEmpty) return 0;
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(bytes, pos);
  if (count > bytes.size() * 8 + 64) {
    // A count no bitmap/EF payload in the remaining bytes could justify.
    throw SerializeError("posting codec: implausible posting count");
  }
  return static_cast<std::size_t>(count);
}

}  // namespace eppi::core
