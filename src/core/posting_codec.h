// Per-row posting-list codecs for the compressed serving index.
//
// The serving tier stores one posting list per owner identity. At the
// million-owner scale the lists are wildly skewed: most identities appear at
// a handful of providers (the paper's Zipf-ish frequency profile plus sparse
// ε-noise), while a minority — common identities widened by λ-mixing — are
// dense. No single layout wins both regimes, so every row is encoded with
// the codec that is smallest FOR THAT ROW (the classic PISA-style split):
//
//   kEmpty      zero-byte encoding for the all-zero row.
//   kBitvector  ⌈universe/8⌉-byte bitmap — optimal for dense rows, O(1)
//               membership, decode is a linear bit-walk.
//   kEliasFano  the quasi-succinct monotone-sequence encoding: each value
//               split into ⌊log2(universe/count)⌋ low bits (packed) and a
//               unary-coded high part — ~2 + log2(universe/count) bits per
//               entry, within a factor of the information-theoretic bound
//               for sparse rows.
//
// Every encoding is self-describing (leading varint count), so a decoder
// needs only the arena offset, never an end offset — and the count peek
// gives O(1) apparent_frequency without decoding. Decoders are fully
// bounds-checked against the provided span and throw SerializeError on any
// overrun or non-canonical payload: a CRC-valid shard can still be hostile
// bytes, and a decode must never crash or over-allocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/ppi_index.h"

namespace eppi::core {

enum class PostingCodec : std::uint8_t {
  kEmpty = 0,
  kBitvector = 1,
  kEliasFano = 2,
};

// Number of codec kinds (for per-codec accounting arrays).
inline constexpr std::size_t kPostingCodecCount = 3;

const char* to_string(PostingCodec codec) noexcept;

// Exact encoded size (in bytes) of a row with `count` entries over
// [0, universe), per codec. Used both by the encoder and by the
// chooser — the choice IS the size comparison.
std::size_t bitvector_encoded_bytes(std::size_t count,
                                    std::size_t universe) noexcept;
std::size_t elias_fano_encoded_bytes(std::size_t count,
                                     std::size_t universe) noexcept;

// The smallest codec for a row of `count` set bits over [0, universe).
// Ties prefer the bitvector (faster decode, O(1) membership).
PostingCodec choose_codec(std::size_t count, std::size_t universe) noexcept;

// Appends the encoding of `sorted` (strictly increasing provider ids, all
// < universe) to `arena` using `codec`; returns the bytes appended. Throws
// ConfigError on unsorted/out-of-range input (caller bug, not data
// corruption).
std::size_t encode_postings(PostingCodec codec,
                            std::span<const ProviderId> sorted,
                            std::size_t universe,
                            std::vector<std::uint8_t>& arena);

// Decodes a row starting at bytes[0]; the span may extend past the row's
// encoding (it is the arena suffix — encodings are self-limiting). Appends
// nothing on kEmpty. Throws SerializeError on truncation, out-of-range
// values, non-monotone output or a count/payload mismatch.
void decode_postings(PostingCodec codec, std::span<const std::uint8_t> bytes,
                     std::size_t universe, std::vector<ProviderId>& out);

// Reads only the leading count varint — the O(1) apparent-frequency path.
std::size_t decode_count(PostingCodec codec,
                         std::span<const std::uint8_t> bytes);

}  // namespace eppi::core
