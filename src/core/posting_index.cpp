#include "core/posting_index.h"

#include <algorithm>
#include <bit>

#include "common/bit_matrix.h"
#include "common/error.h"

namespace eppi::core {

namespace {

// Inverts columns [first, first + n_rows) of `matrix` into one flat entries
// buffer plus per-row start offsets — exact-size, two word-walk passes, no
// per-row allocations. This is the only place the serving tier touches the
// dense matrix.
struct FlatLists {
  std::vector<std::size_t> start;     // n_rows + 1 prefix offsets
  std::vector<ProviderId> entries;    // all rows' providers, concatenated
};

FlatLists invert_range(const eppi::BitMatrix& matrix, std::size_t first,
                       std::size_t n_rows) {
  FlatLists flat;
  flat.start.assign(n_rows + 1, 0);
  const std::size_t end = first + n_rows;
  const std::size_t w_lo = first / 64;
  const std::size_t w_hi = std::min((end + 63) / 64, matrix.words_per_row());
  const std::uint64_t lo_mask =
      first % 64 == 0 ? ~std::uint64_t{0} : (~std::uint64_t{0} << (first % 64));
  const std::uint64_t hi_mask =
      end % 64 == 0 ? ~std::uint64_t{0} : ~(~std::uint64_t{0} << (end % 64));

  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < matrix.rows(); ++i) {
      const std::uint64_t* words = matrix.row_words(i);
      for (std::size_t w = w_lo; w < w_hi; ++w) {
        std::uint64_t word = words[w];
        if (w == w_lo) word &= lo_mask;
        if (w == w_hi - 1) word &= hi_mask;
        while (word != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
          word &= word - 1;
          const std::size_t j = w * 64 + bit - first;
          if (pass == 0) {
            ++flat.start[j + 1];
          } else {
            flat.entries[flat.start[j]++] = static_cast<ProviderId>(i);
          }
        }
      }
    }
    if (pass == 0) {
      for (std::size_t j = 0; j < n_rows; ++j) {
        flat.start[j + 1] += flat.start[j];
      }
      flat.entries.resize(flat.start[n_rows]);
    }
  }
  // Pass 2 advanced each start[j] to start[j+1]; rewind by rebuilding from
  // the (still intact) shifted values: start[j] now equals the old
  // start[j+1], so shift right and restore start[0] = 0.
  for (std::size_t j = n_rows; j > 0; --j) flat.start[j] = flat.start[j - 1];
  flat.start[0] = 0;
  return flat;
}

PostingShard shard_from_matrix(const eppi::BitMatrix& matrix,
                               std::size_t first, std::size_t n_rows) {
  const FlatLists flat = invert_range(matrix, first, n_rows);
  std::vector<std::span<const ProviderId>> lists(n_rows);
  for (std::size_t j = 0; j < n_rows; ++j) {
    lists[j] = std::span<const ProviderId>(
        flat.entries.data() + flat.start[j], flat.start[j + 1] - flat.start[j]);
  }
  return PostingShard(static_cast<IdentityId>(first), matrix.rows(), lists);
}

// Does provider row `p` have any published bit in columns [first, end)?
bool row_range_any(const eppi::BitMatrix& matrix, ProviderId p,
                   std::size_t first, std::size_t end) {
  const std::uint64_t* words = matrix.row_words(p);
  const std::size_t w_lo = first / 64;
  const std::size_t w_hi = std::min((end + 63) / 64, matrix.words_per_row());
  for (std::size_t w = w_lo; w < w_hi; ++w) {
    std::uint64_t word = words[w];
    if (w == w_lo && first % 64 != 0) word &= ~std::uint64_t{0} << (first % 64);
    if (w == w_hi - 1 && end % 64 != 0) {
      word &= ~(~std::uint64_t{0} << (end % 64));
    }
    if (word != 0) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------- shard --

PostingShard::PostingShard(IdentityId first, std::size_t universe,
                           std::span<const std::span<const ProviderId>> lists)
    : first_(first), universe_(universe) {
  offsets_.reserve(lists.size());
  presence_.assign((universe + 63) / 64, 0);
  std::size_t payload = 0;
  for (const auto& list : lists) {
    const PostingCodec codec = choose_codec(list.size(), universe);
    payload += codec == PostingCodec::kBitvector
                   ? bitvector_encoded_bytes(list.size(), universe)
                   : codec == PostingCodec::kEliasFano
                         ? elias_fano_encoded_bytes(list.size(), universe)
                         : 0;
  }
  arena_.reserve(payload);
  for (const auto& list : lists) {
    const PostingCodec codec = choose_codec(list.size(), universe);
    const std::size_t offset = arena_.size();
    require(offset <= (std::size_t{1} << 30) - 1,
            "PostingShard: arena exceeds the 1 GiB tagged-offset ceiling");
    offsets_.push_back(static_cast<std::uint32_t>(offset << 2) |
                       static_cast<std::uint32_t>(codec));
    encode_postings(codec, list, universe, arena_);
    for (const ProviderId p : list) {
      presence_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }
}

PostingShard::PostingShard(IdentityId first, std::size_t universe,
                           std::vector<std::uint32_t> tagged_offsets,
                           std::vector<std::uint8_t> arena)
    : first_(first),
      universe_(universe),
      offsets_(std::move(tagged_offsets)),
      arena_(std::move(arena)) {
  rebuild_presence();
}

std::span<const std::uint8_t> PostingShard::row_span(std::size_t row) const {
  const std::size_t offset = offsets_[row] >> 2;
  if (offset > arena_.size()) {
    throw SerializeError("PostingShard: row offset beyond the arena");
  }
  return std::span<const std::uint8_t>(arena_).subspan(offset);
}

void PostingShard::decode_row(std::size_t row,
                              std::vector<ProviderId>& out) const {
  decode_postings(codec_of(row), row_span(row), universe_, out);
}

std::size_t PostingShard::row_count(std::size_t row) const {
  return decode_count(codec_of(row), row_span(row));
}

bool PostingShard::provider_present(ProviderId p) const noexcept {
  if (p >= universe_) return false;
  return (presence_[p >> 6] >> (p & 63)) & 1;
}

std::size_t PostingShard::row_payload_bytes(std::size_t row) const {
  switch (codec_of(row)) {
    case PostingCodec::kEmpty:
      return 0;
    case PostingCodec::kBitvector:
      return bitvector_encoded_bytes(row_count(row), universe_);
    case PostingCodec::kEliasFano:
      return elias_fano_encoded_bytes(row_count(row), universe_);
  }
  return 0;
}

std::size_t PostingShard::resident_bytes() const noexcept {
  return arena_.capacity() * sizeof(std::uint8_t) +
         offsets_.capacity() * sizeof(std::uint32_t) +
         presence_.capacity() * sizeof(std::uint64_t);
}

void PostingShard::rebuild_presence() {
  presence_.assign((universe_ + 63) / 64, 0);
  std::vector<ProviderId> scratch;
  std::size_t expected_offset = 0;
  for (std::size_t row = 0; row < offsets_.size(); ++row) {
    if ((offsets_[row] & 3u) == 3u) {
      throw SerializeError("PostingShard: unknown codec tag");
    }
    const std::size_t offset = offsets_[row] >> 2;
    // Offsets must be the exact prefix sums of the row encodings — no gaps,
    // no overlaps — so one flipped offset bit cannot silently alias rows.
    if (offset != expected_offset) {
      throw SerializeError("PostingShard: row offset breaks the arena tiling");
    }
    decode_row(row, scratch);  // bounds-checked; throws on malformed rows
    expected_offset = offset + row_payload_bytes(row);
  }
  if (expected_offset != arena_.size()) {
    throw SerializeError("PostingShard: arena larger than its rows");
  }
  // Presence fill wants the decoded rows too; do it in a second pass so the
  // validation above stays readable. (Load-time only; not a hot path.)
  for (std::size_t row = 0; row < offsets_.size(); ++row) {
    decode_row(row, scratch);
    for (const ProviderId p : scratch) {
      presence_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }
}

// ---------------------------------------------------------------- index --

PostingIndex::PostingIndex(const eppi::BitMatrix& published,
                           std::size_t shard_span)
    : providers_(published.rows()),
      identities_(published.cols()),
      shard_span_(shard_span) {
  require(shard_span_ > 0 && shard_span_ % 64 == 0,
          "PostingIndex: shard span must be a positive multiple of 64");
  shards_.reserve((identities_ + shard_span_ - 1) / shard_span_);
  for (std::size_t first = 0; first < identities_; first += shard_span_) {
    const std::size_t n = std::min(shard_span_, identities_ - first);
    shards_.push_back(std::make_shared<const PostingShard>(
        shard_from_matrix(published, first, n)));
  }
}

PostingIndex::PostingIndex(std::size_t providers,
                           std::span<const std::vector<ProviderId>> lists,
                           std::size_t shard_span)
    : providers_(providers), identities_(lists.size()),
      shard_span_(shard_span) {
  require(shard_span_ > 0 && shard_span_ % 64 == 0,
          "PostingIndex: shard span must be a positive multiple of 64");
  shards_.reserve((identities_ + shard_span_ - 1) / shard_span_);
  std::vector<std::span<const ProviderId>> slice;
  for (std::size_t first = 0; first < identities_; first += shard_span_) {
    const std::size_t n = std::min(shard_span_, identities_ - first);
    slice.assign(lists.begin() + first, lists.begin() + first + n);
    shards_.push_back(std::make_shared<const PostingShard>(
        PostingShard(static_cast<IdentityId>(first), providers, slice)));
  }
}

PostingIndex::PostingIndex(
    std::size_t providers, std::size_t identities, std::size_t shard_span,
    std::vector<std::shared_ptr<const PostingShard>> shards)
    : providers_(providers),
      identities_(identities),
      shard_span_(shard_span),
      shards_(std::move(shards)) {
  if (shard_span_ == 0 || shard_span_ % 64 != 0) {
    throw SerializeError("PostingIndex: bad shard span");
  }
  const std::size_t expected =
      (identities_ + shard_span_ - 1) / shard_span_;
  if (shards_.size() != expected) {
    throw SerializeError("PostingIndex: shard count does not tile identities");
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const auto& s = shards_[k];
    const std::size_t first = k * shard_span_;
    if (s == nullptr || s->first_identity() != first ||
        s->rows() != std::min(shard_span_, identities_ - first) ||
        s->universe() != providers_) {
      throw SerializeError("PostingIndex: shard geometry mismatch");
    }
  }
}

PostingIndex::PostingIndex(const PostingIndex& base,
                           const eppi::BitMatrix& published,
                           std::span<const IdentityId> affected,
                           std::span<const ProviderId> touched)
    : providers_(published.rows()),
      identities_(published.cols()),
      shard_span_(base.shard_span_) {
  require(base.providers_ <= published.rows() &&
              base.identities_ <= published.cols(),
          "PostingIndex: splice base larger than published matrix");
  const std::size_t count =
      (identities_ + shard_span_ - 1) / shard_span_;
  std::vector<std::uint8_t> dirty(count, 0);
  for (const IdentityId j : affected) {
    require(j < identities_, "PostingIndex: affected identity out of range");
    dirty[j / shard_span_] = 1;
  }
  for (const ProviderId p : touched) {
    require(p < providers_, "PostingIndex: touched provider out of range");
  }
  // A provider-count change alters every row's universe, hence every
  // encoding: nothing from the base is reusable.
  const bool universe_changed = providers_ != base.providers_;

  shards_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t first = k * shard_span_;
    const std::size_t n = std::min(shard_span_, identities_ - first);
    bool reuse = !universe_changed && !dirty[k] &&
                 k < base.shards_.size() && base.shards_[k]->rows() == n;
    if (reuse) {
      for (const ProviderId p : touched) {
        if (base.shards_[k]->provider_present(p) ||
            row_range_any(published, p, first, first + n)) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      shards_.push_back(base.shards_[k]);
    } else {
      shards_.push_back(std::make_shared<const PostingShard>(
          shard_from_matrix(published, first, n)));
    }
  }
}

void PostingIndex::locate(IdentityId identity, std::size_t& shard,
                          std::size_t& row) const {
  require(identity < identities_, "PostingIndex: unknown identity");
  shard = identity / shard_span_;
  row = identity % shard_span_;
}

std::vector<ProviderId> PostingIndex::query(IdentityId identity) const {
  std::vector<ProviderId> out;
  query_into(identity, out);
  return out;
}

void PostingIndex::query_into(IdentityId identity,
                              std::vector<ProviderId>& out) const {
  std::size_t shard = 0, row = 0;
  locate(identity, shard, row);
  shards_[shard]->decode_row(row, out);
}

std::size_t PostingIndex::apparent_frequency(IdentityId identity) const {
  std::size_t shard = 0, row = 0;
  locate(identity, shard, row);
  return shards_[shard]->row_count(row);
}

PostingIndex::MemoryFootprint PostingIndex::memory_footprint()
    const noexcept {
  MemoryFootprint fp;
  fp.shards = shards_.size();
  fp.resident_bytes +=
      shards_.capacity() * sizeof(std::shared_ptr<const PostingShard>);
  for (const auto& shard : shards_) {
    fp.resident_bytes += sizeof(PostingShard) + shard->resident_bytes();
    for (std::size_t row = 0; row < shard->rows(); ++row) {
      const std::size_t bytes = shard->row_payload_bytes(row);
      auto& codec = fp.by_codec[static_cast<std::size_t>(shard->codec_of(row))];
      ++codec.rows;
      codec.payload_bytes += bytes;
      fp.payload_bytes += bytes;
    }
  }
  return fp;
}

PpiIndex PostingIndex::to_matrix_index() const {
  eppi::BitMatrix matrix(providers_, identities_);
  std::vector<ProviderId> scratch;
  for (const auto& shard : shards_) {
    for (std::size_t row = 0; row < shard->rows(); ++row) {
      shard->decode_row(row, scratch);
      for (const ProviderId p : scratch) {
        matrix.set(p, shard->first_identity() + row, true);
      }
    }
  }
  return PpiIndex(std::move(matrix));
}

}  // namespace eppi::core
