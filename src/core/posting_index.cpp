#include "core/posting_index.h"

#include "common/error.h"

namespace eppi::core {

PostingIndex::PostingIndex(const PpiIndex& index)
    : providers_(index.providers()), postings_(index.identities()) {
  const auto& matrix = index.matrix();
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    // Walk the packed words so construction is O(set bits + words).
    const std::uint64_t* words = matrix.row_words(i);
    for (std::size_t w = 0; w < matrix.words_per_row(); ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        const std::size_t j = w * 64 + bit;
        postings_[j].push_back(static_cast<ProviderId>(i));
        word &= word - 1;
      }
    }
  }
}

const std::vector<ProviderId>& PostingIndex::query(IdentityId identity) const {
  require(identity < postings_.size(), "PostingIndex: unknown identity");
  return postings_[identity];
}

std::size_t PostingIndex::apparent_frequency(IdentityId identity) const {
  return query(identity).size();
}

std::size_t PostingIndex::posting_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& list : postings_) {
    total += list.size() * sizeof(ProviderId);
  }
  return total;
}

PpiIndex PostingIndex::to_matrix_index() const {
  eppi::BitMatrix matrix(providers_, postings_.size());
  for (std::size_t j = 0; j < postings_.size(); ++j) {
    for (const ProviderId p : postings_[j]) {
      matrix.set(p, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

}  // namespace eppi::core
