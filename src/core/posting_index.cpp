#include "core/posting_index.h"

#include <algorithm>

#include "common/error.h"

namespace eppi::core {

PostingIndex::PostingIndex(const eppi::BitMatrix& matrix)
    : providers_(matrix.rows()), postings_(matrix.cols()) {
  // First pass: exact per-list sizes, so each posting list is allocated
  // once with zero slack (a long-lived serving snapshot should not carry
  // push_back growth headroom for its whole lifetime).
  std::vector<std::size_t> sizes(matrix.cols(), 0);
  for (std::size_t j = 0; j < matrix.cols(); ++j) sizes[j] = matrix.col_count(j);
  for (std::size_t j = 0; j < matrix.cols(); ++j) postings_[j].reserve(sizes[j]);

  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    // Walk the packed words so construction is O(set bits + words).
    const std::uint64_t* words = matrix.row_words(i);
    for (std::size_t w = 0; w < matrix.words_per_row(); ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        const std::size_t j = w * 64 + bit;
        postings_[j].push_back(static_cast<ProviderId>(i));
        word &= word - 1;
      }
    }
  }
}

PostingIndex::PostingIndex(const PostingIndex& base,
                           const eppi::BitMatrix& published,
                           std::span<const IdentityId> affected,
                           std::span<const ProviderId> touched)
    : providers_(published.rows()), postings_(published.cols()) {
  require(base.providers_ <= published.rows() &&
              base.postings_.size() <= published.cols(),
          "PostingIndex: splice base larger than published matrix");
  std::vector<std::uint8_t> is_affected(published.cols(), 0);
  for (const IdentityId j : affected) {
    require(j < published.cols(), "PostingIndex: affected identity out of range");
    is_affected[j] = 1;
  }
  for (std::size_t j = 0; j < published.cols(); ++j) {
    if (is_affected[j] == 0 && j < base.postings_.size()) {
      std::vector<ProviderId> list = base.postings_[j];
      // Patch the touched provider rows: a joined provider gains noise bits
      // outside the affected columns, a retired one loses its whole row.
      for (const ProviderId p : touched) {
        require(p < published.rows(), "PostingIndex: touched provider out of range");
        const bool want = published.get(p, j);
        const auto pos = std::lower_bound(list.begin(), list.end(), p);
        const bool have = pos != list.end() && *pos == p;
        if (want && !have) {
          list.insert(pos, p);
        } else if (!want && have) {
          list.erase(pos);
        }
      }
      list.shrink_to_fit();
      postings_[j] = std::move(list);
    } else {
      // Re-invert this column from the published matrix, exact-size like the
      // full constructor.
      std::vector<ProviderId>& list = postings_[j];
      list.reserve(published.col_count(j));
      for (std::size_t i = 0; i < published.rows(); ++i) {
        if (published.get(i, j)) list.push_back(static_cast<ProviderId>(i));
      }
    }
  }
}

const std::vector<ProviderId>& PostingIndex::query(IdentityId identity) const {
  require(identity < postings_.size(), "PostingIndex: unknown identity");
  return postings_[identity];
}

std::size_t PostingIndex::apparent_frequency(IdentityId identity) const {
  return query(identity).size();
}

PostingIndex::MemoryFootprint PostingIndex::memory_footprint() const noexcept {
  MemoryFootprint fp;
  for (const auto& list : postings_) {
    fp.payload_bytes += list.size() * sizeof(ProviderId);
    fp.resident_bytes += list.capacity() * sizeof(ProviderId);
  }
  // The control blocks are resident whether or not the lists hold anything.
  fp.resident_bytes +=
      postings_.capacity() * sizeof(std::vector<ProviderId>);
  return fp;
}

PpiIndex PostingIndex::to_matrix_index() const {
  eppi::BitMatrix matrix(providers_, postings_.size());
  for (std::size_t j = 0; j < postings_.size(); ++j) {
    for (const ProviderId p : postings_[j]) {
      matrix.set(p, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

}  // namespace eppi::core
