// Compressed, sharded posting-list representation of the published PPI.
//
// The PPI server's query work (paper §II-A: "query evaluation in the PPI
// server is trivial") is a column scan in the matrix representation —
// O(m) per query. A locator service fielding high query rates wants the
// inverted form: one sorted posting list of providers per identity, making
// QueryPPI an O(answer) decode. Up to PR 8 that inverted form was
// `vector<vector<ProviderId>>` — 24 bytes of vector header plus malloc
// slack per identity, which is what capped the identity universe far below
// the million-owner north star. PostingIndex now stores every row
// compressed (core/posting_codec.h chooses bitvector vs Elias-Fano per row
// by density) in per-shard byte arenas:
//
//   PostingIndex ── shards_[k] : shared_ptr<const PostingShard>
//                    each covering identities [k·span, (k+1)·span)
//   PostingShard ── offsets_[row] : u32, (arena byte offset << 2) | codec
//                    arena_        : one contiguous encoded-rows buffer
//                    presence_     : per-provider "appears in this shard" bits
//
// Per-identity metadata is 4 bytes (the tagged offset); encodings are
// self-describing (leading varint count) so no end offsets or counts are
// stored. Shards are immutable and individually shared: an incremental
// epoch (PR 8 delta splice) rebuilds only the shards a delta touches and
// aliases the rest from the previous snapshot via shared_ptr — publication
// cost scales with the delta, and the per-provider presence bits are what
// decide "touched" cheaply. The same shard blobs are what eppi-index-v3
// persists verbatim (core/index_io.h), so load never re-encodes and replay
// never materializes the dense matrix.
//
// A constructed PostingIndex is deeply immutable, which is what lets the
// concurrent serving tier (core/epoch_snapshot.h) share one instance across
// reader threads without synchronization.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/posting_codec.h"
#include "core/ppi_index.h"

namespace eppi::core {

// Identities per shard. 2^16 keeps shard arenas comfortably under the u32
// tagged-offset ceiling at any plausible provider count and makes a delta
// rebuild O(span · m/64) per dirty shard. Must stay a multiple of 64 so
// shard ranges are word-aligned in the BitMatrix walk.
inline constexpr std::size_t kDefaultShardSpan = std::size_t{1} << 16;

// One immutable range of compressed posting rows. Built by PostingIndex
// (from a matrix walk, explicit lists, or deserialized v3 sections); query
// decode is bounds-checked so even a CRC-passing-but-hostile arena cannot
// read out of range.
class PostingShard {
 public:
  // Encodes `lists[r]` (sorted provider ids < universe) as the rows of a
  // shard covering identities [first, first + lists.size()). Spans, not
  // vectors, so the matrix-inversion path can feed slices of one flat
  // entries buffer without per-row allocations.
  PostingShard(IdentityId first, std::size_t universe,
               std::span<const std::span<const ProviderId>> lists);

  // Adopts serialized storage (the v3 on-disk form). Decodes every row once
  // to validate the arena and rebuild the presence bits; throws
  // SerializeError on any malformed row or offset.
  PostingShard(IdentityId first, std::size_t universe,
               std::vector<std::uint32_t> tagged_offsets,
               std::vector<std::uint8_t> arena);

  IdentityId first_identity() const noexcept { return first_; }
  std::size_t rows() const noexcept { return offsets_.size(); }
  std::size_t universe() const noexcept { return universe_; }

  PostingCodec codec_of(std::size_t row) const noexcept {
    return static_cast<PostingCodec>(offsets_[row] & 3u);
  }

  // Decodes row `row`'s provider ids (sorted ascending) into `out`,
  // replacing its contents.
  void decode_row(std::size_t row, std::vector<ProviderId>& out) const;

  // O(1)-ish: reads only the row's leading count varint.
  std::size_t row_count(std::size_t row) const;

  // Whether provider `p` appears in any row of this shard — the splice
  // path's cheap "is this shard touched" test.
  bool provider_present(ProviderId p) const noexcept;

  // Serialized storage views (what v3 persists).
  std::span<const std::uint32_t> tagged_offsets() const noexcept {
    return offsets_;
  }
  std::span<const std::uint8_t> arena() const noexcept { return arena_; }

  // Encoded payload bytes of one row (no padding), derived from its count.
  std::size_t row_payload_bytes(std::size_t row) const;

  // Heap bytes this shard holds (arena + offsets + presence, capacities).
  std::size_t resident_bytes() const noexcept;

 private:
  std::span<const std::uint8_t> row_span(std::size_t row) const;
  void rebuild_presence();  // decodes all rows; validates; fills presence_

  IdentityId first_ = 0;
  std::size_t universe_ = 0;
  std::vector<std::uint32_t> offsets_;   // (byte offset << 2) | codec
  std::vector<std::uint8_t> arena_;
  std::vector<std::uint64_t> presence_;  // ⌈universe/64⌉ provider bits
};

class PostingIndex {
 public:
  PostingIndex() = default;
  explicit PostingIndex(const PpiIndex& index)
      : PostingIndex(index.matrix()) {}
  // Directly from a published matrix (avoids wrapping a BitMatrix copy in a
  // temporary PpiIndex just to invert it). `shard_span` is overridable for
  // tests that want many small shards; it must be a multiple of 64.
  explicit PostingIndex(const eppi::BitMatrix& published,
                        std::size_t shard_span = kDefaultShardSpan);

  // From explicit posting lists (sorted provider ids < providers). The
  // storage-replay path builds epochs this way — no dense matrix involved.
  PostingIndex(std::size_t providers,
               std::span<const std::vector<ProviderId>> lists,
               std::size_t shard_span = kDefaultShardSpan);

  // From deserialized shards (the v3 load path). The shards must tile
  // [0, identities) in order with `shard_span` geometry and agree on
  // `providers`; throws SerializeError otherwise.
  PostingIndex(std::size_t providers, std::size_t identities,
               std::size_t shard_span,
               std::vector<std::shared_ptr<const PostingShard>> shards);

  // Partial-refresh constructor for incremental epochs: shares every shard
  // of `base` that the delta provably does not touch and rebuilds only the
  // dirty ones from `published`. A shard is dirty iff an `affected`
  // identity falls in its range, or a `touched` provider either appears in
  // the base shard or has a published bit inside the range (a joined
  // provider's noise bits land anywhere). If the provider universe changed
  // every encoding changes, so everything is rebuilt. The result is
  // immutable; sharing is by shared_ptr, never by mutation.
  PostingIndex(const PostingIndex& base, const eppi::BitMatrix& published,
               std::span<const IdentityId> affected,
               std::span<const ProviderId> touched);

  std::size_t providers() const noexcept { return providers_; }
  std::size_t identities() const noexcept { return identities_; }

  // QueryPPI: the posting list (sorted, ascending provider ids). Throws
  // ConfigError for an identity the index was not built over. Decodes into
  // a fresh vector; hot callers use query_into to reuse a buffer.
  std::vector<ProviderId> query(IdentityId identity) const;

  // Zero-allocation query path: clears `out` and appends the posting list.
  void query_into(IdentityId identity, std::vector<ProviderId>& out) const;

  // Apparent frequency without materializing the list (count varint peek).
  std::size_t apparent_frequency(IdentityId identity) const;

  // Memory accounting for capacity planning. `payload_bytes` is the encoded
  // row bytes alone (what v3 persists, minus framing); `resident_bytes` is
  // what the process actually holds: arenas with alignment padding and
  // allocation slack, tagged offsets, presence bitmaps, and the shard
  // control structures. The per-codec split is the compression story —
  // `eppi_index_bytes{codec=...}` in the obs registry comes from here.
  struct CodecFootprint {
    std::size_t rows = 0;
    std::size_t payload_bytes = 0;
  };
  struct MemoryFootprint {
    std::size_t payload_bytes = 0;
    std::size_t resident_bytes = 0;
    std::array<CodecFootprint, kPostingCodecCount> by_codec{};
    std::size_t shards = 0;
  };
  MemoryFootprint memory_footprint() const noexcept;

  // Payload bytes only (kept for existing callers; see memory_footprint for
  // what a capacity plan should use).
  std::size_t posting_bytes() const noexcept {
    return memory_footprint().payload_bytes;
  }

  // Shard topology (for persistence, fsck and the differential tests).
  std::size_t shard_span() const noexcept { return shard_span_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  const std::shared_ptr<const PostingShard>& shard(std::size_t k) const {
    return shards_[k];
  }

  // Back-conversion (exact inverse of the constructors). Construction-tier
  // only — the serving/replay paths never call this.
  PpiIndex to_matrix_index() const;

 private:
  void locate(IdentityId identity, std::size_t& shard,
              std::size_t& row) const;

  std::size_t providers_ = 0;
  std::size_t identities_ = 0;
  std::size_t shard_span_ = kDefaultShardSpan;
  std::vector<std::shared_ptr<const PostingShard>> shards_;
};

}  // namespace eppi::core
