// Posting-list representation of the published PPI for the serving tier.
//
// The PPI server's query work (paper §II-A: "query evaluation in the PPI
// server is trivial") is a column scan in the matrix representation —
// O(m) per query. A locator service fielding high query rates wants the
// inverted form: one sorted posting list of providers per identity, making
// QueryPPI an O(answer) copy. PostingIndex is that serving-tier view; it is
// constructed from (and convertible back to) the canonical PpiIndex and
// answers queries identically (property-tested).
//
// A constructed PostingIndex is logically immutable — every member is
// const — which is what lets the concurrent serving tier
// (core/epoch_snapshot.h) share one instance across reader threads without
// synchronization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ppi_index.h"

namespace eppi::core {

class PostingIndex {
 public:
  PostingIndex() = default;
  explicit PostingIndex(const PpiIndex& index)
      : PostingIndex(index.matrix()) {}
  // Directly from a published matrix (avoids wrapping a BitMatrix copy in a
  // temporary PpiIndex just to invert it).
  explicit PostingIndex(const eppi::BitMatrix& published);

  // Partial-refresh constructor for incremental epochs: copies `base`'s
  // posting lists verbatim except for the `affected` identity columns
  // (re-inverted from `published`) and the `touched` provider rows (patched
  // into every copied list where their published bit moved — joined or
  // retired providers change cells outside the affected columns). The
  // result shares no memory with `base`, so the serving tier's immutability
  // contract is untouched; `published` may be larger than `base`'s shape
  // (growth only).
  PostingIndex(const PostingIndex& base, const eppi::BitMatrix& published,
               std::span<const IdentityId> affected,
               std::span<const ProviderId> touched);

  std::size_t providers() const noexcept { return providers_; }
  std::size_t identities() const noexcept { return postings_.size(); }

  // QueryPPI: the posting list (sorted, ascending provider ids). Throws
  // ConfigError for an identity the index was not built over.
  const std::vector<ProviderId>& query(IdentityId identity) const;

  // Apparent frequency without materializing the list.
  std::size_t apparent_frequency(IdentityId identity) const;

  // Memory accounting for capacity planning. `payload_bytes` is the posting
  // entries alone; `resident_bytes` additionally counts what the process
  // actually holds for them: per-list allocation capacity (slack) and the
  // std::vector control blocks. Quoting payload alone undercounts — an
  // all-empty index still keeps one control block per identity resident.
  struct MemoryFootprint {
    std::size_t payload_bytes = 0;
    std::size_t resident_bytes = 0;
  };
  MemoryFootprint memory_footprint() const noexcept;

  // Payload bytes only (kept for existing callers; see memory_footprint for
  // what a capacity plan should use).
  std::size_t posting_bytes() const noexcept {
    return memory_footprint().payload_bytes;
  }

  // Back-conversion (exact inverse of the constructor).
  PpiIndex to_matrix_index() const;

 private:
  std::size_t providers_ = 0;
  std::vector<std::vector<ProviderId>> postings_;
};

}  // namespace eppi::core
