// Posting-list representation of the published PPI for the serving tier.
//
// The PPI server's query work (paper §II-A: "query evaluation in the PPI
// server is trivial") is a column scan in the matrix representation —
// O(m) per query. A locator service fielding high query rates wants the
// inverted form: one sorted posting list of providers per identity, making
// QueryPPI an O(answer) copy. PostingIndex is that serving-tier view; it is
// constructed from (and convertible back to) the canonical PpiIndex and
// answers queries identically (property-tested).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ppi_index.h"

namespace eppi::core {

class PostingIndex {
 public:
  PostingIndex() = default;
  explicit PostingIndex(const PpiIndex& index);

  std::size_t providers() const noexcept { return providers_; }
  std::size_t identities() const noexcept { return postings_.size(); }

  // QueryPPI: the posting list (sorted, ascending provider ids).
  const std::vector<ProviderId>& query(IdentityId identity) const;

  // Apparent frequency without materializing the list.
  std::size_t apparent_frequency(IdentityId identity) const;

  // Total memory the postings occupy (for capacity planning).
  std::size_t posting_bytes() const noexcept;

  // Back-conversion (exact inverse of the constructor).
  PpiIndex to_matrix_index() const;

 private:
  std::size_t providers_ = 0;
  std::vector<std::vector<ProviderId>> postings_;
};

}  // namespace eppi::core
