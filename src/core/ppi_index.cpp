#include "core/ppi_index.h"

#include "common/error.h"

namespace eppi::core {

std::vector<ProviderId> PpiIndex::query(IdentityId identity) const {
  require(identity < published_.cols(), "PpiIndex::query: unknown identity");
  std::vector<ProviderId> result;
  for (std::size_t i = 0; i < published_.rows(); ++i) {
    if (published_.get(i, identity)) {
      result.push_back(static_cast<ProviderId>(i));
    }
  }
  return result;
}

std::size_t PpiIndex::apparent_frequency(IdentityId identity) const {
  require(identity < published_.cols(),
          "PpiIndex::apparent_frequency: unknown identity");
  return published_.col_count(identity);
}

}  // namespace eppi::core
