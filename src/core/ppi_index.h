// The published PPI and its query interface (paper §II-A).
//
// Once constructed, the PPI server holds the obscured matrix M' and answers
// QueryPPI(t_j) with the list of providers that published 1 for identity j.
// Query evaluation is trivial by design — the PPI's privacy comes entirely
// from the noise baked into M' at construction time, and no cryptography is
// involved at query-serving time (a stated performance motivation of the
// paper versus searchable encryption).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"

namespace eppi::core {

using ProviderId = std::uint32_t;
using IdentityId = std::uint32_t;

class PpiIndex {
 public:
  PpiIndex() = default;
  explicit PpiIndex(eppi::BitMatrix published)
      : published_(std::move(published)) {}

  std::size_t providers() const noexcept { return published_.rows(); }
  std::size_t identities() const noexcept { return published_.cols(); }
  const eppi::BitMatrix& matrix() const noexcept { return published_; }

  // QueryPPI(t_j): all providers that may hold identity j's records.
  std::vector<ProviderId> query(IdentityId identity) const;

  // Published (apparent) frequency of an identity — what an attacker can
  // read off the public PPI data.
  std::size_t apparent_frequency(IdentityId identity) const;

 private:
  eppi::BitMatrix published_;
};

}  // namespace eppi::core
