#include "core/publisher.h"

#include "common/error.h"

namespace eppi::core {

std::vector<std::uint8_t> publish_row(std::span<const std::uint8_t> local,
                                      std::span<const double> betas,
                                      eppi::Rng& rng) {
  require(local.size() == betas.size(), "publish_row: size mismatch");
  std::vector<std::uint8_t> published(local.size());
  for (std::size_t j = 0; j < local.size(); ++j) {
    require(local[j] <= 1, "publish_row: membership bits must be Boolean");
    if (local[j] != 0) {
      published[j] = 1;  // 1 -> 1, always
    } else {
      published[j] = rng.bernoulli(betas[j]) ? 1 : 0;  // 0 -> 1 w.p. β
    }
  }
  return published;
}

eppi::BitMatrix publish_matrix(const eppi::BitMatrix& truth,
                               std::span<const double> betas,
                               eppi::Rng& rng) {
  require(betas.size() == truth.cols(), "publish_matrix: beta count");
  eppi::BitMatrix published(truth.rows(), truth.cols());
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      if (truth.get(i, j)) {
        published.set(i, j, true);
      } else if (rng.bernoulli(betas[j])) {
        published.set(i, j, true);
      }
    }
  }
  return published;
}

std::vector<double> false_positive_rates(const eppi::BitMatrix& truth,
                                         const eppi::BitMatrix& published) {
  require(truth.rows() == published.rows() && truth.cols() == published.cols(),
          "false_positive_rates: shape mismatch");
  std::vector<double> rates(truth.cols(), 0.0);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    std::size_t false_pos = 0;
    std::size_t true_pos = 0;
    for (std::size_t i = 0; i < truth.rows(); ++i) {
      if (!published.get(i, j)) continue;
      if (truth.get(i, j)) {
        ++true_pos;
      } else {
        ++false_pos;
      }
    }
    const std::size_t total = true_pos + false_pos;
    rates[j] = total == 0 ? 0.0
                          : static_cast<double>(false_pos) /
                                static_cast<double>(total);
  }
  return rates;
}

bool full_recall(const eppi::BitMatrix& truth,
                 const eppi::BitMatrix& published) {
  require(truth.rows() == published.rows() && truth.cols() == published.cols(),
          "full_recall: shape mismatch");
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      if (truth.get(i, j) && !published.get(i, j)) return false;
    }
  }
  return true;
}

}  // namespace eppi::core
