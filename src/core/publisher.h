// Randomized publication (paper Eq. 2).
//
// Each provider publishes its private membership bit for identity j by the
// rule
//     1 -> 1                      (truthful: guarantees 100% query recall)
//     0 -> 1 with probability β_j (false positive: the privacy noise)
//     0 -> 0 otherwise
//
// Providers run the rule independently; for a non-common identity this makes
// the number of false positives a sum of m(1−σ_j) Bernoulli trials — the
// model under which the β policies give their guarantees.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::core {

// Publishes one provider's row. `local` is the provider's private membership
// vector (bit per identity); `betas` the per-identity publishing
// probabilities in [0,1]. Returns the published row.
std::vector<std::uint8_t> publish_row(std::span<const std::uint8_t> local,
                                      std::span<const double> betas,
                                      eppi::Rng& rng);

// Publishes a whole network at once (the centralized constructor and the
// effectiveness experiments use this form).
eppi::BitMatrix publish_matrix(const eppi::BitMatrix& truth,
                               std::span<const double> betas, eppi::Rng& rng);

// Achieved per-identity false positive rate of a published matrix:
// fp_j = X / (X + σ_j·m), X = #providers published 1 but truly 0 (paper
// §II-C). Returns 0 for identities with an empty published column.
std::vector<double> false_positive_rates(const eppi::BitMatrix& truth,
                                         const eppi::BitMatrix& published);

// Verifies the truthful-publication invariant: every true 1 is published 1.
bool full_recall(const eppi::BitMatrix& truth,
                 const eppi::BitMatrix& published);

}  // namespace eppi::core
