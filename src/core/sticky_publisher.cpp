#include "core/sticky_publisher.h"

#include <cmath>

#include "common/error.h"

namespace eppi::core {

namespace {

// Two rounds of a splitmix64-style finalizer over the (key, identity) pair:
// cheap, stateless and statistically indistinguishable from uniform for
// this purpose (the adversary never sees raw draws, only threshold bits).
std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t StickyPublisher::draw(std::uint64_t identity) const noexcept {
  return mix(mix(key_ ^ 0x9e3779b97f4a7c15ULL) + identity);
}

bool StickyPublisher::noise_bit(std::uint64_t identity,
                                double beta) const noexcept {
  if (beta <= 0.0) return false;
  if (beta >= 1.0) return true;
  const long double scaled =
      static_cast<long double>(beta) * 18446744073709551616.0L;  // beta * 2^64
  const std::uint64_t threshold =
      scaled >= 18446744073709551615.0L
          ? ~std::uint64_t{0}
          : static_cast<std::uint64_t>(scaled);
  return draw(identity) < threshold;
}

std::vector<std::uint8_t> StickyPublisher::publish_row(
    std::span<const std::uint8_t> local,
    std::span<const double> betas) const {
  require(local.size() == betas.size(),
          "StickyPublisher: row/beta size mismatch");
  std::vector<std::uint8_t> published(local.size());
  for (std::size_t j = 0; j < local.size(); ++j) {
    require(local[j] <= 1, "StickyPublisher: membership bits must be Boolean");
    published[j] =
        (local[j] != 0 || noise_bit(j, betas[j])) ? 1 : 0;
  }
  return published;
}

eppi::BitMatrix sticky_publish_matrix(const eppi::BitMatrix& truth,
                                      std::span<const double> betas,
                                      std::span<const std::uint64_t> keys) {
  require(betas.size() == truth.cols(),
          "sticky_publish_matrix: beta count mismatch");
  require(keys.size() == truth.rows(),
          "sticky_publish_matrix: one key per provider required");
  eppi::BitMatrix published(truth.rows(), truth.cols());
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    const StickyPublisher publisher(keys[i]);
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      if (truth.get(i, j) || publisher.noise_bit(j, betas[j])) {
        published.set(i, j, true);
      }
    }
  }
  return published;
}

std::vector<std::vector<std::uint32_t>> sticky_publish_postings(
    const eppi::BitMatrix& truth, std::span<const double> betas,
    std::span<const std::uint64_t> keys) {
  require(betas.size() == truth.cols(),
          "sticky_publish_postings: beta count mismatch");
  require(keys.size() == truth.rows(),
          "sticky_publish_postings: one key per provider required");
  std::vector<std::vector<std::uint32_t>> lists(truth.cols());
  // Provider-major walk appends ascending provider ids, so every list
  // comes out sorted — exactly what the PostingIndex list constructor
  // requires.
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    const StickyPublisher publisher(keys[i]);
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      if (truth.get(i, j) || publisher.noise_bit(j, betas[j])) {
        lists[j].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return lists;
}

}  // namespace eppi::core
