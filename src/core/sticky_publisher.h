// Keyed, re-publication-stable randomized publication.
//
// The paper's privacy analysis (§III-C) notes that ε-PPI resists repeated
// attacks *because the index is static*: re-drawing fresh noise on every
// reconstruction would let an observer intersect successive snapshots and
// strip the false positives (only true positives survive every draw). But a
// real deployment must reconstruct — memberships change, owners adjust ε.
//
// StickyPublisher closes that gap: each provider derives its noise from a
// PRF over (secret key, identity), not from fresh randomness. Properties:
//
//  * Deterministic: unchanged (key, identity, β) ⇒ identical noise across
//    reconstructions, so snapshots of unchanged data are bit-identical and
//    intersection reveals nothing new.
//  * Monotone in β: the noise bit is PRF(key, j) < β·2⁶⁴, so raising an
//    owner's ε only ever *adds* false positives and lowering it only
//    removes them — successive snapshots differ exactly where the privacy
//    requirement changed, never by gratuitous re-rolls.
//  * Marginally uniform: across keys, each noise bit is Bernoulli(β), so
//    every quantitative guarantee of the β policies carries over unchanged
//    (verified statistically in tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_matrix.h"

namespace eppi::core {

class StickyPublisher {
 public:
  // `key` is the provider's long-lived publication secret.
  explicit StickyPublisher(std::uint64_t key) noexcept : key_(key) {}

  // The PRF draw for identity j, uniform in [0, 2^64).
  std::uint64_t draw(std::uint64_t identity) const noexcept;

  // Noise decision: publish a false positive for identity j at rate beta.
  bool noise_bit(std::uint64_t identity, double beta) const noexcept;

  // Publishes one provider row under the sticky rule (true bits always 1).
  std::vector<std::uint8_t> publish_row(
      std::span<const std::uint8_t> local,
      std::span<const double> betas) const;

 private:
  std::uint64_t key_;
};

// Whole-matrix helper: provider i publishes with StickyPublisher(keys[i]).
eppi::BitMatrix sticky_publish_matrix(const eppi::BitMatrix& truth,
                                      std::span<const double> betas,
                                      std::span<const std::uint64_t> keys);

// Posting-space publication: the same sticky rule emitted directly as one
// sorted provider list per identity — the form the compressed PostingIndex
// ingests, with no m×n matrix in between. Bit-identical to inverting
// sticky_publish_matrix (pinned by the differential harness); the output
// of choice at million-identity scale, where the dense intermediate is the
// thing being avoided.
std::vector<std::vector<std::uint32_t>> sticky_publish_postings(
    const eppi::BitMatrix& truth, std::span<const double> betas,
    std::span<const std::uint64_t> keys);

}  // namespace eppi::core
