#include "dataset/collection_table.h"

#include <istream>
#include <ostream>

#include "common/error.h"

namespace eppi::dataset {

CollectionTable load_collection_table(std::istream& in) {
  struct Fact {
    std::size_t provider;
    std::size_t identity;
  };
  std::unordered_map<std::string, std::size_t> provider_ids;
  std::unordered_map<std::string, std::size_t> identity_ids;
  CollectionTable table;
  std::vector<Fact> facts;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos || comma == 0 || comma + 1 >= line.size()) {
      throw SerializeError("collection table: malformed line " +
                           std::to_string(line_no));
    }
    const std::string provider = line.substr(0, comma);
    const std::string identity = line.substr(comma + 1);
    const auto [pit, p_new] =
        provider_ids.try_emplace(provider, provider_ids.size());
    if (p_new) table.provider_names.push_back(provider);
    const auto [iit, i_new] =
        identity_ids.try_emplace(identity, identity_ids.size());
    if (i_new) table.identity_names.push_back(identity);
    facts.push_back(Fact{pit->second, iit->second});
  }

  table.network.membership =
      BitMatrix(table.provider_names.size(), table.identity_names.size());
  for (const Fact& f : facts) {
    table.network.membership.set(f.provider, f.identity, true);
  }
  return table;
}

void save_collection_table(std::ostream& out, const Network& network,
                           const std::vector<std::string>& provider_names,
                           const std::vector<std::string>& identity_names) {
  const auto synth_name = [](char prefix, std::size_t index) {
    std::string name(1, prefix);
    name += std::to_string(index);
    return name;
  };
  const auto provider_name = [&](std::size_t i) {
    return i < provider_names.size() ? provider_names[i] : synth_name('p', i);
  };
  const auto identity_name = [&](std::size_t j) {
    return j < identity_names.size() ? identity_names[j] : synth_name('t', j);
  };
  for (std::size_t i = 0; i < network.providers(); ++i) {
    for (std::size_t j = 0; j < network.identities(); ++j) {
      if (network.membership.get(i, j)) {
        out << provider_name(i) << ',' << identity_name(j) << '\n';
      }
    }
  }
}

}  // namespace eppi::dataset
