// "Collection table" CSV interchange format.
//
// The paper's dataset [23] is a table mapping documents to collections; each
// collection is treated as a provider and each document's source URL as an
// owner identity. This module reads and writes that shape as CSV lines
//
//   collection_id,identity
//
// (one line per membership fact; duplicates are idempotent), so users with a
// real collection table — or any provider/owner membership dump — can run
// the library on their own data.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/synthetic.h"

namespace eppi::dataset {

struct CollectionTable {
  Network network;
  std::vector<std::string> provider_names;  // row index -> collection id
  std::vector<std::string> identity_names;  // col index -> identity
};

// Parses the CSV from a stream. Throws SerializeError on malformed lines.
CollectionTable load_collection_table(std::istream& in);

// Writes a Network back out using the given (or synthesized) names.
void save_collection_table(std::ostream& out, const Network& network,
                           const std::vector<std::string>& provider_names = {},
                           const std::vector<std::string>& identity_names = {});

}  // namespace eppi::dataset
