#include "dataset/evolution.h"

#include "common/error.h"

namespace eppi::dataset {

EvolutionStep NetworkEvolution::step() {
  const std::size_t m = membership_.rows();
  const std::size_t n = membership_.cols();
  require(m > 0 && n > 0, "NetworkEvolution: empty network");
  EvolutionStep result;

  // Poisson-ish arrival count (geometric thinning keeps it simple and
  // deterministic under the seeded RNG).
  auto arrivals = static_cast<std::size_t>(config_.new_delegations_per_step);
  if (rng_.bernoulli(config_.new_delegations_per_step - arrivals)) {
    ++arrivals;
  }
  for (std::size_t a = 0; a < arrivals; ++a) {
    // Rejection-sample an absent cell (bail out on dense matrices).
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto i = static_cast<std::size_t>(rng_.next_below(m));
      const auto j = static_cast<std::size_t>(rng_.next_below(n));
      if (!membership_.get(i, j)) {
        membership_.set(i, j, true);
        result.added.emplace_back(i, j);
        break;
      }
    }
  }

  if (rng_.bernoulli(config_.purge_probability)) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto i = static_cast<std::size_t>(rng_.next_below(m));
      const auto j = static_cast<std::size_t>(rng_.next_below(n));
      if (membership_.get(i, j)) {
        membership_.set(i, j, false);
        result.removed.emplace_back(i, j);
        break;
      }
    }
  }
  ++steps_;
  return result;
}

}  // namespace eppi::dataset
