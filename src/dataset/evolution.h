// Temporal evolution of an information network.
//
// Drives the epoch-manager scenarios: owners keep visiting providers over
// time (new delegations arrive, rarely a record is purged), and new owners
// join the network. Each step mutates the membership matrix in place and
// reports what changed, so tests and benches can correlate observed
// snapshot churn with ground-truth change.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::dataset {

struct EvolutionConfig {
  // Expected number of new delegations per step.
  double new_delegations_per_step = 5.0;
  // Probability that an existing delegation is purged in a step (applied
  // per step, not per record: at most one purge per step).
  double purge_probability = 0.1;
};

struct EvolutionStep {
  std::vector<std::pair<std::size_t, std::size_t>> added;   // (provider, id)
  std::vector<std::pair<std::size_t, std::size_t>> removed;
};

class NetworkEvolution {
 public:
  NetworkEvolution(eppi::BitMatrix& membership, EvolutionConfig config,
                   eppi::Rng rng)
      : membership_(membership), config_(config), rng_(rng) {}

  // Applies one step of churn and returns what changed.
  EvolutionStep step();

  std::size_t steps_applied() const noexcept { return steps_; }

 private:
  eppi::BitMatrix& membership_;
  EvolutionConfig config_;
  eppi::Rng rng_;
  std::size_t steps_ = 0;
};

}  // namespace eppi::dataset
