#include "dataset/hie_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eppi::dataset {

namespace {

double distance(const std::pair<double, double>& a,
                const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

double HieWorld::mean_visit_spread() const {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t j = 0; j < network.identities(); ++j) {
    std::vector<std::size_t> visited;
    for (std::size_t i = 0; i < network.providers(); ++i) {
      if (network.membership.get(i, j)) visited.push_back(i);
    }
    if (visited.size() < 2) continue;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < visited.size(); ++a) {
      for (std::size_t b = a + 1; b < visited.size(); ++b) {
        sum += distance(provider_positions[visited[a]],
                        provider_positions[visited[b]]);
        ++pairs;
      }
    }
    total += sum / static_cast<double>(pairs);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

HieWorld make_hie_world(const HieModelConfig& config, eppi::Rng& rng) {
  require(config.providers >= 2, "make_hie_world: need providers");
  require(config.patients >= 1, "make_hie_world: need patients");
  require(config.mean_visits >= 1.0, "make_hie_world: mean_visits >= 1");
  require(config.locality > 0.0, "make_hie_world: locality must be positive");
  require(config.traveler_fraction >= 0.0 && config.traveler_fraction <= 1.0,
          "make_hie_world: traveler_fraction in [0,1]");

  HieWorld world;
  world.provider_positions.resize(config.providers);
  for (auto& pos : world.provider_positions) {
    pos = {rng.next_double(), rng.next_double()};
  }
  world.patient_positions.resize(config.patients);
  world.traveler.resize(config.patients);
  world.network.membership =
      eppi::BitMatrix(config.providers, config.patients);

  for (std::size_t j = 0; j < config.patients; ++j) {
    world.patient_positions[j] = {rng.next_double(), rng.next_double()};
    world.traveler[j] = rng.bernoulli(config.traveler_fraction);

    if (world.traveler[j]) {
      // A traveler visits a large uniform subset of providers.
      const auto visits = std::max<std::size_t>(
          1, static_cast<std::size_t>(config.traveler_visit_fraction *
                                      static_cast<double>(config.providers)));
      std::vector<std::size_t> pool(config.providers);
      for (std::size_t i = 0; i < config.providers; ++i) pool[i] = i;
      for (std::size_t k = 0; k < visits; ++k) {
        const std::size_t pick =
            k + static_cast<std::size_t>(rng.next_below(config.providers - k));
        std::swap(pool[k], pool[pick]);
        world.network.membership.set(pool[k], j, true);
      }
      continue;
    }

    // Local patient: distance-weighted sampling without replacement.
    std::vector<double> weight(config.providers);
    double total = 0.0;
    for (std::size_t i = 0; i < config.providers; ++i) {
      weight[i] = std::exp(-distance(world.patient_positions[j],
                                     world.provider_positions[i]) /
                           config.locality);
      total += weight[i];
    }
    // Number of visits: 1 + geometric-ish around the mean.
    std::size_t visits = 1;
    while (visits < config.providers &&
           rng.bernoulli(1.0 - 1.0 / config.mean_visits)) {
      ++visits;
    }
    for (std::size_t v = 0; v < visits; ++v) {
      double draw = rng.next_double() * total;
      std::size_t chosen = config.providers - 1;
      for (std::size_t i = 0; i < config.providers; ++i) {
        if (weight[i] <= 0.0) continue;
        if (draw < weight[i]) {
          chosen = i;
          break;
        }
        draw -= weight[i];
      }
      world.network.membership.set(chosen, j, true);
      total -= weight[chosen];
      weight[chosen] = 0.0;  // without replacement
      if (total <= 0.0) break;
    }
  }
  return world;
}

}  // namespace eppi::dataset
