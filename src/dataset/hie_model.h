// Geographically clustered HIE workload model.
//
// The synthetic generators place an identity's providers uniformly at
// random; real healthcare networks are not like that — patients visit
// hospitals near home, so memberships cluster geographically. This model
// places providers and patients on a unit square and draws each patient's
// visits with probability decaying in distance (nearest hospitals first),
// producing the correlated membership structure a real HIE would feed the
// index.
//
// Why it matters: ε-PPI's per-identity β calculation depends only on each
// identity's *frequency*, so its guarantees are placement-agnostic; the
// grouping baselines, however, interact with placement (a random group is
// unlikely to contain a patient's geographically clustered providers, which
// changes their emergent false-positive behaviour). The clustering ablation
// measures both claims.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace eppi::dataset {

struct HieModelConfig {
  std::size_t providers = 100;
  std::size_t patients = 500;
  // Mean number of hospitals a patient visits.
  double mean_visits = 3.0;
  // Distance decay: visit weight ~ exp(-distance / locality). Small values
  // -> strongly clustered visits; large -> near-uniform.
  double locality = 0.1;
  // Fraction of "traveling" patients whose visits ignore geography (the
  // common-identity candidates of an HIE: referrals, snowbirds, VIPs).
  double traveler_fraction = 0.02;
  double traveler_visit_fraction = 0.8;  // of all providers
};

struct HieWorld {
  Network network;
  std::vector<std::pair<double, double>> provider_positions;
  std::vector<std::pair<double, double>> patient_positions;
  std::vector<bool> traveler;  // per patient

  // Mean pairwise distance between a patient's providers, averaged over
  // patients with >= 2 visits — the clustering statistic (low = clustered).
  double mean_visit_spread() const;
};

HieWorld make_hie_world(const HieModelConfig& config, eppi::Rng& rng);

}  // namespace eppi::dataset
