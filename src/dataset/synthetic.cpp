#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eppi::dataset {

std::vector<std::uint64_t> Network::frequencies() const {
  std::vector<std::uint64_t> freqs(membership.cols());
  for (std::size_t j = 0; j < membership.cols(); ++j) {
    freqs[j] = membership.col_count(j);
  }
  return freqs;
}

namespace {

// Chooses `k` distinct values from [0, m) uniformly (partial Fisher-Yates on
// an index pool).
std::vector<std::size_t> sample_without_replacement(std::size_t m,
                                                    std::size_t k,
                                                    eppi::Rng& rng) {
  std::vector<std::size_t> pool(m);
  for (std::size_t i = 0; i < m; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t pick =
        i + static_cast<std::size_t>(rng.next_below(m - i));
    std::swap(pool[i], pool[pick]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace

Network make_zipf_network(const SyntheticConfig& config, eppi::Rng& rng) {
  require(config.providers >= 1, "make_zipf_network: need providers");
  require(config.identities >= 1, "make_zipf_network: need identities");
  require(config.max_fraction > 0.0 && config.max_fraction <= 1.0,
          "make_zipf_network: max_fraction in (0,1]");
  std::vector<std::uint64_t> freqs(config.identities);
  const auto m = static_cast<double>(config.providers);
  for (std::size_t j = 0; j < config.identities; ++j) {
    const double scale =
        config.max_fraction /
        std::pow(static_cast<double>(j + 1), config.zipf_exponent);
    freqs[j] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(scale * m)));
  }
  return make_network_with_frequencies(config.providers, freqs, rng);
}

Network make_network_with_frequencies(
    std::size_t providers, std::span<const std::uint64_t> frequencies,
    eppi::Rng& rng) {
  require(providers >= 1, "make_network_with_frequencies: need providers");
  Network net;
  net.membership = eppi::BitMatrix(providers, frequencies.size());
  for (std::size_t j = 0; j < frequencies.size(); ++j) {
    require(frequencies[j] <= providers,
            "make_network_with_frequencies: frequency exceeds providers");
    const auto holders = sample_without_replacement(
        providers, static_cast<std::size_t>(frequencies[j]), rng);
    for (const std::size_t i : holders) net.membership.set(i, j, true);
  }
  return net;
}

std::vector<double> random_epsilons(std::size_t n, eppi::Rng& rng, double lo,
                                    double hi) {
  require(lo >= 0.0 && hi <= 1.0 && lo <= hi,
          "random_epsilons: need 0 <= lo <= hi <= 1");
  std::vector<double> eps(n);
  for (auto& e : eps) e = lo + (hi - lo) * rng.next_double();
  return eps;
}

}  // namespace eppi::dataset
