// Synthetic information-network dataset generation.
//
// Substitutes for the TREC-WT10g-derived distributed collection dataset of
// the paper's simulation experiments (§V-A): providers are "small digital
// libraries" and owner identities are document source URLs, so identity
// frequency (how many providers hold an identity) follows a heavy-tailed
// profile with a handful of near-ubiquitous common identities. The generator
// reproduces that profile with a Zipf law over identity ranks, and also
// offers exact-frequency construction for the controlled sweeps of Figs. 4a
// and 5a (where identity frequency is the x-axis).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"

namespace eppi::dataset {

struct SyntheticConfig {
  std::size_t providers = 1000;   // m
  std::size_t identities = 5000;  // n
  double zipf_exponent = 0.9;
  // Frequency (as a fraction of m) of the most common identity; rank r gets
  // max_fraction * (r+1)^-zipf_exponent of m providers (at least 1).
  double max_fraction = 0.9;
};

struct Network {
  eppi::BitMatrix membership;  // providers x identities
  std::size_t providers() const noexcept { return membership.rows(); }
  std::size_t identities() const noexcept { return membership.cols(); }

  // sigma_j * m: number of providers holding identity j.
  std::vector<std::uint64_t> frequencies() const;
};

// Zipf-profile network: identity rank determines frequency; the providers
// holding each identity are chosen uniformly without replacement.
Network make_zipf_network(const SyntheticConfig& config, eppi::Rng& rng);

// Exact-frequency network: identity j appears at exactly frequencies[j]
// providers (each <= m), chosen uniformly.
Network make_network_with_frequencies(
    std::size_t providers, std::span<const std::uint64_t> frequencies,
    eppi::Rng& rng);

// Random per-owner privacy degrees in [lo, hi], the paper's setup for the
// effectiveness experiments ("we randomly generate the privacy degree ε in
// the domain [0,1]").
std::vector<double> random_epsilons(std::size_t n, eppi::Rng& rng,
                                    double lo = 0.0, double hi = 1.0);

}  // namespace eppi::dataset
