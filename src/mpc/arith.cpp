#include "mpc/arith.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"
#include "secret/additive_share.h"

namespace eppi::mpc {

namespace {

constexpr std::uint32_t kTagArith = eppi::net::kUserBase + 40;

std::vector<std::uint8_t> encode_raw(std::span<const std::uint64_t> values) {
  eppi::BinaryWriter w;
  w.write_u64_vector(values);
  return w.take();
}

// Wire path for share vectors: untaint only to serialize toward the party
// that is supposed to hold them.
std::vector<std::uint8_t> encode_shares(
    std::span<const eppi::SecretU64> values) {
  return encode_raw(eppi::wire_shares(values));
}

std::vector<std::uint64_t> decode_raw(std::span<const std::uint8_t> bytes,
                                      std::size_t expected) {
  eppi::BinaryReader r(bytes);
  auto values = r.read_u64_vector();
  if (values.size() != expected) {
    throw eppi::ProtocolError("ArithSession: vector size mismatch");
  }
  return values;
}

std::vector<eppi::SecretU64> decode_shares(std::span<const std::uint8_t> bytes,
                                           std::size_t expected) {
  return eppi::wrap_shares(decode_raw(bytes, expected));
}

}  // namespace

ArithSession::ArithSession(eppi::net::PartyContext& ctx,
                           std::vector<eppi::net::PartyId> parties,
                           eppi::secret::ModRing ring,
                           std::uint64_t seq_base)
    : ctx_(ctx), parties_(std::move(parties)), ring_(ring),
      seq_base_(seq_base) {
  require(parties_.size() >= 2, "ArithSession: need at least two parties");
  const auto self = std::find(parties_.begin(), parties_.end(), ctx.id());
  require(self != parties_.end(), "ArithSession: not a session party");
  me_ = static_cast<std::size_t>(self - parties_.begin());
}

ArithSession::Share ArithSession::add_public(const Share& a,
                                             std::uint64_t k) const {
  // Public constants are carried by party 0's share only.
  return me_ == 0 ? a.add_public(k, ring_) : a;
}

ArithSession::Share ArithSession::scalar_mul(const Share& a,
                                             std::uint64_t k) const {
  return a.scale(k, ring_);
}

std::vector<ArithSession::Share> ArithSession::input_vector(
    eppi::net::PartyId owner, std::span<const std::uint64_t> values,
    std::size_t count) {
  const std::uint64_t seq = next_seq();
  const std::size_t c = parties_.size();
  if (ctx_.id() == owner) {
    require(values.size() == count, "ArithSession: input size mismatch");
    std::vector<std::vector<Share>> per_party(c, std::vector<Share>(count));
    for (std::size_t j = 0; j < count; ++j) {
      const auto shares =
          eppi::secret::split_additive(values[j], c, ring_, ctx_.rng());
      for (std::size_t p = 0; p < c; ++p) per_party[p][j] = shares[p];
    }
    for (std::size_t p = 0; p < c; ++p) {
      if (parties_[p] == owner) continue;
      ctx_.send(parties_[p], kTagArith, seq, encode_shares(per_party[p]));
    }
    if (me_ == 0) ctx_.mark_round();
    // My own share is at my session index.
    return per_party[me_];
  }
  const auto payload = ctx_.recv(owner, kTagArith, seq);
  if (me_ == 0) ctx_.mark_round();
  return decode_shares(payload, count);
}

std::vector<std::uint64_t> ArithSession::exchange_sum(
    std::span<const Share> mine, std::uint64_t seq) {
  const auto encoded = encode_shares(mine);
  for (std::size_t p = 0; p < parties_.size(); ++p) {
    if (p == me_) continue;
    ctx_.send(parties_[p], kTagArith, seq, encoded);
  }
  // Every party broadcast its share: from here the values are public by
  // protocol design, so this reveal is the audited opening.
  std::vector<std::uint64_t> total = eppi::reveal_shares(mine);
  for (std::size_t p = 0; p < parties_.size(); ++p) {
    if (p == me_) continue;
    const auto payload = ctx_.recv(parties_[p], kTagArith, seq);
    const auto incoming = decode_raw(payload, mine.size());
    for (std::size_t j = 0; j < total.size(); ++j) {
      total[j] = ring_.add(total[j], incoming[j]);
    }
  }
  if (me_ == 0) ctx_.mark_round();
  return total;
}

std::vector<ArithSession::Share> ArithSession::mul_batch(
    std::span<const Share> lhs, std::span<const Share> rhs) {
  require(lhs.size() == rhs.size(), "ArithSession: mul_batch size mismatch");
  const std::size_t n = lhs.size();
  if (n == 0) return {};
  const std::size_t c = parties_.size();

  // Preprocessing: dealer generates and distributes arithmetic triples.
  const std::uint64_t triple_seq = next_seq();
  std::vector<Share> a_sh(n), b_sh(n), c_sh(n);
  if (me_ == 0) {
    std::vector<std::vector<Share>> a_parts(c, std::vector<Share>(n));
    auto b_parts = a_parts;
    auto c_parts = a_parts;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t a = ctx_.rng().next_below(ring_.q());
      const std::uint64_t b = ctx_.rng().next_below(ring_.q());
      const std::uint64_t prod = ring_.mul(a, b);
      const auto sa = eppi::secret::split_additive(a, c, ring_, ctx_.rng());
      const auto sb = eppi::secret::split_additive(b, c, ring_, ctx_.rng());
      const auto sc =
          eppi::secret::split_additive(prod, c, ring_, ctx_.rng());
      for (std::size_t p = 0; p < c; ++p) {
        a_parts[p][j] = sa[p];
        b_parts[p][j] = sb[p];
        c_parts[p][j] = sc[p];
      }
    }
    for (std::size_t p = 1; p < c; ++p) {
      eppi::BinaryWriter w;
      w.write_u64_vector(eppi::wire_shares(a_parts[p]));
      w.write_u64_vector(eppi::wire_shares(b_parts[p]));
      w.write_u64_vector(eppi::wire_shares(c_parts[p]));
      ctx_.send(parties_[p], kTagArith, triple_seq, w.take());
    }
    a_sh = std::move(a_parts[0]);
    b_sh = std::move(b_parts[0]);
    c_sh = std::move(c_parts[0]);
    ctx_.mark_round();
  } else {
    const auto payload = ctx_.recv(parties_[0], kTagArith, triple_seq);
    eppi::BinaryReader r(payload);
    const auto raw_a = r.read_u64_vector();
    const auto raw_b = r.read_u64_vector();
    const auto raw_c = r.read_u64_vector();
    if (raw_a.size() != n || raw_b.size() != n || raw_c.size() != n) {
      throw eppi::ProtocolError("ArithSession: bad triple batch");
    }
    a_sh = eppi::wrap_shares(raw_a);
    b_sh = eppi::wrap_shares(raw_b);
    c_sh = eppi::wrap_shares(raw_c);
  }

  // Open d = x - a and e = y - b, batched. The masked differences are still
  // shares until every party's contribution is summed in exchange_sum.
  std::vector<Share> masked(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    masked[2 * j] = lhs[j].sub(a_sh[j], ring_);
    masked[2 * j + 1] = rhs[j].sub(b_sh[j], ring_);
  }
  const auto opened = exchange_sum(masked, next_seq());

  // z = c + d*b + e*a (+ d*e on party 0); d, e are public.
  std::vector<Share> out(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t d = opened[2 * j];
    const std::uint64_t e = opened[2 * j + 1];
    Share z = c_sh[j].add(b_sh[j].scale(d, ring_), ring_);
    z = z.add(a_sh[j].scale(e, ring_), ring_);
    if (me_ == 0) z = z.add_public(ring_.mul(d, e), ring_);
    out[j] = z;
  }
  return out;
}

ArithSession::Share ArithSession::mul(const Share& a, const Share& b) {
  const Share lhs[1] = {a};
  const Share rhs[1] = {b};
  return mul_batch(lhs, rhs)[0];
}

std::vector<std::uint64_t> ArithSession::open_batch(
    std::span<const Share> shares) {
  if (shares.empty()) {
    next_seq();  // keep sequence numbers aligned across parties
    return {};
  }
  return exchange_sum(shares, next_seq());
}

std::uint64_t ArithSession::open(const Share& share) {
  const Share one[1] = {share};
  return open_batch(one)[0];
}

}  // namespace eppi::mpc
