#include "mpc/arith.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"
#include "secret/additive_share.h"

namespace eppi::mpc {

namespace {

constexpr std::uint32_t kTagArith = eppi::net::kUserBase + 40;

std::vector<std::uint8_t> encode(std::span<const std::uint64_t> values) {
  eppi::BinaryWriter w;
  w.write_u64_vector(values);
  return w.take();
}

std::vector<std::uint64_t> decode(std::span<const std::uint8_t> bytes,
                                  std::size_t expected) {
  eppi::BinaryReader r(bytes);
  auto values = r.read_u64_vector();
  if (values.size() != expected) {
    throw eppi::ProtocolError("ArithSession: vector size mismatch");
  }
  return values;
}

}  // namespace

ArithSession::ArithSession(eppi::net::PartyContext& ctx,
                           std::vector<eppi::net::PartyId> parties,
                           eppi::secret::ModRing ring,
                           std::uint64_t seq_base)
    : ctx_(ctx), parties_(std::move(parties)), ring_(ring),
      seq_base_(seq_base) {
  require(parties_.size() >= 2, "ArithSession: need at least two parties");
  const auto self = std::find(parties_.begin(), parties_.end(), ctx.id());
  require(self != parties_.end(), "ArithSession: not a session party");
  me_ = static_cast<std::size_t>(self - parties_.begin());
}

ArithSession::Share ArithSession::add_public(Share a, std::uint64_t k) const {
  // Public constants are carried by party 0's share only.
  return me_ == 0 ? ring_.add(a, k) : a;
}

ArithSession::Share ArithSession::scalar_mul(Share a, std::uint64_t k) const {
  return static_cast<Share>(
      (static_cast<unsigned __int128>(a) * ring_.reduce(k)) % ring_.q());
}

std::vector<ArithSession::Share> ArithSession::input_vector(
    eppi::net::PartyId owner, std::span<const std::uint64_t> values,
    std::size_t count) {
  const std::uint64_t seq = next_seq();
  const std::size_t c = parties_.size();
  if (ctx_.id() == owner) {
    require(values.size() == count, "ArithSession: input size mismatch");
    std::vector<std::vector<std::uint64_t>> per_party(
        c, std::vector<std::uint64_t>(count));
    for (std::size_t j = 0; j < count; ++j) {
      const auto shares =
          eppi::secret::split_additive(values[j], c, ring_, ctx_.rng());
      for (std::size_t p = 0; p < c; ++p) per_party[p][j] = shares[p];
    }
    for (std::size_t p = 0; p < c; ++p) {
      if (parties_[p] == owner) continue;
      ctx_.send(parties_[p], kTagArith, seq, encode(per_party[p]));
    }
    if (me_ == 0) ctx_.mark_round();
    // My own share is at my session index.
    return per_party[me_];
  }
  const auto payload = ctx_.recv(owner, kTagArith, seq);
  if (me_ == 0) ctx_.mark_round();
  return decode(payload, count);
}

std::vector<std::uint64_t> ArithSession::exchange_sum(
    std::span<const std::uint64_t> mine, std::uint64_t seq) {
  for (std::size_t p = 0; p < parties_.size(); ++p) {
    if (p == me_) continue;
    ctx_.send(parties_[p], kTagArith, seq,
              encode(std::vector<std::uint64_t>(mine.begin(), mine.end())));
  }
  std::vector<std::uint64_t> total(mine.begin(), mine.end());
  for (std::size_t p = 0; p < parties_.size(); ++p) {
    if (p == me_) continue;
    const auto payload = ctx_.recv(parties_[p], kTagArith, seq);
    const auto incoming = decode(payload, mine.size());
    for (std::size_t j = 0; j < total.size(); ++j) {
      total[j] = ring_.add(total[j], incoming[j]);
    }
  }
  if (me_ == 0) ctx_.mark_round();
  return total;
}

std::vector<ArithSession::Share> ArithSession::mul_batch(
    std::span<const Share> lhs, std::span<const Share> rhs) {
  require(lhs.size() == rhs.size(), "ArithSession: mul_batch size mismatch");
  const std::size_t n = lhs.size();
  if (n == 0) return {};
  const std::size_t c = parties_.size();

  // Preprocessing: dealer generates and distributes arithmetic triples.
  const std::uint64_t triple_seq = next_seq();
  std::vector<std::uint64_t> a_sh(n), b_sh(n), c_sh(n);
  if (me_ == 0) {
    std::vector<std::vector<std::uint64_t>> a_parts(
        c, std::vector<std::uint64_t>(n));
    auto b_parts = a_parts;
    auto c_parts = a_parts;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t a = ctx_.rng().next_below(ring_.q());
      const std::uint64_t b = ctx_.rng().next_below(ring_.q());
      const auto prod = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(a) * b) % ring_.q());
      const auto sa = eppi::secret::split_additive(a, c, ring_, ctx_.rng());
      const auto sb = eppi::secret::split_additive(b, c, ring_, ctx_.rng());
      const auto sc =
          eppi::secret::split_additive(prod, c, ring_, ctx_.rng());
      for (std::size_t p = 0; p < c; ++p) {
        a_parts[p][j] = sa[p];
        b_parts[p][j] = sb[p];
        c_parts[p][j] = sc[p];
      }
    }
    for (std::size_t p = 1; p < c; ++p) {
      eppi::BinaryWriter w;
      w.write_u64_vector(a_parts[p]);
      w.write_u64_vector(b_parts[p]);
      w.write_u64_vector(c_parts[p]);
      ctx_.send(parties_[p], kTagArith, triple_seq, w.take());
    }
    a_sh = std::move(a_parts[0]);
    b_sh = std::move(b_parts[0]);
    c_sh = std::move(c_parts[0]);
    ctx_.mark_round();
  } else {
    const auto payload = ctx_.recv(parties_[0], kTagArith, triple_seq);
    eppi::BinaryReader r(payload);
    a_sh = r.read_u64_vector();
    b_sh = r.read_u64_vector();
    c_sh = r.read_u64_vector();
    if (a_sh.size() != n || b_sh.size() != n || c_sh.size() != n) {
      throw eppi::ProtocolError("ArithSession: bad triple batch");
    }
  }

  // Open d = x - a and e = y - b, batched.
  std::vector<std::uint64_t> masked(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    masked[2 * j] = ring_.sub(lhs[j], a_sh[j]);
    masked[2 * j + 1] = ring_.sub(rhs[j], b_sh[j]);
  }
  const auto opened = exchange_sum(masked, next_seq());

  // z = c + d*b + e*a (+ d*e on party 0).
  std::vector<Share> out(n);
  const auto mul_mod = [&](std::uint64_t x, std::uint64_t y) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * y) % ring_.q());
  };
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t d = opened[2 * j];
    const std::uint64_t e = opened[2 * j + 1];
    std::uint64_t z = ring_.add(c_sh[j], mul_mod(d, b_sh[j]));
    z = ring_.add(z, mul_mod(e, a_sh[j]));
    if (me_ == 0) z = ring_.add(z, mul_mod(d, e));
    out[j] = z;
  }
  return out;
}

ArithSession::Share ArithSession::mul(Share a, Share b) {
  const Share lhs[1] = {a};
  const Share rhs[1] = {b};
  return mul_batch(lhs, rhs)[0];
}

std::vector<std::uint64_t> ArithSession::open_batch(
    std::span<const Share> shares) {
  if (shares.empty()) {
    next_seq();  // keep sequence numbers aligned across parties
    return {};
  }
  return exchange_sum(shares, next_seq());
}

std::uint64_t ArithSession::open(Share share) {
  const Share one[1] = {share};
  return open_batch(one)[0];
}

}  // namespace eppi::mpc
