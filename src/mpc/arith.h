// Arithmetic-share MPC engine over Z_q (the VIFF model).
//
// The paper's related work spans two generic-MPC models: Boolean circuits
// (Fairplay/FairplayMP — our mpc/gmw.h and mpc/garbled.h) and arithmetic
// circuits over secret-shared ring elements (VIFF [18]). This engine is the
// arithmetic side: values live as additive shares mod q among c parties;
// addition, subtraction and scalar multiplication are local, multiplication
// consumes an arithmetic Beaver triple and one masked opening, and opening
// a value is one exchange. TASTY-style hybrids (the paper's ref [17]) fall
// out naturally: SecSumShare output IS an arithmetic sharing, so linear
// post-processing can run here for free, switching to the Boolean engines
// only for comparisons.
//
// The preprocessing dealer is the session's first party (the same
// semi-honest simulation as mpc/beaver.h; see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/cluster.h"
#include "secret/mod_ring.h"
#include "secret/secret.h"

namespace eppi::mpc {

class ArithSession {
 public:
  // A party's handle to a shared value: its own additive share, carrying the
  // Secret taint (secret/secret.h) so it cannot be logged, compared, or
  // branched on. Handles are only meaningful within the session that
  // produced them; open()/open_batch() are the audited way back to plain
  // values.
  using Share = eppi::SecretU64;

  // Every session party constructs this with identical (parties, ring,
  // seq_base); my id must be in `parties`.
  ArithSession(eppi::net::PartyContext& ctx,
               std::vector<eppi::net::PartyId> parties,
               eppi::secret::ModRing ring, std::uint64_t seq_base = 0);

  const eppi::secret::ModRing& ring() const noexcept { return ring_; }
  std::size_t n_parties() const noexcept { return parties_.size(); }
  bool is_dealer() const noexcept { return me_ == 0; }

  // --- inputs (one communication exchange per call) ------------------------
  // `owner` supplies `values` (ignored on other parties); everyone receives
  // its share vector.
  std::vector<Share> input_vector(eppi::net::PartyId owner,
                                  std::span<const std::uint64_t> values,
                                  std::size_t count);

  // --- local linear algebra --------------------------------------------------
  Share add(const Share& a, const Share& b) const { return a.add(b, ring_); }
  Share sub(const Share& a, const Share& b) const { return a.sub(b, ring_); }
  Share add_public(const Share& a, std::uint64_t k) const;
  Share scalar_mul(const Share& a, std::uint64_t k) const;

  // --- multiplication (batched: one triple round + one opening round) --------
  std::vector<Share> mul_batch(std::span<const Share> lhs,
                               std::span<const Share> rhs);
  Share mul(const Share& a, const Share& b);

  // --- opening ----------------------------------------------------------------
  std::vector<std::uint64_t> open_batch(std::span<const Share> shares);
  std::uint64_t open(const Share& share);

 private:
  std::uint64_t next_seq() { return seq_base_ + seq_counter_++; }
  // Deliberate opening primitive: every party contributes `mine` and learns
  // the share-wise sum (the reconstructed values).
  std::vector<std::uint64_t> exchange_sum(std::span<const Share> mine,
                                          std::uint64_t seq);

  eppi::net::PartyContext& ctx_;
  std::vector<eppi::net::PartyId> parties_;
  eppi::secret::ModRing ring_;
  std::size_t me_ = 0;
  std::uint64_t seq_base_;
  std::uint64_t seq_counter_ = 0;
};

}  // namespace eppi::mpc
