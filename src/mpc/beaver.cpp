#include "mpc/beaver.h"

namespace eppi::mpc {

std::size_t packed_size(std::uint64_t bits) noexcept {
  return static_cast<std::size_t>((bits + 7) / 8);
}

void set_packed_bit(std::vector<std::uint8_t>& v, std::uint64_t i, bool bit) {
  if (bit) {
    v[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  } else {
    v[i / 8] &= static_cast<std::uint8_t>(~(1u << (i % 8)));
  }
}

bool get_packed_bit(const std::vector<std::uint8_t>& v,
                    std::uint64_t i) noexcept {
  return (v[i / 8] >> (i % 8)) & 1;
}

std::vector<TripleShares> deal_triples(std::size_t n_parties,
                                       std::uint64_t count, eppi::Rng& rng) {
  std::vector<TripleShares> shares(n_parties);
  const std::size_t bytes = packed_size(count);
  for (auto& s : shares) {
    s.a.assign(bytes, 0);
    s.b.assign(bytes, 0);
    s.c.assign(bytes, 0);
    s.count = count;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    const bool c = a && b;
    bool a_acc = false;
    bool b_acc = false;
    bool c_acc = false;
    for (std::size_t p = 0; p + 1 < n_parties; ++p) {
      const bool sa = rng.bernoulli(0.5);
      const bool sb = rng.bernoulli(0.5);
      const bool sc = rng.bernoulli(0.5);
      set_packed_bit(shares[p].a, i, sa);
      set_packed_bit(shares[p].b, i, sb);
      set_packed_bit(shares[p].c, i, sc);
      a_acc ^= sa;
      b_acc ^= sb;
      c_acc ^= sc;
    }
    set_packed_bit(shares[n_parties - 1].a, i, a_acc != a);
    set_packed_bit(shares[n_parties - 1].b, i, b_acc != b);
    set_packed_bit(shares[n_parties - 1].c, i, c_acc != c);
  }
  return shares;
}

}  // namespace eppi::mpc
