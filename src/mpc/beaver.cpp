#include "mpc/beaver.h"

namespace eppi::mpc {

std::size_t packed_size(std::uint64_t bits) noexcept {
  return static_cast<std::size_t>((bits + 7) / 8);
}

void set_packed_bit(std::vector<std::uint8_t>& v, std::uint64_t i, bool bit) {
  if (bit) {
    v[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  } else {
    v[i / 8] &= static_cast<std::uint8_t>(~(1u << (i % 8)));
  }
}

bool get_packed_bit(const std::vector<std::uint8_t>& v,
                    std::uint64_t i) noexcept {
  return (v[i / 8] >> (i % 8)) & 1;
}

std::vector<TripleShares> deal_triples(std::size_t n_parties,
                                       std::uint64_t count, eppi::Rng& rng) {
  const std::size_t bytes = packed_size(count);
  // Generate into raw packed buffers, then seal them under the Secret taint.
  std::vector<std::vector<std::uint8_t>> a_raw(
      n_parties, std::vector<std::uint8_t>(bytes, 0));
  auto b_raw = a_raw;
  auto c_raw = a_raw;
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    const bool c = a && b;
    bool a_acc = false;
    bool b_acc = false;
    bool c_acc = false;
    for (std::size_t p = 0; p + 1 < n_parties; ++p) {
      const bool sa = rng.bernoulli(0.5);
      const bool sb = rng.bernoulli(0.5);
      const bool sc = rng.bernoulli(0.5);
      set_packed_bit(a_raw[p], i, sa);
      set_packed_bit(b_raw[p], i, sb);
      set_packed_bit(c_raw[p], i, sc);
      a_acc ^= sa;
      b_acc ^= sb;
      c_acc ^= sc;
    }
    set_packed_bit(a_raw[n_parties - 1], i, a_acc != a);
    set_packed_bit(b_raw[n_parties - 1], i, b_acc != b);
    set_packed_bit(c_raw[n_parties - 1], i, c_acc != c);
  }
  std::vector<TripleShares> shares(n_parties);
  for (std::size_t p = 0; p < n_parties; ++p) {
    shares[p].a = eppi::SecretBytes(std::move(a_raw[p]));
    shares[p].b = eppi::SecretBytes(std::move(b_raw[p]));
    shares[p].c = eppi::SecretBytes(std::move(c_raw[p]));
    shares[p].count = count;
  }
  return shares;
}

}  // namespace eppi::mpc
