// Beaver multiplication-triple preprocessing for GMW AND gates.
//
// Each AND gate consumes one Boolean Beaver triple (a, b, ab) XOR-shared
// among the session parties. We generate triples in a preprocessing phase
// run by a designated dealer party (the session's first party), which is a
// standard simulation of an offline phase.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): FairplayMP realizes secure gates via
// a BMR garbling protocol; production GMW deployments generate triples with
// oblivious transfer so that no single party knows a whole triple. Here the
// dealer knows the triples it deals — acceptable in the semi-honest,
// performance-evaluation setting of the paper, and the *online* cost
// structure (one masked opening per AND gate per layer, which is what Fig. 6
// measures) is identical. The dealer traffic is metered separately so
// benches can report online-only and total costs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "secret/secret.h"

namespace eppi::mpc {

// One party's XOR shares of a batch of bit triples, packed bitwise. The
// buffers carry the Secret taint; bit accessors hand out tainted SecretBit
// values, so triple material cannot be logged or compared either.
struct TripleShares {
  eppi::SecretBytes a;  // packed bits, count bits valid
  eppi::SecretBytes b;
  eppi::SecretBytes c;
  std::uint64_t count = 0;

  eppi::SecretBit a_bit(std::uint64_t i) const noexcept { return bit(a, i); }
  eppi::SecretBit b_bit(std::uint64_t i) const noexcept { return bit(b, i); }
  eppi::SecretBit c_bit(std::uint64_t i) const noexcept { return bit(c, i); }

 private:
  // Share-local unpacking, not a leak: the bit goes straight back under
  // taint as a SecretBit.
  static eppi::SecretBit bit(const eppi::SecretBytes& v,
                             std::uint64_t i) noexcept {
    const std::vector<std::uint8_t>& buf = v.unwrap_for_wire();
    return eppi::SecretBit(((buf[i / 8] >> (i % 8)) & 1) != 0);
  }
};

// Dealer-side generation: returns one TripleShares per party such that for
// every triple index, XOR of a-shares & XOR of b-shares == XOR of c-shares.
std::vector<TripleShares> deal_triples(std::size_t n_parties,
                                       std::uint64_t count, eppi::Rng& rng);

// Bit-packing helpers shared with the GMW engine's message encoding.
void set_packed_bit(std::vector<std::uint8_t>& v, std::uint64_t i, bool bit);
bool get_packed_bit(const std::vector<std::uint8_t>& v,
                    std::uint64_t i) noexcept;
std::size_t packed_size(std::uint64_t bits) noexcept;

}  // namespace eppi::mpc
