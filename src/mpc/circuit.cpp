#include "mpc/circuit.h"

#include "common/error.h"

namespace eppi::mpc {

std::uint32_t Circuit::input_owner(Wire w) const {
  require(w < gates_.size() && gates_[w].op == GateOp::kInput,
          "Circuit: wire is not an input");
  return gates_[w].a;
}

WireVec Circuit::inputs_of(std::uint32_t party) const {
  WireVec result;
  for (const Wire w : inputs_) {
    if (gates_[w].a == party) result.push_back(w);
  }
  return result;
}

}  // namespace eppi::mpc
