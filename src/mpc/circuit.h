// Boolean circuit representation for secure multi-party computation.
//
// This substitutes for FairplayMP's SFDL-compiled Boolean circuits (paper
// §IV-B.2): protocol functionality is expressed as a DAG of XOR / AND / NOT
// gates over party-owned input wires. Circuit *size* (gate count) is the
// paper's own scalability metric for Fig. 6b, so the representation tracks
// gate counts and the AND-depth (which determines GMW round complexity).
//
// Wires are dense indices; gate i's output is wire i. Construction is append
// -only, so the gate list is always topologically ordered.
#pragma once

#include <cstdint>
#include <vector>

namespace eppi::mpc {

using Wire = std::uint32_t;
using WireVec = std::vector<Wire>;

enum class GateOp : std::uint8_t {
  kInput,      // party-owned input bit (operand a = party index)
  kConstZero,
  kConstOne,
  kXor,        // a ^ b
  kAnd,        // a & b  (the only gate requiring secure communication)
  kNot,        // !a
};

struct Gate {
  GateOp op;
  Wire a = 0;
  Wire b = 0;
};

struct CircuitStats {
  std::uint64_t and_gates = 0;
  std::uint64_t xor_gates = 0;
  std::uint64_t not_gates = 0;
  std::uint64_t input_wires = 0;
  std::uint64_t and_depth = 0;  // number of GMW communication layers

  // "Circuit size" in the Fig. 6b sense: all secure gates. XOR/NOT are free
  // in GMW but FairplayMP's BMR counts every gate, so we report both views.
  std::uint64_t total_gates() const noexcept {
    return and_gates + xor_gates + not_gates;
  }
};

class Circuit {
 public:
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  const WireVec& inputs() const noexcept { return inputs_; }
  const WireVec& outputs() const noexcept { return outputs_; }

  // Owning party (index into the MPC session's party list) of input wire w.
  std::uint32_t input_owner(Wire w) const;

  // Input wires owned by one party, in declaration order.
  WireVec inputs_of(std::uint32_t party) const;

  std::size_t n_wires() const noexcept { return gates_.size(); }
  const CircuitStats& stats() const noexcept { return stats_; }

  // AND-layer index of a wire: 0 for wires computable locally from inputs,
  // r for wires available after the r-th GMW communication round.
  std::uint32_t layer(Wire w) const { return layers_[w]; }

 private:
  friend class CircuitBuilder;

  std::vector<Gate> gates_;
  std::vector<std::uint32_t> layers_;
  WireVec inputs_;
  WireVec outputs_;
  CircuitStats stats_;
};

}  // namespace eppi::mpc
