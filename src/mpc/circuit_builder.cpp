#include "mpc/circuit_builder.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace eppi::mpc {

unsigned bit_width_for(std::uint64_t max_value) noexcept {
  return max_value == 0 ? 1u
                        : static_cast<unsigned>(std::bit_width(max_value));
}

CircuitBuilder::CircuitBuilder() = default;

Wire CircuitBuilder::append(GateOp op, Wire a, Wire b) {
  const Wire w = static_cast<Wire>(circuit_.gates_.size());
  circuit_.gates_.push_back(Gate{op, a, b});
  std::uint32_t layer = 0;
  switch (op) {
    case GateOp::kInput:
      ++circuit_.stats_.input_wires;
      break;
    case GateOp::kConstZero:
    case GateOp::kConstOne:
      break;
    case GateOp::kXor:
      ++circuit_.stats_.xor_gates;
      layer = std::max(circuit_.layers_[a], circuit_.layers_[b]);
      break;
    case GateOp::kAnd:
      ++circuit_.stats_.and_gates;
      layer = std::max(circuit_.layers_[a], circuit_.layers_[b]) + 1;
      circuit_.stats_.and_depth =
          std::max<std::uint64_t>(circuit_.stats_.and_depth, layer);
      break;
    case GateOp::kNot:
      ++circuit_.stats_.not_gates;
      layer = circuit_.layers_[a];
      break;
  }
  circuit_.layers_.push_back(layer);
  const_val_.push_back(op == GateOp::kConstZero ? 0
                       : op == GateOp::kConstOne ? 1
                                                 : -1);
  return w;
}

std::optional<bool> CircuitBuilder::const_of(Wire w) const {
  const std::int8_t v = const_val_[w];
  if (v < 0) return std::nullopt;
  return v != 0;
}

Wire CircuitBuilder::input_bit(std::uint32_t party) {
  const Wire w = append(GateOp::kInput, party, 0);
  circuit_.inputs_.push_back(w);
  return w;
}

WireVec CircuitBuilder::input_bits(std::uint32_t party, unsigned width) {
  WireVec v(width);
  for (auto& w : v) w = input_bit(party);
  return v;
}

Wire CircuitBuilder::zero() {
  if (!has_zero_) {
    zero_wire_ = append(GateOp::kConstZero, 0, 0);
    has_zero_ = true;
  }
  return zero_wire_;
}

Wire CircuitBuilder::one() {
  if (!has_one_) {
    one_wire_ = append(GateOp::kConstOne, 0, 0);
    has_one_ = true;
  }
  return one_wire_;
}

WireVec CircuitBuilder::constant_bits(std::uint64_t value, unsigned width) {
  WireVec v(width);
  for (unsigned i = 0; i < width; ++i) v[i] = constant((value >> i) & 1);
  return v;
}

Wire CircuitBuilder::Xor(Wire a, Wire b) {
  const auto ca = const_of(a);
  const auto cb = const_of(b);
  if (ca && cb) return constant(*ca != *cb);
  if (ca) return *ca ? Not(b) : b;
  if (cb) return *cb ? Not(a) : a;
  if (a == b) return zero();
  return append(GateOp::kXor, a, b);
}

Wire CircuitBuilder::And(Wire a, Wire b) {
  const auto ca = const_of(a);
  const auto cb = const_of(b);
  if (ca) return *ca ? b : zero();
  if (cb) return *cb ? a : zero();
  if (a == b) return a;
  return append(GateOp::kAnd, a, b);
}

Wire CircuitBuilder::Not(Wire a) {
  const auto ca = const_of(a);
  if (ca) return constant(!*ca);
  return append(GateOp::kNot, a, 0);
}

Wire CircuitBuilder::Or(Wire a, Wire b) {
  // a | b == (a ^ b) ^ (a & b); folding handles constant operands upstream.
  return Xor(Xor(a, b), And(a, b));
}

Wire CircuitBuilder::Mux(Wire sel, Wire if_true, Wire if_false) {
  // f ^ sel & (t ^ f): one AND gate.
  return Xor(if_false, And(sel, Xor(if_true, if_false)));
}

WireVec CircuitBuilder::xor_vec(const WireVec& a, const WireVec& b) {
  require(a.size() == b.size(), "CircuitBuilder: xor_vec width mismatch");
  WireVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = Xor(a[i], b[i]);
  return out;
}

WireVec CircuitBuilder::zext(WireVec v, unsigned width) {
  while (v.size() < width) v.push_back(zero());
  require(v.size() == width, "CircuitBuilder: zext cannot narrow");
  return v;
}

WireVec CircuitBuilder::add_trunc(const WireVec& a, const WireVec& b) {
  const auto width = static_cast<unsigned>(std::max(a.size(), b.size()));
  auto full = add_expand(a, b);
  full.resize(width);
  return full;
}

WireVec CircuitBuilder::add_expand(const WireVec& a, const WireVec& b) {
  const auto width = static_cast<unsigned>(std::max(a.size(), b.size()));
  const WireVec xa = zext(a, width);
  const WireVec xb = zext(b, width);
  WireVec out(width + 1);
  Wire carry = zero();
  for (unsigned i = 0; i < width; ++i) {
    // Full adder: sum = a^b^c; carry' = (a&b) ^ (c & (a^b)).
    const Wire axb = Xor(xa[i], xb[i]);
    out[i] = Xor(axb, carry);
    carry = Xor(And(xa[i], xb[i]), And(carry, axb));
  }
  out[width] = carry;
  return out;
}

WireVec CircuitBuilder::add_mod(const WireVec& a, const WireVec& b,
                                std::uint64_t q) {
  require(q >= 2, "CircuitBuilder: add_mod modulus must be >= 2");
  const unsigned width = bit_width_for(q - 1);
  if (std::has_single_bit(q)) {
    // Power-of-two modulus: truncation is the reduction.
    auto sum = add_expand(zext(a, width), zext(b, width));
    sum.resize(width);
    return sum;
  }
  // t = a + b (width+1 bits); result = t >= q ? t - q : t.
  const auto t = add_expand(zext(a, width), zext(b, width));
  const Wire wrap = ge_const(t, q);
  // t - q == t + (2^(width+1) - q) mod 2^(width+1).
  const std::uint64_t comp = (std::uint64_t{1} << (width + 1)) - q;
  auto reduced = add_expand(t, constant_bits(comp, width + 1));
  reduced.resize(width + 1);
  auto chosen = mux_vec(wrap, reduced, t);
  chosen.resize(width);
  return chosen;
}

Wire CircuitBuilder::lt(const WireVec& a, const WireVec& b) {
  const auto width = static_cast<unsigned>(std::max(a.size(), b.size()));
  const WireVec xa = zext(a, width);
  const WireVec xb = zext(b, width);
  Wire borrow = zero();
  for (unsigned i = 0; i < width; ++i) {
    // Subtract borrow chain: borrow' = (~a & b) ^ (~(a^b) & borrow); the two
    // terms are disjoint, so XOR equals OR here.
    const Wire d = Xor(xa[i], xb[i]);
    borrow = Xor(And(Not(xa[i]), xb[i]), And(Not(d), borrow));
  }
  return borrow;
}

Wire CircuitBuilder::ge(const WireVec& a, const WireVec& b) {
  return Not(lt(a, b));
}

Wire CircuitBuilder::lt_const(const WireVec& a, std::uint64_t t) {
  const auto width = static_cast<unsigned>(
      std::max<std::size_t>(a.size(), bit_width_for(t)));
  return lt(zext(a, width), constant_bits(t, width));
}

Wire CircuitBuilder::ge_const(const WireVec& a, std::uint64_t t) {
  return Not(lt_const(a, t));
}

Wire CircuitBuilder::eq_const(const WireVec& a, std::uint64_t t) {
  if (a.size() < 64 && (t >> a.size()) != 0) return zero();
  Wire acc = one();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = (i < 64) && ((t >> i) & 1);
    acc = And(acc, bit ? a[i] : Not(a[i]));
  }
  return acc;
}

WireVec CircuitBuilder::popcount(std::span<const Wire> bits) {
  if (bits.empty()) return constant_bits(0, 1);
  std::vector<WireVec> values;
  values.reserve(bits.size());
  for (const Wire b : bits) values.push_back(WireVec{b});
  return sum_tree(std::move(values));
}

WireVec CircuitBuilder::sum_tree(std::vector<WireVec> values) {
  require(!values.empty(), "CircuitBuilder: sum_tree of nothing");
  // Balanced binary reduction keeps both size and depth logarithmic.
  while (values.size() > 1) {
    std::vector<WireVec> next;
    next.reserve((values.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
      next.push_back(add_expand(values[i], values[i + 1]));
    }
    if (values.size() % 2 == 1) next.push_back(std::move(values.back()));
    values = std::move(next);
  }
  return values[0];
}

WireVec CircuitBuilder::mux_vec(Wire sel, const WireVec& a, const WireVec& b) {
  require(a.size() == b.size(), "CircuitBuilder: mux_vec width mismatch");
  WireVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = Mux(sel, a[i], b[i]);
  return out;
}

void CircuitBuilder::output(Wire w) {
  require(w < circuit_.gates_.size(), "CircuitBuilder: bad output wire");
  circuit_.outputs_.push_back(w);
}

void CircuitBuilder::output_vec(const WireVec& v) {
  for (const Wire w : v) output(w);
}

Circuit CircuitBuilder::take() { return std::move(circuit_); }

}  // namespace eppi::mpc
