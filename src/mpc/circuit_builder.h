// Circuit construction with constant folding and an arithmetic block library.
//
// The builder plays the role of the SFDL compiler in the paper's FairplayMP
// stack: high-level operations (mod-2^k addition, comparison against public
// thresholds, population count, multiplexing) are lowered to XOR/AND/NOT
// gates. Constants are folded at build time — AND with a known 0 disappears,
// XOR with a known 1 becomes NOT, etc. — which is what makes comparisons
// against *public* thresholds cheap, mirroring a circuit compiler's constant
// propagation.
//
// Multi-bit values are little-endian WireVecs (bit 0 first).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "mpc/circuit.h"

namespace eppi::mpc {

class CircuitBuilder {
 public:
  CircuitBuilder();

  // --- wires -------------------------------------------------------------
  Wire input_bit(std::uint32_t party);
  WireVec input_bits(std::uint32_t party, unsigned width);
  Wire zero();
  Wire one();
  Wire constant(bool value) { return value ? one() : zero(); }
  WireVec constant_bits(std::uint64_t value, unsigned width);

  // --- single-bit gates (constant-folding) ---------------------------------
  Wire Xor(Wire a, Wire b);
  Wire And(Wire a, Wire b);
  Wire Not(Wire a);
  Wire Or(Wire a, Wire b);
  Wire Mux(Wire sel, Wire if_true, Wire if_false);

  // --- multi-bit blocks ----------------------------------------------------
  // a ^ b, elementwise (equal widths).
  WireVec xor_vec(const WireVec& a, const WireVec& b);
  // a + b truncated to max(width(a), width(b)) bits (mod 2^w).
  WireVec add_trunc(const WireVec& a, const WireVec& b);
  // a + b with full carry, width = max + 1.
  WireVec add_expand(const WireVec& a, const WireVec& b);
  // (a + b) mod q for arbitrary public q (conditional subtract). Widths must
  // be ring widths for q.
  WireVec add_mod(const WireVec& a, const WireVec& b, std::uint64_t q);
  // Unsigned comparisons.
  Wire lt(const WireVec& a, const WireVec& b);           // a < b
  Wire ge(const WireVec& a, const WireVec& b);           // a >= b
  Wire lt_const(const WireVec& a, std::uint64_t t);      // a < t
  Wire ge_const(const WireVec& a, std::uint64_t t);      // a >= t
  Wire eq_const(const WireVec& a, std::uint64_t t);      // a == t
  // Number of set bits among `bits` (width = ceil(log2(n+1))).
  WireVec popcount(std::span<const Wire> bits);
  // Sum of multi-bit values with expanding width (adder tree).
  WireVec sum_tree(std::vector<WireVec> values);
  // sel ? if_true : if_false, elementwise (equal widths).
  WireVec mux_vec(Wire sel, const WireVec& a, const WireVec& b);
  // Zero-extend to `width`.
  WireVec zext(WireVec v, unsigned width);

  // --- outputs -------------------------------------------------------------
  void output(Wire w);
  void output_vec(const WireVec& v);

  // Finalizes and returns the circuit; the builder must not be reused.
  Circuit take();

  const CircuitStats& stats() const noexcept { return circuit_.stats_; }

 private:
  Wire append(GateOp op, Wire a, Wire b);
  // Build-time constant value of a wire, if known.
  std::optional<bool> const_of(Wire w) const;

  Circuit circuit_;
  std::vector<std::int8_t> const_val_;  // -1 unknown, 0/1 known
  Wire zero_wire_ = 0;
  Wire one_wire_ = 0;
  bool has_zero_ = false;
  bool has_one_ = false;
};

// Helper: bits needed to hold values up to `max_value`.
unsigned bit_width_for(std::uint64_t max_value) noexcept;

}  // namespace eppi::mpc
