#include "mpc/circuit_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "common/serialize.h"
#include "mpc/circuit_builder.h"

namespace eppi::mpc {

namespace {

constexpr char kMagic[8] = {'e', 'p', 'p', 'i', 'c', 'r', 'c', '1'};

}  // namespace

void save_circuit(std::ostream& out, const Circuit& circuit) {
  eppi::BinaryWriter w;
  const auto& gates = circuit.gates();
  w.write_varint(gates.size());
  for (const Gate& g : gates) {
    w.write_u8(static_cast<std::uint8_t>(g.op));
    w.write_varint(g.a);
    w.write_varint(g.b);
  }
  w.write_varint(circuit.outputs().size());
  for (const Wire o : circuit.outputs()) w.write_varint(o);

  out.write(kMagic, sizeof(kMagic));
  const auto& buf = w.buffer();
  std::uint64_t size = buf.size();
  char size_bytes[8];
  for (int i = 0; i < 8; ++i) size_bytes[i] = static_cast<char>(size >> (8 * i));
  out.write(size_bytes, 8);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

Circuit load_circuit(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(kMagic), kMagic)) {
    throw eppi::SerializeError("load_circuit: bad magic or version");
  }
  char size_bytes[8];
  in.read(size_bytes, 8);
  if (!in) throw eppi::SerializeError("load_circuit: truncated header");
  std::uint64_t size = 0;
  for (int i = 0; i < 8; ++i) {
    size |= static_cast<std::uint64_t>(static_cast<unsigned char>(size_bytes[i]))
            << (8 * i);
  }
  constexpr std::uint64_t kMaxBytes = std::uint64_t{1} << 34;  // 16 GiB guard
  if (size > kMaxBytes) {
    throw eppi::SerializeError("load_circuit: implausible payload size");
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw eppi::SerializeError("load_circuit: truncated payload");

  eppi::BinaryReader r(buf);
  const std::uint64_t n_gates = r.read_varint();
  // Every serialized gate occupies at least 3 bytes; reject headers that
  // promise more gates than the payload can hold before reserving memory.
  if (n_gates > buf.size() / 3 + 1) {
    throw eppi::SerializeError("load_circuit: implausible gate count");
  }
  // Rebuild through the builder so stats/layers are recomputed and every
  // structural invariant is revalidated. Constant folding must not fire (a
  // saved circuit is replayed verbatim), so we map wires 1:1 and reject any
  // gate the builder would have folded differently — in practice circuits
  // we save come from the builder, so ops replay exactly.
  CircuitBuilder cb;
  std::vector<Wire> remap;
  remap.reserve(n_gates);
  for (std::uint64_t i = 0; i < n_gates; ++i) {
    const auto op = static_cast<GateOp>(r.read_u8());
    const std::uint64_t a = r.read_varint();
    const std::uint64_t b = r.read_varint();
    switch (op) {
      case GateOp::kInput:
        remap.push_back(cb.input_bit(static_cast<std::uint32_t>(a)));
        break;
      case GateOp::kConstZero:
        remap.push_back(cb.zero());
        break;
      case GateOp::kConstOne:
        remap.push_back(cb.one());
        break;
      case GateOp::kXor:
      case GateOp::kAnd:
        if (a >= i || b >= i) {
          throw eppi::SerializeError("load_circuit: forward wire reference");
        }
        remap.push_back(op == GateOp::kXor
                            ? cb.Xor(remap[a], remap[b])
                            : cb.And(remap[a], remap[b]));
        break;
      case GateOp::kNot:
        if (a >= i) {
          throw eppi::SerializeError("load_circuit: forward wire reference");
        }
        remap.push_back(cb.Not(remap[a]));
        break;
      default:
        throw eppi::SerializeError("load_circuit: unknown gate op");
    }
  }
  const std::uint64_t n_outputs = r.read_varint();
  for (std::uint64_t i = 0; i < n_outputs; ++i) {
    const std::uint64_t o = r.read_varint();
    if (o >= remap.size()) {
      throw eppi::SerializeError("load_circuit: output wire out of range");
    }
    cb.output(remap[o]);
  }
  if (!r.exhausted()) {
    throw eppi::SerializeError("load_circuit: trailing bytes");
  }
  return cb.take();
}

}  // namespace eppi::mpc
