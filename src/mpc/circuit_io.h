// Binary persistence for compiled circuits.
//
// Compiling the secure functionality is the expensive, deterministic step
// (FairplayMP compiles SFDL offline and ships the circuit to the parties);
// this module gives the same deployment shape: compile once, serialize,
// distribute to the c coordinators, load and evaluate. The format is a
// versioned header followed by varint-encoded gates.
#pragma once

#include <iosfwd>

#include "mpc/circuit.h"

namespace eppi::mpc {

// Writes the circuit in the eppi-circ-v1 format.
void save_circuit(std::ostream& out, const Circuit& circuit);

// Reads a circuit back; throws SerializeError on bad magic/version,
// truncation, or structurally invalid gates (forward references, bad ops).
// The reloaded circuit is identical in behaviour (and, for circuits that
// came from CircuitBuilder, in statistics as well).
Circuit load_circuit(std::istream& in);

}  // namespace eppi::mpc
