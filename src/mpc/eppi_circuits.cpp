#include "mpc/eppi_circuits.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "mpc/circuit_builder.h"
#include "secret/mod_ring.h"

namespace eppi::mpc {

std::vector<bool> share_input_bits(std::span<const eppi::SecretU64> shares,
                                   unsigned width) {
  std::vector<bool> bits;
  bits.reserve(shares.size() * width);
  for (const eppi::SecretU64& s : shares) {
    // The circuit engine XOR-shares these bits before anything leaves the
    // party, so this unwrap feeds the MPC input path, not a log or branch.
    const std::uint64_t v = s.unwrap_for_wire();
    for (unsigned b = 0; b < width; ++b) bits.push_back(((v >> b) & 1) != 0);
  }
  return bits;
}

namespace {

// Declares the share inputs for all parties (party-major) and returns
// shares[i][j] = WireVec of s(i,j).
std::vector<std::vector<WireVec>> declare_share_inputs(CircuitBuilder& cb,
                                                       std::size_t c,
                                                       std::size_t n,
                                                       unsigned width) {
  std::vector<std::vector<WireVec>> shares(c);
  for (std::size_t i = 0; i < c; ++i) {
    shares[i].reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      shares[i].push_back(cb.input_bits(static_cast<std::uint32_t>(i), width));
    }
  }
  return shares;
}

// Reconstructs S_j = sum of c shares mod q inside the circuit.
WireVec sum_shares(CircuitBuilder& cb,
                   const std::vector<std::vector<WireVec>>& shares,
                   std::size_t j, std::uint64_t q) {
  WireVec sum = shares[0][j];
  for (std::size_t i = 1; i < shares.size(); ++i) {
    sum = cb.add_mod(sum, shares[i][j], q);
  }
  return sum;
}

std::uint64_t lambda_threshold(double lambda, unsigned coin_bits) {
  require(lambda >= 0.0 && lambda <= 1.0,
          "eppi_circuits: lambda must be in [0,1]");
  require(coin_bits >= 1 && coin_bits <= 62,
          "eppi_circuits: coin_bits out of range");
  const double scaled = lambda * static_cast<double>(std::uint64_t{1} << coin_bits);
  return static_cast<std::uint64_t>(std::llround(scaled));
}

// Builds per-identity mix bit + masked value outputs from reconstructed
// frequency S_j. Coin inputs are declared here (party-major order is
// preserved because this is called after all share inputs are declared and
// declares all coins before using them).
void append_mix_reveal_outputs(CircuitBuilder& cb, std::size_t n_parties,
                               const std::vector<WireVec>& sums,
                               std::span<const std::uint64_t> thresholds,
                               double lambda, unsigned coin_bits) {
  const std::size_t n = sums.size();
  // Coin inputs, party-major.
  std::vector<std::vector<WireVec>> coins(n_parties);
  for (std::size_t p = 0; p < n_parties; ++p) {
    coins[p].reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      coins[p].push_back(
          cb.input_bits(static_cast<std::uint32_t>(p), coin_bits));
    }
  }
  const std::uint64_t coin_threshold = lambda_threshold(lambda, coin_bits);
  for (std::size_t j = 0; j < n; ++j) {
    const Wire common = cb.ge_const(sums[j], thresholds[j]);
    WireVec joint = coins[0][j];
    for (std::size_t p = 1; p < n_parties; ++p) {
      joint = cb.xor_vec(joint, coins[p][j]);
    }
    const Wire coin = cb.lt_const(joint, coin_threshold);
    const Wire mix = cb.Or(common, coin);
    cb.output(mix);
    const Wire keep = cb.Not(mix);
    for (const Wire bit : sums[j]) cb.output(cb.And(bit, keep));
  }
}

}  // namespace

namespace {

// Pads or truncates to an exact width; truncation is only used where the
// value provably fits (e.g. a count of n bits fits in bit_width_for(n)).
WireVec fit_width(CircuitBuilder& cb, WireVec v, unsigned width) {
  while (v.size() < width) v.push_back(cb.zero());
  v.resize(width);
  return v;
}

// Appends the count output and, when ranks are given, the secure max of
// ranks[j] over identities whose common bit is set.
void append_count_and_rank_outputs(CircuitBuilder& cb,
                                   const std::vector<Wire>& common_bits,
                                   std::span<const std::uint64_t> ranks) {
  const unsigned count_width = bit_width_for(common_bits.size());
  const WireVec count =
      fit_width(cb, cb.popcount(common_bits), count_width);
  cb.output_vec(count);
  if (ranks.empty()) return;
  require(ranks.size() == common_bits.size(),
          "eppi_circuits: xi_ranks size mismatch");
  std::uint64_t max_rank = 0;
  for (const std::uint64_t r : ranks) max_rank = std::max(max_rank, r);
  const unsigned rank_width = bit_width_for(max_rank);
  // Selected value: rank_j if common else 0 — constant bits AND the common
  // bit, which folds to at most one AND per set rank bit.
  std::vector<WireVec> selected;
  selected.reserve(ranks.size());
  for (std::size_t j = 0; j < ranks.size(); ++j) {
    const WireVec rank_bits = cb.constant_bits(ranks[j], rank_width);
    WireVec sel(rank_width);
    for (unsigned b = 0; b < rank_width; ++b) {
      sel[b] = cb.And(rank_bits[b], common_bits[j]);
    }
    selected.push_back(std::move(sel));
  }
  // Max tree.
  while (selected.size() > 1) {
    std::vector<WireVec> next;
    next.reserve((selected.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < selected.size(); i += 2) {
      const Wire a_lt_b = cb.lt(selected[i], selected[i + 1]);
      next.push_back(cb.mux_vec(a_lt_b, selected[i + 1], selected[i]));
    }
    if (selected.size() % 2 == 1) next.push_back(std::move(selected.back()));
    selected = std::move(next);
  }
  cb.output_vec(selected[0]);
}

unsigned rank_output_width(std::span<const std::uint64_t> ranks) {
  std::uint64_t max_rank = 0;
  for (const std::uint64_t r : ranks) max_rank = std::max(max_rank, r);
  return bit_width_for(max_rank);
}

}  // namespace

Circuit build_count_below_circuit(const CountBelowSpec& spec) {
  require(spec.c >= 2, "CountBelow: need at least 2 parties");
  require(spec.q >= 2, "CountBelow: modulus required");
  const std::size_t n = spec.thresholds.size();
  require(n >= 1, "CountBelow: need at least one identity");
  const unsigned width = eppi::secret::ModRing(spec.q).bit_width();

  CircuitBuilder cb;
  const auto shares = declare_share_inputs(cb, spec.c, n, width);
  std::vector<Wire> common_bits;
  common_bits.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const WireVec sum = sum_shares(cb, shares, j, spec.q);
    common_bits.push_back(cb.ge_const(sum, spec.thresholds[j]));
  }
  append_count_and_rank_outputs(cb, common_bits, spec.xi_ranks);
  return cb.take();
}

CountBelowOutput decode_count_below(const CountBelowSpec& spec,
                                    const std::vector<bool>& output_bits) {
  const std::size_t n = spec.thresholds.size();
  const unsigned count_width = bit_width_for(n);
  const unsigned rank_width =
      spec.xi_ranks.empty() ? 0 : rank_output_width(spec.xi_ranks);
  require(output_bits.size() == count_width + rank_width,
          "decode_count_below: output size mismatch");
  CountBelowOutput out;
  std::size_t pos = 0;
  for (unsigned b = 0; b < count_width; ++b) {
    if (output_bits[pos++]) out.common_count |= std::uint64_t{1} << b;
  }
  for (unsigned b = 0; b < rank_width; ++b) {
    if (output_bits[pos++]) out.max_xi_rank |= std::uint64_t{1} << b;
  }
  return out;
}

CountBelowOutput plain_count_below(
    const CountBelowSpec& spec,
    std::span<const std::vector<std::uint64_t>> shares_per_party) {
  require(shares_per_party.size() == spec.c,
          "plain_count_below: wrong party count");
  const std::size_t n = spec.thresholds.size();
  CountBelowOutput out;
  for (std::size_t j = 0; j < n; ++j) {
    std::uint64_t sum = 0;
    for (const auto& shares : shares_per_party) {
      require(shares.size() == n, "plain_count_below: share vector size");
      sum = (sum + shares[j]) % spec.q;
    }
    if (sum >= spec.thresholds[j]) {
      ++out.common_count;
      if (!spec.xi_ranks.empty()) {
        out.max_xi_rank = std::max(out.max_xi_rank, spec.xi_ranks[j]);
      }
    }
  }
  return out;
}

Circuit build_mix_reveal_circuit(const MixRevealSpec& spec) {
  require(spec.c >= 2, "MixReveal: need at least 2 parties");
  require(spec.q >= 2, "MixReveal: modulus required");
  const std::size_t n = spec.thresholds.size();
  require(n >= 1, "MixReveal: need at least one identity");
  const unsigned width = eppi::secret::ModRing(spec.q).bit_width();

  CircuitBuilder cb;
  const auto shares = declare_share_inputs(cb, spec.c, n, width);
  std::vector<WireVec> sums;
  sums.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    sums.push_back(sum_shares(cb, shares, j, spec.q));
  }
  append_mix_reveal_outputs(cb, spec.c, sums, spec.thresholds, spec.lambda,
                            spec.coin_bits);
  return cb.take();
}

std::vector<MixRevealResult> decode_mix_reveal(
    const MixRevealSpec& spec, const std::vector<bool>& output_bits) {
  const unsigned width = eppi::secret::ModRing(spec.q).bit_width();
  const std::size_t n = spec.thresholds.size();
  require(output_bits.size() == n * (1 + width),
          "decode_mix_reveal: output size mismatch");
  std::vector<MixRevealResult> results(n);
  std::size_t pos = 0;
  for (std::size_t j = 0; j < n; ++j) {
    results[j].mixed = output_bits[pos++];
    std::uint64_t value = 0;
    for (unsigned b = 0; b < width; ++b) {
      if (output_bits[pos++]) value |= std::uint64_t{1} << b;
    }
    results[j].frequency = value;
  }
  return results;
}

std::vector<MixRevealResult> plain_mix_reveal(
    const MixRevealSpec& spec,
    std::span<const std::vector<std::uint64_t>> shares_per_party,
    std::span<const std::vector<std::uint64_t>> rand_words) {
  require(shares_per_party.size() == spec.c, "plain_mix_reveal: party count");
  require(rand_words.size() == spec.c, "plain_mix_reveal: rand count");
  const std::size_t n = spec.thresholds.size();
  const std::uint64_t coin_threshold =
      lambda_threshold(spec.lambda, spec.coin_bits);
  const std::uint64_t coin_mask =
      (std::uint64_t{1} << spec.coin_bits) - 1;
  std::vector<MixRevealResult> results(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::uint64_t sum = 0;
    std::uint64_t joint = 0;
    for (std::size_t p = 0; p < spec.c; ++p) {
      sum = (sum + shares_per_party[p][j]) % spec.q;
      joint ^= rand_words[p][j] & coin_mask;
    }
    const bool common = sum >= spec.thresholds[j];
    const bool coin = joint < coin_threshold;
    results[j].mixed = common || coin;
    results[j].frequency = results[j].mixed ? 0 : sum;
  }
  return results;
}

Circuit build_pure_mpc_circuit(const PureMpcSpec& spec) {
  require(spec.m >= 2, "PureMpc: need at least 2 providers");
  const std::size_t n = spec.thresholds.size();
  require(n >= 1, "PureMpc: need at least one identity");

  CircuitBuilder cb;
  // Membership bit inputs, party-major: bits[i][j].
  std::vector<std::vector<Wire>> bits(spec.m);
  for (std::size_t i = 0; i < spec.m; ++i) {
    bits[i].reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      bits[i].push_back(cb.input_bit(static_cast<std::uint32_t>(i)));
    }
  }
  const unsigned width = bit_width_for(spec.m);
  std::vector<WireVec> sums;
  std::vector<Wire> common_bits;
  sums.reserve(n);
  common_bits.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<Wire> column(spec.m);
    for (std::size_t i = 0; i < spec.m; ++i) column[i] = bits[i][j];
    const WireVec sum = fit_width(cb, cb.popcount(column), width);
    sums.push_back(sum);
    common_bits.push_back(cb.ge_const(sum, spec.thresholds[j]));
  }
  cb.output_vec(fit_width(cb, cb.popcount(common_bits), bit_width_for(n)));
  if (spec.include_mixing) {
    append_mix_reveal_outputs(cb, spec.m, sums, spec.thresholds, spec.lambda,
                              spec.coin_bits);
  }
  return cb.take();
}

PureMpcResult decode_pure_mpc(const PureMpcSpec& spec,
                              const std::vector<bool>& output_bits) {
  const std::size_t n = spec.thresholds.size();
  const unsigned count_width = bit_width_for(n);
  const unsigned width = bit_width_for(spec.m);
  const std::size_t expected =
      count_width + (spec.include_mixing ? n * (1 + width) : 0);
  require(output_bits.size() == expected,
          "decode_pure_mpc: output size mismatch");
  PureMpcResult result;
  std::size_t pos = 0;
  for (unsigned b = 0; b < count_width; ++b) {
    if (output_bits[pos++]) result.common_count |= std::uint64_t{1} << b;
  }
  if (!spec.include_mixing) return result;
  result.identities.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.identities[j].mixed = output_bits[pos++];
    std::uint64_t value = 0;
    for (unsigned b = 0; b < width; ++b) {
      if (output_bits[pos++]) value |= std::uint64_t{1} << b;
    }
    result.identities[j].frequency = value;
  }
  return result;
}

}  // namespace eppi::mpc
