// Circuit generators for the secure stages of ε-PPI construction.
//
// Three functionalities, matching DESIGN.md §3:
//
//  * CountBelow (paper Algorithm 2): from the c coordinators' SecSumShare
//    vectors, reconstruct each identity's frequency sum S_j inside the
//    circuit and count how many identities are "common", i.e. S_j >= t_j for
//    the per-identity public threshold t_j (the frequency at which the
//    chosen β-policy saturates to β* >= 1). Only the count is opened.
//
//  * MixAndReveal: the identity-mixing stage (paper Eq. 6). Per identity,
//    computes the common bit b_j = (S_j >= t_j), a secret coin
//    coin_j = (r_j < λ·2^w) from XOR-combined per-party randomness, and
//    mix_j = b_j | coin_j. Opens mix_j and, only when mix_j = 0, the value
//    S_j (as S_j & ~mix_j per bit); for mixed/common identities the opened
//    value is 0 so the true frequency of a common identity never leaves the
//    MPC — this is exactly what defeats the common-identity attack.
//
//  * PureMpc (the paper's comparison baseline, §V-B): the same end-to-end
//    functionality computed directly from all m providers' raw membership
//    bits inside one big circuit (frequency via popcount instead of a
//    SecSumShare pre-stage), so circuit size and party count grow with m.
//
// All generators also have plain reference implementations used by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpc/circuit.h"
#include "secret/secret.h"

namespace eppi::mpc {

// Flattens a coordinator's SecSumShare share vector into MPC input bits
// (identity-major, low bit first — must match declare_share_inputs in
// eppi_circuits.cpp). This is the sanctioned share→circuit transition: the
// returned bits are consumed by the MPC engine's input phase, which XOR-
// shares them before anything leaves the party.
std::vector<bool> share_input_bits(std::span<const eppi::SecretU64> shares,
                                   unsigned width);

struct CountBelowSpec {
  std::size_t c = 3;                     // MPC parties (coordinators)
  std::uint64_t q = 0;                   // ring modulus (required, >= 2)
  std::vector<std::uint64_t> thresholds; // t_j per identity, in [0, q)
  // Optional: public per-identity ranks (e.g. each identity's ε rank in the
  // sorted public ε list). When non-empty the circuit additionally outputs
  // max over common identities of xi_ranks[j] — this is how the ε-PPI
  // constructor obtains ξ = max ε over the (secret) common set without
  // revealing which identities are common.
  std::vector<std::uint64_t> xi_ranks;
};

struct CountBelowOutput {
  std::uint64_t common_count = 0;
  std::uint64_t max_xi_rank = 0;  // 0 when xi_ranks was empty or no commons
};

// Inputs: for party i in [0,c), for identity j in [0,n): bit_width(q) bits of
// share s(i,j), declared party-major. Outputs: the common count as
// bit_width(n) bits, then (iff xi_ranks non-empty) the selected max rank as
// bit_width(max rank) bits.
Circuit build_count_below_circuit(const CountBelowSpec& spec);

CountBelowOutput decode_count_below(const CountBelowSpec& spec,
                                    const std::vector<bool>& output_bits);

// Plain reference for the same functionality.
CountBelowOutput plain_count_below(
    const CountBelowSpec& spec,
    std::span<const std::vector<std::uint64_t>> shares_per_party);

struct MixRevealSpec {
  std::size_t c = 3;
  std::uint64_t q = 0;
  std::vector<std::uint64_t> thresholds;
  double lambda = 0.0;      // mixing probability for non-common identities
  unsigned coin_bits = 16;  // resolution of the secure λ-coin
};

// Inputs, party-major: party i contributes per identity j the share bits of
// s(i,j) followed (after all shares) by coin_bits random bits per identity.
// Outputs per identity j (identity-major): [mix_j, S_j & ~mix_j bits].
Circuit build_mix_reveal_circuit(const MixRevealSpec& spec);

struct MixRevealResult {
  bool mixed = false;          // published with β = 1
  std::uint64_t frequency = 0; // opened S_j; 0 (hidden) when mixed
};

// Parses GMW output bits of a MixAndReveal circuit.
std::vector<MixRevealResult> decode_mix_reveal(
    const MixRevealSpec& spec, const std::vector<bool>& output_bits);

// Plain reference. rand_words[p][j] is party p's coin input for identity j
// (low coin_bits bits used).
std::vector<MixRevealResult> plain_mix_reveal(
    const MixRevealSpec& spec,
    std::span<const std::vector<std::uint64_t>> shares_per_party,
    std::span<const std::vector<std::uint64_t>> rand_words);

struct PureMpcSpec {
  std::size_t m = 0;                     // provider parties
  std::vector<std::uint64_t> thresholds; // t_j per identity, in [0, m]
  double lambda = 0.0;
  unsigned coin_bits = 16;
  // false reproduces the paper's measured pure-MPC baseline (count only, no
  // per-identity mixing outputs and no coin inputs).
  bool include_mixing = true;
};

// Inputs, party-major: party i contributes one membership bit per identity,
// followed by coin_bits random bits per identity. Outputs: the common count
// (bit_width(n) bits) followed by per-identity [mix_j, S_j & ~mix_j].
Circuit build_pure_mpc_circuit(const PureMpcSpec& spec);

struct PureMpcResult {
  std::uint64_t common_count = 0;
  std::vector<MixRevealResult> identities;
};

PureMpcResult decode_pure_mpc(const PureMpcSpec& spec,
                              const std::vector<bool>& output_bits);

}  // namespace eppi::mpc
