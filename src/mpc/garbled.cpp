#include "mpc/garbled.h"

#include "common/error.h"
#include "common/serialize.h"

namespace eppi::mpc {

namespace {

using eppi::net::MessageTag;
using eppi::net::PartyContext;

constexpr std::uint32_t kTagGarbled = eppi::net::kUserBase + 20;
constexpr std::uint32_t kTagOt = eppi::net::kUserBase + 21;
constexpr std::uint32_t kTagOutputs = eppi::net::kUserBase + 22;

// Non-cryptographic stand-in for the garbling PRF (see header).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t gate_prf(std::uint64_t key_a, std::uint64_t key_b,
                       std::uint64_t gate_id) noexcept {
  return mix64(mix64(key_a ^ 0x6a09e667f3bcc909ULL) +
               mix64(key_b ^ 0xbb67ae8584caa73bULL) + gate_id);
}

struct GarblerState {
  std::uint64_t delta = 0;               // global free-XOR offset (LSB = 1)
  std::vector<std::uint64_t> label0;     // zero-label per wire
  std::vector<std::uint64_t> tables;     // 4 entries per AND gate, in order
};

GarblerState garble(const Circuit& circuit, eppi::Rng& rng) {
  GarblerState st;
  st.delta = rng.next() | 1;  // permute bits of the two labels must differ
  const auto& gates = circuit.gates();
  st.label0.resize(gates.size());
  st.tables.reserve(4 * circuit.stats().and_gates);

  for (std::size_t w = 0; w < gates.size(); ++w) {
    const Gate& g = gates[w];
    switch (g.op) {
      case GateOp::kInput:
      case GateOp::kConstZero:
      case GateOp::kConstOne:
        st.label0[w] = rng.next();
        break;
      case GateOp::kXor:
        st.label0[w] = st.label0[g.a] ^ st.label0[g.b];  // free XOR
        break;
      case GateOp::kNot:
        st.label0[w] = st.label0[g.a] ^ st.delta;  // label swap
        break;
      case GateOp::kAnd: {
        const std::uint64_t out0 = rng.next();
        st.label0[w] = out0;
        std::uint64_t rows[4];
        for (int va = 0; va <= 1; ++va) {
          for (int vb = 0; vb <= 1; ++vb) {
            const std::uint64_t ka =
                st.label0[g.a] ^ (va ? st.delta : 0);
            const std::uint64_t kb =
                st.label0[g.b] ^ (vb ? st.delta : 0);
            const std::uint64_t out =
                out0 ^ ((va && vb) ? st.delta : 0);
            const auto row_index =
                static_cast<std::size_t>(((ka & 1) << 1) | (kb & 1));
            rows[row_index] = gate_prf(ka, kb, w) ^ out;
          }
        }
        for (const std::uint64_t row : rows) st.tables.push_back(row);
        break;
      }
    }
  }
  return st;
}

}  // namespace

std::uint64_t garbled_table_bytes(const Circuit& circuit) noexcept {
  return 4 * 8 * circuit.stats().and_gates;
}

std::vector<bool> run_garbled_party(PartyContext& ctx,
                                    const GarbledSession& session,
                                    const Circuit& circuit,
                                    const std::vector<bool>& my_inputs) {
  require(session.garbler != session.evaluator,
          "garbled: need two distinct parties");
  const bool is_garbler = ctx.id() == session.garbler;
  const bool is_evaluator = ctx.id() == session.evaluator;
  require(is_garbler || is_evaluator, "garbled: not a session party");

  const auto& gates = circuit.gates();
  const auto garbler_inputs = circuit.inputs_of(0);
  const auto evaluator_inputs = circuit.inputs_of(1);
  for (const Wire w : circuit.inputs()) {
    require(circuit.input_owner(w) <= 1,
            "garbled: two-party circuits only (owners 0 and 1)");
  }

  if (is_garbler) {
    require(my_inputs.size() == garbler_inputs.size(),
            "garbled: wrong garbler input count");
    const GarblerState st = garble(circuit, ctx.rng());

    // Message 1: tables, garbler's active input labels, const-wire labels,
    // output permute bits.
    eppi::BinaryWriter w;
    w.write_varint(st.tables.size());
    for (const std::uint64_t row : st.tables) w.write_u64(row);
    w.write_varint(garbler_inputs.size());
    for (std::size_t k = 0; k < garbler_inputs.size(); ++k) {
      const Wire wire = garbler_inputs[k];
      w.write_varint(wire);
      w.write_u64(st.label0[wire] ^ (my_inputs[k] ? st.delta : 0));
    }
    // Constant wires: ship the active label for the fixed value.
    std::vector<std::pair<Wire, std::uint64_t>> const_labels;
    for (std::size_t wi = 0; wi < gates.size(); ++wi) {
      if (gates[wi].op == GateOp::kConstZero) {
        const_labels.emplace_back(static_cast<Wire>(wi), st.label0[wi]);
      } else if (gates[wi].op == GateOp::kConstOne) {
        const_labels.emplace_back(static_cast<Wire>(wi),
                                  st.label0[wi] ^ st.delta);
      }
    }
    w.write_varint(const_labels.size());
    for (const auto& [wire, label] : const_labels) {
      w.write_varint(wire);
      w.write_u64(label);
    }
    w.write_varint(circuit.outputs().size());
    for (const Wire wire : circuit.outputs()) {
      w.write_u8(static_cast<std::uint8_t>(st.label0[wire] & 1));
    }
    ctx.send(session.evaluator, kTagGarbled, session.seq_base, w.take());
    ctx.mark_round();

    // Message 2 (ideal OT): both labels for every evaluator input wire.
    eppi::BinaryWriter ot;
    ot.write_varint(evaluator_inputs.size());
    for (const Wire wire : evaluator_inputs) {
      ot.write_varint(wire);
      ot.write_u64(st.label0[wire]);
      ot.write_u64(st.label0[wire] ^ st.delta);
    }
    ctx.send(session.evaluator, kTagOt, session.seq_base, ot.take());
    ctx.mark_round();

    // Message 3: opened outputs back from the evaluator.
    const auto payload =
        ctx.recv(session.evaluator, kTagOutputs, session.seq_base);
    eppi::BinaryReader r(payload);
    const std::uint64_t n_out = r.read_varint();
    if (n_out != circuit.outputs().size()) {
      throw eppi::ProtocolError("garbled: output count mismatch");
    }
    std::vector<bool> outputs(n_out);
    for (std::uint64_t k = 0; k < n_out; ++k) outputs[k] = r.read_u8() != 0;
    ctx.mark_round();
    return outputs;
  }

  // --- evaluator ------------------------------------------------------------
  require(my_inputs.size() == evaluator_inputs.size(),
          "garbled: wrong evaluator input count");
  std::vector<std::uint64_t> active(gates.size(), 0);
  std::vector<std::uint8_t> have(gates.size(), 0);

  std::vector<std::uint64_t> tables;
  std::vector<std::uint8_t> out_perm;
  {
    const auto payload =
        ctx.recv(session.garbler, kTagGarbled, session.seq_base);
    eppi::BinaryReader r(payload);
    const std::uint64_t n_rows = r.read_varint();
    if (n_rows != 4 * circuit.stats().and_gates) {
      throw eppi::ProtocolError("garbled: table size mismatch");
    }
    tables.resize(n_rows);
    for (auto& row : tables) row = r.read_u64();
    const std::uint64_t n_glabels = r.read_varint();
    for (std::uint64_t k = 0; k < n_glabels; ++k) {
      const auto wire = static_cast<Wire>(r.read_varint());
      if (wire >= gates.size()) {
        throw eppi::ProtocolError("garbled: bad label wire");
      }
      active[wire] = r.read_u64();
      have[wire] = 1;
    }
    const std::uint64_t n_consts = r.read_varint();
    for (std::uint64_t k = 0; k < n_consts; ++k) {
      const auto wire = static_cast<Wire>(r.read_varint());
      if (wire >= gates.size()) {
        throw eppi::ProtocolError("garbled: bad const wire");
      }
      active[wire] = r.read_u64();
      have[wire] = 1;
    }
    const std::uint64_t n_out = r.read_varint();
    if (n_out != circuit.outputs().size()) {
      throw eppi::ProtocolError("garbled: output perm size mismatch");
    }
    out_perm.resize(n_out);
    for (auto& p : out_perm) p = r.read_u8();
  }
  {
    const auto payload = ctx.recv(session.garbler, kTagOt, session.seq_base);
    eppi::BinaryReader r(payload);
    const std::uint64_t n = r.read_varint();
    if (n != evaluator_inputs.size()) {
      throw eppi::ProtocolError("garbled: OT batch size mismatch");
    }
    for (std::uint64_t k = 0; k < n; ++k) {
      const auto wire = static_cast<Wire>(r.read_varint());
      const std::uint64_t l0 = r.read_u64();
      const std::uint64_t l1 = r.read_u64();
      if (wire >= gates.size()) {
        throw eppi::ProtocolError("garbled: bad OT wire");
      }
      // Ideal OT: keep the chosen label, discard the other.
      active[wire] = my_inputs[k] ? l1 : l0;
      have[wire] = 1;
    }
  }

  // Evaluate in topological order.
  std::size_t and_cursor = 0;
  for (std::size_t w = 0; w < gates.size(); ++w) {
    const Gate& g = gates[w];
    switch (g.op) {
      case GateOp::kInput:
      case GateOp::kConstZero:
      case GateOp::kConstOne:
        if (!have[w]) {
          throw eppi::ProtocolError("garbled: missing label for wire");
        }
        break;
      case GateOp::kXor:
        active[w] = active[g.a] ^ active[g.b];
        break;
      case GateOp::kNot:
        active[w] = active[g.a];  // semantics carried by the label mapping
        break;
      case GateOp::kAnd: {
        const std::uint64_t ka = active[g.a];
        const std::uint64_t kb = active[g.b];
        const auto row_index =
            static_cast<std::size_t>(((ka & 1) << 1) | (kb & 1));
        active[w] =
            tables[4 * and_cursor + row_index] ^ gate_prf(ka, kb, w);
        ++and_cursor;
        break;
      }
    }
  }

  // NOT gates carry the swap in the *zero-label*, which the evaluator does
  // not see; decode via permute bits sent by the garbler. For NOT wires the
  // garbler's permute bit already accounts for the swap (label0 of the NOT
  // wire is label1 of its source), so plain decoding is uniform.
  std::vector<bool> outputs(circuit.outputs().size());
  eppi::BinaryWriter w;
  w.write_varint(outputs.size());
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    const Wire wire = circuit.outputs()[k];
    outputs[k] = static_cast<bool>((active[wire] & 1) ^ out_perm[k]);
    w.write_u8(outputs[k] ? 1 : 0);
  }
  ctx.send(session.garbler, kTagOutputs, session.seq_base, w.take());
  return outputs;
}

}  // namespace eppi::mpc
