// Yao-style garbled-circuit two-party evaluation.
//
// The paper's MPC lineage starts at Fairplay [15], a *two-party* garbled-
// circuit system; FairplayMP [16] generalized it to many parties. This
// engine implements the two-party model over the same Circuit IR as the GMW
// engine, with the classic optimizations:
//
//  * free XOR: a global offset R relates the two labels of every wire
//    (label1 = label0 ^ R), so XOR gates cost nothing;
//  * NOT gates are label swaps (label0' = label0 ^ R), also free;
//  * point-and-permute: the low bit of a label indexes the garbled table,
//    so the evaluator decrypts exactly one of the 4 rows per AND gate.
//
// Party 0 of the session garbles and sends one message (tables + its own
// active input labels + output permute bits); party 1 obtains its input
// labels through an oblivious-transfer step and evaluates, then returns the
// opened outputs. Rounds are CONSTANT in circuit depth — the structural
// contrast with GMW (rounds = AND-depth + 3) that bench_ablation_mpc
// measures.
//
// SUBSTITUTION NOTES (see DESIGN.md §2): the "encryption" H(kA, kB, gate)
// is a 64-bit splitmix-style mixer, not a cryptographic PRF, and the OT
// step is the ideal functionality (the garbler ships both labels, the
// evaluator keeps its choice and discards the other — semi-honest
// simulation). Correctness, message pattern, round count and byte volumes
// match the real protocol; only the cryptographic hardness is simulated.
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/circuit.h"
#include "net/cluster.h"

namespace eppi::mpc {

struct GarbledSession {
  eppi::net::PartyId garbler = 0;
  eppi::net::PartyId evaluator = 1;
  std::uint64_t seq_base = 0;
};

// Runs the session body for one party. Circuit input owner 0 = garbler,
// owner 1 = evaluator. Both parties return the opened output bits.
// Total communication rounds: 3 (garble+labels, OT labels, outputs),
// independent of circuit depth.
std::vector<bool> run_garbled_party(eppi::net::PartyContext& ctx,
                                    const GarbledSession& session,
                                    const Circuit& circuit,
                                    const std::vector<bool>& my_inputs);

// Size in bytes of the garbled-circuit message for `circuit` (4 rows of 8
// bytes per AND gate) — the Yao counterpart of GMW's per-round openings.
std::uint64_t garbled_table_bytes(const Circuit& circuit) noexcept;

}  // namespace eppi::mpc
