#include "mpc/gmw.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"
#include "mpc/beaver.h"
#include "secret/secret.h"
#include "secret/xor_share.h"

namespace eppi::mpc {

namespace {

using eppi::SecretBit;
using eppi::SecretBytes;
using eppi::net::MessageTag;
using eppi::net::PartyContext;
using eppi::net::PartyId;

// Sequence-number layout within a session's namespace.
constexpr std::uint64_t kSeqTriples = 0;
constexpr std::uint64_t kSeqInputs = 1;
constexpr std::uint64_t kSeqLayerBase = 2;  // + layer index (1-based)

std::size_t session_index(const GmwSession& session, PartyId id) {
  const auto it =
      std::find(session.parties.begin(), session.parties.end(), id);
  require(it != session.parties.end(),
          "GMW: calling party is not a session member");
  return static_cast<std::size_t>(it - session.parties.begin());
}

}  // namespace

std::uint64_t gmw_round_count(const Circuit& circuit) noexcept {
  // triples + inputs + one per AND layer + outputs.
  return 3 + circuit.stats().and_depth;
}

std::vector<bool> run_gmw_party(PartyContext& ctx, const GmwSession& session,
                                const Circuit& circuit,
                                const std::vector<bool>& my_inputs) {
  const std::size_t n = session.parties.size();
  require(n >= 2, "GMW: need at least two parties");
  const std::size_t me = session_index(session, ctx.id());
  const bool is_lead = me == 0;
  const std::uint64_t base = session.seq_base;

  // --- Preprocessing: Beaver triples from the dealer ------------------------
  const std::uint64_t n_triples = circuit.stats().and_gates;
  TripleShares triples;
  if (is_lead) {
    auto dealt = deal_triples(n, n_triples, ctx.rng());
    for (std::size_t p = 1; p < n; ++p) {
      // Wire path: party p's triple shares, serialized toward party p.
      eppi::BinaryWriter w;
      w.write_varint(dealt[p].count);
      w.write_bytes(dealt[p].a.unwrap_for_wire());
      w.write_bytes(dealt[p].b.unwrap_for_wire());
      w.write_bytes(dealt[p].c.unwrap_for_wire());
      ctx.send(session.parties[p], MessageTag::kBeaverTriple, base + kSeqTriples,
               w.take());
    }
    triples = std::move(dealt[0]);
    ctx.mark_round();
  } else {
    const auto payload =
        ctx.recv(session.parties[0], MessageTag::kBeaverTriple,
                 base + kSeqTriples);
    eppi::BinaryReader r(payload);
    triples.count = r.read_varint();
    triples.a = SecretBytes(r.read_bytes());
    triples.b = SecretBytes(r.read_bytes());
    triples.c = SecretBytes(r.read_bytes());
    if (triples.count != n_triples) {
      throw eppi::ProtocolError("GMW: triple batch size mismatch");
    }
  }

  // --- Input sharing ---------------------------------------------------------
  // share[w] = my XOR share of wire w once evaluated (tainted: wire shares
  // leave this vector only through masked/output openings).
  std::vector<SecretBit> share(circuit.n_wires());
  std::vector<std::uint8_t> evaluated(circuit.n_wires(), 0);

  // Input wires per session party, in declaration order.
  std::vector<WireVec> inputs_by_party(n);
  for (const Wire w : circuit.inputs()) {
    const std::uint32_t owner = circuit.input_owner(w);
    require(owner < n, "GMW: input owner outside session");
    inputs_by_party[owner].push_back(w);
  }
  require(my_inputs.size() == inputs_by_party[me].size(),
          "GMW: wrong number of input bits supplied");

  {
    // Split my input bits into n XOR shares via the first-class primitive;
    // send one packed share buffer to the peer that is supposed to hold it.
    const std::uint64_t mine = inputs_by_party[me].size();
    std::vector<std::uint8_t> packed_inputs(packed_size(mine), 0);
    for (std::uint64_t i = 0; i < mine; ++i) {
      set_packed_bit(packed_inputs, i, my_inputs[i]);
    }
    const auto out_shares =
        eppi::secret::split_xor_packed(packed_inputs, mine, n, ctx.rng());
    for (std::size_t p = 0; p < n; ++p) {
      if (p == me) {
        for (std::uint64_t i = 0; i < mine; ++i) {
          const Wire w = inputs_by_party[me][i];
          share[w] = SecretBit(
              get_packed_bit(out_shares[me].unwrap_for_wire(), i));
          evaluated[w] = 1;
        }
        continue;
      }
      if (mine == 0) continue;
      ctx.send(session.parties[p], MessageTag::kMpcInputShare,
               base + kSeqInputs, out_shares[p].unwrap_for_wire());
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (p == me || inputs_by_party[p].empty()) continue;
      const auto payload = ctx.recv(session.parties[p],
                                    MessageTag::kMpcInputShare,
                                    base + kSeqInputs);
      if (payload.size() != packed_size(inputs_by_party[p].size())) {
        throw eppi::ProtocolError("GMW: bad input-share payload size");
      }
      for (std::uint64_t i = 0; i < inputs_by_party[p].size(); ++i) {
        const Wire w = inputs_by_party[p][i];
        share[w] = SecretBit(get_packed_bit(payload, i));
        evaluated[w] = 1;
      }
    }
    if (is_lead) ctx.mark_round();
  }

  // --- Local evaluation helpers ----------------------------------------------
  const auto& gates = circuit.gates();
  std::size_t eval_cursor = 0;  // wires before this are all evaluated
  const auto eval_up_to = [&](std::uint32_t layer_limit) {
    for (std::size_t w = eval_cursor; w < gates.size(); ++w) {
      if (evaluated[w]) continue;
      if (circuit.layer(static_cast<Wire>(w)) > layer_limit) continue;
      const Gate& g = gates[w];
      switch (g.op) {
        case GateOp::kInput:
          throw eppi::ProtocolError("GMW: unshared input wire");
        case GateOp::kConstZero:
          share[w] = SecretBit(false);
          break;
        case GateOp::kConstOne:
          share[w] = SecretBit(me == 0);
          break;
        case GateOp::kXor:
          share[w] = share[g.a] ^ share[g.b];
          break;
        case GateOp::kNot:
          // Public constant enters through party 0's share only.
          share[w] = me == 0 ? (share[g.a] ^ true) : share[g.a];
          break;
        case GateOp::kAnd:
          // AND gates are evaluated by the round loop.
          continue;
      }
      evaluated[w] = 1;
    }
    // Advance the cursor past the fully-evaluated prefix.
    while (eval_cursor < gates.size() && evaluated[eval_cursor]) ++eval_cursor;
  };

  // Group AND gates by layer; triple indices follow wire order.
  const auto depth = static_cast<std::uint32_t>(circuit.stats().and_depth);
  std::vector<std::vector<Wire>> and_by_layer(depth + 1);
  {
    for (std::size_t w = 0; w < gates.size(); ++w) {
      if (gates[w].op == GateOp::kAnd) {
        and_by_layer[circuit.layer(static_cast<Wire>(w))].push_back(
            static_cast<Wire>(w));
      }
    }
  }
  std::uint64_t triple_cursor = 0;

  // --- Round loop: one masked opening per AND layer ---------------------------
  for (std::uint32_t layer = 1; layer <= depth; ++layer) {
    eval_up_to(layer - 1);
    const auto& layer_gates = and_by_layer[layer];
    const std::uint64_t k = layer_gates.size();
    const std::uint64_t first_triple = triple_cursor;

    // My masked shares: 2 bits per gate (d_i, e_i). The masked share
    // d = x ⊕ a stays secret until every party's contribution is XORed in;
    // broadcasting it is the wire path of the masked-opening round.
    std::vector<std::uint8_t> masked(packed_size(2 * k), 0);
    for (std::uint64_t i = 0; i < k; ++i) {
      const Gate& g = gates[layer_gates[i]];
      const std::uint64_t t = first_triple + i;
      const SecretBit d_share = share[g.a] ^ triples.a_bit(t);
      const SecretBit e_share = share[g.b] ^ triples.b_bit(t);
      set_packed_bit(masked, 2 * i, d_share.unwrap_for_wire());
      set_packed_bit(masked, 2 * i + 1, e_share.unwrap_for_wire());
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (p == me) continue;
      ctx.send(session.parties[p], MessageTag::kMpcOpen,
               base + kSeqLayerBase + layer, masked);
    }
    // Opened (d, e) = XOR over all parties' masked shares.
    std::vector<std::uint8_t> opened = masked;
    for (std::size_t p = 0; p < n; ++p) {
      if (p == me) continue;
      const auto payload = ctx.recv(session.parties[p], MessageTag::kMpcOpen,
                                    base + kSeqLayerBase + layer);
      if (payload.size() != opened.size()) {
        throw eppi::ProtocolError("GMW: bad opening payload size");
      }
      for (std::size_t byte = 0; byte < opened.size(); ++byte) {
        opened[byte] ^= payload[byte];
      }
    }
    for (std::uint64_t i = 0; i < k; ++i) {
      const Wire w = layer_gates[i];
      const std::uint64_t t = first_triple + i;
      // d, e are public (fully opened); z stays a tainted share.
      const bool d = get_packed_bit(opened, 2 * i);
      const bool e = get_packed_bit(opened, 2 * i + 1);
      SecretBit z = triples.c_bit(t) ^ (triples.b_bit(t) & d) ^
                    (triples.a_bit(t) & e);
      if (me == 0 && d && e) z = z ^ true;
      share[w] = z;
      evaluated[w] = 1;
    }
    triple_cursor += k;
    if (is_lead) ctx.mark_round();
  }
  eval_up_to(depth);

  // --- Output opening ----------------------------------------------------------
  const auto& outs = circuit.outputs();
  std::vector<std::uint8_t> out_shares(packed_size(outs.size()), 0);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    require(evaluated[outs[i]] != 0, "GMW: output wire not evaluated");
    // Output opening: every party broadcasts its output-wire shares.
    set_packed_bit(out_shares, i, share[outs[i]].unwrap_for_wire());
  }
  const std::uint64_t out_seq = base + kSeqLayerBase + depth + 1;
  for (std::size_t p = 0; p < n; ++p) {
    if (p == me) continue;
    ctx.send(session.parties[p], MessageTag::kMpcOutputShare, out_seq,
             out_shares);
  }
  std::vector<std::uint8_t> opened_out = out_shares;
  for (std::size_t p = 0; p < n; ++p) {
    if (p == me) continue;
    const auto payload = ctx.recv(session.parties[p],
                                  MessageTag::kMpcOutputShare, out_seq);
    if (payload.size() != opened_out.size()) {
      throw eppi::ProtocolError("GMW: bad output payload size");
    }
    for (std::size_t byte = 0; byte < opened_out.size(); ++byte) {
      opened_out[byte] ^= payload[byte];
    }
  }
  if (is_lead) ctx.mark_round();

  std::vector<bool> result(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    result[i] = get_packed_bit(opened_out, i);
  }
  return result;
}

}  // namespace eppi::mpc
