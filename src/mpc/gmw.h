// GMW-style secure evaluation of Boolean circuits.
//
// This is the generic-MPC engine standing in for FairplayMP (paper §IV-B.2):
// every wire value is XOR-shared among the session parties; XOR/NOT gates
// are evaluated locally, and each AND gate consumes one Beaver triple and one
// masked opening. AND gates at the same AND-depth are batched into a single
// communication round, so total online rounds = AND-depth + 3 (triple
// delivery, input sharing, output opening).
//
// The engine runs *inside* a net::Cluster: any subset of cluster parties can
// form an MPC session (the ε-PPI constructor runs SecSumShare over all m
// providers, then a c-party GMW session among the coordinators, all within
// one cluster).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpc/circuit.h"
#include "net/cluster.h"

namespace eppi::mpc {

struct GmwSession {
  // Cluster ids of the session parties; circuit input owners are indices
  // into this vector. parties[0] acts as preprocessing dealer and round
  // marker.
  std::vector<eppi::net::PartyId> parties;
  // Message-sequence namespace; concurrent or consecutive sessions in one
  // cluster must use seq_base values at least kSeqStride apart.
  std::uint64_t seq_base = 0;

  static constexpr std::uint64_t kSeqStride = std::uint64_t{1} << 20;
};

// Runs the session body for one party. `my_inputs` holds this party's input
// bits in the order Circuit::inputs_of(my session index) declares them.
// Returns the opened output bits (all session parties learn all outputs).
//
// Must be called from within Cluster::run, by every session party, with the
// same circuit. Throws ConfigError on misuse, ProtocolError on malformed
// peer messages.
std::vector<bool> run_gmw_party(eppi::net::PartyContext& ctx,
                                const GmwSession& session,
                                const Circuit& circuit,
                                const std::vector<bool>& my_inputs);

// Total synchronous rounds the engine will use for `circuit` (for analytic
// cost accounting and tests).
std::uint64_t gmw_round_count(const Circuit& circuit) noexcept;

}  // namespace eppi::mpc
