#include "mpc/optimizer.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "mpc/circuit_builder.h"

namespace eppi::mpc {

OptimizeResult optimize_circuit(const Circuit& input) {
  const auto& gates = input.gates();

  // Liveness: walk back from the outputs. Inputs are pinned live so the
  // per-party input interface survives unchanged.
  std::vector<std::uint8_t> live(gates.size(), 0);
  {
    std::vector<Wire> stack(input.outputs().begin(), input.outputs().end());
    for (const Wire w : input.inputs()) live[w] = 1;
    while (!stack.empty()) {
      const Wire w = stack.back();
      stack.pop_back();
      if (live[w]) continue;
      live[w] = 1;
      const Gate& g = gates[w];
      switch (g.op) {
        case GateOp::kXor:
        case GateOp::kAnd:
          stack.push_back(g.a);
          stack.push_back(g.b);
          break;
        case GateOp::kNot:
          stack.push_back(g.a);
          break;
        default:
          break;
      }
    }
  }

  CircuitBuilder cb;
  OptimizeStats stats;
  std::vector<Wire> remap(gates.size());
  // Structural value-numbering table: (op, a, b) -> new wire.
  std::map<std::tuple<GateOp, Wire, Wire>, Wire> seen;
  // For NOT-collapse we track, per new wire, which new wire its negation is
  // known to be (if any) — NOT(NOT(x)) then maps straight back to x.
  std::map<Wire, Wire> negation_of;

  for (std::size_t w = 0; w < gates.size(); ++w) {
    const Gate& g = gates[w];
    if (!live[w]) {
      if (g.op != GateOp::kConstZero && g.op != GateOp::kConstOne) {
        ++stats.dead_removed;
      }
      remap[w] = 0;  // never read
      continue;
    }
    switch (g.op) {
      case GateOp::kInput:
        remap[w] = cb.input_bit(g.a);
        break;
      case GateOp::kConstZero:
        remap[w] = cb.zero();
        break;
      case GateOp::kConstOne:
        remap[w] = cb.one();
        break;
      case GateOp::kNot: {
        const Wire a = remap[g.a];
        const auto neg = negation_of.find(a);
        if (neg != negation_of.end()) {
          remap[w] = neg->second;
          ++stats.not_collapsed;
          break;
        }
        const auto key = std::make_tuple(GateOp::kNot, a, Wire{0});
        const auto it = seen.find(key);
        if (it != seen.end()) {
          remap[w] = it->second;
          ++stats.cse_merged;
          break;
        }
        const Wire out = cb.Not(a);
        seen.emplace(key, out);
        negation_of.emplace(out, a);
        remap[w] = out;
        break;
      }
      case GateOp::kXor:
      case GateOp::kAnd: {
        Wire a = remap[g.a];
        Wire b = remap[g.b];
        if (a > b) std::swap(a, b);  // commutative normalization
        const auto key = std::make_tuple(g.op, a, b);
        const auto it = seen.find(key);
        if (it != seen.end()) {
          remap[w] = it->second;
          ++stats.cse_merged;
          break;
        }
        const Wire out =
            g.op == GateOp::kXor ? cb.Xor(a, b) : cb.And(a, b);
        seen.emplace(key, out);
        remap[w] = out;
        break;
      }
    }
  }

  for (const Wire w : input.outputs()) cb.output(remap[w]);
  OptimizeResult result;
  result.circuit = cb.take();
  result.stats = stats;
  return result;
}

}  // namespace eppi::mpc
