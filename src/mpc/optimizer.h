// Circuit optimization passes.
//
// The circuit builder already folds constants; this pass cleans up what
// structural construction leaves behind — the same role FairplayMP's SFDL
// compiler optimizations play for the paper's prototype (circuit size is
// the paper's scalability currency, Fig. 6b):
//
//  * dead-gate elimination: gates not reachable from any output are dropped
//    (input wires are always kept so the party-facing interface is stable);
//  * common-subexpression elimination: structurally identical gates are
//    merged (XOR/AND operands are order-normalized first);
//  * double-negation collapse: NOT(NOT(x)) becomes x.
//
// The result computes the same outputs for every input assignment
// (property-tested against random circuits in tests/mpc/optimizer_test.cpp).
#pragma once

#include "mpc/circuit.h"

namespace eppi::mpc {

struct OptimizeStats {
  std::uint64_t dead_removed = 0;
  std::uint64_t cse_merged = 0;
  std::uint64_t not_collapsed = 0;
};

struct OptimizeResult {
  Circuit circuit;
  OptimizeStats stats;
};

OptimizeResult optimize_circuit(const Circuit& input);

}  // namespace eppi::mpc
