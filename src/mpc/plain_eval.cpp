#include "mpc/plain_eval.h"

#include "common/error.h"

namespace eppi::mpc {

std::vector<bool> evaluate_plain(const Circuit& circuit,
                                 const std::vector<bool>& inputs) {
  require(inputs.size() == circuit.inputs().size(),
          "evaluate_plain: input count mismatch");
  std::vector<bool> values(circuit.n_wires(), false);
  std::size_t next_input = 0;
  const auto& gates = circuit.gates();
  for (std::size_t w = 0; w < gates.size(); ++w) {
    const Gate& g = gates[w];
    switch (g.op) {
      case GateOp::kInput:
        values[w] = inputs[next_input++];
        break;
      case GateOp::kConstZero:
        values[w] = false;
        break;
      case GateOp::kConstOne:
        values[w] = true;
        break;
      case GateOp::kXor:
        values[w] = values[g.a] != values[g.b];
        break;
      case GateOp::kAnd:
        values[w] = values[g.a] && values[g.b];
        break;
      case GateOp::kNot:
        values[w] = !values[g.a];
        break;
    }
  }
  std::vector<bool> outputs;
  outputs.reserve(circuit.outputs().size());
  for (const Wire w : circuit.outputs()) outputs.push_back(values[w]);
  return outputs;
}

std::uint64_t bits_to_u64(const std::vector<bool>& bits) {
  require(bits.size() <= 64, "bits_to_u64: too many bits");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::vector<bool> u64_to_bits(std::uint64_t value, unsigned width) {
  std::vector<bool> bits(width);
  for (unsigned i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

}  // namespace eppi::mpc
