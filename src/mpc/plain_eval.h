// Cleartext circuit evaluation.
//
// Used as the correctness reference for the secure GMW engine (every circuit
// test evaluates both ways and compares) and by unit tests of the arithmetic
// block library.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpc/circuit.h"

namespace eppi::mpc {

// `inputs` holds one bit per input wire, in circuit input-declaration order
// (interleaved across parties exactly as declared). Returns output bits in
// output-declaration order.
std::vector<bool> evaluate_plain(const Circuit& circuit,
                                 const std::vector<bool>& inputs);

// Packs little-endian bits into an integer (first bit = LSB).
std::uint64_t bits_to_u64(const std::vector<bool>& bits);

// Unpacks `width` little-endian bits of `value`.
std::vector<bool> u64_to_bits(std::uint64_t value, unsigned width);

}  // namespace eppi::mpc
