#include "net/chaos_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "net/wire.h"

namespace eppi::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "ChaosProxy: bad host address " + host);
  return addr;
}

// Read exactly `len` bytes; false on EOF/error.
bool read_full(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n;
    do {
      n = ::recv(fd, p, len, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_full(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n;
    do {
      n = ::send(fd, p, len, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Arrange for close() to send RST instead of FIN, then cut the stream.
void hard_reset(int fd) {
  const linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace

ChaosProxy::ChaosProxy(std::vector<ProxyRoute> routes, FaultScenario scenario,
                       std::uint64_t seed)
    : routes_(std::move(routes)), scenario_(std::move(scenario)), seed_(seed) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  require(!started_, "ChaosProxy: already started");
  started_ = true;
  listen_fds_.reserve(routes_.size());
  for (const ProxyRoute& route : routes_) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    require(fd >= 0, "ChaosProxy: cannot create listen socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr("0.0.0.0", route.listen_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
      ::close(fd);
      for (const int lfd : listen_fds_) ::close(lfd);
      listen_fds_.clear();
      throw eppi::ProtocolError("ChaosProxy: cannot listen on port " +
                                std::to_string(route.listen_port));
    }
    listen_fds_.push_back(fd);
  }
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    accept_threads_.emplace_back([this, i] { accept_loop(i); });
  }
}

void ChaosProxy::stop() {
  {
    const MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  // Connection handlers observe their shut-down sockets and finish; new ones
  // cannot appear (stopping_ is set and the listeners are gone).
  for (;;) {
    std::vector<std::thread> batch;
    {
      const MutexLock lock(mutex_);
      batch.swap(conn_threads_);
    }
    if (batch.empty()) break;
    for (auto& t : batch) {
      if (t.joinable()) t.join();
    }
  }
}

void ChaosProxy::reset_all_connections() {
  const MutexLock lock(mutex_);
  for (const int fd : live_fds_) hard_reset(fd);
  stats_.resets += live_fds_.empty() ? 0 : 1;
}

ProxyStats ChaosProxy::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

void ChaosProxy::track_fd(int fd) {
  const MutexLock lock(mutex_);
  live_fds_.insert(fd);
}

void ChaosProxy::untrack_fd(int fd) {
  const MutexLock lock(mutex_);
  live_fds_.erase(fd);
}

void ChaosProxy::accept_loop(std::size_t route_idx) {
  const int listen_fd = listen_fds_[route_idx];
  for (;;) {
    const int client = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    {
      const MutexLock lock(mutex_);
      if (stopping_) {
        if (client >= 0) ::close(client);
        return;
      }
      if (client < 0) continue;
      ++stats_.connections;
      conn_threads_.emplace_back(
          [this, route_idx, client] { handle_connection(route_idx, client); });
    }
  }
}

void ChaosProxy::handle_connection(std::size_t route_idx, int client_fd) {
  const ProxyRoute& route = routes_[route_idx];
  const int one = 1;
  ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  track_fd(client_fd);

  // The dialing party announces itself first; that hello tells us which
  // directed link this connection is so the right faults apply.
  unsigned char hello_bytes[wire::kHelloBytes];
  if (!read_full(client_fd, hello_bytes, sizeof(hello_bytes))) {
    untrack_fd(client_fd);
    ::close(client_fd);
    return;
  }
  const wire::Hello hello = wire::decode_hello(hello_bytes);
  const PartyId client_party = hello.party;
  const LinkFault c2t = scenario_.fault_for(client_party, route.target_party);
  const LinkFault t2c = scenario_.fault_for(route.target_party, client_party);

  if (c2t.connect_delay.count() > 0) {
    std::this_thread::sleep_for(c2t.connect_delay);
  }

  // Dial the fronted party (briefly retried: the proxy may come up first).
  int target_fd = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    target_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (target_fd < 0) break;
    sockaddr_in addr = make_addr(route.target_host, route.target_port);
    if (::connect(target_fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    ::close(target_fd);
    target_fd = -1;
    {
      const MutexLock lock(mutex_);
      if (stopping_) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (target_fd < 0) {
    untrack_fd(client_fd);
    ::close(client_fd);
    return;
  }
  ::setsockopt(target_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  track_fd(target_fd);

  std::uint64_t forwarded_c2t = 0;
  if (c2t.blackhole) {
    const MutexLock lock(mutex_);
    stats_.blackholed_bytes += sizeof(hello_bytes);
  } else if (write_full(target_fd, hello_bytes, sizeof(hello_bytes))) {
    forwarded_c2t = sizeof(hello_bytes);
    const MutexLock lock(mutex_);
    stats_.bytes_forwarded += sizeof(hello_bytes);
  }

  const std::uint64_t conn_seed =
      seed_ ^ (std::uint64_t{client_party} << 32) ^ route.target_party;
  std::thread back([this, target_fd, client_fd, t2c, conn_seed] {
    relay(target_fd, client_fd, t2c, conn_seed * 2 + 1, 0);
  });
  relay(client_fd, target_fd, c2t, conn_seed * 2, forwarded_c2t);
  back.join();

  untrack_fd(client_fd);
  untrack_fd(target_fd);
  ::close(client_fd);
  ::close(target_fd);
}

void ChaosProxy::relay(int src_fd, int dst_fd, LinkFault fault,
                       std::uint64_t rng_seed, std::uint64_t already) {
  Rng rng(rng_seed);
  std::uint64_t forwarded = already;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t cap = fault.split_bytes != 0
                              ? std::min<std::size_t>(fault.split_bytes, 64 * 1024)
                              : 64 * 1024;
  std::vector<unsigned char> buf(cap > 0 ? cap : 1);

  for (;;) {
    ssize_t n;
    do {
      n = ::recv(src_fd, buf.data(), buf.size(), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) break;

    if (fault.blackhole) {
      const MutexLock lock(mutex_);
      stats_.blackholed_bytes += static_cast<std::uint64_t>(n);
      continue;
    }
    if (fault.delay_max.count() > 0) {
      const auto lo = fault.delay_min.count();
      const auto hi = fault.delay_max.count();
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.next_in(lo, hi)));
    }
    if (fault.throttle_bytes_per_s > 0) {
      // Pace against the connection start so bursts amortize correctly.
      const auto due =
          start + std::chrono::microseconds((forwarded - already) * 1000000 /
                                            fault.throttle_bytes_per_s);
      std::this_thread::sleep_until(due);
    }

    std::size_t off = 0;
    while (off < static_cast<std::size_t>(n)) {
      std::size_t chunk = static_cast<std::size_t>(n) - off;
      if (fault.split_bytes != 0) {
        chunk = std::min<std::size_t>(chunk, fault.split_bytes);
      }
      ssize_t w;
      do {
        w = ::send(dst_fd, buf.data() + off, chunk, MSG_NOSIGNAL);
      } while (w < 0 && errno == EINTR);
      if (w <= 0) {
        ::shutdown(src_fd, SHUT_RDWR);
        ::shutdown(dst_fd, SHUT_RDWR);
        return;
      }
      off += static_cast<std::size_t>(w);
      forwarded += static_cast<std::uint64_t>(w);
      {
        const MutexLock lock(mutex_);
        stats_.bytes_forwarded += static_cast<std::uint64_t>(w);
      }
      if (fault.reset_after_bytes != 0 &&
          forwarded >= fault.reset_after_bytes) {
        {
          const MutexLock lock(mutex_);
          ++stats_.resets;
        }
        hard_reset(src_fd);
        hard_reset(dst_fd);
        return;
      }
      if (fault.split_bytes != 0 && off < static_cast<std::size_t>(n)) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  ::shutdown(src_fd, SHUT_RDWR);
  ::shutdown(dst_fd, SHUT_RDWR);
}

}  // namespace eppi::net
