// TCP chaos proxy: the FaultScenario DSL applied to real sockets.
//
// The in-memory FaultyTransport exercises protocol logic against message
// loss; it cannot produce what actual deployments see — connection resets
// mid-frame, half-open links, slow trickling writes, dials that hang. The
// ChaosProxy closes that gap: each ProxyRoute fronts one party's listen
// port, relaying every connection byte-for-byte to the real port while
// applying the TCP-level faults of a FaultScenario (reset_after, blackhole,
// throttle, split, connect_delay; the probabilistic delay range also
// applies, per relayed chunk).
//
// Direction mapping: the proxy learns the dialing party's id from the Hello
// it forwards (wire.h — the handshake is in the clear), so a relayed
// connection applies fault_for(client, target) to client->target bytes and
// fault_for(target, client) to the reverse direction. A scenario string can
// therefore drive the in-memory harness and a multi-process mesh
// identically: "link 2->0: reset_after=4096" resets party 2's link to
// party 0 after 4 KiB regardless of which harness runs it.
//
// Implementation is deliberately boring: one blocking accept thread per
// route, two blocking relay threads per connection. The proxy is a test
// instrument, not a data-plane component; clarity beats throughput.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/fault.h"
#include "net/message.h"

namespace eppi::net {

struct ProxyRoute {
  std::uint16_t listen_port = 0;  // what peers dial (the advertised port)
  std::string target_host = "127.0.0.1";
  std::uint16_t target_port = 0;  // where the fronted party really listens
  PartyId target_party = 0;       // the fronted party's id (fault direction)
};

struct ProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t resets = 0;            // links cut by reset_after
  std::uint64_t blackholed_bytes = 0;  // bytes read and discarded
};

class ChaosProxy {
 public:
  ChaosProxy(std::vector<ProxyRoute> routes, FaultScenario scenario,
             std::uint64_t seed = 1);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  // Binds and listens on every route, then serves until stop(). Throws
  // ProtocolError if a listen port cannot be bound.
  void start();
  void stop();

  // Hard-reset every currently relayed connection (SO_LINGER 0 close), as
  // if the network partitioned for an instant. Listeners stay up, so peers
  // reconnect through the proxy.
  void reset_all_connections();

  ProxyStats stats() const;

 private:
  void accept_loop(std::size_t route_idx);
  void handle_connection(std::size_t route_idx, int client_fd);
  void relay(int src_fd, int dst_fd, LinkFault fault, std::uint64_t rng_seed,
             std::uint64_t already);

  void track_fd(int fd);
  void untrack_fd(int fd);

  std::vector<ProxyRoute> routes_;
  FaultScenario scenario_;
  std::uint64_t seed_;

  std::vector<int> listen_fds_;
  std::vector<std::thread> accept_threads_;

  mutable Mutex mutex_;
  std::vector<std::thread> conn_threads_ EPPI_GUARDED_BY(mutex_);
  std::set<int> live_fds_ EPPI_GUARDED_BY(mutex_);
  ProxyStats stats_ EPPI_GUARDED_BY(mutex_);
  bool stopping_ EPPI_GUARDED_BY(mutex_) = false;
  bool started_ = false;
};

}  // namespace eppi::net
