#include "net/cluster.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.h"
#include "common/mutex.h"
#include "net/fault.h"

namespace eppi::net {

void PartyContext::send(PartyId to, std::uint32_t tag, std::uint64_t seq,
                        std::vector<std::uint8_t> payload) {
  Message msg;
  msg.from = id_;
  msg.to = to;
  msg.tag = tag;
  msg.seq = seq;
  msg.payload = std::move(payload);
  local_meter_.record_message(msg.wire_size());
  transport_.send(std::move(msg));
}

std::vector<std::uint8_t> PartyContext::recv(PartyId from, std::uint32_t tag,
                                             std::uint64_t seq) {
  if (recv_timeout_ == std::chrono::milliseconds::zero()) {
    return inbox_.recv(from, tag, seq).payload;
  }
  auto result = recv_for(from, tag, seq, recv_timeout_);
  if (!result) {
    throw eppi::PartyFailure("recv timed out waiting for party " +
                                 std::to_string(from) + " tag " +
                                 std::to_string(tag),
                             from);
  }
  return std::move(*result);
}

std::optional<std::vector<std::uint8_t>> PartyContext::recv_for(
    PartyId from, std::uint32_t tag, std::uint64_t seq,
    std::chrono::milliseconds timeout) {
  // Polling with a short sleep keeps Mailbox's interface minimal; bounded
  // receives sit on failure-detection paths, never on the loss-free hot
  // path.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Message msg;
  while (std::chrono::steady_clock::now() < deadline) {
    if (inbox_.try_recv(from, tag, seq, msg)) return std::move(msg.payload);
    // A party a failure detector declared dead will not send: report the
    // timeout immediately instead of sleeping out the full budget.
    if (inbox_.party_failed(from)) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (inbox_.try_recv(from, tag, seq, msg)) return std::move(msg.payload);
  return std::nullopt;
}

Cluster::Cluster(std::size_t n_parties, std::uint64_t seed)
    : mailboxes_(n_parties), seed_(seed) {
  require(n_parties >= 1, "Cluster: need at least one party");
  base_transport_ = std::make_unique<InMemoryTransport>(mailboxes_, meter_);
  active_transport_ = base_transport_.get();
}

Cluster::~Cluster() {
  // The reliability layer's retransmit thread touches mailboxes_; stop it
  // before members are torn down.
  if (reliable_layer_) reliable_layer_->stop();
  if (fault_layer_) fault_layer_->drain();
}

FaultyTransport& Cluster::inject_faults(FaultScenario scenario,
                                        std::uint64_t seed) {
  require(fault_layer_ == nullptr,
          "Cluster: fault injection already installed");
  fault_layer_ = std::make_unique<FaultyTransport>(*active_transport_,
                                                   std::move(scenario), seed);
  active_transport_ = fault_layer_.get();
  return *fault_layer_;
}

ReliableTransport& Cluster::enable_reliability(ReliableOptions options) {
  require(reliable_layer_ == nullptr, "Cluster: reliability already enabled");
  reliable_layer_ = std::make_unique<ReliableTransport>(*active_transport_,
                                                        mailboxes_, options);
  // Acks traverse the full chain below the reliability layer (so they are
  // subject to injected faults) but are never themselves retransmitted.
  for (std::size_t i = 0; i < mailboxes_.size(); ++i) {
    mailboxes_[i].enable_reliable(reliable_layer_.get(),
                                  static_cast<PartyId>(i));
  }
  active_transport_ = reliable_layer_.get();
  return *reliable_layer_;
}

void Cluster::run(const std::function<void(PartyContext&)>& body) {
  std::vector<std::function<void(PartyContext&)>> bodies(mailboxes_.size(),
                                                         body);
  run(bodies);
}

void Cluster::run(const std::vector<std::function<void(PartyContext&)>>& bodies) {
  require(bodies.size() == mailboxes_.size(),
          "Cluster: one body per party required");
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  // error_mutex guards first_error and crashed_ for the duration of this
  // call only; once the joins below complete, crashed_ is again owned by the
  // caller's thread (which is why the member carries no EPPI_GUARDED_BY).
  std::exception_ptr first_error;
  Mutex error_mutex;
  crashed_.clear();

  Rng seeder(seed_);
  std::vector<Rng> party_rngs;
  party_rngs.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    party_rngs.push_back(seeder.fork());
  }

  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([this, i, &bodies, &party_rngs, &first_error,
                          &error_mutex] {
      PartyContext ctx(static_cast<PartyId>(i), mailboxes_.size(),
                       *active_transport_, mailboxes_[i], meter_,
                       party_rngs[i], recv_timeout_);
      try {
        bodies[i](ctx);
      } catch (const SimulatedCrash&) {
        // Injected dropout, not a failure of the code under test: record it
        // so callers can assert which parties died.
        const MutexLock lock(error_mutex);
        crashed_.push_back(static_cast<PartyId>(i));
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  std::sort(crashed_.begin(), crashed_.end());
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace eppi::net
