// Threaded multi-party cluster runtime.
//
// A Cluster runs one OS thread per protocol party (the paper maps each party
// to one Emulab machine; we map each to a thread with metered in-memory
// links). Party code receives a PartyContext offering selective blocking
// receive, metered send, and a per-party deterministic RNG stream.
//
// Exceptions thrown inside any party are captured and rethrown from run() on
// the caller's thread, so test assertions inside protocol code surface
// normally. A SimulatedCrash (fault injection) is the one exception treated
// differently: the party is recorded as crashed and run() completes, letting
// the surviving parties' dropout-recovery logic be exercised end to end.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "net/cost_meter.h"
#include "net/faulty_transport.h"
#include "net/mailbox.h"
#include "net/reliable_transport.h"
#include "net/transport.h"

namespace eppi::net {

class Cluster;

class PartyContext {
 public:
  PartyContext(PartyId id, std::size_t n_parties, Transport& transport,
               Mailbox& inbox, CostMeter& meter, Rng rng,
               std::chrono::milliseconds recv_timeout =
                   std::chrono::milliseconds::zero())
      : id_(id),
        n_parties_(n_parties),
        transport_(transport),
        inbox_(inbox),
        meter_(meter),
        rng_(rng),
        recv_timeout_(recv_timeout) {}

  PartyId id() const noexcept { return id_; }
  std::size_t n_parties() const noexcept { return n_parties_; }

  // Sends `payload` to party `to` under (tag, seq).
  void send(PartyId to, std::uint32_t tag, std::uint64_t seq,
            std::vector<std::uint8_t> payload);

  // Blocks until the matching message arrives and returns its payload.
  // When the cluster configured a receive timeout, waiting longer than the
  // deadline throws PartyFailure (a ProtocolError) naming the silent party
  // instead of hanging — protocols fail cleanly under message loss or a
  // crashed peer.
  std::vector<std::uint8_t> recv(PartyId from, std::uint32_t tag,
                                 std::uint64_t seq);

  // Bounded receive used by failure detectors and fault-injection tests;
  // std::nullopt on timeout.
  std::optional<std::vector<std::uint8_t>> recv_for(
      PartyId from, std::uint32_t tag, std::uint64_t seq,
      std::chrono::milliseconds timeout);

  // The cluster-wide receive timeout (zero = unbounded).
  std::chrono::milliseconds recv_timeout() const noexcept {
    return recv_timeout_;
  }

  // Marks one synchronous communication round. By convention only party 0 of
  // a protocol instance calls this, so the meter counts protocol rounds, not
  // rounds x parties.
  void mark_round(std::uint64_t n = 1) {
    meter_.record_round(n);
    local_meter_.record_round(n);
  }

  // This party's own traffic, metered at send() time. Phase instrumentation
  // snapshots it around each protocol phase to attribute cost per party and
  // per phase; unlike the shared cluster meter it excludes transport-layer
  // extras (acks, retransmits), so per-party deltas sum to the cluster
  // totals only on plain (non-reliable) transports.
  const CostMeter& local_meter() const noexcept { return local_meter_; }

  Rng& rng() noexcept { return rng_; }

 private:
  PartyId id_;
  std::size_t n_parties_;
  Transport& transport_;
  Mailbox& inbox_;
  CostMeter& meter_;
  CostMeter local_meter_;
  Rng rng_;
  std::chrono::milliseconds recv_timeout_;
};

class Cluster {
 public:
  // n_parties parties; `seed` drives the per-party RNG streams. An optional
  // transport decorator factory lets tests wrap the metered transport (e.g.
  // FaultyTransport).
  explicit Cluster(std::size_t n_parties, std::uint64_t seed = 1);
  ~Cluster();

  std::size_t n_parties() const noexcept { return mailboxes_.size(); }
  CostMeter& meter() noexcept { return meter_; }

  // Replaces the outgoing transport seen by parties (must outlive run()).
  void set_transport(Transport& transport) noexcept {
    active_transport_ = &transport;
  }

  // Bounds every PartyContext::recv; zero (the default) waits forever.
  void set_recv_timeout(std::chrono::milliseconds timeout) noexcept {
    recv_timeout_ = timeout;
  }
  Transport& base_transport() noexcept { return *base_transport_; }

  // Installs a FaultyTransport over the currently active transport and makes
  // it active. Convenience for tests/benches driving scenarios by DSL.
  FaultyTransport& inject_faults(FaultScenario scenario,
                                 std::uint64_t seed = 1);

  // Wraps the currently active transport in a ReliableTransport (acks,
  // retransmission, per-message deadline) and switches every mailbox to
  // ack-and-dedup mode. Call after set_transport/inject_faults so the
  // reliability layer sits above the lossy one.
  ReliableTransport& enable_reliability(ReliableOptions options = {});

  // Runs `body(ctx)` on every party concurrently and joins. Rethrows the
  // first party exception; SimulatedCrash is not an error — the party is
  // recorded in crashed() instead.
  void run(const std::function<void(PartyContext&)>& body);

  // Heterogeneous variant: bodies[i] runs as party i.
  void run(const std::vector<std::function<void(PartyContext&)>>& bodies);

  // Parties that ended the last run() with a SimulatedCrash.
  const std::vector<PartyId>& crashed() const noexcept { return crashed_; }

 private:
  std::vector<Mailbox> mailboxes_;
  CostMeter meter_;
  std::unique_ptr<InMemoryTransport> base_transport_;
  std::unique_ptr<FaultyTransport> fault_layer_;
  std::unique_ptr<ReliableTransport> reliable_layer_;
  Transport* active_transport_;
  std::uint64_t seed_;
  std::chrono::milliseconds recv_timeout_ = std::chrono::milliseconds::zero();
  std::vector<PartyId> crashed_;
};

}  // namespace eppi::net
