#include "net/cost_meter.h"

// Header-only implementation; this translation unit exists so the library has
// a stable archive member for the component and a place for future
// non-inline additions.
