// Communication cost accounting.
//
// The paper's performance experiments (Fig. 6) are driven by protocol-level
// quantities: messages, bytes, communication rounds, and MPC circuit size.
// The meter records the first three at the transport layer; circuit size is
// recorded by the MPC engine. CostModel (cost_model.h) converts these counts
// into modeled wall-clock time for an Emulab-like testbed.
#pragma once

#include <atomic>
#include <cstdint>

namespace eppi::net {

struct CostSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t rounds = 0;

  CostSnapshot operator-(const CostSnapshot& other) const noexcept {
    return {messages - other.messages, bytes - other.bytes,
            rounds - other.rounds};
  }
};

// Thread safety: lock-free. Counters are relaxed atomics — per-counter
// totals are exact, but a snapshot() concurrent with recording may observe
// the counters at slightly different instants. That tearing is acceptable
// for cost accounting and keeps the meter off every send's critical path,
// which is why this class has no mutex (and no capability annotations).
class CostMeter {
 public:
  void record_message(std::size_t wire_bytes) noexcept {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
  }

  // Protocol code calls this once per synchronous communication round (from a
  // single designated party, so rounds are not multiply counted).
  void record_round(std::uint64_t n = 1) noexcept {
    rounds_.fetch_add(n, std::memory_order_relaxed);
  }

  CostSnapshot snapshot() const noexcept {
    return {messages_.load(std::memory_order_relaxed),
            bytes_.load(std::memory_order_relaxed),
            rounds_.load(std::memory_order_relaxed)};
  }

  void reset() noexcept {
    messages_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    rounds_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> rounds_{0};
};

}  // namespace eppi::net
