#include "net/cost_model.h"

#include <algorithm>

namespace eppi::net {

McpuCosts emulab_fairplaymp_costs() noexcept {
  McpuCosts costs;
  // FairplayMP (Java, BMR-style) evaluates on the order of a few hundred
  // secure gates per second on 2008-2014-era hardware; the paper's
  // single-identity CountBelow runs land around a second.
  costs.per_and_gate_s = 2.0e-2;
  costs.per_xor_gate_s = 2.0e-4;
  costs.rtt_s = 0.2e-3;          // Emulab LAN
  costs.bandwidth_bps = 100e6 / 8.0;  // 100 Mbps links
  costs.per_party_setup_s = 0.05;
  return costs;
}

double CostModel::modeled_seconds(std::uint64_t and_gates,
                                  std::uint64_t xor_gates,
                                  const CostSnapshot& comm,
                                  std::size_t parties,
                                  std::size_t mpc_parties) const noexcept {
  const double gate_scale =
      std::max(1.0, static_cast<double>(mpc_parties) /
                        costs_.reference_mpc_parties);
  return (static_cast<double>(and_gates) * costs_.per_and_gate_s +
          static_cast<double>(xor_gates) * costs_.per_xor_gate_s) *
             gate_scale +
         static_cast<double>(comm.rounds) * costs_.rtt_s +
         static_cast<double>(comm.bytes) / costs_.bandwidth_bps +
         static_cast<double>(parties) * costs_.per_party_setup_s;
}

}  // namespace eppi::net
