// Testbed cost model: converts protocol-level counts into modeled wall-clock.
//
// The paper measured start-to-end execution time on Emulab (2.4 GHz Xeon,
// LAN) with FairplayMP, a Java Boolean-circuit MPC engine whose per-gate cost
// dominates. Absolute seconds are testbed-specific; the platform-independent
// drivers are (a) secure-gate count of the compiled circuit, (b) number of
// synchronous communication rounds, and (c) bytes on the wire. The model
//
//   time = and_gates * per_and + xor_gates * per_xor
//        + rounds * rtt + bytes / bandwidth + parties * setup
//
// is calibrated (cost_model.cpp) so that magnitudes land in the paper's
// ballpark (single-identity CountBelow with c=3 parties ~ 1 s; pure MPC at
// 9 parties ~ 7 s); the *shape* across party/identity sweeps comes entirely
// from measured counts, not from the calibration.
#pragma once

#include <cstdint>

#include "net/cost_meter.h"

namespace eppi::net {

struct McpuCosts {
  // FairplayMP-style per-secure-gate online cost, seconds. AND gates require
  // cryptographic work and communication; XOR gates are nearly free.
  double per_and_gate_s = 0.0;
  double per_xor_gate_s = 0.0;
  // Per synchronous round network latency (LAN RTT), seconds.
  double rtt_s = 0.0;
  // Wire bandwidth, bytes/second.
  double bandwidth_bps = 0.0;
  // Fixed per-party session setup (connection + key setup), seconds.
  double per_party_setup_s = 0.0;
  // Per-gate cost scales with the number of MPC parties relative to this
  // reference (BMR-style protocols pay per-party cryptographic work and
  // all-to-all traffic per gate).
  double reference_mpc_parties = 3.0;
};

// Calibrated default resembling the paper's Emulab/FairplayMP deployment.
McpuCosts emulab_fairplaymp_costs() noexcept;

class CostModel {
 public:
  explicit CostModel(McpuCosts costs = emulab_fairplaymp_costs()) noexcept
      : costs_(costs) {}

  // Modeled start-to-end execution time in seconds. `parties` is the total
  // session size (drives setup cost); `mpc_parties` is the number of
  // parties inside the generic-MPC stage (drives per-gate scaling).
  double modeled_seconds(std::uint64_t and_gates, std::uint64_t xor_gates,
                         const CostSnapshot& comm, std::size_t parties,
                         std::size_t mpc_parties) const noexcept;

  const McpuCosts& costs() const noexcept { return costs_; }

 private:
  McpuCosts costs_;
};

}  // namespace eppi::net
