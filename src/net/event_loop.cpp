#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/logging.h"

namespace eppi::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw eppi::ProtocolError(std::string("EventLoop: epoll_create1: ") +
                              std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw eppi::ProtocolError(std::string("EventLoop: eventfd: ") +
                              std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw eppi::ProtocolError("EventLoop: cannot register wake fd");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

bool EventLoop::in_loop_thread() const noexcept {
  return std::this_thread::get_id() == loop_thread_;
}

void EventLoop::post(std::function<void()> fn) {
  {
    const MutexLock lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // EAGAIN means the counter is already nonzero — the loop will wake anyway.
  ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

void EventLoop::stop() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw eppi::ProtocolError(std::string("EventLoop: epoll add: ") +
                              std::strerror(errno));
  }
  fd_callbacks_[fd] = std::move(cb);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw eppi::ProtocolError(std::string("EventLoop: epoll mod: ") +
                              std::strerror(errno));
  }
}

void EventLoop::remove_fd(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
      errno != ENOENT && errno != EBADF) {
    // ENOENT/EBADF just mean the fd is already gone (closed elsewhere);
    // anything else is an interest-list bookkeeping bug worth surfacing.
    EPPI_WARN("EventLoop: epoll del fd=" << fd << ": "
                                         << std::strerror(errno));
  }
  fd_callbacks_.erase(fd);
}

EventLoop::TimerId EventLoop::add_timer(std::chrono::milliseconds delay,
                                        std::chrono::milliseconds period,
                                        std::function<void()> cb) {
  const TimerId id = next_timer_id_++;
  timer_callbacks_[id] = {period, std::move(cb)};
  timers_.push(
      Timer{std::chrono::steady_clock::now() + delay, period, id});
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_callbacks_.erase(id); }

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const MutexLock lock(mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 1000;  // idle tick; posts wake us regardless
  const auto now = std::chrono::steady_clock::now();
  const auto& top = timers_.top();
  if (top.deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      top.deadline - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

void EventLoop::fire_due_timers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    Timer t = timers_.top();
    timers_.pop();
    const auto it = timer_callbacks_.find(t.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    if (it->second.first.count() > 0) {
      // Re-arm before the callback so a callback cancelling the timer wins.
      timers_.push(Timer{t.deadline + it->second.first, it->second.first,
                         t.id});
    }
    // Copy: the callback may cancel (erase) its own entry.
    auto cb = it->second.second;
    if (it->second.first.count() == 0) timer_callbacks_.erase(it);
    cb();
  }
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  for (;;) {
    {
      const MutexLock lock(mutex_);
      if (stopping_) break;
    }
    drain_posted();
    fire_due_timers();

    epoll_event events[32];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 32, next_timeout_ms());
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      EPPI_WARN("EventLoop: epoll_wait: " << std::strerror(errno));
      break;
    }
    for (int k = 0; k < n; ++k) {
      const int fd = events[k].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        ssize_t r;
        do {
          r = ::read(wake_fd_, &drained, sizeof(drained));
        } while (r < 0 && errno == EINTR);
        continue;
      }
      // The callback may remove other fds (or itself); look up fresh.
      const auto it = fd_callbacks_.find(fd);
      if (it != fd_callbacks_.end()) {
        // Copy: the callback may remove_fd(fd), invalidating the iterator.
        auto cb = it->second;
        cb(events[k].events);
      }
    }
  }
  // Run closures posted up to the stop so shutdown hand-offs are not lost.
  drain_posted();
  loop_thread_ = std::thread::id{};
}

}  // namespace eppi::net
