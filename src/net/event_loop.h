// Single-threaded epoll reactor for the socket runtime.
//
// One EventLoop thread owns every socket: registration, nonblocking reads
// and writes, timers, and connection state machines all run on the loop
// thread, so per-connection state needs no locking (the TSan-checked
// concurrency boundary is the loop's inbound queue of posted closures and
// the Mailbox/Transport hand-off, both internally synchronized).
//
// Cross-thread interaction is exactly two calls: post() enqueues a closure
// the loop runs on its own thread (an eventfd wakes a sleeping epoll_wait),
// and stop() asks the loop to exit. Everything else — add_fd, timers,
// socket IO — must happen on the loop thread, which is asserted in debug
// builds via in_loop_thread().
//
// Timers are a deadline-ordered min-heap drained before each epoll_wait;
// the wait timeout is the earliest deadline, so a loop with no IO still
// fires heartbeats on time. Periodic timers re-arm from their *scheduled*
// deadline, not from now, so slow callbacks do not accumulate drift.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eppi::net {

class EventLoop {
 public:
  // events is an EPOLLIN/EPOLLOUT/... bitmask as delivered by epoll_wait.
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs until stop(); call from the thread that is to own the loop.
  void run() EPPI_LOOP_ENTRY;
  // Thread-safe; run() returns after the current iteration.
  void stop();

  // Thread-safe: enqueue `fn` to run on the loop thread (FIFO).
  void post(std::function<void()> fn);

  // True when called from inside run() on the loop thread.
  bool in_loop_thread() const noexcept;

  // --- loop-thread-only API -------------------------------------------------

  // Registers `fd` with the given interest mask; the callback receives the
  // ready events. The fd is NOT owned: callers close it after remove_fd.
  void add_fd(int fd, std::uint32_t events, FdCallback cb) EPPI_LOOP_AFFINE;
  void modify_fd(int fd, std::uint32_t events) EPPI_LOOP_AFFINE;
  void remove_fd(int fd) EPPI_LOOP_AFFINE;

  // One-shot (period zero) or periodic timer; delay is from now.
  TimerId add_timer(std::chrono::milliseconds delay,
                    std::chrono::milliseconds period,
                    std::function<void()> cb) EPPI_LOOP_AFFINE;
  void cancel_timer(TimerId id) EPPI_LOOP_AFFINE;

 private:
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    std::chrono::milliseconds period{0};
    TimerId id = 0;
    bool operator>(const Timer& o) const noexcept {
      return deadline > o.deadline;
    }
  };

  void drain_posted() EPPI_LOOP_AFFINE;
  int next_timeout_ms() const EPPI_LOOP_AFFINE;
  void fire_due_timers() EPPI_LOOP_AFFINE;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: post()/stop() kick a sleeping epoll_wait
  std::map<int, FdCallback> fd_callbacks_;  // loop thread only

  // Timer heap + callbacks (loop thread only). Cancellation removes the
  // callback; a stale heap entry fires into nothing.
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::map<TimerId, std::pair<std::chrono::milliseconds, std::function<void()>>>
      timer_callbacks_;
  TimerId next_timer_id_ = 1;

  mutable Mutex mutex_;
  std::vector<std::function<void()>> posted_ EPPI_GUARDED_BY(mutex_);
  bool stopping_ EPPI_GUARDED_BY(mutex_) = false;

  std::thread::id loop_thread_{};
};

}  // namespace eppi::net
