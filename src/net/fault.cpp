#include "net/fault.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/error.h"

namespace eppi::net {

namespace {

// Minimal hand-rolled scanner; the DSL is a single line, so errors carry the
// offending statement verbatim instead of positions.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

double parse_prob(const std::string& text, const std::string& stmt) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  require(end == text.c_str() + text.size() && p >= 0.0 && p <= 1.0,
          "FaultScenario: bad probability in '" + stmt + "'");
  return p;
}

std::uint64_t parse_uint(const std::string& text, const std::string& stmt) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  require(end == text.c_str() + text.size() && !text.empty(),
          "FaultScenario: bad integer in '" + stmt + "'");
  return static_cast<std::uint64_t>(v);
}

// "1..5ms" -> [1000us, 5000us]; bare "3ms" -> [3000us, 3000us].
void parse_delay(const std::string& text, const std::string& stmt,
                 LinkFault& fault) {
  std::string spec = text;
  require(spec.size() > 2 && spec.substr(spec.size() - 2) == "ms",
          "FaultScenario: delay needs an 'ms' suffix in '" + stmt + "'");
  spec = spec.substr(0, spec.size() - 2);
  const auto dots = spec.find("..");
  std::uint64_t lo, hi;
  if (dots == std::string::npos) {
    lo = hi = parse_uint(spec, stmt);
  } else {
    lo = parse_uint(spec.substr(0, dots), stmt);
    hi = parse_uint(spec.substr(dots + 2), stmt);
  }
  require(lo <= hi, "FaultScenario: delay range inverted in '" + stmt + "'");
  fault.delay_min = std::chrono::milliseconds(lo);
  fault.delay_max = std::chrono::milliseconds(hi);
}

LinkFault parse_faults(const std::string& text, const std::string& stmt) {
  LinkFault fault;
  for (const auto& raw : split(text, ',')) {
    const std::string item = trim(raw);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    require(eq != std::string::npos,
            "FaultScenario: expected key=value in '" + stmt + "'");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key == "drop") {
      fault.drop_prob = parse_prob(value, stmt);
    } else if (key == "dup") {
      fault.dup_prob = parse_prob(value, stmt);
    } else if (key == "reorder") {
      fault.reorder_prob = parse_prob(value, stmt);
    } else if (key == "delay") {
      parse_delay(value, stmt, fault);
    } else if (key == "reset_after") {
      fault.reset_after_bytes = parse_uint(value, stmt);
    } else if (key == "blackhole") {
      const std::uint64_t v = parse_uint(value, stmt);
      require(v <= 1, "FaultScenario: blackhole must be 0 or 1 in '" + stmt +
                          "'");
      fault.blackhole = (v == 1);
    } else if (key == "throttle") {
      fault.throttle_bytes_per_s = parse_uint(value, stmt);
    } else if (key == "connect_delay") {
      std::string spec = value;
      require(spec.size() > 2 && spec.substr(spec.size() - 2) == "ms",
              "FaultScenario: connect_delay needs an 'ms' suffix in '" + stmt +
                  "'");
      fault.connect_delay =
          std::chrono::milliseconds(parse_uint(spec.substr(0, spec.size() - 2), stmt));
    } else if (key == "split") {
      fault.split_bytes = parse_uint(value, stmt);
    } else {
      require(false, "FaultScenario: unknown fault '" + key + "' in '" +
                         stmt + "'");
    }
  }
  return fault;
}

void parse_churn(const std::string& party_text, const std::string& body,
                 const std::string& stmt, FaultScenario& scenario) {
  const auto party = static_cast<PartyId>(parse_uint(trim(party_text), stmt));
  ChurnEvent event;
  for (const auto& raw : split(body, ',')) {
    const std::string item = trim(raw);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    require(eq != std::string::npos,
            "FaultScenario: expected key=value in '" + stmt + "'");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key == "join_at") {
      event.join_at = parse_uint(value, stmt);
    } else if (key == "leave_at") {
      event.leave_at = parse_uint(value, stmt);
    } else if (key == "flap") {
      const auto dots = value.find("..");
      require(dots != std::string::npos,
              "FaultScenario: flap needs '<leave>..<rejoin>' in '" + stmt +
                  "'");
      event.leave_at = parse_uint(value.substr(0, dots), stmt);
      event.join_at = parse_uint(value.substr(dots + 2), stmt);
    } else {
      require(false, "FaultScenario: unknown churn event '" + key + "' in '" +
                         stmt + "'");
    }
  }
  require(event.join_at.has_value() || event.leave_at.has_value(),
          "FaultScenario: empty churn statement '" + stmt + "'");
  require(!event.join_at || *event.join_at >= 1,
          "FaultScenario: churn rounds are 1-based in '" + stmt + "'");
  require(!event.leave_at || *event.leave_at >= 1,
          "FaultScenario: churn rounds are 1-based in '" + stmt + "'");
  require(!(event.join_at && event.leave_at) || *event.leave_at < *event.join_at,
          "FaultScenario: flap must leave before it rejoins in '" + stmt +
              "'");
  scenario.churn[party] = event;
}

void parse_crash(const std::string& body, const std::string& stmt,
                 FaultScenario& scenario) {
  // body: "<P> after <N> sends" | "<P> at tag <T>"
  const auto words_raw = split(body, ' ');
  std::vector<std::string> words;
  for (const auto& w : words_raw) {
    if (!trim(w).empty()) words.push_back(trim(w));
  }
  require(words.size() >= 3, "FaultScenario: malformed crash in '" + stmt +
                                 "'");
  const auto party = static_cast<PartyId>(parse_uint(words[0], stmt));
  CrashPoint point;
  if (words[1] == "after") {
    require(words.size() == 4 && words[3] == "sends",
            "FaultScenario: expected 'crash P after N sends' in '" + stmt +
                "'");
    point.after_sends = parse_uint(words[2], stmt);
  } else if (words[1] == "at") {
    require(words.size() == 4 && words[2] == "tag",
            "FaultScenario: expected 'crash P at tag T' in '" + stmt + "'");
    point.at_tag = static_cast<std::uint32_t>(parse_uint(words[3], stmt));
  } else {
    require(false, "FaultScenario: malformed crash in '" + stmt + "'");
  }
  scenario.crashes[party] = point;
}

}  // namespace

std::vector<PartyId> FaultScenario::joins_at(std::uint64_t round) const {
  std::vector<PartyId> out;
  for (const auto& [party, event] : churn) {
    if (event.join_at == round) out.push_back(party);
  }
  return out;  // std::map iteration: already ascending
}

std::vector<PartyId> FaultScenario::leaves_at(std::uint64_t round) const {
  std::vector<PartyId> out;
  for (const auto& [party, event] : churn) {
    if (event.leave_at == round) out.push_back(party);
  }
  return out;
}

std::uint64_t FaultScenario::last_churn_round() const {
  std::uint64_t last = 0;
  for (const auto& [party, event] : churn) {
    if (event.join_at) last = std::max(last, *event.join_at);
    if (event.leave_at) last = std::max(last, *event.leave_at);
  }
  return last;
}

FaultScenario FaultScenario::parse(const std::string& spec) {
  FaultScenario scenario;
  for (const auto& raw : split(spec, ';')) {
    const std::string stmt = trim(raw);
    if (stmt.empty()) continue;
    if (stmt.rfind("all:", 0) == 0) {
      scenario.default_fault = parse_faults(stmt.substr(4), stmt);
    } else if (stmt.rfind("link", 0) == 0) {
      const auto colon = stmt.find(':');
      require(colon != std::string::npos,
              "FaultScenario: link statement needs ':' in '" + stmt + "'");
      const std::string ends = trim(stmt.substr(4, colon - 4));
      const auto arrow = ends.find("->");
      require(arrow != std::string::npos,
              "FaultScenario: link needs 'A->B' in '" + stmt + "'");
      const auto from =
          static_cast<PartyId>(parse_uint(trim(ends.substr(0, arrow)), stmt));
      const auto to =
          static_cast<PartyId>(parse_uint(trim(ends.substr(arrow + 2)), stmt));
      scenario.link_faults[{from, to}] =
          parse_faults(stmt.substr(colon + 1), stmt);
    } else if (stmt.rfind("crash", 0) == 0) {
      parse_crash(trim(stmt.substr(5)), stmt, scenario);
    } else if (stmt.rfind("churn", 0) == 0) {
      const auto colon = stmt.find(':');
      require(colon != std::string::npos,
              "FaultScenario: churn statement needs ':' in '" + stmt + "'");
      parse_churn(stmt.substr(5, colon - 5), stmt.substr(colon + 1), stmt,
                  scenario);
    } else {
      require(false, "FaultScenario: unknown statement '" + stmt + "'");
    }
  }
  return scenario;
}

}  // namespace eppi::net
