// Fault scenarios for the fault-injection framework.
//
// A FaultScenario describes, declaratively, what the network does to the
// protocol: per-link probabilistic drop / duplication / delay / reordering,
// plus party crash points (after the k-th send, or at the first send of a
// given tag). Scenarios are pure data — FaultyTransport (faulty_transport.h)
// interprets them against a seeded per-link RNG so every run of the same
// scenario over the same protocol schedule is reproducible.
//
// Scenarios can be built programmatically or parsed from a one-line DSL used
// by tests and benches:
//
//   "all: drop=0.1, delay=1..5ms; link 2->0: drop=1.0; crash 3 after 4 sends"
//
// Grammar (';'-separated statements):
//   all: <faults>               default fault set for every link
//   link A->B: <faults>         override for the directed link A->B
//   crash P after N sends       party P crashes on its (N+1)-th send
//   crash P at tag T            party P crashes on its first send of tag T
//   churn P: <events>           membership churn for party P (see below)
//   <faults> := fault (',' fault)*
//   <fault>  := drop=<p> | dup=<p> | reorder=<p> | delay=<lo>..<hi>ms
//             | reset_after=<bytes> | blackhole=<0|1> | throttle=<bytes/s>
//             | split=<bytes> | connect_delay=<ms>ms
//   <events> := event (',' event)*
//   <event>  := join_at=<round> | leave_at=<round> | flap=<leave>..<rejoin>
//
// The first row of faults is interpreted by the in-memory FaultyTransport;
// the second row describes TCP-level misbehaviour and is interpreted by the
// ChaosProxy (chaos_proxy.h) against real sockets — the in-memory layer
// ignores them, so one scenario string can drive both harnesses. Churn
// statements describe *membership* over construction rounds (a deliberate
// provider leave/join, not a crash) and are interpreted by the epoch-level
// harnesses driving LocatorService::retire_provider / re-registration;
// `flap=2..4` is shorthand for leave_at=2, join_at=4.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"

namespace eppi::net {

// Faults applied to one directed link (or to every link, as the default).
struct LinkFault {
  double drop_prob = 0.0;     // message vanishes
  double dup_prob = 0.0;      // message delivered twice
  double reorder_prob = 0.0;  // message held briefly so later sends overtake it
  std::chrono::microseconds delay_min{0};  // uniform extra latency
  std::chrono::microseconds delay_max{0};

  // TCP-level faults, interpreted only by the ChaosProxy relay:
  std::uint64_t reset_after_bytes = 0;   // RST the link after N relayed bytes
  bool blackhole = false;                // accept, then silently discard bytes
  std::uint64_t throttle_bytes_per_s = 0;  // pace the relay (0 = unthrottled)
  std::uint64_t split_bytes = 0;  // forward in <=N-byte chunks (partial writes)
  std::chrono::milliseconds connect_delay{0};  // hold the dial before relaying

  // True when the in-memory fault layer has nothing to do on this link
  // (TCP-level fields are deliberately excluded: they do not exist for the
  // in-memory transport).
  bool lossless() const noexcept {
    return drop_prob == 0.0 && dup_prob == 0.0 && reorder_prob == 0.0 &&
           delay_max.count() == 0;
  }
};

// When a party "crashes" it stops participating: the send that trips the
// crash point throws SimulatedCrash in the party's thread (unwinding its
// protocol body), and every later send attributed to that party — e.g. a
// retransmission by the reliability layer — is silently swallowed.
struct CrashPoint {
  // Crash on the (after_sends + 1)-th send by this party, counting data
  // messages only (acks don't advance the counter, so crash points stay
  // stable whether or not reliable delivery is layered on).
  std::optional<std::uint64_t> after_sends;
  // Crash on the first send with this tag (lets tests target a protocol
  // stage: kSuperShare = "between SecSumShare rounds").
  std::optional<std::uint32_t> at_tag;
};

// Membership churn over construction rounds, for epoch-driven harnesses:
// at the start of round `leave_at` the party retires (its rows are withdrawn
// through the join/leave protocol); at the start of round `join_at` it
// (re-)enters. Rounds are 1-based construction attempts. A flap is both,
// with leave_at < join_at.
struct ChurnEvent {
  std::optional<std::uint64_t> join_at;
  std::optional<std::uint64_t> leave_at;
};

struct FaultScenario {
  LinkFault default_fault;
  std::map<std::pair<PartyId, PartyId>, LinkFault> link_faults;
  std::map<PartyId, CrashPoint> crashes;
  std::map<PartyId, ChurnEvent> churn;

  // Legacy DroppingTransport rule: drop every k-th data frame crossing the
  // transport (0 = off), counted globally in send order. Unlike the old
  // implementation the count skips ack/control frames, so layering reliable
  // delivery on top does not shift which data frames are lost, and each
  // dropped frame is counted exactly once.
  std::uint64_t drop_every = 0;

  const LinkFault& fault_for(PartyId from, PartyId to) const noexcept {
    const auto it = link_faults.find({from, to});
    return it == link_faults.end() ? default_fault : it->second;
  }

  // Parties whose churn event fires at the given (1-based) round, ascending.
  std::vector<PartyId> joins_at(std::uint64_t round) const;
  std::vector<PartyId> leaves_at(std::uint64_t round) const;
  // The last round any churn event fires in (0 when there is no churn) —
  // harnesses run at least this many construction rounds.
  std::uint64_t last_churn_round() const;

  // Parses the DSL described above; throws ConfigError on malformed input.
  static FaultScenario parse(const std::string& spec);
};

// Thrown by FaultyTransport in the crashing party's own thread. Deliberately
// NOT derived from ProtocolError: a simulated crash is part of the test
// harness, not a protocol contract violation, and the Cluster treats it as a
// party dropout rather than a test failure.
class SimulatedCrash : public std::exception {
 public:
  explicit SimulatedCrash(PartyId party) : party_(party) {
    what_ = "simulated crash of party " + std::to_string(party);
  }
  const char* what() const noexcept override { return what_.c_str(); }
  PartyId party() const noexcept { return party_; }

 private:
  PartyId party_;
  std::string what_;
};

}  // namespace eppi::net
