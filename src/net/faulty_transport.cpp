#include "net/faulty_transport.h"

#include "common/logging.h"

namespace eppi::net {

namespace {

// Extra hold applied to reordered messages: long enough that the sender's
// next message on the link overtakes it, short enough not to slow tests.
constexpr std::chrono::microseconds kReorderHold{2000};

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, FaultScenario scenario,
                                 std::uint64_t seed)
    : inner_(inner), scenario_(std::move(scenario)), seed_(seed) {}

FaultyTransport::~FaultyTransport() { drain(); }

Rng& FaultyTransport::link_rng(PartyId from, PartyId to) {
  const auto key = std::make_pair(from, to);
  auto it = link_rngs_.find(key);
  if (it == link_rngs_.end()) {
    // Each directed link gets its own deterministic stream: a party's sends
    // on one link are ordered by its own thread, so fault decisions do not
    // depend on cross-thread interleaving.
    const std::uint64_t link_seed =
        seed_ ^ (static_cast<std::uint64_t>(from) * 0x9E3779B97F4A7C15ULL +
                 static_cast<std::uint64_t>(to) * 0xC2B2AE3D27D4EB4FULL + 1);
    it = link_rngs_.emplace(key, Rng(link_seed)).first;
  }
  return it->second;
}

void FaultyTransport::send(Message msg) {
  bool forward_now = false;
  bool duplicate = false;
  std::chrono::microseconds delay{0};
  {
    MutexLock lock(mutex_);
    const PartyId from = msg.from;
    if (crashed_[from]) {
      ++stats_.swallowed;
      return;
    }
    // Only first-time data sends advance counters: acks and reliability-layer
    // retransmissions are excluded so crash points and the every-k drop rule
    // hit the same protocol frames whether or not reliable delivery is on.
    const bool counted =
        !is_ack_tag(msg.tag) && (msg.tag & kRetransmitBit) == 0;
    const auto crash_it = scenario_.crashes.find(from);
    if (crash_it != scenario_.crashes.end() && counted) {
      const CrashPoint& point = crash_it->second;
      const std::uint64_t sent_so_far = sends_by_party_[from];
      const bool trips =
          (point.after_sends && sent_so_far >= *point.after_sends) ||
          (point.at_tag && msg.tag == *point.at_tag);
      if (trips) {
        crashed_[from] = true;
        lock.unlock();
        throw SimulatedCrash(from);
      }
      ++sends_by_party_[from];
    } else if (counted) {
      ++sends_by_party_[from];
    }

    if (scenario_.drop_every != 0 && counted &&
        ++every_k_count_ % scenario_.drop_every == 0) {
      ++stats_.dropped;
      return;
    }

    const LinkFault& fault = scenario_.fault_for(from, msg.to);
    if (fault.lossless()) {
      forward_now = true;
      ++stats_.forwarded;
    } else {
      Rng& rng = link_rng(from, msg.to);
      if (rng.bernoulli(fault.drop_prob)) {
        ++stats_.dropped;
        return;
      }
      duplicate = rng.bernoulli(fault.dup_prob);
      if (duplicate) ++stats_.duplicated;
      const auto span = fault.delay_max - fault.delay_min;
      if (span.count() > 0) {
        delay = fault.delay_min + std::chrono::microseconds(rng.next_below(
                                      static_cast<std::uint64_t>(span.count()) +
                                      1));
      } else {
        delay = fault.delay_min;
      }
      if (rng.bernoulli(fault.reorder_prob)) delay += kReorderHold;
      if (delay.count() > 0) {
        ++stats_.delayed;
        Message copy;
        if (duplicate) copy = msg;
        enqueue_delayed(std::move(msg), delay);
        if (duplicate) enqueue_delayed(std::move(copy), delay);
        return;
      }
      forward_now = true;
      ++stats_.forwarded;
      if (duplicate) ++stats_.forwarded;
    }
  }
  // inner_.send outside the lock: delivery may re-enter this transport on
  // the same thread (mailbox ack sinks send acks back through the chain).
  if (forward_now) {
    Message copy;
    if (duplicate) copy = msg;
    inner_.send(std::move(msg));
    if (duplicate) inner_.send(std::move(copy));
  }
}

void FaultyTransport::enqueue_delayed(Message msg,
                                      std::chrono::microseconds delay) {
  // Caller holds mutex_.
  delayed_.push(Delayed{std::chrono::steady_clock::now() + delay,
                        delay_order_++, std::move(msg)});
  if (!scheduler_started_) {
    scheduler_started_ = true;
    scheduler_ = std::thread([this] { scheduler_loop(); });
  }
  cv_.notify_all();
}

void FaultyTransport::scheduler_loop() {
  MutexLock lock(mutex_);
  while (true) {
    if (stopping_ && delayed_.empty()) return;
    if (delayed_.empty()) {
      // Explicit wait loop: thread-safety analysis is intraprocedural and
      // cannot see through a predicate lambda's capture of guarded fields.
      while (!stopping_ && delayed_.empty()) cv_.wait(mutex_);
      continue;
    }
    const auto due = delayed_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due && !stopping_) {
      cv_.wait_until(mutex_, due);
      continue;
    }
    Message msg = std::move(const_cast<Delayed&>(delayed_.top()).msg);
    delayed_.pop();
    ++stats_.forwarded;
    lock.unlock();
    try {
      inner_.send(std::move(msg));
    } catch (const std::exception& e) {
      EPPI_WARN("FaultyTransport scheduler: dropped late message: "
                << e.what());
    }
    lock.lock();
  }
}

void FaultyTransport::drain() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  {
    const MutexLock lock(mutex_);
    scheduler_started_ = false;
    stopping_ = false;
  }
}

FaultStats FaultyTransport::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

bool FaultyTransport::crashed(PartyId party) const {
  const MutexLock lock(mutex_);
  const auto it = crashed_.find(party);
  return it != crashed_.end() && it->second;
}

}  // namespace eppi::net
