// FaultyTransport: a composable, seeded fault-injection transport decorator.
//
// Wraps any Transport and interprets a FaultScenario (fault.h) against it:
//
//  * drop / duplicate — decided per message by a per-link RNG stream, so a
//    given link sees the same fault sequence every run regardless of how the
//    OS interleaves the other parties' threads;
//  * delay / reorder — delayed copies are handed to a scheduler thread that
//    releases them at their due time ("reorder" is a short probabilistic
//    hold, which lets later sends on the same link overtake the held one);
//  * crash — the send tripping a party's crash point throws SimulatedCrash
//    in that party's thread; all later sends from the crashed party
//    (including retransmissions issued on its behalf) are swallowed.
//
// Replaces the ad-hoc DroppingTransport, which survives as a thin alias in
// transport.h for the existing failure-injection tests.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "net/fault.h"
#include "net/transport.h"

namespace eppi::net {

struct FaultStats {
  std::uint64_t forwarded = 0;   // messages that reached the inner transport
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;     // includes reorder holds
  std::uint64_t swallowed = 0;   // sends from already-crashed parties
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, FaultScenario scenario,
                  std::uint64_t seed = 1);
  ~FaultyTransport() override;

  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  void send(Message msg) override EPPI_EXCLUDES(mutex_);

  FaultStats stats() const EPPI_EXCLUDES(mutex_);

  // True once the party's crash point has tripped.
  bool crashed(PartyId party) const EPPI_EXCLUDES(mutex_);

  // Delivers any still-held delayed messages immediately and joins the
  // scheduler (also done by the destructor). Idempotent.
  void drain() EPPI_EXCLUDES(mutex_);

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    std::uint64_t order;  // FIFO tie-break among equal due times
    Message msg;
    bool operator>(const Delayed& other) const noexcept {
      return due != other.due ? due > other.due : order > other.order;
    }
  };

  Rng& link_rng(PartyId from, PartyId to) EPPI_REQUIRES(mutex_);
  void scheduler_loop() EPPI_EXCLUDES(mutex_);
  void enqueue_delayed(Message msg, std::chrono::microseconds delay)
      EPPI_REQUIRES(mutex_);

  Transport& inner_;
  const FaultScenario scenario_;
  const std::uint64_t seed_;

  mutable Mutex mutex_;
  std::map<std::pair<PartyId, PartyId>, Rng> link_rngs_
      EPPI_GUARDED_BY(mutex_);
  std::map<PartyId, std::uint64_t> sends_by_party_ EPPI_GUARDED_BY(mutex_);
  std::map<PartyId, bool> crashed_ EPPI_GUARDED_BY(mutex_);
  std::uint64_t every_k_count_ EPPI_GUARDED_BY(mutex_) = 0;
  FaultStats stats_ EPPI_GUARDED_BY(mutex_);

  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<Delayed>>
      delayed_ EPPI_GUARDED_BY(mutex_);
  std::uint64_t delay_order_ EPPI_GUARDED_BY(mutex_) = 0;
  CondVar cv_;
  // Started under mutex_ in enqueue_delayed, but only joined in drain()
  // after the stopping_ handshake, so the handle itself needs no guard.
  std::thread scheduler_;
  bool stopping_ EPPI_GUARDED_BY(mutex_) = false;
  bool scheduler_started_ EPPI_GUARDED_BY(mutex_) = false;
};

// Legacy decorator kept for existing failure-injection tests: drops every
// k-th data frame. Now a thin alias over FaultyTransport's drop_every rule,
// which fixes the old counting semantics — ack/control frames no longer
// advance the counter, so the same data frames are lost whether or not the
// reliability layer is stacked on top.
class DroppingTransport final : public Transport {
 public:
  DroppingTransport(Transport& inner, std::uint64_t drop_every)
      : faulty_(inner, scenario_for(drop_every)) {}

  void send(Message msg) override { faulty_.send(std::move(msg)); }

  std::uint64_t dropped() const { return faulty_.stats().dropped; }

 private:
  static FaultScenario scenario_for(std::uint64_t drop_every) {
    FaultScenario scenario;
    scenario.drop_every = drop_every;
    return scenario;
  }

  FaultyTransport faulty_;
};

}  // namespace eppi::net
