#include "net/mailbox.h"

#include "net/transport.h"

namespace eppi::net {

void Mailbox::deliver(Message msg) {
  msg.tag &= ~kRetransmitBit;  // receivers match on the original tag
  const Key key{msg.from, msg.tag, msg.seq};

  // Capture ack routing fields before msg is moved into the buffer. The ack
  // itself is sent outside the mailbox lock: it traverses the full transport
  // chain and ends in the sender's mailbox, and two parties delivering to
  // each other concurrently would otherwise deadlock on crossed locks.
  Message ack;
  bool send_ack = false;

  bool deliver_to_party = true;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ack_via_ != nullptr && !is_ack_tag(msg.tag)) {
      ack.from = owner_;
      ack.to = msg.from;
      ack.tag = msg.tag | kAckBit;
      ack.seq = msg.seq;
      send_ack = true;
      // Dedup: a retransmission whose original got through (the ack was
      // lost) must be re-acked but not delivered twice.
      if (!seen_.insert(key).second) deliver_to_party = false;
    }
    if (deliver_to_party) buffer_.emplace(key, std::move(msg));
  }
  if (deliver_to_party) cv_.notify_all();
  if (send_ack) ack_via_->send(std::move(ack));
}

Message Mailbox::recv(PartyId from, std::uint32_t tag, std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{from, tag, seq};
  cv_.wait(lock, [&] { return buffer_.find(key) != buffer_.end(); });
  const auto it = buffer_.find(key);
  Message msg = std::move(it->second);
  buffer_.erase(it);
  return msg;
}

bool Mailbox::try_recv(PartyId from, std::uint32_t tag, std::uint64_t seq,
                       Message& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Key key{from, tag, seq};
  const auto it = buffer_.find(key);
  if (it == buffer_.end()) return false;
  out = std::move(it->second);
  buffer_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

void Mailbox::enable_reliable(Transport* ack_via, PartyId owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ack_via_ = ack_via;
  owner_ = owner;
}

}  // namespace eppi::net
