#include "net/mailbox.h"

#include <string>

#include "common/error.h"
#include "net/transport.h"

namespace eppi::net {

void Mailbox::deliver(Message msg) {
  msg.tag &= ~kRetransmitBit;  // receivers match on the original tag
  const Key key{msg.from, msg.tag, msg.seq};

  // Capture ack routing fields before msg is moved into the buffer. The ack
  // itself is sent outside the mailbox lock: it traverses the full transport
  // chain and ends in the sender's mailbox, and two parties delivering to
  // each other concurrently would otherwise deadlock on crossed locks.
  Message ack;
  Transport* ack_via = nullptr;

  bool deliver_to_party = true;
  {
    const MutexLock lock(mutex_);
    if (ack_via_ != nullptr && !is_ack_tag(msg.tag)) {
      ack.from = owner_;
      ack.to = msg.from;
      ack.tag = msg.tag | kAckBit;
      ack.seq = msg.seq;
      ack_via = ack_via_;
      // Dedup: a retransmission whose original got through (the ack was
      // lost) must be re-acked but not delivered twice.
      if (!seen_.insert(key).second) deliver_to_party = false;
    }
    if (deliver_to_party) buffer_.emplace(key, std::move(msg));
  }
  if (deliver_to_party) cv_.notify_all();
  if (ack_via != nullptr) ack_via->send(std::move(ack));
}

Message Mailbox::recv(PartyId from, std::uint32_t tag, std::uint64_t seq) {
  const MutexLock lock(mutex_);
  const Key key{from, tag, seq};
  while (buffer_.find(key) == buffer_.end()) {
    if (failed_.count(from) != 0) {
      throw eppi::PartyFailure("recv: party " + std::to_string(from) +
                                   " marked failed while waiting for tag " +
                                   std::to_string(tag),
                               from);
    }
    cv_.wait(mutex_);
  }
  const auto it = buffer_.find(key);
  Message msg = std::move(it->second);
  buffer_.erase(it);
  return msg;
}

bool Mailbox::try_recv(PartyId from, std::uint32_t tag, std::uint64_t seq,
                       Message& out) {
  const MutexLock lock(mutex_);
  const Key key{from, tag, seq};
  const auto it = buffer_.find(key);
  if (it == buffer_.end()) return false;
  out = std::move(it->second);
  buffer_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  const MutexLock lock(mutex_);
  return buffer_.size();
}

void Mailbox::enable_reliable(Transport* ack_via, PartyId owner) {
  const MutexLock lock(mutex_);
  ack_via_ = ack_via;
  owner_ = owner;
}

void Mailbox::fail_party(PartyId party) {
  {
    const MutexLock lock(mutex_);
    failed_.insert(party);
  }
  cv_.notify_all();  // wake blocked receivers so they can observe the failure
}

void Mailbox::clear_failed(PartyId party) {
  const MutexLock lock(mutex_);
  failed_.erase(party);
}

bool Mailbox::party_failed(PartyId party) const {
  const MutexLock lock(mutex_);
  return failed_.count(party) != 0;
}

}  // namespace eppi::net
