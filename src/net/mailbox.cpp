#include "net/mailbox.h"

namespace eppi::net {

void Mailbox::deliver(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Key key{msg.from, msg.tag, msg.seq};
    buffer_.emplace(key, std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::recv(PartyId from, std::uint32_t tag, std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{from, tag, seq};
  cv_.wait(lock, [&] { return buffer_.find(key) != buffer_.end(); });
  const auto it = buffer_.find(key);
  Message msg = std::move(it->second);
  buffer_.erase(it);
  return msg;
}

bool Mailbox::try_recv(PartyId from, std::uint32_t tag, std::uint64_t seq,
                       Message& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Key key{from, tag, seq};
  const auto it = buffer_.find(key);
  if (it == buffer_.end()) return false;
  out = std::move(it->second);
  buffer_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

}  // namespace eppi::net
