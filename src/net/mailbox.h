// Per-party inbox with blocking, selective receive.
//
// recv(from, tag, seq) blocks until a message with that exact key arrives.
// Messages arriving out of order are buffered, which lets protocol code be
// written in straight-line style (send everything, then receive everything)
// without deadlocking on delivery interleavings.
//
// When the cluster enables reliable delivery the mailbox additionally
// acknowledges every data frame on delivery (through the configured ack
// transport) and suppresses duplicate frames — retransmissions and
// fault-injected duplicates are re-acked but delivered to the party at most
// once per (from, tag, seq) key.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/message.h"

namespace eppi::net {

class Transport;

class Mailbox {
 public:
  void deliver(Message msg) EPPI_EXCLUDES(mutex_);

  // Blocks until a message from `from` with tag `tag` and sequence `seq`
  // arrives; removes and returns it.
  Message recv(PartyId from, std::uint32_t tag, std::uint64_t seq)
      EPPI_EXCLUDES(mutex_);

  // Non-blocking variant; returns true and fills `out` if present.
  bool try_recv(PartyId from, std::uint32_t tag, std::uint64_t seq,
                Message& out) EPPI_EXCLUDES(mutex_);

  std::size_t pending() const EPPI_EXCLUDES(mutex_);

  // Reliable-delivery mode: `owner` is this mailbox's party id; every
  // delivered data frame is acked back to its sender through `ack_via`
  // (which must outlive the mailbox or be cleared with nullptr), and
  // duplicate data frames are suppressed after re-acking.
  void enable_reliable(Transport* ack_via, PartyId owner)
      EPPI_EXCLUDES(mutex_);

  // Failure signal from a detector (e.g. the socket runtime's heartbeat):
  // a blocked recv on a failed party throws PartyFailure instead of waiting
  // forever, and new blocking receives fail fast. Messages already buffered
  // stay retrievable — only the *wait* is cut short. clear_failed() (on
  // reconnect) restores normal blocking behaviour.
  void fail_party(PartyId party) EPPI_EXCLUDES(mutex_);
  void clear_failed(PartyId party) EPPI_EXCLUDES(mutex_);
  bool party_failed(PartyId party) const EPPI_EXCLUDES(mutex_);

 private:
  using Key = std::tuple<PartyId, std::uint32_t, std::uint64_t>;

  mutable Mutex mutex_;
  CondVar cv_;
  std::multimap<Key, Message> buffer_ EPPI_GUARDED_BY(mutex_);
  std::set<Key> seen_ EPPI_GUARDED_BY(mutex_);  // reliable: keys delivered
  std::set<PartyId> failed_ EPPI_GUARDED_BY(mutex_);
  Transport* ack_via_ EPPI_GUARDED_BY(mutex_) = nullptr;
  PartyId owner_ EPPI_GUARDED_BY(mutex_) = 0;
};

}  // namespace eppi::net
