// Per-party inbox with blocking, selective receive.
//
// recv(from, tag, seq) blocks until a message with that exact key arrives.
// Messages arriving out of order are buffered, which lets protocol code be
// written in straight-line style (send everything, then receive everything)
// without deadlocking on delivery interleavings.
//
// When the cluster enables reliable delivery the mailbox additionally
// acknowledges every data frame on delivery (through the configured ack
// transport) and suppresses duplicate frames — retransmissions and
// fault-injected duplicates are re-acked but delivered to the party at most
// once per (from, tag, seq) key.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "net/message.h"

namespace eppi::net {

class Transport;

class Mailbox {
 public:
  void deliver(Message msg);

  // Blocks until a message from `from` with tag `tag` and sequence `seq`
  // arrives; removes and returns it.
  Message recv(PartyId from, std::uint32_t tag, std::uint64_t seq);

  // Non-blocking variant; returns true and fills `out` if present.
  bool try_recv(PartyId from, std::uint32_t tag, std::uint64_t seq,
                Message& out);

  std::size_t pending() const;

  // Reliable-delivery mode: `owner` is this mailbox's party id; every
  // delivered data frame is acked back to its sender through `ack_via`
  // (which must outlive the mailbox or be cleared with nullptr), and
  // duplicate data frames are suppressed after re-acking.
  void enable_reliable(Transport* ack_via, PartyId owner);

 private:
  using Key = std::tuple<PartyId, std::uint32_t, std::uint64_t>;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<Key, Message> buffer_;
  std::set<Key> seen_;  // reliable mode: data keys already delivered
  Transport* ack_via_ = nullptr;
  PartyId owner_ = 0;
};

}  // namespace eppi::net
