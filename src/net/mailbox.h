// Per-party inbox with blocking, selective receive.
//
// recv(from, tag, seq) blocks until a message with that exact key arrives.
// Messages arriving out of order are buffered, which lets protocol code be
// written in straight-line style (send everything, then receive everything)
// without deadlocking on delivery interleavings.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>

#include "net/message.h"

namespace eppi::net {

class Mailbox {
 public:
  void deliver(Message msg);

  // Blocks until a message from `from` with tag `tag` and sequence `seq`
  // arrives; removes and returns it.
  Message recv(PartyId from, std::uint32_t tag, std::uint64_t seq);

  // Non-blocking variant; returns true and fills `out` if present.
  bool try_recv(PartyId from, std::uint32_t tag, std::uint64_t seq,
                Message& out);

  std::size_t pending() const;

 private:
  using Key = std::tuple<PartyId, std::uint32_t, std::uint64_t>;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<Key, Message> buffer_;
};

}  // namespace eppi::net
