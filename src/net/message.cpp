#include "net/message.h"

namespace eppi::net {

std::size_t Message::wire_size() const noexcept {
  // 4 (from) + 4 (to) + 4 (tag) + 8 (seq) + 4 (length) bytes of framing.
  constexpr std::size_t kHeaderBytes = 24;
  return kHeaderBytes + payload.size();
}

}  // namespace eppi::net
