// Wire message between protocol parties.
//
// A message carries a (from, to) pair, a protocol-defined tag that
// disambiguates concurrent protocol stages (share distribution, super-share
// aggregation, MPC gate openings, ...), and an opaque serialized payload.
#pragma once

#include <cstdint>
#include <vector>

namespace eppi::net {

using PartyId = std::uint32_t;

// Well-known tags. Protocols may also use their own tag ranges >= kUserBase.
enum MessageTag : std::uint32_t {
  kShareDistribute = 1,   // SecSumShare step 2: share to ring successor
  kSuperShare = 2,        // SecSumShare step 4: super-share to coordinator
  kMpcInputShare = 3,     // GMW: input-wire share delivery
  kMpcOpen = 4,           // GMW: masked-value opening for AND gates
  kMpcOutputShare = 5,    // GMW: output-wire share delivery
  kBeaverTriple = 6,      // preprocessing: Beaver triple share delivery
  kBroadcast = 7,         // coordinator broadcast (beta vector, lambda, ...)
  kFailureReport = 8,     // dropout recovery: suspect list to party 0
  kViewChange = 9,        // dropout recovery: commit/restart/abort decision
  kUserBase = 1000,
};

// High tag bit reserved for transport-level acknowledgements: the ack for a
// data message (from, to, tag, seq) is (to, from, tag | kAckBit, seq). No
// protocol tag may set this bit; the reliable-delivery layer uses it to keep
// ack streams out of the protocol's selective-receive key space.
inline constexpr std::uint32_t kAckBit = 0x80000000u;

inline constexpr bool is_ack_tag(std::uint32_t tag) noexcept {
  return (tag & kAckBit) != 0;
}

// Second-highest tag bit marks a retransmitted frame. Mailboxes strip it on
// delivery (receivers match on the original tag); the fault-injection layer
// uses it to keep party crash points deterministic — a crash point counts
// only first-time sends issued by the party's own thread, never the
// wall-clock-timed retransmissions issued on its behalf.
inline constexpr std::uint32_t kRetransmitBit = 0x40000000u;

struct Message {
  PartyId from = 0;
  PartyId to = 0;
  std::uint32_t tag = 0;
  // Sub-tag sequencing within one (from, to, tag) stream: receivers match on
  // (from, tag, seq) so that pipelined protocol rounds cannot be confused.
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;

  // Trace context (transport metadata, NOT protocol state): the sender-side
  // span this message is causally under, stamped once at the transport
  // entry point (ReliableTransport/SocketSender) from the sending thread's
  // current obs span, and carried across retransmissions so a re-sent frame
  // keeps its original causal parent. Zero = untraced. Socket framing
  // serializes it as the v3 trace-context extension; wire_size() excludes
  // it so the paper's cost model is byte-identical with tracing on or off.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  // Wire size in bytes under our framing (header + payload), used by the
  // network cost model.
  std::size_t wire_size() const noexcept;
};

}  // namespace eppi::net
