// Wire message between protocol parties.
//
// A message carries a (from, to) pair, a protocol-defined tag that
// disambiguates concurrent protocol stages (share distribution, super-share
// aggregation, MPC gate openings, ...), and an opaque serialized payload.
#pragma once

#include <cstdint>
#include <vector>

namespace eppi::net {

using PartyId = std::uint32_t;

// Well-known tags. Protocols may also use their own tag ranges >= kUserBase.
enum MessageTag : std::uint32_t {
  kShareDistribute = 1,   // SecSumShare step 2: share to ring successor
  kSuperShare = 2,        // SecSumShare step 4: super-share to coordinator
  kMpcInputShare = 3,     // GMW: input-wire share delivery
  kMpcOpen = 4,           // GMW: masked-value opening for AND gates
  kMpcOutputShare = 5,    // GMW: output-wire share delivery
  kBeaverTriple = 6,      // preprocessing: Beaver triple share delivery
  kBroadcast = 7,         // coordinator broadcast (beta vector, lambda, ...)
  kUserBase = 1000,
};

struct Message {
  PartyId from = 0;
  PartyId to = 0;
  std::uint32_t tag = 0;
  // Sub-tag sequencing within one (from, to, tag) stream: receivers match on
  // (from, tag, seq) so that pipelined protocol rounds cannot be confused.
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;

  // Wire size in bytes under our framing (header + payload), used by the
  // network cost model.
  std::size_t wire_size() const noexcept;
};

}  // namespace eppi::net
