#include "net/mini_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"

namespace eppi::net {

namespace {

constexpr std::size_t kMaxRequestBytes = 1 << 20;  // headers + body bound

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

[[nodiscard]] bool send_response(int fd, const HttpResponse& resp) {
  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << ' ' << status_text(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << resp.body;
  const std::string data = out.str();
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n;
    do {
      n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

MiniHttpServer::MiniHttpServer(std::uint16_t port, Handler handler)
    : port_(port), handler_(std::move(handler)) {}

MiniHttpServer::~MiniHttpServer() { stop(); }

void MiniHttpServer::start() {
  require(!started_, "MiniHttpServer: already started");
  started_ = true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  require(listen_fd_ >= 0, "MiniHttpServer: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw eppi::ProtocolError("MiniHttpServer: cannot listen on port " +
                              std::to_string(port_));
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void MiniHttpServer::stop() {
  {
    const MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (;;) {
    std::vector<std::thread> batch;
    {
      const MutexLock lock(mutex_);
      batch.swap(conn_threads_);
    }
    if (batch.empty()) break;
    for (auto& t : batch) {
      if (t.joinable()) t.join();
    }
  }
}

void MiniHttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    const MutexLock lock(mutex_);
    if (stopping_) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) continue;
    live_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void MiniHttpServer::handle_connection(int fd) {
  // A stuck client times out instead of pinning this thread forever.
  const timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string data;
  std::size_t header_end = std::string::npos;
  char chunk[8192];
  while (data.size() < kMaxRequestBytes) {
    ssize_t n;
    do {
      n = ::recv(fd, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      // Headers complete; read any declared body.
      std::size_t content_length = 0;
      const std::string headers = data.substr(0, header_end);
      // Case-insensitive scan for Content-Length.
      std::string lower = headers;
      for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
      const auto pos = lower.find("content-length:");
      if (pos != std::string::npos) {
        content_length = static_cast<std::size_t>(
            std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
        if (content_length > kMaxRequestBytes) break;
      }
      const std::size_t want = header_end + 4 + content_length;
      while (data.size() < want) {
        ssize_t more;
        do {
          more = ::recv(fd, chunk, sizeof(chunk), 0);
        } while (more < 0 && errno == EINTR);
        if (more <= 0) break;
        data.append(chunk, static_cast<std::size_t>(more));
      }
      break;
    }
  }

  HttpResponse resp;
  if (header_end == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request\n";
  } else {
    HttpRequest req;
    const auto line_end = data.find("\r\n");
    const std::string line = data.substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      resp.status = 400;
      resp.body = "malformed request line\n";
    } else {
      req.method = line.substr(0, sp1);
      req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      req.body = data.substr(header_end + 4);
      try {
        resp = handler_(req);
      } catch (const std::exception& e) {
        resp.status = 500;
        resp.content_type = "text/plain; charset=utf-8";
        resp.body = std::string("error: ") + e.what() + "\n";
      }
    }
  }
  if (!send_response(fd, resp)) {
    // Scrapers hang up early all the time; worth a note, never a failure.
    EPPI_DEBUG("MiniHttpServer: client on fd " << fd
                                               << " closed mid-response");
  }
  {
    const MutexLock lock(mutex_);
    live_fds_.erase(fd);
  }
  ::close(fd);
}

}  // namespace eppi::net
