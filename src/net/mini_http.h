// Minimal embedded HTTP server for operational endpoints.
//
// Serves the deployment surface's pull-based interfaces — GET /metrics
// (Prometheus text), GET /healthz, POST/GET /query — with the smallest
// implementation that speaks enough HTTP/1.1 for curl and Prometheus: one
// accept thread, one short-lived thread per connection, Connection: close
// on every response. Request bodies are bounded; a client trickling bytes
// is cut off by a socket receive timeout so a stuck scraper can never wedge
// the daemon. This is an operational side-channel, deliberately not a
// high-throughput API (the serving tier's LocatorService is the data
// plane).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eppi::net {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/metrics" (query string included verbatim)
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class MiniHttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Handler runs on a per-connection thread; it must be thread-safe.
  MiniHttpServer(std::uint16_t port, Handler handler);
  ~MiniHttpServer();

  MiniHttpServer(const MiniHttpServer&) = delete;
  MiniHttpServer& operator=(const MiniHttpServer&) = delete;

  // Binds (throws ProtocolError on failure) and serves until stop().
  void start() EPPI_EXCLUDES(mutex_);
  void stop() EPPI_EXCLUDES(mutex_);

  // The bound port (useful when constructed with port 0).
  std::uint16_t port() const noexcept { return port_; }

 private:
  // Thread-per-connection by design: these may block in accept/recv/send,
  // so they must never run on (or be reached from) an event-loop thread —
  // deliberately NOT EPPI_LOOP_AFFINE. Both take mutex_ internally.
  void accept_loop() EPPI_EXCLUDES(mutex_);
  void handle_connection(int fd) EPPI_EXCLUDES(mutex_);

  std::uint16_t port_;
  Handler handler_;
  int listen_fd_ = -1;
  std::thread accept_thread_;

  mutable Mutex mutex_;
  std::vector<std::thread> conn_threads_ EPPI_GUARDED_BY(mutex_);
  std::set<int> live_fds_ EPPI_GUARDED_BY(mutex_);
  bool stopping_ EPPI_GUARDED_BY(mutex_) = false;
  bool started_ = false;
};

}  // namespace eppi::net
