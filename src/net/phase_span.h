// Protocol-phase spans carrying per-party communication cost.
//
// A PhaseSpan is an obs::Span whose closing attributes are this party's
// CostMeter delta over the phase (bytes, messages, rounds — metered at
// PartyContext::send, so on a plain transport the per-party deltas summed
// over all phases reproduce the cluster meter's totals exactly). Phase spans
// are what `eppi_cli trace` folds into the Fig. 6 per-phase breakdown, so
// construction code names them "phase:<name>"; nested sub-spans (per
// round-trip, per attempt) use plain names and parent links.
#pragma once

#include <string_view>

#include "net/cluster.h"
#include "obs/trace.h"

namespace eppi::net {

class PhaseSpan {
 public:
  PhaseSpan(PartyContext& ctx, std::string_view name)
      : ctx_(ctx), span_(name), start_(ctx.local_meter().snapshot()) {
    span_.attr("party", static_cast<std::uint64_t>(ctx.id()));
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() {
    const CostSnapshot delta = ctx_.local_meter().snapshot() - start_;
    span_.attr("bytes", delta.bytes);
    span_.attr("messages", delta.messages);
    span_.attr("rounds", delta.rounds);
  }

  // For phase-specific attributes and child events (restarts, aborts).
  obs::Span& span() noexcept { return span_; }

 private:
  PartyContext& ctx_;
  obs::Span span_;
  CostSnapshot start_;
};

}  // namespace eppi::net
