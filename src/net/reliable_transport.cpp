#include "net/reliable_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace eppi::net {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::microseconds to_us(std::chrono::milliseconds ms) {
  return std::chrono::duration_cast<std::chrono::microseconds>(ms);
}

// Registry mirrors of ReliableStats: the per-transport struct stays the
// programmatic API, these aggregate process-wide for exposition.
obs::Counter& retransmit_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "eppi_net_retransmits_total", {},
      "Data frames retransmitted by the reliability layer");
  return c;
}

obs::Counter& expired_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "eppi_net_expired_total", {},
      "Frames that exhausted their delivery deadline unacked");
  return c;
}

}  // namespace

ReliableTransport::ReliableTransport(Transport& inner,
                                     std::vector<Mailbox>& mailboxes,
                                     ReliableOptions options)
    : inner_(inner),
      mailboxes_(mailboxes),
      options_(options),
      jitter_(options.jitter_seed) {
  retransmitter_ = std::thread([this] { retransmit_loop(); });
}

ReliableTransport::~ReliableTransport() { stop(); }

void ReliableTransport::send(Message msg) {
  // Acks are fire-and-forget: never registered, never retransmitted (a lost
  // ack is recovered by the data frame's own retransmission).
  if (is_ack_tag(msg.tag)) {
    inner_.send(std::move(msg));
    return;
  }

  // Stamp the caller's current span before the retransmit copy is taken, so
  // a re-sent frame carries the *original* causal parent — the retransmit
  // thread's (empty) context must never overwrite it.
  if (msg.span_id == 0) {
    const obs::SpanContext ctx = obs::current_span_context();
    msg.trace_id = ctx.trace_id;
    msg.span_id = ctx.span_id;
  }

  const auto now = Clock::now();
  Pending entry;
  entry.msg = msg;  // keep a copy for retransmission
  entry.deadline = now + options_.deadline;
  {
    const MutexLock lock(mutex_);
    entry.rto = to_us(options_.rto);
    entry.next_retry =
        now + entry.rto +
        std::chrono::microseconds(jitter_.next_below(
            static_cast<std::uint64_t>(entry.rto.count()) / 4 + 1));
    pending_.push_back(std::move(entry));
    ++stats_.sent;
  }
  try {
    inner_.send(std::move(msg));
  } catch (...) {
    // The sending party crashed mid-send (SimulatedCrash) or the transport
    // rejected the frame; a dead party gets no retransmissions on its
    // behalf, so withdraw the registration before propagating.
    const MutexLock lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->msg.from == entry.msg.from && it->msg.to == entry.msg.to &&
          it->msg.tag == entry.msg.tag && it->msg.seq == entry.msg.seq) {
        pending_.erase(it);
        break;
      }
    }
    throw;
  }
}

void ReliableTransport::retransmit_loop() {
  MutexLock lock(mutex_);
  while (!stopping_) {
    const auto now = Clock::now();
    std::vector<Message> resend;
    for (auto it = pending_.begin(); it != pending_.end();) {
      Message ack;
      if (mailboxes_[it->msg.from].try_recv(
              it->msg.to, it->msg.tag | kAckBit, it->msg.seq, ack)) {
        ++stats_.acked;
        it = pending_.erase(it);
        continue;
      }
      if (now >= it->deadline) {
        ++stats_.expired;
        expired_counter().add();
        it = pending_.erase(it);
        continue;
      }
      if (now >= it->next_retry) {
        const auto max_rto = to_us(options_.max_rto);
        it->rto = std::min(
            std::chrono::microseconds(static_cast<std::int64_t>(
                static_cast<double>(it->rto.count()) * options_.backoff)),
            max_rto);
        it->next_retry =
            now + it->rto +
            std::chrono::microseconds(jitter_.next_below(
                static_cast<std::uint64_t>(it->rto.count()) / 4 + 1));
        Message copy = it->msg;
        copy.tag |= kRetransmitBit;
        resend.push_back(std::move(copy));
        ++stats_.retransmits;
        retransmit_counter().add();
      }
      ++it;
    }
    lock.unlock();
    for (auto& msg : resend) {
      try {
        inner_.send(std::move(msg));
      } catch (const std::exception&) {
        // A retransmission on behalf of a crashed party is swallowed by the
        // fault layer or rejected; either way the entry ages out at its
        // deadline.
      }
    }
    lock.lock();
    if (!stopping_) {
      lock.unlock();
      std::this_thread::sleep_for(options_.tick);
      lock.lock();
    }
  }
}

void ReliableTransport::stop() {
  {
    const MutexLock lock(mutex_);
    if (stopping_) {
      if (!retransmitter_.joinable()) return;
    }
    stopping_ = true;
  }
  if (retransmitter_.joinable()) retransmitter_.join();
}

ReliableStats ReliableTransport::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

}  // namespace eppi::net
