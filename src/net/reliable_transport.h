// Reliable delivery on top of an unreliable Transport.
//
// The paper's protocols assume every message arrives; real federations see
// loss. Rather than hand-rolling timeouts at every call site, this decorator
// gives the cluster at-most-once, usually-exactly-once delivery:
//
//  * every data frame a party sends is registered as pending and forwarded;
//  * a background thread polls the *sender's* mailbox for the matching ack
//    (tag | kAckBit, same seq — mailboxes ack on delivery, see mailbox.h)
//    and retransmits unacked frames with exponential backoff plus seeded
//    jitter, the retransmission marked with kRetransmitBit;
//  * a frame unacked past its per-message deadline is abandoned and counted,
//    at which point the receiver's bounded recv surfaces a PartyFailure —
//    reliability turns loss into latency, and only persistent silence
//    (a crashed peer, a fully dead link) into a typed failure.
//
// Acks themselves are fire-and-forget: a lost ack triggers a retransmission,
// which the receiving mailbox deduplicates and re-acks.
#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "net/mailbox.h"
#include "net/transport.h"

namespace eppi::net {

struct ReliableOptions {
  std::chrono::milliseconds rto{5};         // initial retransmit timeout
  double backoff = 2.0;                     // rto multiplier per retry
  std::chrono::milliseconds max_rto{50};
  std::chrono::milliseconds deadline{1000}; // per-message delivery bound
  std::chrono::microseconds tick{500};      // retransmit-thread poll period
  std::uint64_t jitter_seed = 7;            // de-synchronizes retry bursts
};

struct ReliableStats {
  std::uint64_t sent = 0;         // data frames registered
  std::uint64_t acked = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t expired = 0;      // frames abandoned at the deadline
};

class ReliableTransport final : public Transport {
 public:
  // `mailboxes` are the cluster's per-party inboxes, used to poll acks on
  // the sending party's behalf; both references must outlive this object.
  ReliableTransport(Transport& inner, std::vector<Mailbox>& mailboxes,
                    ReliableOptions options = {});
  ~ReliableTransport() override;

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  void send(Message msg) override EPPI_EXCLUDES(mutex_);

  // Joins the retransmit thread; pending frames are abandoned (idempotent).
  void stop() EPPI_EXCLUDES(mutex_);

  ReliableStats stats() const EPPI_EXCLUDES(mutex_);

 private:
  struct Pending {
    Message msg;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point next_retry;
    std::chrono::microseconds rto;
  };

  void retransmit_loop() EPPI_EXCLUDES(mutex_);

  Transport& inner_;
  std::vector<Mailbox>& mailboxes_;
  const ReliableOptions options_;

  mutable Mutex mutex_;
  std::list<Pending> pending_ EPPI_GUARDED_BY(mutex_);
  ReliableStats stats_ EPPI_GUARDED_BY(mutex_);
  Rng jitter_ EPPI_GUARDED_BY(mutex_);
  std::thread retransmitter_;  // set in ctor, joined in stop(); not shared
  bool stopping_ EPPI_GUARDED_BY(mutex_) = false;
};

}  // namespace eppi::net
