#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>

#include "common/error.h"
#include "common/logging.h"
#include "common/mutex.h"

namespace eppi::net {

namespace {

void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) throw eppi::ProtocolError("socket write failed");
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool read_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) return false;  // peer closed or error
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  require(::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1,
          "SocketRuntime: bad host address " + ep.host);
  return addr;
}

struct FrameHeader {
  std::uint32_t from;
  std::uint32_t to;
  std::uint32_t tag;
  std::uint64_t seq;
  std::uint32_t len;
};

constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 4;

void encode_header(const FrameHeader& h, unsigned char* out) {
  auto put32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) *out++ = static_cast<unsigned char>(v >> (8 * i));
  };
  auto put64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) *out++ = static_cast<unsigned char>(v >> (8 * i));
  };
  put32(h.from);
  put32(h.to);
  put32(h.tag);
  put64(h.seq);
  put32(h.len);
}

FrameHeader decode_header(const unsigned char* in) {
  auto get32 = [&in] {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*in++) << (8 * i);
    return v;
  };
  auto get64 = [&in] {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*in++) << (8 * i);
    return v;
  };
  FrameHeader h;
  h.from = get32();
  h.to = get32();
  h.tag = get32();
  h.seq = get64();
  h.len = get32();
  return h;
}

}  // namespace

// Transport implementation writing frames onto the per-peer sockets.
class SocketRuntime::SocketSender final : public Transport {
 public:
  explicit SocketSender(SocketRuntime& runtime) : runtime_(runtime) {}

  // Pre-creates the per-peer write mutex (called once at mesh setup so no
  // rehashing happens under concurrency).
  void prepare(PartyId peer) { write_mutex_[peer]; }

  void send(Message msg) override {
    require(msg.to < runtime_.peer_fds_.size(),
            "SocketSender: bad destination");
    runtime_.meter_.record_message(msg.wire_size());
    if (msg.to == runtime_.self_) {  // loopback
      runtime_.inbox_.deliver(std::move(msg));
      return;
    }
    const int fd = runtime_.peer_fds_[msg.to];
    require(fd >= 0, "SocketSender: no connection to peer");
    FrameHeader h{msg.from, msg.to, msg.tag, msg.seq,
                  static_cast<std::uint32_t>(msg.payload.size())};
    unsigned char header[kHeaderBytes];
    encode_header(h, header);
    const auto it = write_mutex_.find(msg.to);
    require(it != write_mutex_.end(), "SocketSender: unprepared peer");
    const MutexLock lock(it->second);
    write_all(fd, header, sizeof(header));
    if (!msg.payload.empty()) {
      write_all(fd, msg.payload.data(), msg.payload.size());
    }
  }

 private:
  SocketRuntime& runtime_;
  // One mutex per peer keeps frames atomic under concurrent sends. Looked up
  // dynamically per message, so the static analysis cannot name the
  // capability — MutexLock still serializes the frame writes at runtime.
  std::map<PartyId, Mutex> write_mutex_;
};

SocketRuntime::SocketRuntime(PartyId self, std::vector<Endpoint> endpoints,
                             std::uint64_t rng_seed, int connect_timeout_ms)
    : self_(self), endpoints_(std::move(endpoints)) {
  const std::size_t m = endpoints_.size();
  require(self < m, "SocketRuntime: self id out of range");
  peer_fds_.assign(m, -1);

  // Listen socket.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "SocketRuntime: cannot create listen socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(endpoints_[self]);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw eppi::ProtocolError("SocketRuntime: bind failed on port " +
                              std::to_string(endpoints_[self].port));
  }
  require(::listen(listen_fd_, static_cast<int>(m)) == 0,
          "SocketRuntime: listen failed");

  // Actively connect to lower ids (they are listening or will be).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_timeout_ms);
  for (PartyId j = 0; j < self; ++j) {
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      require(fd >= 0, "SocketRuntime: cannot create socket");
      sockaddr_in peer = make_addr(endpoints_[j]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&peer), sizeof(peer)) ==
          0) {
        break;
      }
      ::close(fd);
      fd = -1;
      if (std::chrono::steady_clock::now() > deadline) {
        throw eppi::ProtocolError("SocketRuntime: cannot reach party " +
                                  std::to_string(j));
      }
      EPPI_DEBUG("party " << self << " waiting for party " << j << " at "
                          << endpoints_[j].host << ':'
                          << endpoints_[j].port);
      ::usleep(20000);
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    // Handshake: announce who we are.
    const std::uint32_t my_id = self;
    write_all(fd, &my_id, sizeof(my_id));
    peer_fds_[j] = fd;
  }

  // Accept connections from higher ids.
  for (PartyId expected = 0; expected + self + 1 < m; ++expected) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) throw eppi::ProtocolError("SocketRuntime: accept failed");
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    std::uint32_t peer_id = 0;
    if (!read_all(fd, &peer_id, sizeof(peer_id)) || peer_id <= self ||
        peer_id >= m || peer_fds_[peer_id] != -1) {
      ::close(fd);
      throw eppi::ProtocolError("SocketRuntime: bad handshake");
    }
    peer_fds_[peer_id] = fd;
  }

  sender_ = std::make_unique<SocketSender>(*this);
  for (PartyId j = 0; j < m; ++j) {
    if (j != self) sender_->prepare(j);
  }
  context_ = std::make_unique<PartyContext>(
      self, m, *sender_, inbox_, meter_, Rng(rng_seed * 1000003 + self));

  for (PartyId j = 0; j < m; ++j) {
    if (peer_fds_[j] >= 0) {
      readers_.emplace_back([this, fd = peer_fds_[j]] { reader_loop(fd); });
    }
  }
}

void SocketRuntime::reader_loop(int fd) {
  for (;;) {
    unsigned char header[kHeaderBytes];
    if (!read_all(fd, header, sizeof(header))) return;  // peer closed
    const FrameHeader h = decode_header(header);
    constexpr std::uint32_t kMaxPayload = 1u << 30;
    if (h.len > kMaxPayload) {
      EPPI_WARN("dropping connection: frame of " << h.len
                                                 << " bytes exceeds limit");
      return;
    }
    Message msg;
    msg.from = h.from;
    msg.to = h.to;
    msg.tag = h.tag;
    msg.seq = h.seq;
    msg.payload.resize(h.len);
    if (h.len > 0 && !read_all(fd, msg.payload.data(), h.len)) return;
    inbox_.deliver(std::move(msg));
  }
}

void SocketRuntime::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Wake blocked readers first, join them, and only then close the fds —
  // closing while a reader is inside read() races on the descriptor.
  for (const int fd : peer_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
  readers_.clear();
  for (int& fd : peer_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

SocketRuntime::~SocketRuntime() { shutdown(); }

}  // namespace eppi::net
