#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "net/wire.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace eppi::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "SocketRuntime: bad host address " + host);
  return addr;
}

void set_socket_flags(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // CLOEXEC on every socket: a party that fork/execs a helper must not leak
  // mesh descriptors into the child.
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

// Per-process session nonce: a reconnecting peer presenting a different
// nonce restarted; the same nonce is the same process resuming a dropped
// link. Randomness (not a counter) so independently restarted parties
// cannot collide.
std::uint64_t make_session_nonce() {
  // Entropy, not reproducibility: two restarts of the same party MUST get
  // different nonces, so the deterministic eppi::Rng is exactly wrong here.
  std::random_device rd;  // eppi-lint: allow(rng-construction): restart nonces need entropy, not reproducibility
  std::uint64_t n = (std::uint64_t{rd()} << 32) ^ rd();
  n ^= static_cast<std::uint64_t>(::getpid()) << 17;
  if (n == 0) n = 1;
  return n;
}

std::vector<unsigned char> encode_frame(const Message& msg) {
  // Stamped messages grow the v3 trace-context extension; send_ns is taken
  // here, at encode time, so a retransmission carries its own transmission
  // clock (the causal parent span, by contrast, stays the original one).
  const bool traced = msg.span_id != 0 && !is_ack_tag(msg.tag);
  const std::size_t ext = traced ? wire::kTraceExtBytes : 0;
  std::vector<unsigned char> buf(wire::kHeaderBytes + ext +
                                 msg.payload.size());
  const wire::FrameHeader h{
      msg.from, msg.to, traced ? msg.tag | wire::kTraceContextBit : msg.tag,
      msg.seq, static_cast<std::uint32_t>(msg.payload.size())};
  wire::encode_frame_header(h, buf.data());
  if (traced) {
    const wire::TraceContext ctx{msg.trace_id, msg.span_id, monotonic_ns()};
    wire::encode_trace_context(ctx, buf.data() + wire::kHeaderBytes);
  }
  if (!msg.payload.empty()) {
    std::memcpy(buf.data() + wire::kHeaderBytes + ext, msg.payload.data(),
                msg.payload.size());
  }
  return buf;
}

}  // namespace

// Transport handing encoded frames to the event loop. Thread-safe: protocol
// threads and the retransmit thread call send(); the loop thread owns the
// sockets and does the actual writes.
class SocketRuntime::SocketSender final : public Transport {
 public:
  explicit SocketSender(SocketRuntime& runtime) : runtime_(runtime) {}

  void send(Message msg) override {
    require(msg.to < runtime_.endpoints_.size(),
            "SocketSender: bad destination");
    // Stamp the sending thread's current span onto untraced data frames so
    // the wire carries the causal parent. Already-stamped messages (the
    // reliability layer stamps before registering its retransmit copy) keep
    // their original context; acks stay untraced.
    if (msg.span_id == 0 && !is_ack_tag(msg.tag)) {
      const obs::SpanContext ctx = obs::current_span_context();
      msg.trace_id = ctx.trace_id;
      msg.span_id = ctx.span_id;
    }
    runtime_.meter_.record_message(msg.wire_size());
    if (msg.to == runtime_.self_) {  // loopback
      runtime_.mailboxes_[runtime_.self_].deliver(std::move(msg));
      return;
    }
    const PartyId to = msg.to;
    runtime_.loop_.post(
        [rt = &runtime_, to, frame = encode_frame(msg)]() mutable {
          rt->queue_frame(to, std::move(frame));
        });
  }

 private:
  SocketRuntime& runtime_;
};

SocketRuntime::SocketRuntime(PartyId self, std::vector<Endpoint> endpoints,
                             std::uint64_t rng_seed, int connect_timeout_ms)
    : SocketRuntime(self, std::move(endpoints), [&] {
        SocketRuntimeOptions o;
        o.rng_seed = rng_seed;
        o.connect_timeout_ms = connect_timeout_ms;
        return o;
      }()) {}

SocketRuntime::SocketRuntime(PartyId self, std::vector<Endpoint> endpoints,
                             SocketRuntimeOptions options)
    : self_(self),
      endpoints_(std::move(endpoints)),
      session_(make_session_nonce()),
      options_(options),
      mailboxes_(endpoints_.size()) {
  const std::size_t m = endpoints_.size();
  require(m >= 1, "SocketRuntime: need at least one endpoint");
  require(self < m, "SocketRuntime: self id out of range");
  peers_.resize(m);
  {
    const MutexLock lock(state_mutex_);
    up_.assign(m, false);
    reached_.assign(m, false);
  }

  // Listen socket, bound synchronously so port conflicts throw here.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  require(listen_fd_ >= 0, "SocketRuntime: cannot create listen socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const std::uint16_t listen_port = options_.listen_port_override != 0
                                        ? options_.listen_port_override
                                        : endpoints_[self].port;
  sockaddr_in addr = make_addr(endpoints_[self].host, listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw eppi::ProtocolError("SocketRuntime: bind failed on port " +
                              std::to_string(listen_port));
  }
  if (::listen(listen_fd_, static_cast<int>(m) + 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw eppi::ProtocolError("SocketRuntime: listen failed");
  }

  // Transport chain + context, fully wired before any byte can arrive.
  sender_ = std::make_unique<SocketSender>(*this);
  Transport* active = sender_.get();
  if (options_.reliable) {
    reliable_ = std::make_unique<ReliableTransport>(*sender_, mailboxes_,
                                                    options_.reliable_options);
    mailboxes_[self_].enable_reliable(reliable_.get(), self_);
    active = reliable_.get();
  }
  context_ = std::make_unique<PartyContext>(
      self_, m, *active, mailboxes_[self_], meter_,
      Rng(options_.rng_seed * 1000003 + self_), options_.recv_timeout);

  loop_thread_ = std::thread([this] { loop_.run(); });
  loop_.post([this] { setup_on_loop(); });

  // Block until every peer has been reached at least once or the budget runs
  // out. "Reached" is sticky on purpose: a fast peer may complete its whole
  // exchange and exit while we are still dialing the others, and its frames
  // are already sitting in our mailbox — requiring all links to be up
  // *simultaneously* would starve this constructor for no protocol reason.
  // Post-formation liveness is the heartbeat detector's job, not ours.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.connect_timeout_ms);
  bool formed = false;
  {
    MutexLock lock(state_mutex_);
    for (;;) {
      std::size_t reached = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (j != self_ && reached_[j]) ++reached;
      }
      if (reached == m - 1) {
        formed = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      state_cv_.wait_until(state_mutex_, deadline);
    }
  }
  if (!formed) {
    PartyId missing = self_;
    {
      const MutexLock lock(state_mutex_);
      for (std::size_t j = 0; j < m; ++j) {
        if (j != self_ && !reached_[j]) {
          missing = static_cast<PartyId>(j);
          break;
        }
      }
    }
    shutdown();
    throw eppi::ProtocolError("SocketRuntime: cannot reach party " +
                              std::to_string(missing));
  }
}

SocketRuntime::~SocketRuntime() { shutdown(); }

void SocketRuntime::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Stop the retransmit thread first: it feeds frames into the loop.
  if (reliable_) reliable_->stop();

  // Drain before teardown: protocol sends are asynchronous (posted to the
  // loop), so a runtime destroyed right after send() must first let the loop
  // run the posted closures and flush every connection's write queue.
  // Bounded: a peer stuck unwritable for the whole budget forfeits its
  // frames (with reliability the sender's retransmit path has already
  // stopped, so this mirrors a crash, which the protocol layer tolerates).
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    Mutex probe_mutex;
    CondVar probe_cv;
    bool probed = false;
    bool clean = false;
    loop_.post([&] {
      bool all_flushed = true;
      for (const auto& [fd, conn] : conns_) {
        if (!conn.outq.empty()) {
          all_flushed = false;
          break;
        }
      }
      MutexLock lock(probe_mutex);
      clean = all_flushed;
      probed = true;
      probe_cv.notify_all();
    });
    {
      MutexLock lock(probe_mutex);
      const auto probe_deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
      while (!probed &&
             std::chrono::steady_clock::now() < probe_deadline) {
        probe_cv.wait_until(probe_mutex, probe_deadline);
      }
      // An unanswered probe means the loop is not serving posts; bail.
      if (!probed || clean) break;
    }
    if (std::chrono::steady_clock::now() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  loop_.stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread is gone; connection state is now ours to tear down.
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool SocketRuntime::peer_up(PartyId peer) const {
  const MutexLock lock(state_mutex_);
  return peer < up_.size() && up_[peer];
}

NetStats SocketRuntime::stats() const {
  const MutexLock lock(state_mutex_);
  return stats_;
}

void SocketRuntime::set_peer_down_callback(PeerCallback cb) {
  const MutexLock lock(state_mutex_);
  on_peer_down_ = std::move(cb);
}

void SocketRuntime::set_peer_up_callback(PeerCallback cb) {
  const MutexLock lock(state_mutex_);
  on_peer_up_ = std::move(cb);
}

// --- loop-thread internals --------------------------------------------------

void SocketRuntime::setup_on_loop() {
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t ev) { on_listen_ready(ev); });
  // Dial every lower id (they are listening or will be); higher ids dial us.
  for (PartyId j = 0; j < self_; ++j) start_connect(j);
  heartbeat_timer_ = loop_.add_timer(options_.heartbeat_interval,
                                     options_.heartbeat_interval,
                                     [this] { heartbeat_tick(); });
}

void SocketRuntime::start_connect(PartyId peer) {
  if (shut_down_) return;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    schedule_reconnect(peer);
    return;
  }
  set_socket_flags(fd);
  sockaddr_in addr = make_addr(endpoints_[peer].host, endpoints_[peer].port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    EPPI_DEBUG("party " << self_ << " dial to party " << peer
                        << " failed synchronously: " << std::strerror(errno));
    ::close(fd);
    schedule_reconnect(peer);
    return;
  }
  EPPI_DEBUG("party " << self_ << " dialing party " << peer << " on fd " << fd
                      << (rc == 0 ? " (connected)" : " (in progress)"));
  Conn& c = conns_[fd];
  c.fd = fd;
  c.peer = peer;
  c.dialer = true;
  c.connecting = (rc != 0);
  c.last_rx = std::chrono::steady_clock::now();
  if (c.connecting) {
    loop_.add_fd(fd, EPOLLOUT,
                 [this, fd](std::uint32_t ev) { on_conn_event(fd, ev); });
  } else {
    loop_.add_fd(fd, EPOLLIN,
                 [this, fd](std::uint32_t ev) { on_conn_event(fd, ev); });
    // Connected synchronously (loopback): announce ourselves now.
    wire::Hello hello{wire::kMagic, wire::kProtocolVersion,
                      static_cast<std::uint16_t>(
                          peers_[peer].ever_up ? wire::kFlagResume : 0),
                      self_, session_};
    std::vector<unsigned char> buf(wire::kHelloBytes);
    wire::encode_hello(hello, buf.data());
    c.outq.push_back(std::move(buf));
    flush_conn(c);
  }
}

void SocketRuntime::schedule_reconnect(PartyId peer) {
  if (shut_down_) return;
  PeerState& ps = peers_[peer];
  if (ps.retry_timer != 0) return;  // retry already pending
  ps.backoff = ps.backoff.count() == 0
                   ? options_.reconnect_min
                   : std::min(ps.backoff * 2, options_.reconnect_max);
  ps.retry_timer =
      loop_.add_timer(ps.backoff, std::chrono::milliseconds(0), [this, peer] {
        peers_[peer].retry_timer = 0;
        if (peers_[peer].fd < 0) start_connect(peer);
      });
}

void SocketRuntime::on_listen_ready(std::uint32_t /*events*/) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error; epoll re-arms us
    }
    set_socket_flags(fd);
    Conn& c = conns_[fd];
    c.fd = fd;
    c.dialer = false;
    c.last_rx = std::chrono::steady_clock::now();
    loop_.add_fd(fd, EPOLLIN,
                 [this, fd](std::uint32_t ev) { on_conn_event(fd, ev); });
    // Announce ourselves immediately; the peer id arrives in their hello.
    wire::Hello hello{wire::kMagic, wire::kProtocolVersion, 0, self_,
                      session_};
    std::vector<unsigned char> buf(wire::kHelloBytes);
    wire::encode_hello(hello, buf.data());
    c.outq.push_back(std::move(buf));
    flush_conn(c);
  }
}

void SocketRuntime::on_conn_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;

  if (c.connecting) {
    // Nonblocking connect resolved (EPOLLOUT) or failed (EPOLLERR/HUP).
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
      close_conn(fd, "connect failed");
      return;
    }
    c.connecting = false;
    loop_.modify_fd(fd, EPOLLIN);
    c.want_write = false;
    wire::Hello hello{wire::kMagic, wire::kProtocolVersion,
                      static_cast<std::uint16_t>(
                          peers_[c.peer].ever_up ? wire::kFlagResume : 0),
                      self_, session_};
    std::vector<unsigned char> buf(wire::kHelloBytes);
    wire::encode_hello(hello, buf.data());
    c.outq.push_back(std::move(buf));
    flush_conn(c);
    return;
  }

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(fd, "socket error");
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_conn(c);
    if (conns_.find(fd) == conns_.end()) return;  // flush closed it
  }
  if ((events & EPOLLIN) != 0) handle_readable(c);
}

void SocketRuntime::handle_readable(Conn& c) {
  const int fd = c.fd;
  unsigned char chunk[64 * 1024];
  for (;;) {
    // MSG_DONTWAIT: the sockets are already nonblocking, but the explicit
    // flag makes the no-blocking-on-the-loop-thread contract local fact,
    // independent of fd state (and checkable by eppi_analyze).
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      c.rbuf.insert(c.rbuf.end(), chunk, chunk + n);
      c.last_rx = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      close_conn(fd, "peer closed");
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(fd, "read error");
    return;
  }
  if (!c.identified) {
    if (!process_hello(c)) return;  // closed, or hello still incomplete
    if (conns_.find(fd) == conns_.end()) return;  // hello flush closed it
  }
  process_frames(c);
}

bool SocketRuntime::process_hello(Conn& c) {
  if (c.rbuf.size() < wire::kHelloBytes) return false;  // need more bytes
  const wire::Hello hello = wire::decode_hello(c.rbuf.data());
  std::string problem = wire::hello_problem(hello, endpoints_.size());
  if (problem.empty()) {
    if (c.dialer && hello.party != c.peer) {
      problem = "endpoint for party " + std::to_string(c.peer) +
                " answered as party " + std::to_string(hello.party);
    } else if (!c.dialer && hello.party <= self_) {
      // Mesh discipline: the higher id dials. A lower id (or ourselves)
      // showing up on the accept side is a misconfiguration.
      problem = "party " + std::to_string(hello.party) +
                " must be dialed, not accepted";
    }
  }
  if (!problem.empty()) {
    EPPI_WARN("party " << self_ << " rejecting connection: " << problem);
    {
      const MutexLock lock(state_mutex_);
      ++stats_.handshake_rejects;
    }
    close_conn(c.fd, "bad handshake");
    return false;
  }
  c.rbuf.erase(c.rbuf.begin(), c.rbuf.begin() + wire::kHelloBytes);
  c.peer = hello.party;
  c.identified = true;

  PeerState& ps = peers_[c.peer];
  if (ps.fd >= 0 && ps.fd != c.fd) {
    // The peer re-established while we still hold the old (half-open)
    // connection: the newest wins. Detach first so closing the stale fd
    // does not mark the link down.
    const int stale = ps.fd;
    ps.fd = -1;
    close_conn(stale, "replaced by newer connection");
  }
  ps.fd = c.fd;
  EPPI_DEBUG("party " << self_ << " identified party " << c.peer << " on fd "
                      << c.fd << (c.dialer ? " (dialed)" : " (accepted)"));
  if (ps.ever_up && ps.session != 0 && ps.session != hello.session) {
    const MutexLock lock(state_mutex_);
    ++stats_.peer_restarts;
  }
  ps.session = hello.session;
  link_established(c);
  return true;
}

void SocketRuntime::link_established(Conn& c) {
  PeerState& ps = peers_[c.peer];
  if (ps.retry_timer != 0) {
    loop_.cancel_timer(ps.retry_timer);
    ps.retry_timer = 0;
  }
  ps.backoff = std::chrono::milliseconds(0);
  const bool reconnect = ps.ever_up;
  ps.ever_up = true;
  ps.failed = false;
  {
    const MutexLock lock(state_mutex_);
    ++stats_.connects;
    if (reconnect) ++stats_.reconnects;
  }
  if (reconnect) {
    obs::Span span("net.reconnect");
    span.attr("party", static_cast<std::uint64_t>(self_));
    span.attr("peer", static_cast<std::uint64_t>(c.peer));
    span.attr("backlog", static_cast<std::uint64_t>(ps.backlog.size()));
    obs::Registry::global()
        .counter("eppi_net_reconnects_total",
                 {{"party", std::to_string(self_)}},
                 "links re-established after a drop")
        .add(1);
  }
  // Flush frames queued while the link was down; with reliability enabled
  // the peer's mailbox deduplicates any overlap with retransmissions.
  while (!ps.backlog.empty()) {
    c.outq.push_back(std::move(ps.backlog.front()));
    ps.backlog.pop_front();
  }
  mark_peer_up(c.peer);
  flush_conn(c);
}

void SocketRuntime::process_frames(Conn& c) {
  const int fd = c.fd;
  std::size_t off = 0;
  while (c.rbuf.size() - off >= wire::kHeaderBytes) {
    const wire::FrameHeader h = wire::decode_frame_header(c.rbuf.data() + off);
    if (h.len > wire::kMaxPayload) {
      EPPI_WARN("party " << self_ << " dropping connection to party "
                         << c.peer << ": frame of " << h.len
                         << " bytes exceeds limit");
      close_conn(fd, "oversized frame");
      return;
    }
    const std::size_t ext =
        wire::has_trace_context(h.tag) ? wire::kTraceExtBytes : 0;
    if (c.rbuf.size() - off < wire::kHeaderBytes + ext + h.len) break;
    off += wire::kHeaderBytes;
    wire::TraceContext trace_ctx;
    if (ext != 0) {
      trace_ctx = wire::decode_trace_context(c.rbuf.data() + off);
      off += ext;
    }

    if (wire::is_control_tag(h.tag)) {
      if (h.tag == wire::kHeartbeatPing) {
        send_control(c, wire::kHeartbeatPong, h.seq);
        if (conns_.find(fd) == conns_.end()) return;  // send failed, closed
      }
      // Pongs (and unknown control frames) only refresh last_rx.
      off += h.len;
      continue;
    }

    Message msg;
    msg.from = h.from;
    msg.to = h.to;
    msg.tag = h.tag & ~wire::kTraceContextBit;
    msg.seq = h.seq;
    msg.payload.assign(c.rbuf.begin() + static_cast<std::ptrdiff_t>(off),
                       c.rbuf.begin() + static_cast<std::ptrdiff_t>(off + h.len));
    off += h.len;
    if (msg.to != self_) {
      EPPI_WARN("party " << self_ << " ignoring misrouted frame for party "
                         << msg.to);
      continue;
    }
    if (ext != 0) {
      // Materialize the sender's context as a local net.recv event parented
      // to the *remote* sending span — the cross-process edge the trace
      // merger joins on. send_ns is the sender's clock; the merger rebases
      // it before the replay's wait/critical-path analysis trusts it.
      msg.trace_id = trace_ctx.trace_id;
      msg.span_id = trace_ctx.parent_span;
      const bool rt = (msg.tag & kRetransmitBit) != 0;
      obs::record_remote_event(
          "net.recv", {trace_ctx.trace_id, trace_ctx.parent_span},
          {{"from", h.from},
           {"tag", msg.tag & ~kRetransmitBit},
           {"seq", h.seq},
           {"bytes", h.len},
           {"send_ns", trace_ctx.send_ns},
           {"rt", rt ? 1u : 0u}});
    }
    {
      const MutexLock lock(state_mutex_);
      ++stats_.frames_received;
    }
    mailboxes_[self_].deliver(std::move(msg));
  }
  c.rbuf.erase(c.rbuf.begin(), c.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
}

// Note: runs during shutdown's drain phase too — sends posted just before
// shutdown() must still reach the wire, so there is deliberately no
// shut_down_ gate here (connections outlive the loop thread).
void SocketRuntime::queue_frame(PartyId to, std::vector<unsigned char> frame) {
  {
    const MutexLock lock(state_mutex_);
    ++stats_.frames_sent;
  }
  PeerState& ps = peers_[to];
  if (ps.fd >= 0) {
    const auto it = conns_.find(ps.fd);
    if (it != conns_.end() && it->second.identified) {
      it->second.outq.push_back(std::move(frame));
      flush_conn(it->second);
      return;
    }
  }
  // Link down (or handshake in flight): hold the frame, bounded.
  if (ps.backlog.size() >= options_.max_backlog_frames) {
    const MutexLock lock(state_mutex_);
    ++stats_.frames_dropped;
    return;
  }
  ps.backlog.push_back(std::move(frame));
}

void SocketRuntime::send_control(Conn& c, std::uint32_t tag,
                                 std::uint64_t seq) {
  const wire::FrameHeader h{self_, c.peer, tag, seq, 0};
  std::vector<unsigned char> buf(wire::kHeaderBytes);
  wire::encode_frame_header(h, buf.data());
  c.outq.push_back(std::move(buf));
  flush_conn(c);
}

void SocketRuntime::flush_conn(Conn& c) {
  const int fd = c.fd;
  while (!c.outq.empty()) {
    const std::vector<unsigned char>& front = c.outq.front();
    // MSG_NOSIGNAL: a peer closing mid-write must surface as an error (and a
    // reconnect), never as a process-killing SIGPIPE. MSG_DONTWAIT: never
    // block the loop thread, regardless of the fd's O_NONBLOCK state.
    const ssize_t n = ::send(fd, front.data() + c.out_off,
                             front.size() - c.out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) {
      c.out_off += static_cast<std::size_t>(n);
      if (c.out_off == front.size()) {
        c.outq.pop_front();
        c.out_off = 0;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!c.want_write) {
        c.want_write = true;
        loop_.modify_fd(fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    close_conn(fd, "write error");
    return;
  }
  if (c.want_write) {
    c.want_write = false;
    loop_.modify_fd(fd, EPOLLIN);
  }
}

void SocketRuntime::heartbeat_tick() {
  const auto now = std::chrono::steady_clock::now();
  for (PartyId p = 0; p < peers_.size(); ++p) {
    if (p == self_) continue;
    PeerState& ps = peers_[p];
    if (ps.fd >= 0) {
      const auto it = conns_.find(ps.fd);
      if (it == conns_.end() || !it->second.identified) continue;
      Conn& c = it->second;
      if (now - c.last_rx > options_.heartbeat_timeout) {
        {
          const MutexLock lock(state_mutex_);
          ++stats_.heartbeat_timeouts;
        }
        obs::Registry::global()
            .counter("eppi_net_heartbeat_timeouts_total",
                     {{"party", std::to_string(self_)}},
                     "links cut after silence past the heartbeat timeout")
            .add(1);
        EPPI_WARN("party " << self_ << " heartbeat timeout on party " << p);
        fail_peer(p);
        close_conn(ps.fd, "heartbeat timeout");
        continue;
      }
      send_control(c, wire::kHeartbeatPing, ps.ping_seq++);
    } else if (ps.ever_up && !ps.failed &&
               now - ps.down_since > options_.heartbeat_timeout) {
      // Link has been down (reconnects failing) longer than the silence
      // budget: the peer process is gone, not just the connection.
      fail_peer(p);
    }
  }
}

void SocketRuntime::fail_peer(PartyId peer) {
  PeerState& ps = peers_[peer];
  if (ps.failed) return;  // exactly once per failure episode
  ps.failed = true;
  EPPI_DEBUG("party " << self_ << " marking party " << peer << " failed");
  mailboxes_[self_].fail_party(peer);
  PeerCallback cb;
  {
    const MutexLock lock(state_mutex_);
    cb = on_peer_down_;
  }
  if (cb) cb(peer);
}

void SocketRuntime::mark_peer_up(PartyId peer) {
  mailboxes_[self_].clear_failed(peer);
  PeerCallback cb;
  {
    const MutexLock lock(state_mutex_);
    up_[peer] = true;
    reached_[peer] = true;
    cb = on_peer_up_;
  }
  state_cv_.notify_all();
  if (cb) cb(peer);
}

void SocketRuntime::close_conn(int fd, const char* reason) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn c = std::move(it->second);
  conns_.erase(it);
  loop_.remove_fd(fd);
  ::close(fd);

  const bool was_link = c.identified && peers_[c.peer].fd == fd;
  if (was_link) {
    PeerState& ps = peers_[c.peer];
    ps.fd = -1;
    ps.down_since = std::chrono::steady_clock::now();
    {
      const MutexLock lock(state_mutex_);
      up_[c.peer] = false;
      ++stats_.disconnects;
    }
    EPPI_DEBUG("party " << self_ << " link to party " << c.peer << " down ("
                        << reason << ")");
  } else {
    EPPI_DEBUG("party " << self_ << " closed fd " << fd << " (" << reason
                        << ", peer " << c.peer << ", identified "
                        << c.identified << ")");
  }
  // The higher id owns redialing the link (the lower id only accepts).
  if (c.dialer && !shut_down_) schedule_reconnect(c.peer);
}

}  // namespace eppi::net
