// Real-socket runtime: run protocol parties as separate OS processes.
//
// The in-process Cluster is ideal for tests and benches; an actual
// deployment runs one provider per process (or machine), like the paper's
// Emulab setup. SocketRuntime gives each process the same PartyContext the
// protocols already use, backed by TCP and a single epoll event loop:
//
//  * party i listens on endpoints[i] and accepts connections from every
//    party j > i; it actively connects (with retry) to every party j < i —
//    a deadlock-free full mesh where the higher id is the link initiator;
//  * connections open with a versioned little-endian Hello (net/wire.h):
//    magic + protocol version + party id + per-process session nonce, both
//    directions, validated identically on the accept and connect sides;
//  * frames are length-delimited [from, to, tag, seq, len, payload];
//  * one loop thread owns every socket (nonblocking reads, buffered writes,
//    timers); protocol threads hand frames to the loop via post();
//  * a dropped link is reconnected by the initiator with exponential
//    backoff; frames sent while the link is down are buffered (bounded) and
//    flushed on reconnect, and with reliability enabled the
//    ReliableTransport sequence space carries across the reconnect —
//    unacked frames retransmit, the peer's mailbox deduplicates;
//  * application-level heartbeats (control frames, never delivered to the
//    mailbox) bound silence: a peer quiet past the heartbeat timeout is
//    marked failed exactly once, the inbox's fail_party() turns blocked
//    receives into PartyFailure, and the PR 1 failure detector drives the
//    same survivor-restart / graceful-degradation paths as in-process
//    faults.
//
// The runtime meters traffic through the same CostMeter interface, so cost
// accounting carries over unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "net/cluster.h"
#include "net/cost_meter.h"
#include "net/event_loop.h"
#include "net/mailbox.h"
#include "net/reliable_transport.h"
#include "net/transport.h"

namespace eppi::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct SocketRuntimeOptions {
  std::uint64_t rng_seed = 1;
  // Mesh-formation bound: the constructor throws ProtocolError if the full
  // mesh is not up within this budget. Reconnects after construction retry
  // forever (the heartbeat timeout, not the dialer, declares a peer dead).
  int connect_timeout_ms = 10000;
  // When nonzero, bind the listen socket to this port instead of
  // endpoints[self].port. Lets a party sit behind the chaos proxy: peers
  // dial the advertised (proxy) port while the process binds the real one.
  std::uint16_t listen_port_override = 0;
  std::chrono::milliseconds heartbeat_interval{500};
  std::chrono::milliseconds heartbeat_timeout{2000};
  std::chrono::milliseconds reconnect_min{20};
  std::chrono::milliseconds reconnect_max{1000};
  // Bounds PartyContext::recv (zero = wait forever). Distributed FT runs
  // want this slightly above the protocol's stage timeout.
  std::chrono::milliseconds recv_timeout{0};
  // Acks + retransmission + dedup over the socket links (see
  // reliable_transport.h); required for session resumption to replay frames
  // lost in flight at the moment a connection dropped.
  bool reliable = false;
  ReliableOptions reliable_options;
  // Frames buffered per peer while its link is down; beyond the cap new
  // frames are dropped (counted in stats) and reliability, if enabled,
  // recovers them by retransmission.
  std::size_t max_backlog_frames = 65536;
};

// Point-in-time counters mirrored into the obs registry
// (eppi_net_* metrics); readable from any thread.
struct NetStats {
  std::uint64_t connects = 0;            // successful handshakes (both roles)
  std::uint64_t reconnects = 0;          // handshakes after a link drop
  std::uint64_t disconnects = 0;         // links lost (error, EOF, timeout)
  std::uint64_t heartbeat_timeouts = 0;  // links cut for silence
  std::uint64_t peer_restarts = 0;       // session nonce changed on reconnect
  std::uint64_t handshake_rejects = 0;   // bad magic/version/party
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_dropped = 0;      // backlog overflow while peer down
};

class SocketRuntime {
 public:
  // Establishes the full mesh (blocking; retries connections for up to
  // `connect_timeout_ms`). Throws ProtocolError if the mesh cannot form.
  SocketRuntime(PartyId self, std::vector<Endpoint> endpoints,
                std::uint64_t rng_seed = 1, int connect_timeout_ms = 10000);
  SocketRuntime(PartyId self, std::vector<Endpoint> endpoints,
                SocketRuntimeOptions options);
  ~SocketRuntime();

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  // The context for running protocol bodies in this process. Valid for the
  // runtime's lifetime.
  PartyContext& context() noexcept { return *context_; }
  CostMeter& meter() noexcept { return meter_; }
  Mailbox& inbox() noexcept { return mailboxes_[self_]; }

  // Present iff options.reliable; stats() on it exposes retransmit counts.
  ReliableTransport* reliable() noexcept { return reliable_.get(); }

  // Whether the link to `peer` is currently established (handshake done).
  bool peer_up(PartyId peer) const;
  NetStats stats() const;

  // This process's session nonce (sent in every Hello).
  std::uint64_t session_nonce() const noexcept { return session_; }

  // Invoked on the loop thread, once per transition, when a peer's link is
  // lost / re-established. Set before protocol traffic starts.
  using PeerCallback = std::function<void(PartyId)>;
  void set_peer_down_callback(PeerCallback cb);
  void set_peer_up_callback(PeerCallback cb);

  // Closes all sockets and joins the loop thread (also done by destructor).
  void shutdown();

 private:
  class SocketSender;
  friend class SocketSender;

  // One TCP connection, identified or not yet; loop thread only.
  struct Conn {
    int fd = -1;
    PartyId peer = 0;
    bool identified = false;   // peer hello received and validated
    bool connecting = false;   // nonblocking connect in flight (dialer)
    bool dialer = false;       // we initiated this connection
    bool want_write = false;   // EPOLLOUT currently requested
    std::vector<unsigned char> rbuf;
    std::deque<std::vector<unsigned char>> outq;  // [0] may be partially sent
    std::size_t out_off = 0;
    std::chrono::steady_clock::time_point last_rx{};
  };

  // Per-peer link state; loop thread only.
  struct PeerState {
    int fd = -1;  // established conn, -1 when down
    bool ever_up = false;
    bool failed = false;  // declared dead (heartbeat); cleared on reconnect
    std::uint64_t session = 0;  // peer's last announced nonce
    std::chrono::milliseconds backoff{0};
    EventLoop::TimerId retry_timer = 0;  // pending reconnect timer, 0 = none
    std::chrono::steady_clock::time_point down_since{};
    std::deque<std::vector<unsigned char>> backlog;  // frames queued while down
    std::uint64_t ping_seq = 0;
  };

  // Loop-thread internals: these touch conns_/peers_ and the loop's fd
  // table, so they are only reachable from run()'s callbacks or a post()ed
  // closure — checked by tools/eppi_analyze.py via EPPI_LOOP_AFFINE.
  void setup_on_loop() EPPI_LOOP_AFFINE;
  void start_connect(PartyId peer) EPPI_LOOP_AFFINE;
  void schedule_reconnect(PartyId peer) EPPI_LOOP_AFFINE;
  void on_listen_ready(std::uint32_t events) EPPI_LOOP_AFFINE;
  void on_conn_event(int fd, std::uint32_t events) EPPI_LOOP_AFFINE;
  void handle_readable(Conn& c) EPPI_LOOP_AFFINE;
  bool process_hello(Conn& c) EPPI_LOOP_AFFINE;
  void process_frames(Conn& c) EPPI_LOOP_AFFINE;
  void link_established(Conn& c) EPPI_LOOP_AFFINE;
  void close_conn(int fd, const char* reason) EPPI_LOOP_AFFINE;
  void queue_frame(PartyId to, std::vector<unsigned char> frame)
      EPPI_LOOP_AFFINE;
  void flush_conn(Conn& c) EPPI_LOOP_AFFINE;
  void send_control(Conn& c, std::uint32_t tag, std::uint64_t seq)
      EPPI_LOOP_AFFINE;
  void heartbeat_tick() EPPI_LOOP_AFFINE;
  void fail_peer(PartyId peer) EPPI_LOOP_AFFINE;
  void mark_peer_up(PartyId peer) EPPI_LOOP_AFFINE;

  PartyId self_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t session_ = 0;
  SocketRuntimeOptions options_;

  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;

  // Loop-thread-only connection state.
  std::map<int, Conn> conns_;
  std::vector<PeerState> peers_;
  EventLoop::TimerId heartbeat_timer_ = 0;

  // All parties' mailboxes so ReliableTransport can poll acks at index
  // self_; only mailboxes_[self_] ever receives messages in this process.
  std::vector<Mailbox> mailboxes_;
  CostMeter meter_;
  std::unique_ptr<SocketSender> sender_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::unique_ptr<PartyContext> context_;

  // Cross-thread view of link state + counters, mirrored by the loop.
  mutable Mutex state_mutex_;
  CondVar state_cv_;
  std::vector<bool> up_ EPPI_GUARDED_BY(state_mutex_);
  // Sticky: set on a peer's first handshake, never cleared. Mesh formation
  // waits on this, not up_ — a peer that handshook, delivered, and departed
  // (its frames outlive it in the mailbox) must not starve the constructor.
  std::vector<bool> reached_ EPPI_GUARDED_BY(state_mutex_);
  NetStats stats_ EPPI_GUARDED_BY(state_mutex_);
  PeerCallback on_peer_down_ EPPI_GUARDED_BY(state_mutex_);
  PeerCallback on_peer_up_ EPPI_GUARDED_BY(state_mutex_);

  std::atomic<bool> shut_down_{false};
};

}  // namespace eppi::net
