// Real-socket runtime: run protocol parties as separate OS processes.
//
// The in-process Cluster is ideal for tests and benches; an actual
// deployment runs one provider per process (or machine), like the paper's
// Emulab setup. SocketRuntime gives each process the same PartyContext the
// protocols already use, backed by TCP:
//
//  * party i listens on endpoints[i] and accepts connections from every
//    party j > i; it actively connects (with retry) to every party j < i —
//    a deadlock-free full mesh;
//  * each connection is identified by a 4-byte party-id handshake;
//  * frames are length-delimited [from, to, tag, seq, len, payload];
//  * one reader thread per peer demultiplexes into the standard Mailbox, so
//    selective blocking recv works exactly as in-process.
//
// The runtime meters traffic through the same CostMeter interface, so cost
// accounting carries over unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/cluster.h"
#include "net/cost_meter.h"
#include "net/mailbox.h"
#include "net/transport.h"

namespace eppi::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class SocketRuntime {
 public:
  // Establishes the full mesh (blocking; retries connections for up to
  // `connect_timeout_ms`). Throws ProtocolError if the mesh cannot form.
  SocketRuntime(PartyId self, std::vector<Endpoint> endpoints,
                std::uint64_t rng_seed = 1, int connect_timeout_ms = 10000);
  ~SocketRuntime();

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  // The context for running protocol bodies in this process. Valid for the
  // runtime's lifetime.
  PartyContext& context() noexcept { return *context_; }
  CostMeter& meter() noexcept { return meter_; }

  // Closes all sockets and joins reader threads (also done by destructor).
  void shutdown();

 private:
  class SocketSender;

  void reader_loop(int fd);

  PartyId self_;
  std::vector<Endpoint> endpoints_;
  std::vector<int> peer_fds_;  // indexed by party id; -1 for self
  int listen_fd_ = -1;
  Mailbox inbox_;
  CostMeter meter_;
  std::unique_ptr<SocketSender> sender_;
  std::unique_ptr<PartyContext> context_;
  std::vector<std::thread> readers_;
  bool shut_down_ = false;
};

}  // namespace eppi::net
