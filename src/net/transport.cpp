#include "net/transport.h"

#include "common/error.h"

namespace eppi::net {

void InMemoryTransport::send(Message msg) {
  require(msg.to < mailboxes_.size(), "InMemoryTransport: bad destination");
  meter_.record_message(msg.wire_size());
  mailboxes_[msg.to].deliver(std::move(msg));
}

}  // namespace eppi::net
