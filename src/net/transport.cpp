#include "net/transport.h"

#include "common/error.h"

namespace eppi::net {

void InMemoryTransport::send(Message msg) {
  require(msg.to < mailboxes_.size(), "InMemoryTransport: bad destination");
  meter_.record_message(msg.wire_size());
  mailboxes_[msg.to].deliver(std::move(msg));
}

void DroppingTransport::send(Message msg) {
  const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (drop_every_ != 0 && n % drop_every_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  inner_.send(std::move(msg));
}

}  // namespace eppi::net
