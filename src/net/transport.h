// Transport abstraction and the in-memory implementation.
//
// The paper's prototype used Netty over Emulab machines; here the transport
// routes messages between party threads through per-party mailboxes while
// metering every message for the cost model (DESIGN.md §2). The interface is
// narrow so alternative transports (e.g. loss-injecting, delaying) can be
// substituted in tests.
#pragma once

#include <memory>
#include <vector>

#include "net/cost_meter.h"
#include "net/mailbox.h"
#include "net/message.h"

namespace eppi::net {

class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(Message msg) = 0;
};

// Routes messages to per-party mailboxes; thread-safe. Owns neither the
// mailboxes nor the meter.
class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::vector<Mailbox>& mailboxes, CostMeter& meter)
      : mailboxes_(mailboxes), meter_(meter) {}

  void send(Message msg) override;

 private:
  std::vector<Mailbox>& mailboxes_;
  CostMeter& meter_;
};

// A transport decorator that drops every k-th message; used by failure
// injection tests to verify protocols detect (rather than silently absorb)
// lost messages via recv timeouts at the cluster layer.
class DroppingTransport final : public Transport {
 public:
  DroppingTransport(Transport& inner, std::uint64_t drop_every)
      : inner_(inner), drop_every_(drop_every) {}

  void send(Message msg) override;

  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Transport& inner_;
  std::uint64_t drop_every_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace eppi::net
