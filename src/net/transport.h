// Transport abstraction and the in-memory implementation.
//
// The paper's prototype used Netty over Emulab machines; here the transport
// routes messages between party threads through per-party mailboxes while
// metering every message for the cost model (DESIGN.md §2). The interface is
// narrow so alternative transports (e.g. loss-injecting, delaying) can be
// substituted in tests.
#pragma once

#include <memory>
#include <vector>

#include "net/cost_meter.h"
#include "net/mailbox.h"
#include "net/message.h"

namespace eppi::net {

class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(Message msg) = 0;
};

// Routes messages to per-party mailboxes; thread-safe. Owns neither the
// mailboxes nor the meter.
class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::vector<Mailbox>& mailboxes, CostMeter& meter)
      : mailboxes_(mailboxes), meter_(meter) {}

  void send(Message msg) override;

 private:
  std::vector<Mailbox>& mailboxes_;
  CostMeter& meter_;
};

// DroppingTransport (the every-k-th-message fault injector) migrated to a
// thin alias over the composable FaultyTransport; see faulty_transport.h.

}  // namespace eppi::net
