// Wire protocol for the socket runtime: versioned handshake + frame format.
//
// Everything on the wire is little-endian regardless of host order, encoded
// byte by byte (no struct punning), so heterogeneous deployments interop and
// a mismatched peer is rejected instead of silently misrouted.
//
// Connection establishment: both ends send a Hello immediately after the TCP
// connect/accept, then read the peer's. A Hello carries a magic constant
// (rejects port scanners and stale protocol speakers before any length field
// is trusted), the protocol version (mismatch = reject: frame semantics may
// have changed), the announcing party id, and a per-process-instance session
// nonce. A reconnect from a known party with a *different* session nonce
// means the peer process restarted; with the *same* nonce it is the same
// process re-establishing a dropped link, and the reliability layer's
// sequence space carries straight across (unacked frames are retransmitted,
// the receiving mailbox deduplicates).
//
// Frames after the handshake are the established length-delimited layout
// [from u32, to u32, tag u32, seq u64, len u32][payload], unchanged from
// protocol v1 — v2 versions the handshake and adds control tags. Protocol
// v3 adds an *optional* trace-context extension: a data frame whose tag
// carries kTraceContextBit interposes 24 bytes
// [trace_id u64, parent_span u64, send_ns u64] between the header and the
// payload — the sender's current trace span and monotonic clock at
// transmission. The receiver materializes it as a `net.recv` span parented
// to the remote sender span (obs/trace.h), which is what lets
// `eppi_cli trace merge` join per-process traces into one causal timeline.
// `len` still counts payload bytes only, and the extension is framing: it
// is invisible to Message::wire_size(), so the paper's cost accounting (and
// exact trace replay against CostMeter totals) is unchanged by tracing.
//
// Control tags (kControlBit) belong to the socket layer itself: heartbeat
// ping/pong frames are consumed by the event loop and never reach a Mailbox,
// so protocol code cannot confuse them with data. The bit sits below the
// transport-reserved kAckBit/kRetransmitBit and above every protocol tag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/message.h"

namespace eppi::net::wire {

// "ePPI" as a little-endian u32; bumped constants mean a new protocol epoch.
inline constexpr std::uint32_t kMagic = 0x49505065u;
inline constexpr std::uint16_t kProtocolVersion = 3;

// Hello flags.
inline constexpr std::uint16_t kFlagResume = 0x0001;  // reconnect, not first contact

// Heartbeats: zero-payload control frames. A ping is answered with a pong;
// any received frame (data or control) proves the peer alive.
inline constexpr std::uint32_t kControlBit = 0x20000000u;
inline constexpr std::uint32_t kHeartbeatPing = kControlBit | 1u;
inline constexpr std::uint32_t kHeartbeatPong = kControlBit | 2u;

inline constexpr bool is_control_tag(std::uint32_t tag) noexcept {
  return (tag & kControlBit) != 0 && (tag & kAckBit) == 0;
}

// Trace-context flag (v3): the frame carries a TraceContext extension
// between the header and the payload. Sits below kControlBit; protocol tags
// stay well under it (kUserBase + small offsets).
inline constexpr std::uint32_t kTraceContextBit = 0x10000000u;

inline constexpr bool has_trace_context(std::uint32_t tag) noexcept {
  return (tag & kTraceContextBit) != 0;
}

// All tag bits owned by the transport/socket layers, stripped before a
// message's tag is compared against protocol expectations.
inline constexpr std::uint32_t kTransportTagBits =
    kAckBit | kRetransmitBit | kControlBit | kTraceContextBit;

// --- byte-order helpers (little-endian, byte at a time) --------------------

inline void put_u16(unsigned char*& out, std::uint16_t v) noexcept {
  for (int i = 0; i < 2; ++i) *out++ = static_cast<unsigned char>(v >> (8 * i));
}
inline void put_u32(unsigned char*& out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) *out++ = static_cast<unsigned char>(v >> (8 * i));
}
inline void put_u64(unsigned char*& out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) *out++ = static_cast<unsigned char>(v >> (8 * i));
}
inline std::uint16_t get_u16(const unsigned char*& in) noexcept {
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v = static_cast<std::uint16_t>(v | (std::uint16_t{*in++} << (8 * i)));
  return v;
}
inline std::uint32_t get_u32(const unsigned char*& in) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{*in++} << (8 * i);
  return v;
}
inline std::uint64_t get_u64(const unsigned char*& in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{*in++} << (8 * i);
  return v;
}

// --- handshake -------------------------------------------------------------

struct Hello {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t flags = 0;
  PartyId party = 0;
  std::uint64_t session = 0;  // per-process-instance nonce
};

inline constexpr std::size_t kHelloBytes = 4 + 2 + 2 + 4 + 8;

inline void encode_hello(const Hello& h, unsigned char* out) noexcept {
  put_u32(out, h.magic);
  put_u16(out, h.version);
  put_u16(out, h.flags);
  put_u32(out, h.party);
  put_u64(out, h.session);
}

inline Hello decode_hello(const unsigned char* in) noexcept {
  Hello h;
  h.magic = get_u32(in);
  h.version = get_u16(in);
  h.flags = get_u16(in);
  h.party = get_u32(in);
  h.session = get_u64(in);
  return h;
}

// Empty string when the hello is acceptable for a mesh of `parties` members;
// otherwise a human-readable rejection reason. Shared by the accept and
// connect sides so both enforce identical rules.
inline std::string hello_problem(const Hello& h, std::size_t parties) {
  if (h.magic != kMagic) return "bad magic (not an eppi peer)";
  if (h.version != kProtocolVersion) {
    return "protocol version mismatch: peer speaks v" +
           std::to_string(h.version) + ", this build speaks v" +
           std::to_string(kProtocolVersion);
  }
  if (h.party >= parties) {
    return "announced party id " + std::to_string(h.party) +
           " out of range for a mesh of " + std::to_string(parties);
  }
  return {};
}

// --- frames ----------------------------------------------------------------

struct FrameHeader {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint32_t len = 0;
};

inline constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 4;

// Frames above this are a protocol violation; the reader drops the
// connection rather than trusting the length field with an allocation.
inline constexpr std::uint32_t kMaxPayload = 1u << 30;

inline void encode_frame_header(const FrameHeader& h, unsigned char* out) noexcept {
  put_u32(out, h.from);
  put_u32(out, h.to);
  put_u32(out, h.tag);
  put_u64(out, h.seq);
  put_u32(out, h.len);
}

inline FrameHeader decode_frame_header(const unsigned char* in) noexcept {
  FrameHeader h;
  h.from = get_u32(in);
  h.to = get_u32(in);
  h.tag = get_u32(in);
  h.seq = get_u64(in);
  h.len = get_u32(in);
  return h;
}

// --- trace-context extension (v3) ------------------------------------------

// Present immediately after the header when the tag carries
// kTraceContextBit. `parent_span` is the sender-side span the frame is
// causally under; `send_ns` is the sender's monotonic clock at the moment
// this copy of the frame was encoded (a retransmission re-stamps it).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t send_ns = 0;
};

inline constexpr std::size_t kTraceExtBytes = 8 + 8 + 8;

inline void encode_trace_context(const TraceContext& t,
                                 unsigned char* out) noexcept {
  put_u64(out, t.trace_id);
  put_u64(out, t.parent_span);
  put_u64(out, t.send_ns);
}

inline TraceContext decode_trace_context(const unsigned char* in) noexcept {
  TraceContext t;
  t.trace_id = get_u64(in);
  t.parent_span = get_u64(in);
  t.send_ns = get_u64(in);
  return t;
}

}  // namespace eppi::net::wire
