#include "obs/build_info.h"

#include "obs/registry.h"

#ifndef EPPI_GIT_SHA
#define EPPI_GIT_SHA "unknown"
#endif
#ifndef EPPI_BUILD_COMPILER
#define EPPI_BUILD_COMPILER "unknown"
#endif

namespace eppi::obs {

namespace {

// Source-tree version, bumped with protocol-visible changes (the wire
// protocol version tracks it separately in net/wire.h).
constexpr std::string_view kVersion = "0.10.0";

}  // namespace

std::string_view build_version() noexcept { return kVersion; }

std::string_view build_git_sha() noexcept { return EPPI_GIT_SHA; }

std::string_view build_compiler() noexcept { return EPPI_BUILD_COMPILER; }

void register_build_info(Registry& reg) {
  reg.gauge("eppi_build_info",
            {{"version", std::string(build_version())},
             {"sha", std::string(build_git_sha())},
             {"compiler", std::string(build_compiler())}},
            "Build provenance; value is always 1, the labels carry it")
      .set(1);
}

}  // namespace eppi::obs
