// Build provenance surfaced as metrics.
//
// Every long-running process exports an `eppi_build_info` gauge whose value
// is always 1 and whose labels carry the interesting part: the source
// version, the git sha the build was configured from, and the compiler.
// This is the standard Prometheus idiom for joining any other metric with
// "which build produced it" — one `group_left` away in a dashboard — and it
// rides along in the registry's JSON snapshots, so committed BENCH_*.json
// baselines record which build produced their numbers.
#pragma once

#include <string_view>

namespace eppi::obs {

class Registry;

std::string_view build_version() noexcept;
std::string_view build_git_sha() noexcept;
std::string_view build_compiler() noexcept;

// Registers the eppi_build_info gauge (value 1, provenance in labels) on
// `reg`. Registry::global() calls this once at creation; tests may call it
// on private registries.
void register_build_info(Registry& reg);

}  // namespace eppi::obs
