#include "obs/json_escape.h"

#include <cstdio>

namespace eppi::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace eppi::obs
