// Shared string-escaping helpers for the two exposition formats obs emits.
//
// JSON and Prometheus disagree about what must be escaped: JSON requires
// every control byte below 0x20 to be escaped (\n, \t, ... or \u00xx),
// while the Prometheus text format only gives meaning to backslash, quote
// and newline inside label values. One implementation of each lives here so
// the trace exporter, the registry renderers and any future JSON writer
// share one audited escape set instead of drifting copies.
#pragma once

#include <string>
#include <string_view>

namespace eppi::obs {

// Escapes `s` for use inside a double-quoted JSON string: backslash, quote,
// the named control escapes (\n \r \t \b \f) and \u00xx for the rest of the
// C0 range. Output is valid UTF-8 whenever the input is.
std::string json_escape(std::string_view s);

// Escapes `s` for a double-quoted Prometheus label value: backslash, quote
// and newline, per the text-exposition spec. Other control bytes pass
// through untouched (Prometheus treats them as opaque value bytes).
std::string prom_escape(std::string_view s);

}  // namespace eppi::obs
