// Fixed-capacity label sets for metrics registry instruments.
//
// Labels distinguish instances of the same metric name (e.g. one
// ServingMetrics per LocatorService, or a per-party counter). They are
// consulted only at registration time — the hot path holds a Counter&
// and never touches labels again — so plain std::string storage is fine;
// the fixed capacity exists to keep cardinality honest, not for speed.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

namespace eppi::obs {

struct Label {
  std::string key;
  std::string value;
};

class Labels {
 public:
  // Deliberately tiny: a metric needing more than four dimensions is a
  // metric that should be split.
  static constexpr std::size_t kMax = 4;

  Labels() = default;
  Labels(std::initializer_list<Label> init) {
    for (const Label& l : init) add(l.key, l.value);
  }

  // Appends a label; excess labels past kMax are ignored (the registry is
  // diagnostics, never control flow — silently capping beats throwing from
  // instrumentation).
  Labels& add(std::string_view key, std::string_view value) {
    if (size_ < kMax) {
      labels_[size_].key = std::string(key);
      labels_[size_].value = std::string(value);
      ++size_;
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Label& operator[](std::size_t i) const { return labels_[i]; }

  friend bool operator==(const Labels& a, const Labels& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.labels_[i].key != b.labels_[i].key ||
          a.labels_[i].value != b.labels_[i].value) {
        return false;
      }
    }
    return true;
  }

 private:
  std::array<Label, kMax> labels_{};
  std::size_t size_ = 0;
};

}  // namespace eppi::obs
