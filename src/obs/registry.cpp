#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "obs/build_info.h"
#include "obs/json_escape.h"

namespace eppi::obs {

namespace {

// {k="v",k2="v2"} with an optional extra pair appended (used for le=).
std::string prom_labels(const Labels& labels, std::string_view extra_key = "",
                        std::string_view extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].key;
    out += "=\"";
    out += prom_escape(labels[i].value);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!labels.empty()) out += ",";
    out += std::string(extra_key);
    out += "=\"";
    out += prom_escape(extra_value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += json_escape(labels[i].key);
    out += "\":\"";
    out += json_escape(labels[i].value);
    out += "\"";
  }
  out += "}";
  return out;
}

// Upper edge of log2 bucket k (1<<(k+1)); the last bucket is open-ended.
std::uint64_t bucket_upper(std::size_t k) {
  return std::uint64_t{1} << (k + 1);
}

}  // namespace

std::size_t Histogram::bucket_for(std::uint64_t v) noexcept {
  if (v <= 1) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v)) - 1;
  return b < kBuckets ? b : kBuckets - 1;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    s.counts[k] = counts_[k].load(std::memory_order_relaxed);
    s.total += s.counts[k];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the sample we want, 1-based; q=0 still means "the first
  // sample", not rank 0 (which every bucket's running count satisfies).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += counts[k];
    if (seen >= rank) return static_cast<double>(bucket_upper(k));
  }
  return static_cast<double>(bucket_upper(kBuckets - 1));
}

Registry& Registry::global() {
  // Leaked: outlives all users. Build provenance is registered here, on the
  // concrete instance, so the gauge exists on every /metrics scrape and in
  // every JSON snapshot without any call-site needing to remember it.
  static Registry* instance = [] {
    auto* reg = new Registry();
    register_build_info(*reg);
    return reg;
  }();
  return *instance;
}

void Registry::check_kind_unique(std::string_view name,
                                 std::string_view kind) const {
  auto clash = [&](const auto& entries, std::string_view their_kind) {
    if (kind == their_kind) return;
    for (const auto& e : entries) {
      if (e.name == name) {
        std::fprintf(stderr,
                     "eppi obs: metric '%.*s' registered as both %.*s and "
                     "%.*s\n",
                     static_cast<int>(name.size()), name.data(),
                     static_cast<int>(their_kind.size()), their_kind.data(),
                     static_cast<int>(kind.size()), kind.data());
        std::abort();
      }
    }
  };
  clash(counters_, "counter");
  clash(gauges_, "gauge");
  clash(histograms_, "histogram");
}

template <typename Instrument>
Instrument& Registry::get_or_create(std::deque<Entry<Instrument>>& entries,
                                    std::string_view name,
                                    const Labels& labels,
                                    std::string_view help) {
  for (auto& e : entries) {
    if (e.name == name && e.labels == labels) return e.instrument;
  }
  entries.emplace_back();
  Entry<Instrument>& e = entries.back();
  e.name = std::string(name);
  e.help = std::string(help);
  e.labels = labels;
  return e.instrument;
}

Counter& Registry::counter(std::string_view name, const Labels& labels,
                           std::string_view help) {
  MutexLock lock(mu_);
  check_kind_unique(name, "counter");
  return get_or_create(counters_, name, labels, help);
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels,
                       std::string_view help) {
  MutexLock lock(mu_);
  check_kind_unique(name, "gauge");
  return get_or_create(gauges_, name, labels, help);
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::string_view help) {
  MutexLock lock(mu_);
  check_kind_unique(name, "histogram");
  return get_or_create(histograms_, name, labels, help);
}

std::string Registry::render_prometheus() const {
  MutexLock lock(mu_);
  std::ostringstream out;

  // Group samples under one # TYPE header per family, families sorted so
  // output is deterministic for golden tests and diffing.
  struct Family {
    std::string type;
    std::string help;
    std::vector<std::string> samples;
  };
  std::map<std::string, Family> families;

  for (const auto& e : counters_) {
    Family& f = families[e.name];
    f.type = "counter";
    if (f.help.empty()) f.help = e.help;
    f.samples.push_back(e.name + prom_labels(e.labels) + " " +
                        std::to_string(e.instrument.value()));
  }
  for (const auto& e : gauges_) {
    Family& f = families[e.name];
    f.type = "gauge";
    if (f.help.empty()) f.help = e.help;
    f.samples.push_back(e.name + prom_labels(e.labels) + " " +
                        std::to_string(e.instrument.value()));
  }
  for (const auto& e : histograms_) {
    Family& f = families[e.name];
    f.type = "histogram";
    if (f.help.empty()) f.help = e.help;
    const Histogram::Snapshot s = e.instrument.snapshot();
    std::uint64_t cumulative = 0;
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
      cumulative += s.counts[k];
      // Empty interior buckets still render: Prometheus histograms are
      // cumulative and parsers expect the full le ladder.
      f.samples.push_back(
          e.name + "_bucket" +
          prom_labels(e.labels, "le",
                      k + 1 == Histogram::kBuckets
                          ? "+Inf"
                          : std::to_string(bucket_upper(k))) +
          " " + std::to_string(cumulative));
    }
    f.samples.push_back(e.name + "_sum" + prom_labels(e.labels) + " " +
                        std::to_string(s.sum));
    f.samples.push_back(e.name + "_count" + prom_labels(e.labels) + " " +
                        std::to_string(s.total));
  }

  for (const auto& [name, family] : families) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    out << "# TYPE " << name << " " << family.type << "\n";
    for (const std::string& sample : family.samples) out << sample << "\n";
  }
  return out.str();
}

std::string Registry::render_json() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& e : counters_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(e.name)
        << "\",\"labels\":" << json_labels(e.labels)
        << ",\"value\":" << e.instrument.value() << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& e : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(e.name)
        << "\",\"labels\":" << json_labels(e.labels)
        << ",\"value\":" << e.instrument.value() << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& e : histograms_) {
    if (!first) out << ",";
    first = false;
    const Histogram::Snapshot s = e.instrument.snapshot();
    out << "{\"name\":\"" << json_escape(e.name)
        << "\",\"labels\":" << json_labels(e.labels) << ",\"sum\":" << s.sum
        << ",\"count\":" << s.total << ",\"buckets\":[";
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
      if (k) out << ",";
      out << s.counts[k];
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace eppi::obs
