// Process-wide metrics registry: named counters, gauges, and log2
// histograms with small fixed label sets.
//
// Shape follows the serving tier's rules (common/metrics.h): the record
// path is relaxed atomics only — no lock, no allocation — so any thread may
// bump a counter concurrently with snapshot rendering. The mutex exists only
// around registration (name+labels → instrument lookup), which callers do
// once and cache the returned reference; instruments live in std::deques so
// those references stay valid for the registry's lifetime.
//
// Exposition is pull-based: render_prometheus() emits the text format
// (counters as `_total`-suffixed samples, histograms as cumulative
// `_bucket{le=...}` series), render_json() the same data as one JSON
// object for embedding in BENCH_*.json. Renders are point-in-time reads of
// relaxed counters: values are monotone but a render racing recorders can
// see one instrument fresher than another (same tearing tolerance the
// CostMeter snapshot documents).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/labels.h"

namespace eppi::obs {

// Monotone event count. add() is one relaxed fetch_add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time signed level (e.g. current epoch, live snapshot bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log2 histogram over non-negative integer samples, same bucketing as
// LatencyHistogram: bucket k counts samples in [2^k, 2^(k+1)) with bucket 0
// also taking 0, clamped into the last bucket past 2^32. One relaxed
// fetch_add per record plus a relaxed sum accumulation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static std::size_t bucket_for(std::uint64_t v) noexcept;

  void record(std::uint64_t v) noexcept {
    counts_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  // Doubles from timers: NaN and negatives record as 0 rather than hitting
  // the undefined float→unsigned cast.
  void record(double v) noexcept {
    record(v > 0.0 ? static_cast<std::uint64_t>(v) : std::uint64_t{0});
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t sum = 0;
    std::uint64_t total = 0;

    // q in [0,1]; pessimistic upper-bucket-edge estimate, 0 with no samples.
    double quantile(double q) const noexcept;
  };
  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
};

// Named instrument store. Registration is idempotent: the same (name,
// labels) pair always returns the same instrument, so independent call
// sites may all ask for "eppi_retransmits_total" and share one counter.
// Asking for an existing name with a different instrument kind is a logic
// error and aborts (a metric cannot be both a counter and a gauge).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry used by instrumentation defaults. Tests
  // wanting isolation construct their own Registry.
  static Registry& global();

  Counter& counter(std::string_view name, const Labels& labels = {},
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, const Labels& labels = {},
               std::string_view help = "");
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::string_view help = "");

  // Prometheus text exposition format, families sorted by name.
  std::string render_prometheus() const;
  // The same data as a single JSON object: {"counters":[...],
  // "gauges":[...], "histograms":[...]}.
  std::string render_json() const;

 private:
  template <typename Instrument>
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    Instrument instrument;
  };

  template <typename Instrument>
  Instrument& get_or_create(std::deque<Entry<Instrument>>& entries,
                            std::string_view name, const Labels& labels,
                            std::string_view help)
      EPPI_REQUIRES(mu_);
  void check_kind_unique(std::string_view name, std::string_view kind) const
      EPPI_REQUIRES(mu_);

  mutable Mutex mu_;
  std::deque<Entry<Counter>> counters_ EPPI_GUARDED_BY(mu_);
  std::deque<Entry<Gauge>> gauges_ EPPI_GUARDED_BY(mu_);
  std::deque<Entry<Histogram>> histograms_ EPPI_GUARDED_BY(mu_);
};

}  // namespace eppi::obs
