#include "obs/slow_log.h"

#include <algorithm>
#include <sstream>

namespace eppi::obs {

namespace {

// Min-heap comparator: the root is the fastest retained entry, i.e. the one
// a slower newcomer evicts.
bool slower(const SlowQueryLog::Entry& a, const SlowQueryLog::Entry& b) {
  return a.duration_us > b.duration_us;
}

}  // namespace

SlowQueryLog::SlowQueryLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  heap_.reserve(capacity_);
}

void SlowQueryLog::offer(const Entry& e) {
  const MutexLock lock(mu_);
  ++observed_;
  if (heap_.size() < capacity_) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), slower);
    return;
  }
  if (e.duration_us <= heap_.front().duration_us) return;
  std::pop_heap(heap_.begin(), heap_.end(), slower);
  heap_.back() = e;
  std::push_heap(heap_.begin(), heap_.end(), slower);
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::snapshot() const {
  std::vector<Entry> out;
  {
    const MutexLock lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.duration_us != b.duration_us) return a.duration_us > b.duration_us;
    return a.at_ns < b.at_ns;
  });
  return out;
}

std::uint64_t SlowQueryLog::observed() const {
  const MutexLock lock(mu_);
  return observed_;
}

SlowQueryLog& SlowQueryLog::global() {
  // Leaked, like the default trace sink: the serving path may record from
  // static teardown.
  static SlowQueryLog* log = new SlowQueryLog(32);
  return *log;
}

std::string to_jsonl(const std::vector<SlowQueryLog::Entry>& entries) {
  std::ostringstream out;
  for (const SlowQueryLog::Entry& e : entries) {
    out << "{\"trace\":" << e.trace_id << ",\"span\":" << e.span_id
        << ",\"at_ns\":" << e.at_ns << ",\"duration_us\":" << e.duration_us
        << ",\"batch\":" << e.batch << ",\"resolved\":" << e.resolved
        << ",\"epoch\":" << e.epoch << "}\n";
  }
  return out.str();
}

}  // namespace eppi::obs
