// Bounded slow-query log: the K slowest query_ppi_many batches seen so far.
//
// Aggregate latency histograms say *that* the tail is slow; the slow log
// says *which* requests were, and carries each one's trace id so an
// operator can jump from the daemon's /slowlog endpoint straight into the
// exported trace for that batch. Entries record only sizes, timings and
// trace identity — never owner names: queries name the paper's data owners,
// and the privacy posture that keeps Secret<T> out of span attributes keeps
// identities out of operational logs too.
//
// The log is a fixed-capacity min-heap keyed on duration under a mutex:
// offers are O(log K) with K ≈ 32, far off the serving fast path's
// wait-free read contract (one offer per *batch*, not per lookup).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace eppi::obs {

class SlowQueryLog {
 public:
  struct Entry {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t at_ns = 0;        // batch start, monotonic process clock
    std::uint64_t duration_us = 0;
    std::uint64_t batch = 0;        // lookups in the batch
    std::uint64_t resolved = 0;     // lookups that found their owner
    std::uint64_t epoch = 0;        // epoch the batch was served from
  };

  explicit SlowQueryLog(std::size_t capacity = 32);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Admits `e` if the log has room or `e` outlasts the current fastest
  // retained entry. Never throws; safe from any thread.
  void offer(const Entry& e);

  // Retained entries, slowest first.
  std::vector<Entry> snapshot() const;

  // Total batches ever offered (admitted or not).
  std::uint64_t observed() const;

  std::size_t capacity() const noexcept { return capacity_; }

  // Process-wide instance the serving path records into; surfaced by the
  // daemon's /slowlog endpoint.
  static SlowQueryLog& global();

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  std::vector<Entry> heap_;     // min-heap on duration_us
  std::uint64_t observed_ = 0;
};

// One JSON object per entry, mirroring the trace JSONL idiom.
std::string to_jsonl(const std::vector<SlowQueryLog::Entry>& entries);

}  // namespace eppi::obs
