#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <sstream>

#include "common/clock.h"
#include "common/mutex.h"

namespace eppi::obs {

namespace {

std::atomic<std::uint64_t> g_next_span_id{1};

// The innermost open span on this thread; new spans parent to it. Worker
// threads (one per protocol party) start at 0 and so open their own roots.
thread_local std::uint64_t t_current_span = 0;

void copy_truncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap, src.size());
  std::memcpy(dst, src.data(), n);
  if (n < cap) dst[n] = '\0';
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- TraceSink

TraceSink::TraceSink(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 64));
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void TraceSink::record(const SpanEvent& ev) noexcept {
  std::uint64_t buf[kWords] = {};
  std::memcpy(buf, &ev, sizeof ev);

  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];

  // Seqlock-over-atomics (Boehm's recipe): mark the slot in progress, put a
  // release fence between the mark and the payload so no reader can observe
  // payload words without the odd generation also being visible, then
  // publish with a release store. Every access is atomic, so a wrap
  // collision garbles at worst one event — detected by the generation
  // check — and is never a data race.
  s.gen.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i) {
    s.words[i].store(buf[i], std::memory_order_relaxed);
  }
  s.gen.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<SpanEvent> TraceSink::drain() {
  // One drainer at a time; record() stays lock-free throughout.
  static Mutex drain_mu;
  MutexLock lock(drain_mu);

  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t cap = mask_ + 1;
  // Tickets older than one full ring behind head are already overwritten.
  const std::uint64_t lo = (head - tail > cap) ? head - cap : tail;

  std::vector<SpanEvent> out;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t t = lo; t < head; ++t) {
    Slot& s = slots_[t & mask_];
    const std::uint64_t g1 = s.gen.load(std::memory_order_acquire);
    if (g1 == 0 || (g1 & 1) != 0 || g1 / 2 - 1 != t) continue;
    std::uint64_t buf[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      buf[i] = s.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.gen.load(std::memory_order_relaxed) != g1) continue;
    SpanEvent ev;
    std::memcpy(&ev, buf, sizeof ev);
    out.push_back(ev);
  }

  // Anything in [tail, head) we could not read — overwritten by wrap, torn,
  // or still mid-record at this instant — is gone: the watermark moves past
  // it. Callers wanting exact traces drain after their workers join.
  dropped_.fetch_add((head - tail) - out.size(), std::memory_order_relaxed);
  tail_.store(head, std::memory_order_relaxed);
  return out;
}

TraceSink& default_sink() {
  // Leaked: instrumentation in static destructors may still record.
  static TraceSink* sink = new TraceSink(8192);
  return *sink;
}

// --------------------------------------------------------------------- Span

Span::Span(std::string_view name, TraceSink* sink)
    : sink_(sink ? sink : &default_sink()) {
  ev_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  ev_.parent_id = t_current_span;
  ev_.thread = thread_index();
  ev_.start_ns = monotonic_ns();
  copy_truncated(ev_.name, SpanEvent::kNameCap, name);
  prev_current_ = t_current_span;
  t_current_span = ev_.span_id;
}

Span::~Span() {
  ev_.end_ns = monotonic_ns();
  sink_->record(ev_);
  t_current_span = prev_current_;
}

SpanAttr* Span::next_attr(std::string_view key) noexcept {
  // Past capacity, extra attributes drop silently: tracing is diagnostics
  // and must not throw out of instrumented protocol code.
  if (ev_.n_attrs >= SpanEvent::kMaxAttrs) return nullptr;
  SpanAttr* a = &ev_.attrs[ev_.n_attrs++];
  copy_truncated(a->key, SpanAttr::kKeyCap, key);
  return a;
}

void Span::attr(std::string_view key, std::uint64_t v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kU64;
    a->value.u64 = v;
  }
}

void Span::attr(std::string_view key, std::int64_t v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kI64;
    a->value.i64 = v;
  }
}

void Span::attr(std::string_view key, double v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kF64;
    a->value.f64 = v;
  }
}

void Span::attr(std::string_view key, bool v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kBool;
    a->value.b = v;
  }
}

void Span::attr(std::string_view key, std::string_view v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kStr;
    copy_truncated(a->value.str, AttrValue::kStrCap, v);
  }
}

void Span::event(std::string_view name) noexcept {
  SpanEvent ev;
  ev.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  ev.parent_id = ev_.span_id;
  ev.thread = thread_index();
  ev.start_ns = monotonic_ns();
  ev.end_ns = ev.start_ns;
  copy_truncated(ev.name, SpanEvent::kNameCap, name);
  sink_->record(ev);
}

// -------------------------------------------------------------------- JSONL

std::string to_jsonl(const std::vector<SpanEvent>& events) {
  std::ostringstream out;
  out.precision(17);
  for (const SpanEvent& ev : events) {
    out << "{\"span\":" << ev.span_id << ",\"parent\":" << ev.parent_id
        << ",\"thread\":" << ev.thread << ",\"name\":\""
        << json_escape(ev.name_view()) << "\",\"start_ns\":" << ev.start_ns
        << ",\"end_ns\":" << ev.end_ns << ",\"attrs\":{";
    const std::uint32_t n =
        std::min<std::uint32_t>(ev.n_attrs, SpanEvent::kMaxAttrs);
    for (std::uint32_t i = 0; i < n; ++i) {
      const SpanAttr& a = ev.attrs[i];
      if (i) out << ",";
      out << "\""
          << json_escape(std::string_view(
                 a.key, ::strnlen(a.key, SpanAttr::kKeyCap)))
          << "\":";
      switch (a.value.type) {
        case AttrValue::Type::kU64:
          out << a.value.u64;
          break;
        case AttrValue::Type::kI64:
          out << a.value.i64;
          break;
        case AttrValue::Type::kF64:
          out << a.value.f64;
          break;
        case AttrValue::Type::kBool:
          out << (a.value.b ? "true" : "false");
          break;
        case AttrValue::Type::kStr:
          out << "\""
              << json_escape(std::string_view(
                     a.value.str, ::strnlen(a.value.str, AttrValue::kStrCap)))
              << "\"";
          break;
        case AttrValue::Type::kNone:
          out << "null";
          break;
      }
    }
    out << "}}\n";
  }
  return out.str();
}

}  // namespace eppi::obs
