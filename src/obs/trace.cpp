#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <random>
#include <sstream>

#include "common/clock.h"
#include "common/mutex.h"
#include "obs/json_escape.h"

namespace eppi::obs {

namespace {

// Span ids are (24 bits of per-process entropy) << 40 | (local counter), so
// ids minted by different party processes never collide and a merged trace
// keeps every parent link intact without renumbering. 40 counter bits are
// ~10^12 spans per process; 24 seed bits make a cross-process collision a
// birthday problem at ~2^12 concurrent processes, far past any mesh we run.
constexpr int kSeedShift = 40;
constexpr std::uint64_t kSeedMask = 0xFFFFFFu;
constexpr std::uint64_t kCounterMask = (std::uint64_t{1} << kSeedShift) - 1;

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_seed_bits{0};  // (seed << kSeedShift); 0 = unset

// The innermost open span on this thread; new spans parent to it. Worker
// threads (one per protocol party) start at 0 and so open their own roots.
thread_local std::uint64_t t_current_span = 0;
// The trace the innermost open span belongs to; inherited by children and
// by instantaneous events.
thread_local std::uint64_t t_current_trace = 0;

std::uint64_t seed_bits() noexcept {
  std::uint64_t bits = g_seed_bits.load(std::memory_order_relaxed);
  if (bits != 0) return bits;
  // Entropy, not reproducibility: independently launched party processes
  // must draw distinct seeds, so the deterministic eppi::Rng is exactly
  // wrong here (same reasoning as the socket session nonce).
  std::random_device rd;  // eppi-lint: allow(rng-construction): span-id process seeds need entropy, not reproducibility
  std::uint64_t e = (std::uint64_t{rd()} << 32) ^ rd();
  e ^= static_cast<std::uint64_t>(::getpid()) * 0x9E3779B97F4A7C15ull;
  e &= kSeedMask;
  if (e == 0) e = 1;
  std::uint64_t want = e << kSeedShift;
  // First caller wins; concurrent initializers adopt the published value so
  // every id in the process shares one seed.
  if (g_seed_bits.compare_exchange_strong(bits, want,
                                          std::memory_order_relaxed)) {
    return want;
  }
  return bits;
}

std::uint64_t next_span_id() noexcept {
  return seed_bits() |
         (g_next_span_id.fetch_add(1, std::memory_order_relaxed) &
          kCounterMask);
}

void copy_truncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap, src.size());
  std::memcpy(dst, src.data(), n);
  if (n < cap) dst[n] = '\0';
}

}  // namespace

SpanContext current_span_context() noexcept {
  return SpanContext{t_current_trace, t_current_span};
}

void set_trace_process_seed_for_testing(std::uint64_t seed) noexcept {
  seed &= kSeedMask;
  if (seed == 0) seed = 1;
  g_seed_bits.store(seed << kSeedShift, std::memory_order_relaxed);
}

std::uint64_t record_remote_event(
    std::string_view name, const SpanContext& parent,
    std::initializer_list<std::pair<std::string_view, std::uint64_t>> attrs,
    TraceSink* sink) noexcept {
  SpanEvent ev;
  ev.span_id = next_span_id();
  ev.parent_id = parent.span_id;
  ev.trace_id = parent.trace_id != 0 ? parent.trace_id : ev.span_id;
  ev.thread = thread_index();
  ev.start_ns = monotonic_ns();
  ev.end_ns = ev.start_ns;
  copy_truncated(ev.name, SpanEvent::kNameCap, name);
  for (const auto& [key, value] : attrs) {
    if (ev.n_attrs >= SpanEvent::kMaxAttrs) break;
    SpanAttr& a = ev.attrs[ev.n_attrs++];
    copy_truncated(a.key, SpanAttr::kKeyCap, key);
    a.value.type = AttrValue::Type::kU64;
    a.value.u64 = value;
  }
  (sink != nullptr ? sink : &default_sink())->record(ev);
  return ev.span_id;
}

// ---------------------------------------------------------------- TraceSink

TraceSink::TraceSink(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 64));
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void TraceSink::record(const SpanEvent& ev) noexcept {
  std::uint64_t buf[kWords] = {};
  std::memcpy(buf, &ev, sizeof ev);

  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];

  // Seqlock-over-atomics (Boehm's recipe): mark the slot in progress, put a
  // release fence between the mark and the payload so no reader can observe
  // payload words without the odd generation also being visible, then
  // publish with a release store. Every access is atomic, so a wrap
  // collision garbles at worst one event — detected by the generation
  // check — and is never a data race.
  s.gen.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i) {
    s.words[i].store(buf[i], std::memory_order_relaxed);
  }
  s.gen.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<SpanEvent> TraceSink::drain() {
  // One drainer at a time; record() stays lock-free throughout.
  static Mutex drain_mu;
  MutexLock lock(drain_mu);

  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t cap = mask_ + 1;
  // Tickets older than one full ring behind head are already overwritten.
  const std::uint64_t lo = (head - tail > cap) ? head - cap : tail;

  std::vector<SpanEvent> out;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t t = lo; t < head; ++t) {
    Slot& s = slots_[t & mask_];
    const std::uint64_t g1 = s.gen.load(std::memory_order_acquire);
    if (g1 == 0 || (g1 & 1) != 0 || g1 / 2 - 1 != t) continue;
    std::uint64_t buf[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      buf[i] = s.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.gen.load(std::memory_order_relaxed) != g1) continue;
    SpanEvent ev;
    std::memcpy(&ev, buf, sizeof ev);
    out.push_back(ev);
  }

  // Anything in [tail, head) we could not read — overwritten by wrap, torn,
  // or still mid-record at this instant — is gone: the watermark moves past
  // it. Callers wanting exact traces drain after their workers join.
  dropped_.fetch_add((head - tail) - out.size(), std::memory_order_relaxed);
  tail_.store(head, std::memory_order_relaxed);
  return out;
}

TraceSink& default_sink() {
  // Leaked: instrumentation in static destructors may still record.
  static TraceSink* sink = [] {
    std::size_t cap = 8192;
    // Deployments that record per-message net.recv spans (socket runtime
    // with trace export) need room for a whole run between drains.
    if (const char* env = std::getenv("EPPI_TRACE_RING")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v >= 64 && v <= (1ull << 22)) {
        cap = static_cast<std::size_t>(v);
      }
    }
    return new TraceSink(cap);
  }();
  return *sink;
}

// --------------------------------------------------------------------- Span

Span::Span(std::string_view name, TraceSink* sink)
    : sink_(sink ? sink : &default_sink()) {
  ev_.span_id = next_span_id();
  ev_.parent_id = t_current_span;
  // A root span starts a new trace named after itself; children inherit.
  ev_.trace_id = t_current_trace != 0 ? t_current_trace : ev_.span_id;
  ev_.thread = thread_index();
  ev_.start_ns = monotonic_ns();
  copy_truncated(ev_.name, SpanEvent::kNameCap, name);
  prev_current_ = t_current_span;
  prev_trace_ = t_current_trace;
  t_current_span = ev_.span_id;
  t_current_trace = ev_.trace_id;
}

Span::~Span() {
  ev_.end_ns = monotonic_ns();
  sink_->record(ev_);
  t_current_span = prev_current_;
  t_current_trace = prev_trace_;
}

SpanAttr* Span::next_attr(std::string_view key) noexcept {
  // Past capacity, extra attributes drop silently: tracing is diagnostics
  // and must not throw out of instrumented protocol code.
  if (ev_.n_attrs >= SpanEvent::kMaxAttrs) return nullptr;
  SpanAttr* a = &ev_.attrs[ev_.n_attrs++];
  copy_truncated(a->key, SpanAttr::kKeyCap, key);
  return a;
}

void Span::attr(std::string_view key, std::uint64_t v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kU64;
    a->value.u64 = v;
  }
}

void Span::attr(std::string_view key, std::int64_t v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kI64;
    a->value.i64 = v;
  }
}

void Span::attr(std::string_view key, double v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kF64;
    a->value.f64 = v;
  }
}

void Span::attr(std::string_view key, bool v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kBool;
    a->value.b = v;
  }
}

void Span::attr(std::string_view key, std::string_view v) noexcept {
  if (SpanAttr* a = next_attr(key)) {
    a->value.type = AttrValue::Type::kStr;
    copy_truncated(a->value.str, AttrValue::kStrCap, v);
  }
}

void Span::event(std::string_view name) noexcept {
  SpanEvent ev;
  ev.span_id = next_span_id();
  ev.parent_id = ev_.span_id;
  ev.trace_id = ev_.trace_id;
  ev.thread = thread_index();
  ev.start_ns = monotonic_ns();
  ev.end_ns = ev.start_ns;
  copy_truncated(ev.name, SpanEvent::kNameCap, name);
  sink_->record(ev);
}

// -------------------------------------------------------------------- JSONL

std::string to_jsonl(const std::vector<SpanEvent>& events) {
  std::ostringstream out;
  out.precision(17);
  for (const SpanEvent& ev : events) {
    out << "{\"span\":" << ev.span_id << ",\"parent\":" << ev.parent_id
        << ",\"trace\":" << ev.trace_id << ",\"thread\":" << ev.thread
        << ",\"name\":\""
        << json_escape(ev.name_view()) << "\",\"start_ns\":" << ev.start_ns
        << ",\"end_ns\":" << ev.end_ns << ",\"attrs\":{";
    const std::uint32_t n =
        std::min<std::uint32_t>(ev.n_attrs, SpanEvent::kMaxAttrs);
    for (std::uint32_t i = 0; i < n; ++i) {
      const SpanAttr& a = ev.attrs[i];
      if (i) out << ",";
      out << "\""
          << json_escape(std::string_view(
                 a.key, ::strnlen(a.key, SpanAttr::kKeyCap)))
          << "\":";
      switch (a.value.type) {
        case AttrValue::Type::kU64:
          out << a.value.u64;
          break;
        case AttrValue::Type::kI64:
          out << a.value.i64;
          break;
        case AttrValue::Type::kF64:
          out << a.value.f64;
          break;
        case AttrValue::Type::kBool:
          out << (a.value.b ? "true" : "false");
          break;
        case AttrValue::Type::kStr:
          out << "\""
              << json_escape(std::string_view(
                     a.value.str, ::strnlen(a.value.str, AttrValue::kStrCap)))
              << "\"";
          break;
        case AttrValue::Type::kNone:
          out << "null";
          break;
      }
    }
    out << "}}\n";
  }
  return out.str();
}

}  // namespace eppi::obs
