// Structured trace spans with a bounded lock-free ring sink.
//
// A Span is an RAII timing scope: construction stamps a monotonic start,
// destruction stamps the end and commits one fixed-size SpanEvent into a
// TraceSink. Parent links come from a thread_local "current span" stack, so
// nested spans on one thread form a tree without any plumbing; spans on
// protocol worker threads (one thread per party in the in-memory cluster)
// simply start their own roots.
//
// The sink is a bounded MPSC-by-accident ring: any thread records, one
// drainer collects. Slots are arrays of atomic words with a per-slot
// generation counter (release on publish, acquire on read), so a torn or
// overwritten slot is *detected and skipped*, never undefined behavior —
// this is what keeps recording lock-free and TSan-clean where a classic
// seqlock with plain payload writes would not be. When the ring wraps
// before a drain, the oldest events are overwritten and counted as dropped;
// tracing is diagnostics and must never stall the protocol to preserve it.
//
// Attribute values are taint-checked at compile time: passing a Secret<T>
// to Span::attr is a deleted overload, the same pattern as Secret's deleted
// operator<<. Reveal first (through the audited hatches) or don't trace it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace eppi {
template <typename T>
class Secret;  // secret/secret.h; declared here so obs need not link secret
}  // namespace eppi

namespace eppi::obs {

// One typed attribute value. Strings are truncated to the inline capacity;
// attribute values are identifiers and small quantities, not payloads.
struct AttrValue {
  enum class Type : std::uint8_t { kNone, kU64, kI64, kF64, kBool, kStr };
  static constexpr std::size_t kStrCap = 24;

  Type type = Type::kNone;
  union {
    std::uint64_t u64;
    std::int64_t i64;
    double f64;
    bool b;
    char str[kStrCap];
  };

  AttrValue() : u64(0) {}
};

struct SpanAttr {
  static constexpr std::size_t kKeyCap = 24;
  char key[kKeyCap] = {};
  AttrValue value;
};

// Fixed-size, trivially copyable span record — the unit the ring stores.
struct SpanEvent {
  static constexpr std::size_t kNameCap = 48;
  static constexpr std::size_t kMaxAttrs = 8;

  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint64_t trace_id = 0;   // root span's id; shared by the whole tree
  std::uint64_t thread = 0;     // common/clock.h thread_index()
  std::uint64_t start_ns = 0;   // monotonic, since process_start()
  std::uint64_t end_ns = 0;
  std::uint32_t n_attrs = 0;
  char name[kNameCap] = {};
  SpanAttr attrs[kMaxAttrs];

  std::string_view name_view() const {
    return std::string_view(name, ::strnlen(name, kNameCap));
  }
};
static_assert(std::is_trivially_copyable_v<SpanEvent>,
              "SpanEvent is memcpy'd through the ring's atomic words");

// Bounded lock-free ring of SpanEvents. record() never blocks and never
// fails; drain() returns every completed event recorded since the previous
// drain (in record order) and advances the watermark. Events overwritten or
// caught mid-write are skipped and accounted in dropped().
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 4096);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void record(const SpanEvent& ev) noexcept;
  std::vector<SpanEvent> drain();

  // Total events ever recorded (monotone, relaxed).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  // Events lost to ring wrap or torn reads, as counted by drains so far.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  static constexpr std::size_t kWords =
      (sizeof(SpanEvent) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

  struct Slot {
    // Even = published generation for ticket (gen/2 - 1); odd = write in
    // progress; 0 = never written.
    std::atomic<std::uint64_t> gen{0};
    std::atomic<std::uint64_t> words[kWords];
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};  // first ticket not yet drained
  std::atomic<std::uint64_t> dropped_{0};
};

// The process-wide sink instrumentation records into by default. Sized for
// a full distributed-construction run between drains; the EPPI_TRACE_RING
// environment variable (slot count, read once) overrides the default for
// deployments that also record per-message net.recv spans.
TraceSink& default_sink();

// (trace_id, span_id) pair identifying a span for causal linking — the unit
// the socket layer propagates over the wire. Ids are globally unique across
// processes: the high bits carry per-process entropy (see
// set_trace_process_seed_for_testing), the low bits a local counter, so two
// parties' traces can be merged without renumbering.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  explicit operator bool() const noexcept { return span_id != 0; }
};

// The innermost open span on the calling thread (zero context if none).
SpanContext current_span_context() noexcept;

// Forces the per-process high bits of newly allocated span ids (low 24 bits
// of `seed`, must be nonzero). Tests use this to simulate distinct
// processes inside one binary; production code leaves the entropy-derived
// default alone.
void set_trace_process_seed_for_testing(std::uint64_t seed) noexcept;

// Records an instantaneous event parented to an explicit — possibly
// remote — span context, bypassing the thread-local parent link. This is
// how the socket layer materializes `net.recv` spans whose parent lives in
// another process. Attributes beyond SpanEvent::kMaxAttrs drop silently.
// Returns the committed event's globally unique id.
std::uint64_t record_remote_event(
    std::string_view name, const SpanContext& parent,
    std::initializer_list<std::pair<std::string_view, std::uint64_t>> attrs,
    TraceSink* sink = nullptr) noexcept;

// RAII span. Not copyable or movable: the thread_local parent link pins a
// span to the scope (and thread) that opened it.
class Span {
 public:
  explicit Span(std::string_view name, TraceSink* sink = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void attr(std::string_view key, std::uint64_t v) noexcept;
  void attr(std::string_view key, std::int64_t v) noexcept;
  void attr(std::string_view key, int v) noexcept {
    attr(key, static_cast<std::int64_t>(v));
  }
  void attr(std::string_view key, unsigned v) noexcept {
    attr(key, static_cast<std::uint64_t>(v));
  }
  void attr(std::string_view key, double v) noexcept;
  void attr(std::string_view key, bool v) noexcept;
  void attr(std::string_view key, std::string_view v) noexcept;
  void attr(std::string_view key, const char* v) noexcept {
    attr(key, std::string_view(v));
  }
  // Secret values cannot become trace attributes. Compile-time taint check,
  // the same pattern as Secret's deleted stream operator: go through the
  // audited reveal()/unwrap_for_wire() hatches (and the secret-trace-attr
  // lint) or don't record it.
  template <typename T>
  void attr(std::string_view, const Secret<T>&) = delete;

  // Record an instantaneous child event (restart, abort, retransmit...)
  // committed to the sink immediately, parented to this span.
  void event(std::string_view name) noexcept;

  std::uint64_t id() const noexcept { return ev_.span_id; }
  SpanContext context() const noexcept {
    return SpanContext{ev_.trace_id, ev_.span_id};
  }

 private:
  SpanAttr* next_attr(std::string_view key) noexcept;

  SpanEvent ev_;
  TraceSink* sink_;
  std::uint64_t prev_current_;
  std::uint64_t prev_trace_;
};

// Serializes events as JSON Lines, one object per event:
//   {"span":3,"parent":1,"trace":3,"thread":2,"name":"phase:secsum",
//    "start_ns":10,"end_ns":90,"attrs":{"party":0,"bytes":4096}}
std::string to_jsonl(const std::vector<SpanEvent>& events);

}  // namespace eppi::obs
