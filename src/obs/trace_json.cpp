#include "obs/trace_json.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "obs/json_escape.h"

namespace eppi::obs {

namespace {

// Minimal recursive-descent reader for the flat shape to_jsonl() emits:
// one object per line, scalar values, one level of nesting for "attrs".
// Anything outside that shape is a parse error for the whole line.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  struct Value {
    enum class Type { kNumber, kString, kBool, kNull } type = Type::kNull;
    double number = 0.0;
    std::uint64_t uinteger = 0;  // valid when the number had no '.', 'e', '-'
    bool is_uinteger = false;
    std::string string;
    bool boolean = false;
  };

  // Parses {"key":value,...}; calls on_scalar(path, value) for scalars,
  // where path is "key" at top level and "attrs.key" inside attrs.
  template <typename Fn>
  bool parse_object(Fn&& on_scalar, std::string_view prefix = "") {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (peek() == '{') {
        // One nesting level only; deeper objects fail the line.
        if (!prefix.empty()) return false;
        if (!parse_object(on_scalar, key)) return false;
      } else {
        Value v;
        if (!parse_scalar(&v)) return false;
        std::string path = prefix.empty()
                               ? key
                               : std::string(prefix) + "." + key;
        on_scalar(path, v);
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      return consume('}');
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char esc = s_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            // Exporter only emits \u00xx for control bytes.
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            if (std::sscanf(s_.substr(pos_, 4).data(), "%4x", &code) != 1) {
              return false;
            }
            pos_ += 4;
            *out += static_cast<char>(code & 0xff);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool parse_scalar(Value* v) {
    char c = peek();
    if (c == '"') {
      v->type = Value::Type::kString;
      return parse_string(&v->string);
    }
    if (c == 't' || c == 'f') {
      v->type = Value::Type::kBool;
      std::string_view want = c == 't' ? "true" : "false";
      if (s_.substr(pos_, want.size()) != want) return false;
      pos_ += want.size();
      v->boolean = c == 't';
      return true;
    }
    if (c == 'n') {
      v->type = Value::Type::kNull;
      if (s_.substr(pos_, 4) != "null") return false;
      pos_ += 4;
      return true;
    }
    // Number: capture the raw token, then decide integer vs double.
    const std::size_t start = pos_;
    bool plain_unsigned = true;
    while (pos_ < s_.size()) {
      c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E') {
        plain_unsigned = false;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start) return false;
    const std::string token(s_.substr(start, pos_ - start));
    v->type = Value::Type::kNumber;
    try {
      v->number = std::stod(token);
      if (plain_unsigned) {
        v->uinteger = std::stoull(token);
        v->is_uinteger = true;
      }
    } catch (...) {
      return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const TraceEvent::Attr* TraceEvent::attr(std::string_view key) const noexcept {
  for (const Attr& a : attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

std::uint64_t TraceEvent::attr_u64(std::string_view key,
                                   std::uint64_t fallback) const noexcept {
  const Attr* a = attr(key);
  return a != nullptr && a->kind == Attr::Kind::kU64 ? a->u64 : fallback;
}

bool parse_trace_line(std::string_view line, TraceEvent* out) {
  *out = TraceEvent{};
  LineParser parser(line);
  const bool ok = parser.parse_object([&](const std::string& path,
                                          const LineParser::Value& v) {
    using Value = LineParser::Value;
    if (path.rfind("attrs.", 0) == 0) {
      TraceEvent::Attr a;
      a.key = path.substr(6);
      switch (v.type) {
        case Value::Type::kNumber:
          if (v.is_uinteger) {
            a.kind = TraceEvent::Attr::Kind::kU64;
            a.u64 = v.uinteger;
          } else {
            a.kind = TraceEvent::Attr::Kind::kF64;
          }
          a.f64 = v.number;
          break;
        case Value::Type::kString:
          a.kind = TraceEvent::Attr::Kind::kStr;
          a.str = v.string;
          break;
        case Value::Type::kBool:
          a.kind = TraceEvent::Attr::Kind::kBool;
          a.boolean = v.boolean;
          break;
        case Value::Type::kNull:
          a.kind = TraceEvent::Attr::Kind::kNull;
          break;
      }
      out->attrs.push_back(std::move(a));
      return;
    }
    if (path == "name" && v.type == Value::Type::kString) {
      out->name = v.string;
      return;
    }
    if (!v.is_uinteger) return;
    if (path == "span") out->span = v.uinteger;
    else if (path == "parent") out->parent = v.uinteger;
    else if (path == "trace") out->trace = v.uinteger;
    else if (path == "thread") out->thread = v.uinteger;
    else if (path == "start_ns") out->start_ns = v.uinteger;
    else if (path == "end_ns") out->end_ns = v.uinteger;
    else if (path == "proc") out->proc = static_cast<std::uint32_t>(v.uinteger);
  });
  return ok && parser.at_end();
}

std::string to_json_line(const TraceEvent& ev) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"span\":" << ev.span << ",\"parent\":" << ev.parent
      << ",\"trace\":" << ev.trace << ",\"thread\":" << ev.thread
      << ",\"proc\":" << ev.proc << ",\"name\":\"" << json_escape(ev.name)
      << "\",\"start_ns\":" << ev.start_ns << ",\"end_ns\":" << ev.end_ns
      << ",\"attrs\":{";
  for (std::size_t i = 0; i < ev.attrs.size(); ++i) {
    const TraceEvent::Attr& a = ev.attrs[i];
    if (i) out << ",";
    out << "\"" << json_escape(a.key) << "\":";
    switch (a.kind) {
      case TraceEvent::Attr::Kind::kU64:
        out << a.u64;
        break;
      case TraceEvent::Attr::Kind::kF64:
        out << a.f64;
        break;
      case TraceEvent::Attr::Kind::kBool:
        out << (a.boolean ? "true" : "false");
        break;
      case TraceEvent::Attr::Kind::kStr:
        out << "\"" << json_escape(a.str) << "\"";
        break;
      case TraceEvent::Attr::Kind::kNull:
        out << "null";
        break;
    }
  }
  out << "}}\n";
  return out.str();
}

}  // namespace eppi::obs
